//! Perf-trend enforcement for CI: diff two `BENCH_throughput.json`
//! artifacts (the report the vendored criterion writes under
//! `BENCH_JSON=…`) and fail when a pinned benchmark regressed beyond the
//! threshold.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> [--threshold 1.5] [--pin <id>]...
//! ```
//!
//! Without `--pin`, the built-in pinned set below is checked: the
//! benchmarks whose throughput the repo's performance story rests on. A
//! pinned case missing from the *current* report fails (a silently
//! renamed or deleted benchmark would otherwise dodge the trend check
//! forever); one missing from the *baseline* is skipped with a note (new
//! benchmarks have no history yet). Exit codes: 0 = within threshold,
//! 1 = regression (or missing pinned case), 2 = usage/parse error.
//!
//! The quick-mode numbers CI produces are noisy (50 ms measurement
//! budgets), which is why the default threshold is the generous 1.5× —
//! this catches step-change regressions (an accidental `O(n)` in the
//! aggregate kernel, a lost memoization), not percent-level drift.

use std::process::ExitCode;

/// Benchmarks that must never regress silently: the aggregate kernel's
/// `n`-independence flagship, the player-level kernel, the near-converged
/// sparse-support cases the per-class support index turns `O(support²)`
/// (both engines), the ensemble runner, the batched latency paths
/// (the big-flow `ΔΦ` walk and the latency-cache rebuild that
/// `Latency::eval_range_into`/`sum_range` accelerate), and the RNG
/// backends — raw word throughput of both generators (including the
/// lane-batched Philox keystream behind the SIMD dispatch) plus a full
/// round under each, so counter-mode overhead can't creep past the
/// kernels —
/// and the scenario hook: a hook-free run vs. an armed-but-idle schedule,
/// so the per-round `next_fire` poll every shocked sweep pays on every
/// non-shock round stays in the noise. The `lanes/aggregate/*` ids pin the
/// replica-major lane kernel at both ends of its width range — one
/// lockstep round across W counter-mode replicas must keep amortizing the
/// latency evaluations and pair walks it shares across lanes.
const DEFAULT_PINS: &[&str] = &[
    "round/aggregate/n10000_m64",
    "round/aggregate/n1000000_m8",
    "round/player_level/10000",
    "aggregate/near_converged/S1024_support8",
    "player_level/near_converged/S1024_support8",
    "ensemble/trials16_rounds32/t1",
    "potential/delta_walk/x4096",
    "cache_rebuild/rebuild/m64",
    "cache_rebuild/rebuild/m1024",
    "rng/raw/xoshiro",
    "rng/raw/counter",
    "rng/raw/counter_batched",
    "rng/round/xoshiro",
    "rng/round/counter",
    "scenario/shock_reconverge/none",
    "scenario/shock_reconverge/armed_idle",
    "lanes/aggregate/w8",
    "lanes/aggregate/w32",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!(
                "usage: bench_diff <baseline.json> <current.json> \
                 [--threshold RATIO] [--pin ID]..."
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 1.5f64;
    let mut pins: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or("--threshold needs a value")?
                    .parse()
                    .map_err(|e| format!("bad threshold: {e}"))?;
                if !threshold.is_finite() || threshold <= 1.0 {
                    return Err("--threshold must be > 1.0".into());
                }
            }
            "--pin" => pins.push(it.next().ok_or("--pin needs a benchmark id")?.clone()),
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            _ => paths.push(arg),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err("expected exactly two report paths".into());
    };
    let read = |path: &str| -> Result<Vec<(String, f64)>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_report(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = read(baseline_path)?;
    let current = read(current_path)?;
    let pins: Vec<&str> = if pins.is_empty() {
        DEFAULT_PINS.to_vec()
    } else {
        pins.iter().map(String::as_str).collect()
    };
    let report = diff(&baseline, &current, &pins, threshold);
    print!("{}", report.text);
    Ok(report.ok)
}

/// Parsed outcome of a diff, with the printable report.
struct DiffReport {
    ok: bool,
    text: String,
}

fn lookup(report: &[(String, f64)], id: &str) -> Option<f64> {
    report.iter().find(|(rid, _)| rid == id).map(|(_, ns)| *ns)
}

fn diff(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    pins: &[&str],
    threshold: f64,
) -> DiffReport {
    use std::fmt::Write as _;
    let mut ok = true;
    let mut text = String::new();
    let _ = writeln!(text, "perf trend vs baseline (fail above {threshold:.2}x):");
    for &pin in pins {
        let cur = lookup(current, pin);
        let base = lookup(baseline, pin);
        match (base, cur) {
            (_, None) => {
                ok = false;
                let _ = writeln!(
                    text,
                    "  FAIL {pin}: missing from the current report (renamed or deleted \
                     pinned benchmark?)"
                );
            }
            (None, Some(_)) => {
                let _ = writeln!(text, "  skip {pin}: not in the baseline yet");
            }
            (Some(base), Some(cur)) => {
                // A non-positive baseline (a 0 ns entry from a degenerate
                // run, or hand-edited junk) makes the ratio meaningless —
                // `inf`/NaN would read as a huge regression (or silently
                // pass, for NaN). Skip the pin with a note instead of
                // rendering a nonsense verdict.
                if base <= 0.0 || !base.is_finite() {
                    let _ = writeln!(
                        text,
                        "  skip {pin}: non-positive baseline ({base} ns/iter) — ratio undefined, \
                         re-record the baseline"
                    );
                    continue;
                }
                let ratio = cur / base;
                let verdict = if ratio > threshold {
                    ok = false;
                    "FAIL"
                } else if ratio < 1.0 / threshold {
                    "nice"
                } else {
                    "  ok"
                };
                let _ = writeln!(
                    text,
                    "  {verdict} {pin}: {base:.1} -> {cur:.1} ns/iter ({ratio:.2}x)"
                );
            }
        }
    }
    DiffReport { ok, text }
}

/// Parse the vendored criterion's `BENCH_JSON` report:
/// `{"benchmarks": [{"id": "...", "ns_per_iter": <num>, "iters": <num>}, ...]}`.
///
/// This is a purpose-built reader for that fixed shape (no registry access
/// for a JSON crate, and the writer lives in-tree), not a general JSON
/// parser: it scans `"id"`/`"ns_per_iter"` key-value pairs in order and
/// rejects reports where the two get out of sync.
fn parse_report(text: &str) -> Result<Vec<(String, f64)>, String> {
    if !text.contains("\"benchmarks\"") {
        return Err("not a BENCH_JSON report (missing \"benchmarks\" key)".into());
    }
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(id_at) = rest.find("\"id\"") {
        rest = &rest[id_at + 4..];
        let open = rest.find('"').ok_or_else(|| "unterminated \"id\" entry".to_string())?;
        let (id, after) = read_json_string(&rest[open + 1..])
            .ok_or_else(|| "unterminated \"id\" string".to_string())?;
        rest = after;
        let key_at = rest
            .find("\"ns_per_iter\"")
            .ok_or_else(|| format!("benchmark {id}: missing ns_per_iter"))?;
        // The value must belong to this entry: no new "id" in between.
        if rest[..key_at].contains("\"id\"") {
            return Err(format!("benchmark {id}: missing ns_per_iter"));
        }
        let value_text = rest[key_at + 13..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("benchmark {id}: malformed ns_per_iter"))?
            .trim_start();
        let end = value_text
            .find([',', '}', '\n'])
            .ok_or_else(|| format!("benchmark {id}: malformed ns_per_iter"))?;
        let ns: f64 = value_text[..end]
            .trim()
            .parse()
            .map_err(|e| format!("benchmark {id}: bad ns_per_iter: {e}"))?;
        out.push((id, ns));
        rest = &value_text[end..];
    }
    Ok(out)
}

/// Read a JSON string body starting *after* the opening quote; returns the
/// unescaped content and the remainder after the closing quote. Handles
/// `\"` and `\\` (the only escapes the in-tree writer emits); any other
/// escape passes its character through.
fn read_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => out.push(chars.next()?.1),
            other => out.push(other),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmarks": [
    {"id": "round/aggregate/n10000_m64", "ns_per_iter": 368.4, "iters": 120000},
    {"id": "round/player_level/10000", "ns_per_iter": 43400.0, "iters": 1200},
    {"id": "aggregate/near_converged/S1024_support8", "ns_per_iter": 1425.3, "iters": 35255},
    {"id": "player_level/near_converged/S1024_support8", "ns_per_iter": 21839.2, "iters": 2290},
    {"id": "ensemble/trials16_rounds32/t1", "ns_per_iter": 901000.5, "iters": 60},
    {"id": "potential/delta_walk/x4096", "ns_per_iter": 1800.0, "iters": 25000},
    {"id": "cache_rebuild/rebuild/m64", "ns_per_iter": 950.0, "iters": 50000},
    {"id": "cache_rebuild/rebuild/m1024", "ns_per_iter": 15000.0, "iters": 3000},
    {"id": "rng/raw/xoshiro", "ns_per_iter": 1.2, "iters": 40000000},
    {"id": "rng/raw/counter", "ns_per_iter": 13.5, "iters": 3600000},
    {"id": "rng/raw/counter_batched", "ns_per_iter": 350.0, "iters": 140000},
    {"id": "rng/round/xoshiro", "ns_per_iter": 150.0, "iters": 340000},
    {"id": "rng/round/counter", "ns_per_iter": 152.0, "iters": 340000},
    {"id": "scenario/shock_reconverge/none", "ns_per_iter": 21355.7, "iters": 4700},
    {"id": "scenario/shock_reconverge/armed_idle", "ns_per_iter": 21828.3, "iters": 4600},
    {"id": "lanes/aggregate/w8", "ns_per_iter": 1100.0, "iters": 40000},
    {"id": "lanes/aggregate/w32", "ns_per_iter": 3600.0, "iters": 12000}
  ]
}
"#;

    #[test]
    fn parses_the_report_shape() {
        let parsed = parse_report(SAMPLE).unwrap();
        assert_eq!(parsed.len(), 17);
        assert_eq!(parsed[0].0, "round/aggregate/n10000_m64");
        assert_eq!(parsed[0].1, 368.4);
        assert_eq!(parsed[2].0, "aggregate/near_converged/S1024_support8");
        assert_eq!(parsed[4].1, 901000.5);
        assert_eq!(parse_report("{\n  \"benchmarks\": []\n}\n").unwrap().len(), 0);
        assert!(parse_report("hello").is_err());
    }

    #[test]
    fn parses_escaped_quotes_in_ids() {
        // The in-tree writer escapes quotes/backslashes defensively; the
        // parser must scan past the escape instead of truncating the id.
        let report = "{\"benchmarks\": [\n\
                      {\"id\": \"odd\\\"name\\\\x\", \"ns_per_iter\": 5.0, \"iters\": 1}\n]}";
        let parsed = parse_report(report).unwrap();
        assert_eq!(parsed, vec![("odd\"name\\x".to_string(), 5.0)]);
    }

    fn report(entries: &[(&str, f64)]) -> Vec<(String, f64)> {
        entries.iter().map(|(id, ns)| (id.to_string(), *ns)).collect()
    }

    #[test]
    fn within_threshold_passes() {
        let base = report(&[("a", 100.0), ("b", 50.0)]);
        let cur = report(&[("a", 140.0), ("b", 40.0)]);
        let d = diff(&base, &cur, &["a", "b"], 1.5);
        assert!(d.ok, "{}", d.text);
        assert!(d.text.contains("1.40x"));
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let base = report(&[("a", 100.0)]);
        let cur = report(&[("a", 151.0)]);
        let d = diff(&base, &cur, &["a"], 1.5);
        assert!(!d.ok);
        assert!(d.text.contains("FAIL a"), "{}", d.text);
    }

    #[test]
    fn missing_pinned_case_fails_only_for_current() {
        let base = report(&[("a", 100.0)]);
        let cur = report(&[("a", 100.0), ("new", 5.0)]);
        // Pinned case absent from the current report → fail.
        let d = diff(&base, &cur, &["a", "gone"], 1.5);
        assert!(!d.ok);
        assert!(d.text.contains("FAIL gone"));
        // Pinned case absent from the baseline → skip, still passing.
        let d = diff(&base, &cur, &["a", "new"], 1.5);
        assert!(d.ok, "{}", d.text);
        assert!(d.text.contains("skip new"));
    }

    #[test]
    fn non_positive_baseline_is_skipped_with_a_note() {
        // A 0 ns baseline entry would yield an `inf` ratio and a nonsense
        // FAIL; a negative or NaN one is equally meaningless. All three
        // must skip with a note instead of producing a verdict.
        for bad in [0.0, -3.0, f64::NAN] {
            let base = report(&[("a", bad), ("b", 100.0)]);
            let cur = report(&[("a", 120.0), ("b", 100.0)]);
            let d = diff(&base, &cur, &["a", "b"], 1.5);
            assert!(d.ok, "baseline {bad}: {}", d.text);
            assert!(d.text.contains("skip a"), "baseline {bad}: {}", d.text);
            assert!(d.text.contains("ratio undefined"), "baseline {bad}: {}", d.text);
            assert!(!d.text.contains("inf"), "baseline {bad}: {}", d.text);
            assert!(d.text.contains("  ok b"), "healthy pin must still be judged: {}", d.text);
        }
    }

    #[test]
    fn improvements_are_reported_not_failed() {
        let base = report(&[("a", 300.0)]);
        let cur = report(&[("a", 100.0)]);
        let d = diff(&base, &cur, &["a"], 1.5);
        assert!(d.ok);
        assert!(d.text.contains("nice a"), "{}", d.text);
    }

    #[test]
    fn default_pins_match_the_throughput_bench_ids() {
        // The pinned ids must stay in sync with
        // `crates/bench/benches/round_throughput.rs` (group/function/param
        // labels of the vendored criterion).
        for pin in DEFAULT_PINS {
            assert!(
                pin.starts_with("round/")
                    || pin.starts_with("aggregate/")
                    || pin.starts_with("player_level/")
                    || pin.starts_with("ensemble/")
                    || pin.starts_with("potential/")
                    || pin.starts_with("cache_rebuild/")
                    || pin.starts_with("rng/")
                    || pin.starts_with("scenario/")
                    || pin.starts_with("lanes/"),
                "unexpected pin group: {pin}"
            );
        }
        let parsed = parse_report(SAMPLE).unwrap();
        for pin in DEFAULT_PINS.iter().filter(|p| !p.starts_with("round/aggregate/n1000000")) {
            assert!(
                parsed.iter().any(|(id, _)| id == pin),
                "pinned id {pin} must parse out of a report that contains it"
            );
        }
    }

    /// The sparse-support ids added with the per-class support index are
    /// accepted by the parser and covered by the default pins, so the
    /// perf-trend gate guards both sparse kernels.
    #[test]
    fn sparse_support_pins_are_parsed_and_pinned() {
        for id in [
            "aggregate/near_converged/S1024_support8",
            "player_level/near_converged/S1024_support8",
        ] {
            assert!(DEFAULT_PINS.contains(&id), "{id} missing from DEFAULT_PINS");
            let report = format!(
                "{{\n  \"benchmarks\": [\n    {{\"id\": \"{id}\", \"ns_per_iter\": 1425.3, \"iters\": 10}}\n  ]\n}}\n"
            );
            let parsed = parse_report(&report).unwrap();
            assert_eq!(parsed, vec![(id.to_string(), 1425.3)]);
            // A report carrying the new id diffs cleanly against itself,
            // and a dense-scan-sized regression of it is caught.
            let d = diff(&parsed, &parsed, &[id], 1.5);
            assert!(d.ok, "{}", d.text);
            let regressed = vec![(id.to_string(), 1425.3 * 10.4)];
            let d = diff(&parsed, &regressed, &[id], 1.5);
            assert!(!d.ok, "a fall back to the dense scan must fail the gate");
        }
    }

    /// The batched-latency bench ids added with the `eval_range_into`
    /// layer are accepted by the parser and covered by the default pins,
    /// so the perf-trend gate guards the paths that layer optimizes.
    #[test]
    fn batched_latency_pins_are_parsed_and_pinned() {
        for id in [
            "potential/delta_walk/x4096",
            "cache_rebuild/rebuild/m64",
            "cache_rebuild/rebuild/m1024",
        ] {
            assert!(DEFAULT_PINS.contains(&id), "{id} missing from DEFAULT_PINS");
            let report = format!(
                "{{\n  \"benchmarks\": [\n    {{\"id\": \"{id}\", \"ns_per_iter\": 12.5, \"iters\": 10}}\n  ]\n}}\n"
            );
            let parsed = parse_report(&report).unwrap();
            assert_eq!(parsed, vec![(id.to_string(), 12.5)]);
            // A report carrying the new id diffs cleanly against itself.
            let d = diff(&parsed, &parsed, &[id], 1.5);
            assert!(d.ok, "{}", d.text);
        }
    }

    /// The replica-major lane-kernel ids are accepted by the parser and
    /// covered by the default pins, so a lost cross-lane amortization (a
    /// kernel that quietly degrades to per-lane latency evaluation) fails
    /// the gate as a step change.
    #[test]
    fn lane_kernel_pins_are_parsed_and_pinned() {
        for id in ["lanes/aggregate/w8", "lanes/aggregate/w32"] {
            assert!(DEFAULT_PINS.contains(&id), "{id} missing from DEFAULT_PINS");
            let report = format!(
                "{{\n  \"benchmarks\": [\n    {{\"id\": \"{id}\", \"ns_per_iter\": 3600.0, \"iters\": 10}}\n  ]\n}}\n"
            );
            let parsed = parse_report(&report).unwrap();
            assert_eq!(parsed, vec![(id.to_string(), 3600.0)]);
            let d = diff(&parsed, &parsed, &[id], 1.5);
            assert!(d.ok, "{}", d.text);
            // Falling back to W independent scalar rounds would multiply
            // the per-iteration cost by roughly the lane width.
            let regressed = vec![(id.to_string(), 3600.0 * 8.0)];
            let d = diff(&parsed, &regressed, &[id], 1.5);
            assert!(!d.ok, "a lost lane amortization must fail the gate");
        }
    }

    /// The RNG-backend bench ids (raw word throughput and one full round
    /// per mode) are accepted by the parser and covered by the default
    /// pins, so a counter-mode overhead regression fails the gate.
    #[test]
    fn rng_backend_pins_are_parsed_and_pinned() {
        for id in [
            "rng/raw/xoshiro",
            "rng/raw/counter",
            "rng/raw/counter_batched",
            "rng/round/xoshiro",
            "rng/round/counter",
        ] {
            assert!(DEFAULT_PINS.contains(&id), "{id} missing from DEFAULT_PINS");
            let report = format!(
                "{{\n  \"benchmarks\": [\n    {{\"id\": \"{id}\", \"ns_per_iter\": 14.0, \"iters\": 10}}\n  ]\n}}\n"
            );
            let parsed = parse_report(&report).unwrap();
            assert_eq!(parsed, vec![(id.to_string(), 14.0)]);
            let d = diff(&parsed, &parsed, &[id], 1.5);
            assert!(d.ok, "{}", d.text);
            // A counter kernel that falls off the block-cache fast path
            // (or a Philox round-count slip) shows up as a step change.
            let regressed = vec![(id.to_string(), 14.0 * 2.0)];
            let d = diff(&parsed, &regressed, &[id], 1.5);
            assert!(!d.ok, "an RNG-backend step regression must fail the gate");
        }
    }
}
