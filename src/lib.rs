//! # congames
//!
//! A production-quality Rust reproduction of *"Concurrent Imitation
//! Dynamics in Congestion Games"* (Heiner Ackermann, Petra Berenbrink,
//! Simon Fischer, Martin Hoefer; PODC 2009 / arXiv:0808.2081).
//!
//! This umbrella crate re-exports the project's sub-crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`model`] | `congames-model` | congestion games, latencies, states, potential, equilibrium concepts |
//! | [`network`] | `congames-network` | graphs, path enumeration, convex min-cost flow (`Φ*`), builders |
//! | [`dynamics`] | `congames-dynamics` | the IMITATION / EXPLORATION protocols and round engines |
//! | [`lowerbounds`] | `congames-lowerbounds` | threshold games, the Theorem 6 construction, counter-examples |
//! | [`sampling`] | `congames-sampling` | binomial/multinomial/alias-table samplers, seed derivation |
//! | [`wardrop`] | `congames-wardrop` | the continuous (non-atomic) limit: Wardrop equilibria, mean-field imitation flow |
//! | [`analysis`] | `congames-analysis` | statistics, regression, tables, trial runner |
//! | [`scenario`] | `congames-scenario` | nonstationary, trace-driven scenarios: scheduled shocks with deterministic replay |
//!
//! The most common items are also re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use congames::{
//!     Affine, ApproxEquilibrium, CongestionGame, ImitationProtocol, Simulation, State,
//!     StopCondition, StopSpec,
//! };
//! use rand::SeedableRng;
//!
//! // Eight parallel links with linear latencies, 10 000 players, all of
//! // them initially piled onto two links.
//! let game = CongestionGame::singleton(
//!     (0..8).map(|i| Affine::linear(1.0 + i as f64).into()).collect(),
//!     10_000,
//! )?;
//! let mut counts = vec![0; 8];
//! counts[0] = 9_000;
//! counts[7] = 1_000;
//! let start = State::from_counts(&game, counts)?;
//!
//! let mut sim = Simulation::new(&game, ImitationProtocol::paper_default().into(), start)?;
//! let nu = sim.params().nu;
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
//! let outcome = sim.run(
//!     &StopSpec::new(vec![
//!         StopCondition::ApproxEquilibrium(ApproxEquilibrium::new(0.05, 0.1, nu)?),
//!         StopCondition::MaxRounds(100_000),
//!     ]),
//!     &mut rng,
//! )?;
//! println!("reached an approximate equilibrium after {} rounds", outcome.rounds);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use congames_analysis as analysis;
pub use congames_dynamics as dynamics;
pub use congames_lowerbounds as lowerbounds;
pub use congames_model as model;
pub use congames_network as network;
pub use congames_sampling as sampling;
pub use congames_scenario as scenario;
pub use congames_wardrop as wardrop;

pub use congames_dynamics::{
    Damping, EngineKind, Ensemble, ExplorationProtocol, ImitationProtocol, NuRule, Observer,
    Protocol, RecordConfig, Reducer, RunSummary, Simulation, StopCondition, StopReason, StopSpec,
};
pub use congames_model::{
    Affine, ApproxEquilibrium, Bpr, CongestionGame, Constant, GameError, Latency, Monomial,
    Polynomial, ResourceId, State, Strategy, StrategyId,
};
pub use congames_network::NetworkGame;
