//! A small CLI for poking at congestion-game dynamics without writing code.
//!
//! ```bash
//! congames params  --links 1,2,3 --players 100
//! congames run     --links 1,2,3 --players 1000 --protocol imitation --rounds 200
//! congames optimum --links 1,2,3 --players 100
//! # multi-process: run each shard anywhere, then merge the partial files
//! congames shard   --links 1,2 --players 100 --trials 96 --reduce quantiles \
//!                  --shard 0 --num-shards 3 --out part0.cgshard
//! congames merge   part0.cgshard part1.cgshard part2.cgshard
//! ```
//!
//! Links are linear latencies `ℓ(x) = a·x` given by their coefficients; the
//! CLI covers the singleton-game slice of the library (the API covers far
//! more — see the examples).

use congames::analysis::{
    convergence_csv, per_round_stats_csv, shock_recovery, shock_recovery_csv, Summary,
};
use congames::dynamics::wire::{
    decode_shard_file, decode_shard_header, encode_shard_file, validate_shard_sequence,
    ShardHeader, WireReduce,
};
use congames::dynamics::{
    merge_partials, ConvergenceHistogram, EngineKind, Ensemble, ExplorationProtocol, FinalSummary,
    ImitationProtocol, MapItem, NuRule, PerRoundStats, Protocol, ReasonStats, RecordSeries,
    RoundRecord, RunSummary, ScalarStats, Simulation, StopCondition, StopSpec,
};
use congames::model::{average_latency, potential, LinearSingleton};
use congames::sampling::{DrawStream, RngMode};
use congames::scenario::{trace::parse_trace, Schedule, ScheduleCursor};
use congames::RecordConfig;
use congames::{Affine, CongestionGame, State};
use rand::SeedableRng;
use std::process::ExitCode;
use std::sync::Arc;

/// Relative half-width of the recovery band `--shock-csv` scores against
/// (see [`shock_recovery`]).
const SHOCK_EPSILON: f64 = 0.05;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  congames params  --links a1,a2,... --players N
  congames optimum --links a1,a2,... --players N
  congames run     --links a1,a2,... --players N [--protocol imitation|exploration|combined]
                   [--rounds R] [--lambda L] [--seed S] [--no-nu]
                   [--trials T] [--threads K] [--engine aggregate|player]
                   [--rng xoshiro|counter] [--lanes 8|16|32|64]
                   [--reduce mean|quantiles|convergence]
                   [--scenario TRACE] [--shock-csv FILE]
  congames shard   <run flags> --reduce MODE --shard S --num-shards K --out FILE
  congames merge   [--csv FILE] FILE...

links are linear latencies l(x) = a*x, comma-separated coefficients.
with --trials > 1 an ensemble of T independent replicas runs in parallel
(results are identical for every --threads value) and a summary is printed.
--reduce streams the ensemble through an online reducer (memory independent
of the trial count): `mean` prints the per-round mean potential with 95%
confidence bands, `quantiles` the convergence-round and final-potential
quantiles, `convergence` a stop-reason histogram.
`shard` runs one slice of a sweep and writes its reducer partials to a
file; `merge` (given every shard's file, in shard order) reproduces the
single-process `run --reduce` report byte for byte.
--rng selects the random backend: `xoshiro` (default) draws one sequential
stream per trial; `counter` addresses every draw by (trial, round, site,
index), so results are also invariant to future lane/GPU backends. Both
are bit-reproducible from the printed `# repro:` header line.
--lanes runs reduced sweeps through the replica-major lane kernel: W
counter-mode replicas step in lockstep, sharing every latency evaluation.
Counter mode only; the reported numbers are byte-identical with the flag
on or off — only wall-clock time changes.
--scenario replays a nonstationary trace (`# congames-trace v1` format):
scheduled latency shocks, demand changes, and arrivals/departures fire
between rounds, deterministically, in every trial of a sweep and in every
shard of a distributed run. --shock-csv (single runs only) records every
round and writes the per-shock re-convergence summary as CSV.";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?.as_str();
    if cmd == "merge" {
        // Merge is self-describing: everything comes from the shard files.
        return merge(&args[1..]);
    }
    let opts = Options::parse(&args[1..])?;
    let game = opts.game()?;
    match cmd {
        "params" => params(&game),
        "optimum" => optimum(&game),
        "run" => simulate(&game, &opts),
        "shard" => shard(&game, &opts),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Parsed command-line options (defaults filled in).
#[derive(Debug)]
struct Options {
    links: Vec<f64>,
    players: u64,
    protocol: String,
    rounds: u64,
    lambda: f64,
    seed: u64,
    use_nu: bool,
    trials: usize,
    threads: usize,
    engine: EngineKind,
    rng: RngMode,
    lanes: Option<usize>,
    reduce: Option<ReduceMode>,
    shard: Option<usize>,
    num_shards: Option<usize>,
    out: Option<String>,
    scenario: Option<ScenarioFile>,
    shock_csv: Option<String>,
}

/// A `--scenario` trace, loaded and digested at parse time so every
/// consumer (run, shard header, repro line) sees one canonical schedule.
#[derive(Debug)]
struct ScenarioFile {
    schedule: Arc<Schedule>,
    digest: String,
}

impl ScenarioFile {
    fn load(path: &str) -> Result<ScenarioFile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read scenario `{path}`: {e}"))?;
        let schedule = parse_trace(&text).map_err(|e| format!("scenario `{path}`: {e}"))?;
        let digest = schedule.digest();
        Ok(ScenarioFile { schedule: Arc::new(schedule), digest })
    }

    /// A fresh per-trial cursor over the shared schedule.
    fn cursor(&self) -> ScheduleCursor {
        ScheduleCursor::new(Arc::clone(&self.schedule))
    }
}

/// Which streaming reduction `--reduce` asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceMode {
    Mean,
    Quantiles,
    Convergence,
}

impl ReduceMode {
    fn name(self) -> &'static str {
        match self {
            ReduceMode::Mean => "mean",
            ReduceMode::Quantiles => "quantiles",
            ReduceMode::Convergence => "convergence",
        }
    }

    fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "mean" => Ok(ReduceMode::Mean),
            "quantiles" => Ok(ReduceMode::Quantiles),
            "convergence" => Ok(ReduceMode::Convergence),
            other => Err(format!("unknown reduction `{other}`")),
        }
    }
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            links: vec![],
            players: 0,
            protocol: "imitation".into(),
            rounds: 1000,
            lambda: 0.25,
            seed: 42,
            use_nu: true,
            trials: 1,
            threads: Ensemble::default_threads(),
            engine: EngineKind::Aggregate,
            rng: RngMode::Xoshiro,
            lanes: None,
            reduce: None,
            shard: None,
            num_shards: None,
            out: None,
            scenario: None,
            shock_csv: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--links" => {
                    let v = it.next().ok_or("--links needs a value")?;
                    o.links = v
                        .split(',')
                        .map(|s| {
                            s.trim().parse::<f64>().map_err(|e| format!("bad link `{s}`: {e}"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--players" => {
                    o.players = it
                        .next()
                        .ok_or("--players needs a value")?
                        .parse()
                        .map_err(|e| format!("bad player count: {e}"))?;
                }
                "--protocol" => {
                    o.protocol = it.next().ok_or("--protocol needs a value")?.clone();
                }
                "--rounds" => {
                    o.rounds = it
                        .next()
                        .ok_or("--rounds needs a value")?
                        .parse()
                        .map_err(|e| format!("bad round count: {e}"))?;
                }
                "--lambda" => {
                    o.lambda = it
                        .next()
                        .ok_or("--lambda needs a value")?
                        .parse()
                        .map_err(|e| format!("bad lambda: {e}"))?;
                }
                "--seed" => {
                    o.seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("bad seed: {e}"))?;
                }
                "--no-nu" => o.use_nu = false,
                "--trials" => {
                    o.trials = it
                        .next()
                        .ok_or("--trials needs a value")?
                        .parse()
                        .map_err(|e| format!("bad trial count: {e}"))?;
                    if o.trials == 0 {
                        return Err("--trials must be positive (a 0-trial ensemble is just the \
                                    identity reduction)"
                            .into());
                    }
                }
                "--threads" => {
                    o.threads = it
                        .next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|e| format!("bad thread count: {e}"))?;
                    if o.threads == 0 {
                        return Err("--threads must be positive".into());
                    }
                }
                "--engine" => {
                    o.engine = match it.next().ok_or("--engine needs a value")?.as_str() {
                        "aggregate" => EngineKind::Aggregate,
                        "player" | "player-level" => EngineKind::PlayerLevel,
                        other => return Err(format!("unknown engine `{other}`")),
                    };
                }
                "--rng" => {
                    let v = it.next().ok_or("--rng needs a value")?;
                    o.rng = RngMode::parse(v)
                        .ok_or_else(|| format!("unknown rng mode `{v}` (xoshiro|counter)"))?;
                }
                "--lanes" => {
                    let w: usize = it
                        .next()
                        .ok_or("--lanes needs a value")?
                        .parse()
                        .map_err(|e| format!("bad lane width: {e}"))?;
                    if !congames::dynamics::LANE_WIDTHS.contains(&w) {
                        return Err(format!("--lanes must be one of 8, 16, 32, 64 (got {w})"));
                    }
                    o.lanes = Some(w);
                }
                "--reduce" => {
                    o.reduce =
                        Some(ReduceMode::from_name(it.next().ok_or("--reduce needs a value")?)?);
                }
                "--shard" => {
                    o.shard = Some(
                        it.next()
                            .ok_or("--shard needs a value")?
                            .parse()
                            .map_err(|e| format!("bad shard index: {e}"))?,
                    );
                }
                "--num-shards" => {
                    let n: usize = it
                        .next()
                        .ok_or("--num-shards needs a value")?
                        .parse()
                        .map_err(|e| format!("bad shard count: {e}"))?;
                    if n == 0 {
                        return Err("--num-shards must be positive".into());
                    }
                    o.num_shards = Some(n);
                }
                "--out" => {
                    o.out = Some(it.next().ok_or("--out needs a value")?.clone());
                }
                "--scenario" => {
                    let path = it.next().ok_or("--scenario needs a trace file")?;
                    o.scenario = Some(ScenarioFile::load(path)?);
                }
                "--shock-csv" => {
                    o.shock_csv = Some(it.next().ok_or("--shock-csv needs a value")?.clone());
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if o.links.is_empty() {
            return Err("--links is required".into());
        }
        if o.players == 0 {
            return Err("--players is required and must be positive".into());
        }
        // `--reduce --trials 1` is deliberately allowed: reduction is
        // defined for every trial count (0 trials is the identity, 1 trial
        // is identity + one absorb), so a single-trial "ensemble" is just
        // a well-defined small sweep.
        if o.lanes.is_some() {
            if o.rng != RngMode::Counter {
                return Err("--lanes requires --rng counter: the lane kernel replays each \
                            trial's counter-addressed Philox stream in lockstep, and xoshiro \
                            streams are draw-order serial (pass `--rng counter`)"
                    .into());
            }
            if o.reduce.is_none() {
                return Err("--lanes needs --reduce: lane groups stream through the reduced \
                            sweep paths"
                    .into());
            }
            if o.engine != EngineKind::Aggregate {
                return Err("--lanes supports only --engine aggregate".into());
            }
            if o.scenario.is_some() {
                return Err("--lanes does not support --scenario (round hooks run per \
                            simulation, not per lane group)"
                    .into());
            }
        }
        if o.shock_csv.is_some() && o.scenario.is_none() {
            return Err("--shock-csv needs --scenario (without scheduled shocks there is \
                        nothing to recover from)"
                .into());
        }
        Ok(o)
    }

    fn game(&self) -> Result<CongestionGame, String> {
        if self.links.iter().any(|a| !a.is_finite() || *a <= 0.0) {
            return Err("link coefficients must be positive".into());
        }
        CongestionGame::singleton(
            self.links.iter().map(|&a| Affine::linear(a).into()).collect(),
            self.players,
        )
        .map_err(|e| e.to_string())
    }

    fn protocol(&self) -> Result<Protocol, String> {
        let imitation = {
            let p = ImitationProtocol::new(self.lambda).map_err(|e| e.to_string())?;
            if self.use_nu {
                p
            } else {
                p.with_nu_rule(NuRule::None)
            }
        };
        match self.protocol.as_str() {
            "imitation" => Ok(imitation.into()),
            "exploration" => {
                Ok(ExplorationProtocol::new(self.lambda).map_err(|e| e.to_string())?.into())
            }
            "combined" => Protocol::combined(
                imitation,
                ExplorationProtocol::new(self.lambda).map_err(|e| e.to_string())?,
                0.5,
            )
            .map_err(|e| e.to_string()),
            other => Err(format!("unknown protocol `{other}`")),
        }
    }

    /// Deterministic digest of everything that shapes a sweep's streams and
    /// reduction (threads and lanes excluded — results are invariant to the
    /// thread count and to the lane width, which is scheduling only).
    /// Written into every shard header so `merge` can reject partials from
    /// a differently-configured run and rebuild the right reducer.
    fn config_digest(&self) -> String {
        let links: Vec<String> = self.links.iter().map(|a| a.to_bits().to_string()).collect();
        format!(
            "links={};players={};protocol={};rounds={};lambda={};nu={};engine={:?};reduce={};\
             trials={};scenario={}",
            links.join(","),
            self.players,
            self.protocol,
            self.rounds,
            self.lambda.to_bits(),
            self.use_nu,
            self.engine,
            self.reduce.map_or("none", ReduceMode::name),
            self.trials,
            self.scenario_digest(),
        )
    }

    /// The scenario schedule's digest, or `none` — the value every
    /// digest/banner/header renders so stationary and shocked runs are
    /// distinguishable (and differently-shocked shard sets unmergeable).
    fn scenario_digest(&self) -> &str {
        self.scenario.as_ref().map_or("none", |s| s.digest.as_str())
    }

    fn engine_name(&self) -> &'static str {
        match self.engine {
            EngineKind::Aggregate => "aggregate",
            EngineKind::PlayerLevel => "player",
        }
    }

    /// The one-line reproducibility header `run` and `shard` print before
    /// any numbers: rng mode, base seed, and engine (plus the sweep shape),
    /// so every reported figure is reconstructible from this line alone.
    fn repro_header(&self) -> String {
        format!(
            "# repro: rng={} seed={} engine={} trials={} rounds={} scenario={}",
            self.rng.name(),
            self.seed,
            self.engine_name(),
            self.trials,
            self.rounds,
            self.scenario_digest(),
        )
    }
}

/// Look up one `key=value` entry of a shard header's config digest.
fn config_value<'a>(config: &'a str, key: &str) -> Option<&'a str> {
    config.split(';').find_map(|kv| kv.strip_prefix(key)?.strip_prefix('='))
}

fn params(game: &CongestionGame) -> Result<(), String> {
    let p = game.params();
    println!("links: {}, players: {}", game.num_resources(), game.total_players());
    println!("elasticity bound d   = {}", p.d);
    println!("slope bound ν        = {}", p.nu);
    println!("max slope β          = {}", p.beta);
    println!("min latency ℓ_min    = {}", p.ell_min);
    println!("protocol damping λ/d = λ/{}", p.damping());
    Ok(())
}

fn optimum(game: &CongestionGame) -> Result<(), String> {
    let ls = LinearSingleton::analyze(game).map_err(|e| e.to_string())?;
    println!("A_Γ = {:.6}", ls.a_gamma());
    println!("fractional optimum average latency n/A_Γ = {:.6}", ls.fractional_optimum_cost());
    for e in 0..game.num_resources() {
        println!(
            "  link {e}: a = {}, fractional load {:.2}{}",
            ls.coefficients()[e],
            ls.fractional_load(e),
            if ls.is_useless(e) { "  (useless)" } else { "" }
        );
    }
    Ok(())
}

/// The random start state every `run`/`shard` invocation with the same
/// `--seed` derives (shards must agree on it exactly).
fn start_state(game: &CongestionGame, opts: &Options) -> Result<State, String> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(opts.seed);
    let mut counts = vec![0u64; game.num_strategies()];
    for _ in 0..game.total_players() {
        use rand::Rng;
        counts[rng.gen_range(0..game.num_strategies())] += 1;
    }
    State::from_counts(game, counts).map_err(|e| e.to_string())
}

/// The stop rule every `run`/`shard` invocation uses.
fn stop_spec(opts: &Options) -> StopSpec {
    StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(opts.rounds)])
        .with_check_every(4)
}

fn simulate(game: &CongestionGame, opts: &Options) -> Result<(), String> {
    println!("{}", opts.repro_header());
    // Random start, then run. In xoshiro mode the single-run stream is the
    // historical `SmallRng::seed_from_u64(--seed)`; counter mode runs as
    // trial 0 of the keyed sweep.
    let mut rng = match opts.rng {
        RngMode::Xoshiro => {
            DrawStream::from_small_rng(rand::rngs::SmallRng::seed_from_u64(opts.seed))
        }
        RngMode::Counter => DrawStream::for_trial(RngMode::Counter, opts.seed, 0),
    };
    let state = start_state(game, opts)?;
    println!(
        "start: Φ = {:.3}, L_av = {:.4}, loads {:?}",
        potential(game, &state),
        average_latency(game, &state),
        state.loads()
    );
    let stop = stop_spec(opts);
    if opts.trials > 1 || opts.reduce.is_some() {
        if opts.shock_csv.is_some() {
            return Err("--shock-csv analyzes a single trajectory; drop --trials/--reduce \
                        (ensembles summarize via --reduce instead)"
                .into());
        }
        return simulate_ensemble(game, opts, state, &stop);
    }
    let mut sim = Simulation::new(game, opts.protocol()?, state)
        .map_err(|e| e.to_string())?
        .with_engine(opts.engine);
    if let Some(sc) = &opts.scenario {
        sim = sim.with_hook(Box::new(sc.cursor()));
    }
    if opts.shock_csv.is_some() {
        // Re-convergence is scored on the full-resolution trajectory.
        sim = sim.with_recording(RecordConfig::every(1));
    }
    let mut series = RecordSeries::new();
    let summary = sim.run_observed(&stop, &mut rng, &mut series).map_err(|e| e.to_string())?;
    println!(
        "after {} rounds ({:?}): Φ = {:.3}, L_av = {:.4}, loads {:?}",
        summary.rounds,
        summary.reason,
        sim.potential(),
        average_latency(game, sim.state()),
        sim.state().loads()
    );
    if let Some(path) = &opts.shock_csv {
        use congames::dynamics::Observer as _;
        let records = series.finish(&summary);
        let shocks = shock_recovery(&records, SHOCK_EPSILON);
        shock_recovery_csv(&shocks)
            .write_to(path)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!(
            "wrote re-convergence summary for {} shocks (ε = {SHOCK_EPSILON}) to {path}",
            shocks.len()
        );
    }
    Ok(())
}

/// Record cadence for the `mean` reduction: keeps the per-round table
/// ≲ 64 indices however long the run budget is.
fn mean_cadence(rounds: u64) -> u64 {
    (rounds / 64).max(1)
}

/// The `mean` reducer: per-round statistics over on-cadence records. Each
/// trial's forced stop record can land off the cadence, which would blend
/// different round numbers into one index — filter to on-cadence records
/// so every reduced row averages one exact round across trials.
fn mean_reducer(
    cadence: u64,
) -> MapItem<Vec<RoundRecord>, impl Fn(Vec<RoundRecord>) -> Vec<RoundRecord> + Clone, PerRoundStats>
{
    MapItem::new(
        move |records: Vec<RoundRecord>| {
            records.into_iter().filter(|r| r.round % cadence == 0).collect()
        },
        PerRoundStats::new(),
    )
}

fn summary_rounds(s: RunSummary) -> f64 {
    s.rounds as f64
}

fn summary_potential(s: RunSummary) -> f64 {
    s.potential
}

/// The `quantiles` reducer: convergence-round and final-potential sketches.
type QuantilesReducer = (
    MapItem<RunSummary, fn(RunSummary) -> f64, ScalarStats>,
    MapItem<RunSummary, fn(RunSummary) -> f64, ScalarStats>,
);

fn quantiles_reducer() -> QuantilesReducer {
    (
        MapItem::new(summary_rounds as fn(RunSummary) -> f64, ScalarStats::new()),
        MapItem::new(summary_potential as fn(RunSummary) -> f64, ScalarStats::new()),
    )
}

fn print_mean_report(stats: &PerRoundStats, cadence: u64) {
    println!(
        "  per-round means over {} trials (recorded every {} rounds):",
        stats.trials(),
        cadence
    );
    println!("  {:>8}  {:>14}  {:>12}  {:>10}", "round", "mean Φ ± ci95", "mean L_av", "moves");
    let step = (stats.len() / 16).max(1);
    for r in stats.rounds().iter().step_by(step) {
        println!(
            "  {:>8.0}  {:>9.2} ± {:<6.2} {:>10.4}  {:>10.2}",
            r.round.mean(),
            r.potential.mean(),
            r.potential.ci95(),
            r.l_av.mean(),
            r.migrations.mean(),
        );
    }
}

fn print_quantiles_report(rounds: &ScalarStats, potential: &ScalarStats) {
    println!("  {:>10}  {:>12}  {:>12}", "quantile", "rounds", "final Φ");
    for q in [0.10, 0.25, 0.50, 0.75, 0.90] {
        println!(
            "  {:>10}  {:>12.1}  {:>12.3}",
            format!("q{:02.0}", q * 100.0),
            rounds.quantile(q),
            potential.quantile(q),
        );
    }
    println!(
        "  rounds mean {:.1} ± {:.1}, range [{:.0}, {:.0}]",
        rounds.mean(),
        rounds.ci95(),
        rounds.min(),
        rounds.max()
    );
    // One bad latency must not abort a sweep, but it must not vanish
    // either: surface the tally whenever anything non-finite was absorbed.
    let bad = rounds.non_finite() + potential.non_finite();
    if bad > 0 {
        println!("  non-finite samples excluded from the quantiles: {bad}");
    }
}

fn print_convergence_report(hist: &ConvergenceHistogram) {
    for (reason, stats) in hist.observed() {
        println!(
            "  {:?}: {} trials, rounds mean {:.1} (min {:.0}, max {:.0})",
            reason,
            stats.count(),
            stats.rounds.mean(),
            stats.envelope.min(),
            stats.envelope.max()
        );
        for (k, &count) in stats.buckets().iter().enumerate().filter(|(_, &c)| c > 0) {
            let (lo, hi) = ReasonStats::bucket_range(k);
            println!("      rounds {:>6}–{:<6} {:>6} trials", lo, hi - 1, count);
        }
    }
}

/// Run `--trials` independent replicas in parallel and print per-ensemble
/// summaries; the numbers are identical for every `--threads` value.
fn simulate_ensemble(
    game: &CongestionGame,
    opts: &Options,
    start: State,
    stop: &StopSpec,
) -> Result<(), String> {
    let mut ensemble = Ensemble::new(game, opts.protocol()?, start)
        .map_err(|e| e.to_string())?
        .engine(opts.engine)
        .rng_mode(opts.rng)
        .trials(opts.trials)
        .base_seed(opts.seed)
        .threads(opts.threads);
    if let Some(w) = opts.lanes {
        ensemble = ensemble.lane_width(w);
    }
    if let Some(sc) = &opts.scenario {
        let schedule = Arc::clone(&sc.schedule);
        ensemble =
            ensemble.with_round_hook(move || Box::new(ScheduleCursor::new(Arc::clone(&schedule))));
    }
    println!("ensemble of {} trials ({} threads, seed {}):", opts.trials, opts.threads, opts.seed);
    match opts.reduce {
        None => {
            let results = ensemble
                .run_with(stop, |sim, out| {
                    (out.rounds as f64, out.potential, average_latency(game, sim.state()))
                })
                .map_err(|e| e.to_string())?;
            let rounds: Vec<f64> = results.iter().map(|r| r.0).collect();
            let potentials: Vec<f64> = results.iter().map(|r| r.1).collect();
            let latencies: Vec<f64> = results.iter().map(|r| r.2).collect();
            let (r, p, l) =
                (Summary::of(&rounds), Summary::of(&potentials), Summary::of(&latencies));
            println!("  rounds: mean {:.1} (min {:.0}, max {:.0})", r.mean(), r.min(), r.max());
            println!("  final Φ: mean {:.3} ± {:.3}", p.mean(), p.sd());
            println!("  final L_av: mean {:.4} ± {:.4}", l.mean(), l.sd());
        }
        Some(ReduceMode::Mean) => {
            let cadence = mean_cadence(opts.rounds);
            let stats = ensemble
                .recording(RecordConfig::every(cadence))
                .run_reduced(stop, |_trial| RecordSeries::new(), mean_reducer(cadence))
                .map_err(|e| e.to_string())?
                .into_inner();
            print_mean_report(&stats, cadence);
        }
        Some(ReduceMode::Quantiles) => {
            let (rounds, potential) = ensemble
                .run_reduced(stop, |_trial| FinalSummary, quantiles_reducer())
                .map_err(|e| e.to_string())?;
            print_quantiles_report(rounds.inner(), potential.inner());
        }
        Some(ReduceMode::Convergence) => {
            let hist = ensemble
                .run_reduced(stop, |_trial| FinalSummary, ConvergenceHistogram::new())
                .map_err(|e| e.to_string())?;
            print_convergence_report(&hist);
        }
    }
    Ok(())
}

/// `congames shard`: run one slice of a `--reduce` sweep and write its
/// reduction-tree leaves (one partial per 32-trial block) to `--out`.
fn shard(game: &CongestionGame, opts: &Options) -> Result<(), String> {
    let mode = opts.reduce.ok_or("shard needs --reduce (the partial file carries a reducer)")?;
    let shard = opts.shard.ok_or("shard needs --shard")?;
    let num_shards = opts.num_shards.ok_or("shard needs --num-shards")?;
    let out = opts.out.as_deref().ok_or("shard needs --out")?;
    if shard >= num_shards {
        return Err(format!("--shard {shard} is out of range for --num-shards {num_shards}"));
    }
    println!("{}", opts.repro_header());
    let start = start_state(game, opts)?;
    let stop = stop_spec(opts);
    let mut ensemble = Ensemble::new(game, opts.protocol()?, start)
        .map_err(|e| e.to_string())?
        .engine(opts.engine)
        .rng_mode(opts.rng)
        .trials(opts.trials)
        .base_seed(opts.seed)
        .threads(opts.threads);
    if let Some(w) = opts.lanes {
        ensemble = ensemble.lane_width(w);
    }
    if let Some(sc) = &opts.scenario {
        let schedule = Arc::clone(&sc.schedule);
        ensemble =
            ensemble.with_round_hook(move || Box::new(ScheduleCursor::new(Arc::clone(&schedule))));
    }
    let range = ensemble.shard_trials(shard, num_shards);
    let header = ShardHeader {
        base_seed: opts.seed,
        trials: opts.trials as u64,
        trial_lo: range.start as u64,
        trial_hi: range.end as u64,
        shard: shard as u32,
        num_shards: num_shards as u32,
        rng_mode: opts.rng,
        reducer_id: String::new(), // filled in per reducer below
        config: opts.config_digest(),
    };
    let bytes = match mode {
        ReduceMode::Mean => {
            let cadence = mean_cadence(opts.rounds);
            let reducer = mean_reducer(cadence);
            let blocks = ensemble
                .recording(RecordConfig::every(cadence))
                .run_reduced_shard(shard, num_shards, &stop, |_t| RecordSeries::new(), &reducer)
                .map_err(|e| e.to_string())?;
            encode_shard_file(&ShardHeader { reducer_id: reducer.wire_id(), ..header }, &blocks)
        }
        ReduceMode::Quantiles => {
            let reducer = quantiles_reducer();
            let blocks = ensemble
                .run_reduced_shard(shard, num_shards, &stop, |_t| FinalSummary, &reducer)
                .map_err(|e| e.to_string())?;
            encode_shard_file(&ShardHeader { reducer_id: reducer.wire_id(), ..header }, &blocks)
        }
        ReduceMode::Convergence => {
            let reducer = ConvergenceHistogram::new();
            let blocks = ensemble
                .run_reduced_shard(shard, num_shards, &stop, |_t| FinalSummary, &reducer)
                .map_err(|e| e.to_string())?;
            encode_shard_file(&ShardHeader { reducer_id: reducer.wire_id(), ..header }, &blocks)
        }
    };
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "wrote shard {}/{}: trials [{}, {}) of {}, {} bytes to {}",
        shard,
        num_shards,
        range.start,
        range.end,
        opts.trials,
        bytes.len(),
        out
    );
    Ok(())
}

/// `congames merge`: validate and merge every shard's partial file (given
/// in shard order) and print the same report `run --reduce` prints.
fn merge(args: &[String]) -> Result<(), String> {
    let mut csv_out: Option<String> = None;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => csv_out = Some(it.next().ok_or("--csv needs a value")?.clone()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        return Err("merge needs the shard files, in shard order".into());
    }
    let files: Vec<Vec<u8>> = paths
        .iter()
        .map(|p| std::fs::read(p).map_err(|e| format!("cannot read `{p}`: {e}")))
        .collect::<Result<_, _>>()?;
    let headers: Vec<ShardHeader> = files
        .iter()
        .zip(&paths)
        .map(|(bytes, p)| decode_shard_header(bytes).map_err(|e| format!("{p}: {e}")))
        .collect::<Result<_, _>>()?;
    validate_shard_sequence(&headers).map_err(|e| e.to_string())?;
    let first = &headers[0];
    let mode = ReduceMode::from_name(
        config_value(&first.config, "reduce")
            .ok_or("shard file config carries no `reduce` entry")?,
    )?;
    let rounds: u64 = config_value(&first.config, "rounds")
        .and_then(|v| v.parse().ok())
        .ok_or("shard file config carries no `rounds` entry")?;
    // Banner only after every payload validated and merged — a failing
    // merge must not open with a success-looking line.
    let banner = || {
        println!(
            "merged {} shards ({} trials, seed {}, rng {}, scenario {}):",
            headers.len(),
            first.trials,
            first.base_seed,
            first.rng_mode,
            config_value(&first.config, "scenario").unwrap_or("none"),
        )
    };
    // Decode every shard's leaves and replay the single-process merge
    // chain in global block order — bit-identical to `run_reduced`.
    fn merge_files<R: WireReduce>(
        prototype: &R,
        files: &[Vec<u8>],
        paths: &[&String],
    ) -> Result<R, String> {
        let mut leaves = Vec::new();
        for (bytes, p) in files.iter().zip(paths) {
            let (_, blocks) =
                decode_shard_file(prototype, bytes).map_err(|e| format!("{p}: {e}"))?;
            leaves.extend(blocks);
        }
        Ok(merge_partials(prototype.identity(), leaves))
    }
    match mode {
        ReduceMode::Mean => {
            let cadence = mean_cadence(rounds);
            let stats = merge_files(&mean_reducer(cadence), &files, &paths)?.into_inner();
            banner();
            print_mean_report(&stats, cadence);
            if let Some(path) = csv_out {
                per_round_stats_csv(&stats)
                    .write_to(&path)
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            }
        }
        ReduceMode::Quantiles => {
            let (rounds, potential) = merge_files(&quantiles_reducer(), &files, &paths)?;
            banner();
            print_quantiles_report(rounds.inner(), potential.inner());
            if csv_out.is_some() {
                return Err("--csv is only supported for mean/convergence merges".into());
            }
        }
        ReduceMode::Convergence => {
            let hist = merge_files(&ConvergenceHistogram::new(), &files, &paths)?;
            banner();
            print_convergence_report(&hist);
            if let Some(path) = csv_out {
                convergence_csv(&hist)
                    .write_to(&path)
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(extra: &[&str]) -> Result<Options, String> {
        let mut args: Vec<String> =
            ["--links", "1,2", "--players", "10"].iter().map(|s| s.to_string()).collect();
        args.extend(extra.iter().map(|s| s.to_string()));
        Options::parse(&args)
    }

    #[test]
    fn reduce_with_a_single_trial_is_allowed() {
        // Reduction is defined for every trial count; `--trials 1` (the
        // default) must not be rejected.
        let o = opts(&["--reduce", "quantiles"]).unwrap();
        assert_eq!(o.trials, 1);
        assert_eq!(o.reduce, Some(ReduceMode::Quantiles));
        let o = opts(&["--reduce", "mean", "--trials", "1"]).unwrap();
        assert_eq!(o.reduce, Some(ReduceMode::Mean));
    }

    #[test]
    fn zero_trials_error_mentions_the_identity_reduction() {
        let err = opts(&["--trials", "0"]).unwrap_err();
        assert!(err.contains("identity reduction"), "{err}");
    }

    #[test]
    fn unknown_reduction_is_rejected() {
        let err = opts(&["--reduce", "median"]).unwrap_err();
        assert!(err.contains("unknown reduction"), "{err}");
    }

    #[test]
    fn shard_flags_parse() {
        let o = opts(&[
            "--trials",
            "96",
            "--reduce",
            "convergence",
            "--shard",
            "1",
            "--num-shards",
            "3",
            "--out",
            "part1.cgshard",
        ])
        .unwrap();
        assert_eq!(o.shard, Some(1));
        assert_eq!(o.num_shards, Some(3));
        assert_eq!(o.out.as_deref(), Some("part1.cgshard"));
        assert!(opts(&["--num-shards", "0"]).is_err());
    }

    #[test]
    fn rng_flag_parses_and_defaults_to_xoshiro() {
        assert_eq!(opts(&[]).unwrap().rng, RngMode::Xoshiro);
        assert_eq!(opts(&["--rng", "counter"]).unwrap().rng, RngMode::Counter);
        assert_eq!(opts(&["--rng", "xoshiro"]).unwrap().rng, RngMode::Xoshiro);
        let err = opts(&["--rng", "philox"]).unwrap_err();
        assert!(err.contains("unknown rng mode"), "{err}");
    }

    #[test]
    fn lanes_flag_parses_and_is_validated() {
        let o = opts(&["--rng", "counter", "--lanes", "32", "--reduce", "quantiles"]).unwrap();
        assert_eq!(o.lanes, Some(32));
        // Width must be a supported lane count.
        let err = opts(&["--rng", "counter", "--lanes", "12", "--reduce", "mean"]).unwrap_err();
        assert!(err.contains("8, 16, 32, 64"), "{err}");
        // The lane kernel replays counter streams; xoshiro (default) is a
        // precise, explanatory error.
        let err = opts(&["--lanes", "8", "--reduce", "mean"]).unwrap_err();
        assert!(err.contains("--lanes requires --rng counter"), "{err}");
        let err = opts(&["--rng", "xoshiro", "--lanes", "8", "--reduce", "mean"]).unwrap_err();
        assert!(err.contains("draw-order serial"), "{err}");
        // Lane groups only stream through the reduced paths.
        let err = opts(&["--rng", "counter", "--lanes", "8"]).unwrap_err();
        assert!(err.contains("--lanes needs --reduce"), "{err}");
        // Aggregate engine only.
        let err =
            opts(&["--rng", "counter", "--lanes", "8", "--reduce", "mean", "--engine", "player"])
                .unwrap_err();
        assert!(err.contains("--engine aggregate"), "{err}");
    }

    #[test]
    fn config_digest_excludes_the_lane_width() {
        // Lane-mode shards must merge with scalar shards of the same sweep:
        // the digest (like threads) must not see the lane width.
        let base = opts(&["--rng", "counter", "--trials", "96", "--reduce", "mean"]).unwrap();
        let laned =
            opts(&["--rng", "counter", "--trials", "96", "--reduce", "mean", "--lanes", "32"])
                .unwrap();
        assert_eq!(base.config_digest(), laned.config_digest());
    }

    #[test]
    fn repro_header_reconstructs_the_run() {
        // The header must carry the rng mode, base seed, and engine — the
        // complete recipe for every stream the run draws from.
        let o = opts(&["--rng", "counter", "--seed", "7", "--engine", "player", "--trials", "8"])
            .unwrap();
        assert_eq!(
            o.repro_header(),
            "# repro: rng=counter seed=7 engine=player trials=8 rounds=1000 scenario=none"
        );
        let o = opts(&[]).unwrap();
        assert_eq!(
            o.repro_header(),
            "# repro: rng=xoshiro seed=42 engine=aggregate trials=1 rounds=1000 scenario=none"
        );
    }

    #[test]
    fn config_digest_round_trips_through_lookup() {
        let o = opts(&["--trials", "96", "--reduce", "mean", "--rounds", "200"]).unwrap();
        let cfg = o.config_digest();
        assert_eq!(config_value(&cfg, "reduce"), Some("mean"));
        assert_eq!(config_value(&cfg, "rounds"), Some("200"));
        assert_eq!(config_value(&cfg, "trials"), Some("96"));
        assert_eq!(config_value(&cfg, "scenario"), Some("none"));
        assert_eq!(config_value(&cfg, "missing"), None);
    }

    /// Write a trace to a unique temp file and return its path.
    fn temp_trace(name: &str, text: &str) -> String {
        let path = std::env::temp_dir().join(format!("congames-cli-test-{name}.trace"));
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn scenario_flag_loads_and_digests_the_trace() {
        let path = temp_trace("digest", "# congames-trace v1\n100,scale_latency,0,4\n");
        let o = opts(&["--scenario", &path]).unwrap();
        let digest = o.scenario_digest().to_string();
        assert_eq!(digest.len(), 16, "digest is 16 hex chars: {digest}");
        assert!(digest.chars().all(|c| c.is_ascii_hexdigit()));
        // Every reproducibility surface carries the digest.
        assert!(o.repro_header().ends_with(&format!("scenario={digest}")), "{}", o.repro_header());
        assert_eq!(config_value(&o.config_digest(), "scenario"), Some(digest.as_str()));
        // A different schedule yields a different digest (so mixed-scenario
        // shard sets hit the config-mismatch rejection).
        let other = temp_trace("digest-other", "# congames-trace v1\n200,scale_latency,0,4\n");
        let o2 = opts(&["--scenario", &other]).unwrap();
        assert_ne!(o2.scenario_digest(), digest);
    }

    #[test]
    fn malformed_scenario_is_rejected_with_line_context() {
        let path = temp_trace("bad", "# congames-trace v1\n100,scale_latency,0\n");
        let err = opts(&["--scenario", &path]).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = opts(&["--scenario", "/nonexistent/x.trace"]).unwrap_err();
        assert!(err.contains("cannot read scenario"), "{err}");
    }

    #[test]
    fn shock_csv_requires_a_scenario() {
        let err = opts(&["--shock-csv", "out.csv"]).unwrap_err();
        assert!(err.contains("--shock-csv needs --scenario"), "{err}");
    }
}
