//! A small CLI for poking at congestion-game dynamics without writing code.
//!
//! ```bash
//! congames params  --links 1,2,3 --players 100
//! congames run     --links 1,2,3 --players 1000 --protocol imitation --rounds 200
//! congames optimum --links 1,2,3 --players 100
//! ```
//!
//! Links are linear latencies `ℓ(x) = a·x` given by their coefficients; the
//! CLI covers the singleton-game slice of the library (the API covers far
//! more — see the examples).

use congames::analysis::Summary;
use congames::dynamics::{
    ConvergenceHistogram, EngineKind, Ensemble, ExplorationProtocol, FinalSummary,
    ImitationProtocol, MapItem, NuRule, PerRoundStats, Protocol, ReasonStats, RecordSeries,
    RunSummary, ScalarStats, Simulation, StopCondition, StopSpec,
};
use congames::model::{average_latency, potential, LinearSingleton};
use congames::RecordConfig;
use congames::{Affine, CongestionGame, State};
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  congames params  --links a1,a2,... --players N
  congames optimum --links a1,a2,... --players N
  congames run     --links a1,a2,... --players N [--protocol imitation|exploration|combined]
                   [--rounds R] [--lambda L] [--seed S] [--no-nu]
                   [--trials T] [--threads K] [--engine aggregate|player]
                   [--reduce mean|quantiles|convergence]

links are linear latencies l(x) = a*x, comma-separated coefficients.
with --trials > 1 an ensemble of T independent replicas runs in parallel
(results are identical for every --threads value) and a summary is printed.
--reduce streams the ensemble through an online reducer (memory independent
of the trial count): `mean` prints the per-round mean potential with 95%
confidence bands, `quantiles` the convergence-round and final-potential
quantiles, `convergence` a stop-reason histogram.";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?.as_str();
    let opts = Options::parse(&args[1..])?;
    let game = opts.game()?;
    match cmd {
        "params" => params(&game),
        "optimum" => optimum(&game),
        "run" => simulate(&game, &opts),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Parsed command-line options (defaults filled in).
struct Options {
    links: Vec<f64>,
    players: u64,
    protocol: String,
    rounds: u64,
    lambda: f64,
    seed: u64,
    use_nu: bool,
    trials: usize,
    threads: usize,
    engine: EngineKind,
    reduce: Option<ReduceMode>,
}

/// Which streaming reduction `--reduce` asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceMode {
    Mean,
    Quantiles,
    Convergence,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            links: vec![],
            players: 0,
            protocol: "imitation".into(),
            rounds: 1000,
            lambda: 0.25,
            seed: 42,
            use_nu: true,
            trials: 1,
            threads: Ensemble::default_threads(),
            engine: EngineKind::Aggregate,
            reduce: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--links" => {
                    let v = it.next().ok_or("--links needs a value")?;
                    o.links = v
                        .split(',')
                        .map(|s| {
                            s.trim().parse::<f64>().map_err(|e| format!("bad link `{s}`: {e}"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--players" => {
                    o.players = it
                        .next()
                        .ok_or("--players needs a value")?
                        .parse()
                        .map_err(|e| format!("bad player count: {e}"))?;
                }
                "--protocol" => {
                    o.protocol = it.next().ok_or("--protocol needs a value")?.clone();
                }
                "--rounds" => {
                    o.rounds = it
                        .next()
                        .ok_or("--rounds needs a value")?
                        .parse()
                        .map_err(|e| format!("bad round count: {e}"))?;
                }
                "--lambda" => {
                    o.lambda = it
                        .next()
                        .ok_or("--lambda needs a value")?
                        .parse()
                        .map_err(|e| format!("bad lambda: {e}"))?;
                }
                "--seed" => {
                    o.seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("bad seed: {e}"))?;
                }
                "--no-nu" => o.use_nu = false,
                "--trials" => {
                    o.trials = it
                        .next()
                        .ok_or("--trials needs a value")?
                        .parse()
                        .map_err(|e| format!("bad trial count: {e}"))?;
                    if o.trials == 0 {
                        return Err("--trials must be positive".into());
                    }
                }
                "--threads" => {
                    o.threads = it
                        .next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|e| format!("bad thread count: {e}"))?;
                    if o.threads == 0 {
                        return Err("--threads must be positive".into());
                    }
                }
                "--engine" => {
                    o.engine = match it.next().ok_or("--engine needs a value")?.as_str() {
                        "aggregate" => EngineKind::Aggregate,
                        "player" | "player-level" => EngineKind::PlayerLevel,
                        other => return Err(format!("unknown engine `{other}`")),
                    };
                }
                "--reduce" => {
                    o.reduce = Some(match it.next().ok_or("--reduce needs a value")?.as_str() {
                        "mean" => ReduceMode::Mean,
                        "quantiles" => ReduceMode::Quantiles,
                        "convergence" => ReduceMode::Convergence,
                        other => return Err(format!("unknown reduction `{other}`")),
                    });
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if o.links.is_empty() {
            return Err("--links is required".into());
        }
        if o.players == 0 {
            return Err("--players is required and must be positive".into());
        }
        if o.reduce.is_some() && o.trials <= 1 {
            return Err("--reduce summarizes an ensemble; pass --trials > 1".into());
        }
        Ok(o)
    }

    fn game(&self) -> Result<CongestionGame, String> {
        if self.links.iter().any(|a| !a.is_finite() || *a <= 0.0) {
            return Err("link coefficients must be positive".into());
        }
        CongestionGame::singleton(
            self.links.iter().map(|&a| Affine::linear(a).into()).collect(),
            self.players,
        )
        .map_err(|e| e.to_string())
    }

    fn protocol(&self) -> Result<Protocol, String> {
        let imitation = {
            let p = ImitationProtocol::new(self.lambda).map_err(|e| e.to_string())?;
            if self.use_nu {
                p
            } else {
                p.with_nu_rule(NuRule::None)
            }
        };
        match self.protocol.as_str() {
            "imitation" => Ok(imitation.into()),
            "exploration" => {
                Ok(ExplorationProtocol::new(self.lambda).map_err(|e| e.to_string())?.into())
            }
            "combined" => Protocol::combined(
                imitation,
                ExplorationProtocol::new(self.lambda).map_err(|e| e.to_string())?,
                0.5,
            )
            .map_err(|e| e.to_string()),
            other => Err(format!("unknown protocol `{other}`")),
        }
    }
}

fn params(game: &CongestionGame) -> Result<(), String> {
    let p = game.params();
    println!("links: {}, players: {}", game.num_resources(), game.total_players());
    println!("elasticity bound d   = {}", p.d);
    println!("slope bound ν        = {}", p.nu);
    println!("max slope β          = {}", p.beta);
    println!("min latency ℓ_min    = {}", p.ell_min);
    println!("protocol damping λ/d = λ/{}", p.damping());
    Ok(())
}

fn optimum(game: &CongestionGame) -> Result<(), String> {
    let ls = LinearSingleton::analyze(game).map_err(|e| e.to_string())?;
    println!("A_Γ = {:.6}", ls.a_gamma());
    println!("fractional optimum average latency n/A_Γ = {:.6}", ls.fractional_optimum_cost());
    for e in 0..game.num_resources() {
        println!(
            "  link {e}: a = {}, fractional load {:.2}{}",
            ls.coefficients()[e],
            ls.fractional_load(e),
            if ls.is_useless(e) { "  (useless)" } else { "" }
        );
    }
    Ok(())
}

fn simulate(game: &CongestionGame, opts: &Options) -> Result<(), String> {
    // Random start, then run with per-decade progress lines.
    let mut rng = rand::rngs::SmallRng::seed_from_u64(opts.seed);
    let mut counts = vec![0u64; game.num_strategies()];
    for _ in 0..game.total_players() {
        use rand::Rng;
        counts[rng.gen_range(0..game.num_strategies())] += 1;
    }
    let state = State::from_counts(game, counts).map_err(|e| e.to_string())?;
    println!(
        "start: Φ = {:.3}, L_av = {:.4}, loads {:?}",
        potential(game, &state),
        average_latency(game, &state),
        state.loads()
    );
    let stop =
        StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(opts.rounds)])
            .with_check_every(4);
    if opts.trials > 1 {
        return simulate_ensemble(game, opts, state, &stop);
    }
    let mut sim = Simulation::new(game, opts.protocol()?, state)
        .map_err(|e| e.to_string())?
        .with_engine(opts.engine);
    let out = sim.run(&stop, &mut rng).map_err(|e| e.to_string())?;
    println!(
        "after {} rounds ({:?}): Φ = {:.3}, L_av = {:.4}, loads {:?}",
        out.rounds,
        out.reason,
        sim.potential(),
        average_latency(game, sim.state()),
        sim.state().loads()
    );
    Ok(())
}

/// Run `--trials` independent replicas in parallel and print per-ensemble
/// summaries; the numbers are identical for every `--threads` value.
fn simulate_ensemble(
    game: &CongestionGame,
    opts: &Options,
    start: State,
    stop: &StopSpec,
) -> Result<(), String> {
    let ensemble = Ensemble::new(game, opts.protocol()?, start)
        .map_err(|e| e.to_string())?
        .engine(opts.engine)
        .trials(opts.trials)
        .base_seed(opts.seed)
        .threads(opts.threads);
    println!("ensemble of {} trials ({} threads, seed {}):", opts.trials, opts.threads, opts.seed);
    match opts.reduce {
        None => {
            let results = ensemble
                .run_with(stop, |sim, out| {
                    (out.rounds as f64, out.potential, average_latency(game, sim.state()))
                })
                .map_err(|e| e.to_string())?;
            let rounds: Vec<f64> = results.iter().map(|r| r.0).collect();
            let potentials: Vec<f64> = results.iter().map(|r| r.1).collect();
            let latencies: Vec<f64> = results.iter().map(|r| r.2).collect();
            let (r, p, l) =
                (Summary::of(&rounds), Summary::of(&potentials), Summary::of(&latencies));
            println!("  rounds: mean {:.1} (min {:.0}, max {:.0})", r.mean(), r.min(), r.max());
            println!("  final Φ: mean {:.3} ± {:.3}", p.mean(), p.sd());
            println!("  final L_av: mean {:.4} ± {:.4}", l.mean(), l.sd());
        }
        Some(ReduceMode::Mean) => {
            // Stream per-round statistics: record on a cadence that keeps
            // the table ≲ 64 indices however long the run budget is. Each
            // trial's forced stop record can land off the cadence, which
            // would blend different round numbers into one index — filter
            // to on-cadence records so every printed row averages one
            // exact round across trials.
            let cadence = (opts.rounds / 64).max(1);
            let stats = ensemble
                .recording(RecordConfig::every(cadence))
                .run_reduced(
                    stop,
                    |_trial| RecordSeries::new(),
                    MapItem::new(
                        move |records: Vec<congames::dynamics::RoundRecord>| {
                            records.into_iter().filter(|r| r.round % cadence == 0).collect()
                        },
                        PerRoundStats::new(),
                    ),
                )
                .map_err(|e| e.to_string())?
                .into_inner();
            println!(
                "  per-round means over {} trials (recorded every {} rounds):",
                stats.trials(),
                cadence
            );
            println!(
                "  {:>8}  {:>14}  {:>12}  {:>10}",
                "round", "mean Φ ± ci95", "mean L_av", "moves"
            );
            let step = (stats.len() / 16).max(1);
            for r in stats.rounds().iter().step_by(step) {
                println!(
                    "  {:>8.0}  {:>9.2} ± {:<6.2} {:>10.4}  {:>10.2}",
                    r.round.mean(),
                    r.potential.mean(),
                    r.potential.ci95(),
                    r.l_av.mean(),
                    r.migrations.mean(),
                );
            }
        }
        Some(ReduceMode::Quantiles) => {
            let (rounds, potential) = ensemble
                .run_reduced(
                    stop,
                    |_trial| FinalSummary,
                    (
                        MapItem::new(|s: RunSummary| s.rounds as f64, ScalarStats::new()),
                        MapItem::new(|s: RunSummary| s.potential, ScalarStats::new()),
                    ),
                )
                .map_err(|e| e.to_string())?;
            let (rounds, potential) = (rounds.into_inner(), potential.into_inner());
            println!("  {:>10}  {:>12}  {:>12}", "quantile", "rounds", "final Φ");
            for q in [0.10, 0.25, 0.50, 0.75, 0.90] {
                println!(
                    "  {:>10}  {:>12.1}  {:>12.3}",
                    format!("q{:02.0}", q * 100.0),
                    rounds.quantile(q),
                    potential.quantile(q),
                );
            }
            println!(
                "  rounds mean {:.1} ± {:.1}, range [{:.0}, {:.0}]",
                rounds.mean(),
                rounds.ci95(),
                rounds.min(),
                rounds.max()
            );
        }
        Some(ReduceMode::Convergence) => {
            let hist = ensemble
                .run_reduced(stop, |_trial| FinalSummary, ConvergenceHistogram::new())
                .map_err(|e| e.to_string())?;
            for (reason, stats) in hist.observed() {
                println!(
                    "  {:?}: {} trials, rounds mean {:.1} (min {:.0}, max {:.0})",
                    reason,
                    stats.count(),
                    stats.rounds.mean(),
                    stats.envelope.min(),
                    stats.envelope.max()
                );
                for (k, &count) in stats.buckets().iter().enumerate().filter(|(_, &c)| c > 0) {
                    let (lo, hi) = ReasonStats::bucket_range(k);
                    println!("      rounds {:>6}–{:<6} {:>6} trials", lo, hi - 1, count);
                }
            }
        }
    }
    Ok(())
}
