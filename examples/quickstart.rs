//! Quickstart: run the IMITATION PROTOCOL on a parallel-links game and
//! watch it reach an approximate equilibrium.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use congames::dynamics::{
    ConvergenceHistogram, Ensemble, FinalSummary, PerRoundStats, RecordSeries, StopReason,
};
use congames::{
    Affine, ApproxEquilibrium, CongestionGame, ImitationProtocol, RecordConfig, Simulation, State,
    StopCondition, StopSpec,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight parallel links with linear latencies ℓ_i(x) = (1+i)·x and
    // 10 000 players, all crammed onto the two worst links.
    let m = 8;
    let n = 10_000u64;
    let game = CongestionGame::singleton(
        (0..m).map(|i| Affine::linear(1.0 + i as f64).into()).collect(),
        n,
    )?;
    // A few scouts on every fast link, the bulk piled on the two slowest —
    // imitation can only adopt strategies that are already in use, so the
    // scouts are what lets the crowd find the fast links.
    let mut counts = vec![100u64; m];
    counts[m - 1] = (n - 600) / 2;
    counts[m - 2] = n - 600 - counts[m - 1];
    let start = State::from_counts(&game, counts)?;

    // The paper's protocol with λ = 1/4; parameters (d, ν, β, ℓ_min) are
    // derived from the game automatically.
    let protocol = ImitationProtocol::paper_default().into();
    let mut sim =
        Simulation::new(&game, protocol, start)?.with_recording(RecordConfig::every_round());
    let params = *sim.params();
    println!("game parameters: d = {}, ν = {}", params.d, params.nu);

    // Stop at a (δ=0.02, ε=0.05, ν)-equilibrium: at most 2% of players
    // deviate by more than 5% (plus ν) from the average latency.
    let eq = ApproxEquilibrium::new(0.02, 0.05, params.nu)?;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2024);
    let outcome = sim.run(
        &StopSpec::new(vec![
            StopCondition::ApproxEquilibrium(eq),
            StopCondition::MaxRounds(50_000),
        ]),
        &mut rng,
    )?;

    println!(
        "reached {:?} after {} rounds (Φ: {:.1} → {:.1})",
        outcome.reason,
        outcome.rounds,
        outcome.trajectory.records()[0].potential,
        outcome.potential,
    );
    println!("\nround   Φ          L_av     max latency  migrations");
    for r in outcome.trajectory.records().iter().step_by(5.max(outcome.rounds as usize / 12)) {
        println!(
            "{:<7} {:<10.1} {:<8.2} {:<12.2} {}",
            r.round, r.potential, r.l_av, r.max_latency, r.migrations
        );
    }
    println!("\nfinal link loads: {:?}", sim.state().loads());

    // ----- Streamed ensemble sweep ------------------------------------
    //
    // The paper's statistics live in *ensembles*, not single runs. The
    // observer/reducer API reduces a sweep online: per-trial outputs are
    // absorbed into tiny accumulators as trials finish, so memory is
    // independent of the trial count (no per-trial trajectories), and the
    // result is bit-identical for every thread count.
    let m = 8;
    let n = 1_000u64;
    let game = CongestionGame::singleton(
        (0..m).map(|i| Affine::linear(1.0 + i as f64).into()).collect(),
        n,
    )?;
    let mut counts = vec![10u64; m];
    counts[m - 1] = n - 10 * (m as u64 - 1);
    let start = State::from_counts(&game, counts)?;
    let protocol = ImitationProtocol::paper_default();
    let stop = StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(5_000)])
        .with_check_every(4);

    // Sweep 1: where do 100 000 replicas stop, and after how many rounds?
    // `FinalSummary` skips per-round recording entirely; the histogram is
    // a few hundred bytes however many trials stream through it.
    let trials = 100_000;
    let histogram = Ensemble::new(&game, protocol.into(), start.clone())?
        .trials(trials)
        .base_seed(7)
        .run_reduced(&stop, |_trial| FinalSummary, ConvergenceHistogram::new())?;
    println!("\nstreamed sweep: {} replicas", histogram.total());
    let stable = histogram.reason(StopReason::ImitationStable);
    println!(
        "imitation-stable: {} of {} trials, rounds mean {:.1} ± {:.1} (min {:.0}, max {:.0})",
        stable.count(),
        trials,
        stable.rounds.mean(),
        stable.rounds.ci95(),
        stable.envelope.min(),
        stable.envelope.max(),
    );

    // Sweep 2: the mean potential trajectory with confidence bands — the
    // per-round-index Welford reduction replaces "collect every
    // trajectory, then average".
    let stats = Ensemble::new(&game, protocol.into(), start)?
        .trials(2_000)
        .base_seed(8)
        .recording(RecordConfig::every_round())
        .run_reduced(&stop, |_trial| RecordSeries::new(), PerRoundStats::new())?;
    println!("\nround   mean Φ ± ci95        trials at index");
    for r in stats.rounds().iter().step_by((stats.len() / 8).max(1)) {
        println!(
            "{:<7.0} {:<10.1} ± {:<7.2} {}",
            r.round.mean(),
            r.potential.mean(),
            r.potential.ci95(),
            r.potential.count(),
        );
    }
    Ok(())
}
