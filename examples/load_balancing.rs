//! Decentralized load balancing on heterogeneous servers: the singleton-game
//! setting of Section 5. Compares the imitation-stable outcome against the
//! fractional optimum (the Price of Imitation, Theorem 10) and shows the
//! lost-strategy pitfall plus its Section 6 remedies.
//!
//! ```bash
//! cargo run --release --example load_balancing
//! ```

use congames::dynamics::{
    ExplorationProtocol, ImitationProtocol, Protocol, Simulation, StopCondition, StopSpec,
};
use congames::model::LinearSingleton;
use congames::State;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six servers; server i processes requests with latency a_i per unit of
    // load (smaller = faster machine).
    let speeds = [1.0, 1.25, 1.5, 2.0, 3.0, 4.0];
    let n = 6_000u64;
    let game = LinearSingleton::build_game(&speeds, n)?;
    let ls = LinearSingleton::analyze(&game)?;
    println!("fractional optimum: every server at latency {:.2}", ls.fractional_optimum_cost());
    for (e, a) in speeds.iter().enumerate() {
        println!(
            "  server {e}: a = {:.2}, optimal fractional load {:.0}",
            a,
            ls.fractional_load(e)
        );
    }

    // All requests start on the two slowest servers.
    let mut counts = vec![0u64; speeds.len()];
    counts[4] = n / 2;
    counts[5] = n - n / 2;
    let start = State::from_counts(&game, counts)?;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(11);

    // Pure imitation: converges fast, but can only use servers somebody
    // already uses — servers 0..=3 stay idle forever!
    let mut sim = Simulation::new(&game, ImitationProtocol::paper_default().into(), start.clone())?;
    let out = sim.run(
        &StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(100_000)]),
        &mut rng,
    )?;
    println!(
        "\npure imitation: {:?} after {} rounds, loads {:?}, price ratio {:.3}",
        out.reason,
        out.rounds,
        sim.state().loads(),
        ls.price_ratio(&game, sim.state()),
    );

    // The combined protocol (Section 6) explores with probability 1/2 and
    // reaches a near-optimal equilibrium using all servers.
    let combined = Protocol::combined(
        ImitationProtocol::paper_default(),
        ExplorationProtocol::paper_default(),
        0.5,
    )?;
    let mut sim2 = Simulation::new(&game, combined, start)?;
    let nu = sim2.params().nu;
    let out2 = sim2.run(
        &StopSpec::new(vec![
            StopCondition::NashEquilibrium { tol: nu },
            StopCondition::MaxRounds(500_000),
        ])
        .with_check_every(8),
        &mut rng,
    )?;
    println!(
        "combined 50/50: {:?} after {} rounds, loads {:?}, price ratio {:.3}",
        out2.reason,
        out2.rounds,
        sim2.state().loads(),
        ls.price_ratio(&game, sim2.state()),
    );
    println!(
        "\nimitation alone balances only the populated servers — with this \
         adversarial start the cost ratio exceeds Theorem 10's 3 + o(1), which \
         applies to *random* initialization (see `exp_c9`). Adding exploration \
         recovers the full machine pool."
    );
    Ok(())
}
