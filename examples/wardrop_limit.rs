//! The continuous (Wardrop) limit: run the atomic IMITATION PROTOCOL on
//! player-normalized games of growing size next to the deterministic
//! mean-field imitation flow and watch the trajectories merge.
//!
//! ```bash
//! cargo run --release --example wardrop_limit
//! ```

use congames::dynamics::{ImitationProtocol, NuRule, Simulation};
use congames::wardrop::{beckmann_potential, is_wardrop_equilibrium, FlowState, ImitationFlow};
use congames::{Affine, Bpr, CongestionGame, State};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A road network in miniature: three routes with BPR travel times and a
    // linear arterial, continuous demand 1.0.
    let cont_game = CongestionGame::singleton(
        vec![
            Bpr::standard(10.0, 0.4).into(),
            Bpr::standard(12.0, 0.6).into(),
            Affine::new(20.0, 2.0).into(),
        ],
        1,
    )?;
    let flow = ImitationFlow::for_game(&cont_game);
    let mut y = FlowState::new(&cont_game, vec![0.1, 0.1, 0.8])?;
    println!(
        "continuous model: Beckmann potential {:.4} at start",
        beckmann_potential(&cont_game, &y)
    );
    let steps = flow.run(&cont_game, &mut y, 0.25, 1e-6, 1_000_000);
    println!(
        "flow converged in {steps} Euler steps: shares {:?} (Wardrop: {})",
        y.shares().iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
        is_wardrop_equilibrium(&cont_game, &y, 1e-5),
    );

    // The same latencies, atomically: ℓ(x/n) with n players.
    println!("\natomic protocol on ℓ(x/n) games vs. the flow (shares after 60 rounds):");
    for n in [100u64, 1_000, 10_000, 100_000] {
        let atomic_game = CongestionGame::singleton(
            vec![
                Bpr::new(10.0, 0.15, 0.4 * n as f64, 4).into(),
                Bpr::new(12.0, 0.15, 0.6 * n as f64, 4).into(),
                Affine::new(20.0 / n as f64, 2.0).into(),
            ],
            n,
        )?;
        let counts = vec![n / 10, n / 10, n - 2 * (n / 10)];
        let mut sim = Simulation::new(
            &atomic_game,
            ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
            State::from_counts(&atomic_game, counts)?,
        )?;
        let mut cont = FlowState::new(&cont_game, vec![0.1, 0.1, 0.8])?;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut gap: f64 = 0.0;
        for _ in 0..60 {
            sim.step(&mut rng)?;
            flow.step(&cont_game, &mut cont, 1.0);
            let share = FlowState::from_atomic(&atomic_game, sim.state())?;
            gap = gap.max(share.distance(&cont));
        }
        let shares: Vec<f64> = sim
            .state()
            .counts()
            .iter()
            .map(|&c| (c as f64 / n as f64 * 1000.0).round() / 1000.0)
            .collect();
        println!("  n = {n:>6}: shares {shares:?}, sup trajectory gap {gap:.4}");
    }
    println!("\nthe gap shrinks like 1/√n — the continuous model is the noise-free limit.");
    Ok(())
}
