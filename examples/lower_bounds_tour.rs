//! A tour of the paper's lower-bound constructions: the MaxCut ↔ threshold
//! game embedding (Section 3.2), the tripled Theorem 6 game with its exact
//! improvement-graph analysis, and the Ω(n) instance from Section 4.
//!
//! ```bash
//! cargo run --release --example lower_bounds_tour
//! ```

use congames::dynamics::sequential::{best_response_dynamics, sequential_imitation};
use congames::dynamics::PivotRule;
use congames::lowerbounds::{
    omega_n_game, quadratic_threshold_game, state_from_cut, tripled_initial_state,
    tripled_threshold_game, ImprovementGraph, MaxCutInstance,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);

    // 1. Quadratic threshold games embed MaxCut local search exactly.
    let mc = MaxCutInstance::random(6, 20, &mut rng);
    let game = quadratic_threshold_game(&mc)?;
    let cut = 0b010110u64;
    let mut state = state_from_cut(&game, cut)?;
    println!("MaxCut instance on 6 nodes; starting cut value {:.0}", mc.cut_value(cut));
    let out =
        best_response_dynamics(&game, &mut state, 0.0, 10_000, PivotRule::BestGain, &mut rng)?;
    println!(
        "best-response dynamics converged after {} steps — every step was a \
         cut-improving node flip (gain = cut improvement / 2)",
        out.steps
    );

    // 2. The Theorem 6 construction: three clones per player make the same
    //    improvement structure reachable by *imitation*.
    let tripled = tripled_threshold_game(&mc)?;
    let init = tripled_initial_state(&tripled, cut)?;
    let graph = ImprovementGraph::new(&tripled, 0.0, true, 10_000_000)?;
    let idx = graph.index_of(&init);
    println!(
        "\ntripled game: {} players, state space {} states",
        tripled.total_players(),
        graph.num_states()
    );
    println!(
        "exact improvement-graph analysis: longest improving imitation sequence {}, \
         shortest sequence to stability {}, {} reachable states",
        graph.longest_path_from(idx),
        graph.shortest_path_to_sink(idx),
        graph.reachable_count(idx)
    );
    let mut sim_state = init;
    let seq =
        sequential_imitation(&tripled, &mut sim_state, 0.0, 100_000, PivotRule::Random, &mut rng)?;
    println!("a random improving walk stabilized after {} imitation steps", seq.steps);

    // 3. The Ω(n) instance: one improving move hidden among n players. The
    //    hitting time is geometric, so average a few runs.
    for m in [8usize, 32, 128] {
        let (game, state) = omega_n_game(m)?;
        let proto: congames::Protocol = congames::ImitationProtocol::paper_default()
            .with_nu_rule(congames::NuRule::None)
            .into();
        let runs = 20;
        let mut total = 0u64;
        for _ in 0..runs {
            let mut sim = congames::Simulation::new(&game, proto, state.clone())?;
            let out = sim.run(
                &congames::StopSpec::new(vec![
                    congames::StopCondition::ImitationStable,
                    congames::StopCondition::MaxRounds(10_000_000),
                ]),
                &mut rng,
            )?;
            total += out.rounds;
        }
        println!(
            "Ω(n) instance with n = {:>4}: the single improving move took {:>6.0} rounds on average",
            2 * m,
            total as f64 / runs as f64
        );
    }
    println!(
        "\nthe wait grows linearly in n — no sampling protocol can satisfy *all* agents fast."
    );
    Ok(())
}
