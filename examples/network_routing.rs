//! Selfish routing on the Braess network: build a network congestion game
//! from a graph, compute the exact optimum baselines via convex-cost flow,
//! and let concurrent imitation dynamics route the traffic.
//!
//! ```bash
//! cargo run --release --example network_routing
//! ```

use congames::dynamics::{ImitationProtocol, Simulation, StopCondition, StopSpec};
use congames::model::{average_latency, potential, ApproxEquilibrium};
use congames::network::{builders, NetworkGame};
use congames::{Affine, Constant};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096u64;
    // The classic Braess diamond: congestible outer edges, constant inner
    // edges, and a nearly free bridge.
    let a = 10.0 / n as f64;
    let (graph, s, t) = builders::braess([
        Affine::linear(a).into(),   // s → a, ℓ = 10·x/n
        Constant::new(10.0).into(), // s → b
        Constant::new(10.0).into(), // a → t
        Affine::linear(a).into(),   // b → t, ℓ = 10·x/n
        Constant::new(0.5).into(),  // a → b (the bridge)
    ]);
    let net = NetworkGame::build(graph, s, t, n, 100)?;
    println!("enumerated {} s–t paths over {} edges", net.paths().len(), net.graph().num_edges());

    // Exact baselines from the flow substrate (no dynamics involved):
    let phi_star = net.min_potential()?;
    let opt_total = net.min_total_latency()?;
    println!("Φ* = {phi_star:.1} (potential of a Nash equilibrium)");
    println!("optimal average latency = {:.4}", opt_total / n as f64);

    // Route by concurrent imitation from a skewed start (all three paths
    // populated, most players on the bridge path).
    let mut counts = vec![0u64; net.game().num_strategies()];
    counts[0] = n / 16;
    counts[1] = n - n / 8; // the bridge path (enumeration order: s-a-t, s-a-b-t, s-b-t)
    counts[2] = n / 16;
    let start = congames::State::from_counts(net.game(), counts)?;
    println!(
        "\nstart: potential {:.1}, average latency {:.4}",
        potential(net.game(), &start),
        average_latency(net.game(), &start)
    );

    let mut sim = Simulation::new(net.game(), ImitationProtocol::paper_default().into(), start)?;
    let nu = sim.params().nu;
    // Braess latencies are flat (≈ 15–20), so demand a tight 0.5% band.
    let eq = ApproxEquilibrium::new(0.02, 0.005, nu)?;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let out = sim.run(
        &StopSpec::new(vec![
            StopCondition::ApproxEquilibrium(eq),
            StopCondition::MaxRounds(100_000),
        ]),
        &mut rng,
    )?;

    println!(
        "after {} rounds ({:?}): potential {:.1} (Φ* = {:.1}), average latency {:.4}",
        out.rounds,
        out.reason,
        sim.potential(),
        phi_star,
        average_latency(net.game(), sim.state()),
    );
    for (i, path) in net.paths().iter().enumerate() {
        let sid = congames::StrategyId::new(i as u32);
        println!(
            "  path {i} ({} edges): {} players, latency {:.4}",
            path.len(),
            sim.state().count(sid),
            sim.state().strategy_latency(net.game(), sid),
        );
    }
    println!(
        "\nthe Braess paradox in action: the equilibrium routes traffic over the \
         bridge even though removing it would lower everyone's latency."
    );
    Ok(())
}
