//! # congames-analysis
//!
//! Experiment-harness utilities: summary statistics with confidence
//! intervals, least-squares / log–log regression for scaling exponents,
//! aligned-text and markdown table rendering, CSV output, and a
//! deterministic multi-seed parallel trial runner built on std scoped
//! threads.
//!
//! Everything here is deliberately free of the game types — it consumes and
//! produces plain numbers — so the experiment binaries in `congames-bench`
//! stay thin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod csv;
mod regression;
mod runner;
mod shock;
mod stats;
mod table;

pub use csv::{convergence_csv, per_round_stats_csv, CsvWriter};
pub use regression::{linear_fit, loglog_fit, Fit};
pub use runner::{run_trials, run_trials_sequential};
pub use shock::{shock_recovery, shock_recovery_csv, ShockSummary};
pub use stats::Summary;
pub use table::Table;
