//! Re-convergence analysis for nonstationary (shocked) runs.
//!
//! A shocked trajectory is an ordinary [`RoundRecord`] series in which some
//! records carry `shock == true`: the scenario layer fired one or more
//! scheduled events *before* capturing that round, so the shocked record
//! already reflects the post-event game. The natural questions after each
//! shock are:
//!
//! * **Did the dynamics recover?** — i.e. did the potential return to
//!   within a relative band `ε·|Φ_pre|` of its pre-shock value, where
//!   `Φ_pre` is the potential of the last record *strictly before* the
//!   shock round?
//! * **How long did recovery take?** — rounds elapsed from the shock round
//!   to the first in-band record (`0` if the shock itself never left the
//!   band).
//! * **How violent was the excursion?** — the peak absolute deviation from
//!   `Φ_pre` over the observation window (`overshoot`).
//!
//! [`shock_recovery`] computes one [`ShockSummary`] per shocked record; the
//! observation window of a shock ends at the next shocked record (or the end
//! of the series), so back-to-back shocks don't steal each other's recovery
//! credit. [`shock_recovery_csv`] renders the summaries as a small CSV for
//! the experiment harness and the CLI's `--shock-csv` flag.
//!
//! Everything here is a pure function of the record series — no RNG, no
//! game types — so a fixed trace and seed yield a byte-identical CSV on any
//! thread count, matching the repo-wide determinism contract.

use crate::csv::CsvWriter;
use congames_dynamics::RoundRecord;

/// Per-shock re-convergence summary (see [`shock_recovery`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShockSummary {
    /// Round at which the shock fired (the first record with the post-event
    /// game).
    pub round: u64,
    /// Potential of the last record strictly before the shock round — the
    /// recovery reference. `NaN` when the shock is the first record.
    pub pre_potential: f64,
    /// Potential at the shock round itself (post-event).
    pub shock_potential: f64,
    /// Rounds from the shock until the potential first re-entered the band
    /// `|Φ − Φ_pre| ≤ ε·|Φ_pre|`, or `None` if it never did within the
    /// observation window.
    pub recovery_rounds: Option<u64>,
    /// Peak absolute deviation `max |Φ − Φ_pre|` over the observation
    /// window (shock round inclusive), taken over the records with finite
    /// potential. `NaN` when no finite record was observed (including the
    /// shock-at-round-0 case, which has no reference to deviate from).
    pub overshoot: f64,
    /// Records in the observation window whose potential was non-finite
    /// and therefore excluded from `recovery_rounds`/`overshoot`. One bad
    /// sample must not clobber an otherwise measurable recovery, but it
    /// must not vanish either.
    pub skipped_records: u64,
}

/// Compute one [`ShockSummary`] per shocked record in `records`.
///
/// `epsilon` is the relative half-width of the recovery band around the
/// pre-shock potential. Records must be in increasing round order (as
/// produced by `Simulation::run_observed`). A shock with no earlier record
/// (shock at round 0) gets `pre_potential = NaN` and no recovery round —
/// there is nothing to recover *to*.
///
/// Each shock's observation window runs from its own round up to (but not
/// including) the next shocked record, so consecutive shocks are scored
/// independently.
pub fn shock_recovery(records: &[RoundRecord], epsilon: f64) -> Vec<ShockSummary> {
    let shock_idx: Vec<usize> =
        records.iter().enumerate().filter(|(_, r)| r.shock).map(|(i, _)| i).collect();
    let mut out = Vec::with_capacity(shock_idx.len());
    for (k, &i) in shock_idx.iter().enumerate() {
        let window_end = shock_idx.get(k + 1).copied().unwrap_or(records.len());
        let pre_potential = if i == 0 { f64::NAN } else { records[i - 1].potential };
        let band = epsilon * pre_potential.abs();
        let mut recovery_rounds = None;
        let mut overshoot: f64 = 0.0;
        let mut skipped_records = 0u64;
        let mut observed = 0u64;
        if pre_potential.is_nan() {
            // No reference to measure deviation or recovery against (shock
            // at the first record, or a non-finite pre-shock potential);
            // keep the documented `NaN`/`None` contract for the window.
            overshoot = f64::NAN;
        } else {
            for r in &records[i..window_end] {
                // One non-finite sample must not abort the window: skip it
                // (tallied below) so the finite overshoot accumulated so
                // far survives and later in-band records still count as
                // recovery.
                if !r.potential.is_finite() {
                    skipped_records += 1;
                    continue;
                }
                observed += 1;
                let dev = (r.potential - pre_potential).abs();
                overshoot = overshoot.max(dev);
                if recovery_rounds.is_none() && dev <= band {
                    recovery_rounds = Some(r.round - records[i].round);
                }
            }
            if observed == 0 {
                // Every record was skipped: an overshoot of 0.0 would
                // claim the potential never deviated, which was not
                // observed.
                overshoot = f64::NAN;
            }
        }
        out.push(ShockSummary {
            round: records[i].round,
            pre_potential,
            shock_potential: records[i].potential,
            recovery_rounds,
            overshoot,
            skipped_records,
        });
    }
    out
}

/// Render shock summaries as CSV with columns
/// `shock_round,pre_potential,shock_potential,recovery_rounds,overshoot,skipped_records`.
///
/// An unrecovered shock writes an empty `recovery_rounds` cell, so the
/// column stays numerically parseable where present.
///
/// # Example
///
/// ```
/// use congames_analysis::shock_recovery_csv;
/// let csv = shock_recovery_csv(&[]).to_csv();
/// assert_eq!(
///     csv,
///     "shock_round,pre_potential,shock_potential,recovery_rounds,overshoot,skipped_records\n"
/// );
/// ```
pub fn shock_recovery_csv(summaries: &[ShockSummary]) -> CsvWriter {
    let mut csv = CsvWriter::new(vec![
        "shock_round",
        "pre_potential",
        "shock_potential",
        "recovery_rounds",
        "overshoot",
        "skipped_records",
    ]);
    for s in summaries {
        csv.row_strings(&[
            s.round.to_string(),
            format!("{}", s.pre_potential),
            format!("{}", s.shock_potential),
            s.recovery_rounds.map(|r| r.to_string()).unwrap_or_default(),
            format!("{}", s.overshoot),
            s.skipped_records.to_string(),
        ]);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u64, potential: f64, shock: bool) -> RoundRecord {
        RoundRecord {
            round,
            potential,
            l_av: 0.0,
            l_av_plus: 0.0,
            max_latency: 0.0,
            migrations: 0,
            support: 1,
            unsatisfied_fraction: None,
            shock,
        }
    }

    #[test]
    fn recovery_measured_against_last_preshock_record() {
        let records = vec![
            rec(0, 100.0, false),
            rec(1, 100.0, false),
            rec(2, 180.0, true), // shock: +80%
            rec(3, 130.0, false),
            rec(4, 104.0, false), // within 5% of 100
            rec(5, 101.0, false),
        ];
        let s = shock_recovery(&records, 0.05);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].round, 2);
        assert_eq!(s[0].pre_potential, 100.0);
        assert_eq!(s[0].shock_potential, 180.0);
        assert_eq!(s[0].recovery_rounds, Some(2));
        assert_eq!(s[0].overshoot, 80.0);
    }

    #[test]
    fn unrecovered_shock_has_no_recovery_round() {
        let records = vec![rec(0, 100.0, false), rec(1, 200.0, true), rec(2, 150.0, false)];
        let s = shock_recovery(&records, 0.05);
        assert_eq!(s[0].recovery_rounds, None);
        assert_eq!(s[0].overshoot, 100.0);
    }

    #[test]
    fn windows_end_at_the_next_shock() {
        // First shock never recovers inside its window even though the
        // series is back in band after the second shock.
        let records = vec![
            rec(0, 100.0, false),
            rec(10, 150.0, true),
            rec(20, 140.0, false),
            rec(30, 90.0, true), // second shock; its pre-reference is 140
            rec(40, 139.0, false),
        ];
        let s = shock_recovery(&records, 0.05);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].recovery_rounds, None);
        assert_eq!(s[0].overshoot, 50.0);
        assert_eq!(s[1].pre_potential, 140.0);
        assert_eq!(s[1].recovery_rounds, Some(10));
    }

    #[test]
    fn shock_at_first_record_has_nan_reference() {
        let records = vec![rec(0, 100.0, true), rec(1, 90.0, false)];
        let s = shock_recovery(&records, 0.05);
        assert!(s[0].pre_potential.is_nan());
        assert_eq!(s[0].recovery_rounds, None);
        assert!(s[0].overshoot.is_nan());
        assert_eq!(s[0].skipped_records, 0);
    }

    #[test]
    fn nan_mid_window_is_skipped_and_tallied() {
        // A single NaN record inside the window must not clobber the
        // finite overshoot accumulated around it.
        let records = vec![
            rec(0, 100.0, false),
            rec(1, 180.0, true),
            rec(2, f64::NAN, false),
            rec(3, 150.0, false),
        ];
        let s = shock_recovery(&records, 0.05);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].overshoot, 80.0);
        assert_eq!(s[0].recovery_rounds, None);
        assert_eq!(s[0].skipped_records, 1);
    }

    #[test]
    fn recovery_after_a_nan_record_is_still_observed() {
        // The potential re-enters the band *after* a NaN sample; the old
        // early-abort made this recovery unobservable.
        let records = vec![
            rec(0, 100.0, false),
            rec(10, 180.0, true),
            rec(20, f64::INFINITY, false),
            rec(30, 102.0, false),
        ];
        let s = shock_recovery(&records, 0.05);
        assert_eq!(s[0].recovery_rounds, Some(20));
        assert_eq!(s[0].overshoot, 80.0);
        assert_eq!(s[0].skipped_records, 1);
    }

    #[test]
    fn all_nonfinite_window_reports_nan_overshoot() {
        // With no finite record observed, an overshoot of 0.0 would claim
        // the potential never left the band; report NaN instead.
        let records = vec![rec(0, 100.0, false), rec(1, f64::NAN, true)];
        let s = shock_recovery(&records, 0.05);
        assert!(s[0].overshoot.is_nan());
        assert_eq!(s[0].recovery_rounds, None);
        assert_eq!(s[0].skipped_records, 1);
    }

    #[test]
    fn shock_already_in_band_recovers_immediately() {
        let records = vec![rec(0, 100.0, false), rec(5, 101.0, true)];
        let s = shock_recovery(&records, 0.05);
        assert_eq!(s[0].recovery_rounds, Some(0));
    }

    #[test]
    fn csv_renders_missing_recovery_as_empty_cell() {
        let summaries = vec![
            ShockSummary {
                round: 10,
                pre_potential: 100.0,
                shock_potential: 180.0,
                recovery_rounds: Some(12),
                overshoot: 80.0,
                skipped_records: 0,
            },
            ShockSummary {
                round: 50,
                pre_potential: 101.0,
                shock_potential: 400.0,
                recovery_rounds: None,
                overshoot: 299.0,
                skipped_records: 3,
            },
        ];
        let csv = shock_recovery_csv(&summaries).to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "10,100,180,12,80,0");
        assert_eq!(lines[2], "50,101,400,,299,3");
    }
}
