//! Aligned text / markdown tables for experiment output.

use std::fmt;

/// A simple column-aligned table with a header row.
///
/// # Example
///
/// ```
/// use congames_analysis::Table;
/// let mut t = Table::new(vec!["n", "rounds"]);
/// t.row(vec!["128".into(), "42".into()]);
/// t.row(vec!["256".into(), "47".into()]);
/// let text = t.to_string();
/// assert!(text.contains("rounds"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<&str>) -> Self {
        assert!(!header.is_empty(), "tables need at least one column");
        Table { header: header.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width must match the header");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| {
            let mut line = String::from("|");
            for (c, width) in cells.iter().zip(w) {
                line.push_str(&format!(" {:<width$} |", c, width = width));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &w));
        let mut sep = String::from("|");
        for width in &w {
            sep.push_str(&format!("{:-<width$}|", "", width = width + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
        }
        out
    }
}

impl fmt::Display for Table {
    /// Render as aligned plain text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (c, width)) in cells.iter().zip(&w).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:<width$}", c, width = width)?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_text_render() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset everywhere.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    fn markdown_render() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a"));
        assert!(md.contains("|---"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
