//! Minimal CSV output (quote-free values only, as produced by experiments).

use congames_dynamics::{ConvergenceHistogram, PerRoundStats};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A small CSV writer for numeric experiment output.
///
/// Values are written verbatim; commas/quotes/newlines inside cells are
/// rejected (experiments only emit numbers and identifiers, so a full
/// quoting implementation would be dead code).
///
/// # Example
///
/// ```
/// use congames_analysis::CsvWriter;
/// let mut csv = CsvWriter::new(vec!["n", "rounds"]);
/// csv.row(&[128.0, 42.0]);
/// let text = csv.to_csv();
/// assert_eq!(text.lines().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CsvWriter {
    header: Vec<String>,
    lines: Vec<String>,
}

impl CsvWriter {
    /// Create a writer with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if a column name contains CSV metacharacters.
    pub fn new(header: Vec<&str>) -> Self {
        for h in &header {
            assert!(
                !h.contains([',', '"', '\n']),
                "column names must not contain CSV metacharacters"
            );
        }
        CsvWriter { header: header.into_iter().map(String::from).collect(), lines: Vec::new() }
    }

    /// Append a numeric row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, values: &[f64]) -> &mut Self {
        assert_eq!(values.len(), self.header.len(), "row width must match the header");
        let mut line = String::new();
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{v}");
        }
        self.lines.push(line);
        self
    }

    /// Append a row of pre-rendered string cells.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or CSV metacharacters in cells.
    pub fn row_strings(&mut self, values: &[String]) -> &mut Self {
        assert_eq!(values.len(), self.header.len(), "row width must match the header");
        for v in values {
            assert!(!v.contains([',', '"', '\n']), "cells must not contain CSV metacharacters");
        }
        self.lines.push(values.join(","));
        self
    }

    /// Render the full CSV document.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Write the document to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// Render a streamed per-round ensemble reduction as CSV: one row per
/// recorded round index with the mean round number, the mean Rosenthal
/// potential with its 95% confidence half-width, and the mean migration
/// count — the reduced per-round series a 10⁵-trial sweep exports without
/// ever materializing per-trial trajectories.
///
/// # Example
///
/// ```
/// use congames_analysis::per_round_stats_csv;
/// use congames_dynamics::PerRoundStats;
///
/// let csv = per_round_stats_csv(&PerRoundStats::new()).to_csv();
/// assert_eq!(csv, "round,mean_potential,ci95_potential,mean_migrations\n");
/// ```
pub fn per_round_stats_csv(stats: &PerRoundStats) -> CsvWriter {
    let mut csv =
        CsvWriter::new(vec!["round", "mean_potential", "ci95_potential", "mean_migrations"]);
    for r in stats.rounds() {
        csv.row(&[r.round.mean(), r.potential.mean(), r.potential.ci95(), r.migrations.mean()]);
    }
    csv
}

/// Render a convergence histogram as CSV: one row per observed stop
/// reason with the trial count and the convergence-round mean/extrema —
/// the summary a merged multi-process sweep (`congames merge --csv`)
/// exports for plotting.
///
/// # Example
///
/// ```
/// use congames_analysis::convergence_csv;
/// use congames_dynamics::ConvergenceHistogram;
///
/// let csv = convergence_csv(&ConvergenceHistogram::new()).to_csv();
/// assert_eq!(csv, "reason,trials,mean_rounds,min_rounds,max_rounds\n");
/// ```
pub fn convergence_csv(hist: &ConvergenceHistogram) -> CsvWriter {
    let mut csv =
        CsvWriter::new(vec!["reason", "trials", "mean_rounds", "min_rounds", "max_rounds"]);
    for (reason, stats) in hist.observed() {
        csv.row_strings(&[
            format!("{reason:?}"),
            stats.count().to_string(),
            stats.rounds.mean().to_string(),
            stats.envelope.min().to_string(),
            stats.envelope.max().to_string(),
        ]);
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_numbers_plainly() {
        let mut c = CsvWriter::new(vec!["a", "b"]);
        c.row(&[1.5, 2.0]).row(&[3.0, 4.25]);
        assert_eq!(c.to_csv(), "a,b\n1.5,2\n3,4.25\n");
    }

    #[test]
    fn string_rows() {
        let mut c = CsvWriter::new(vec!["name", "v"]);
        c.row_strings(&["braess".into(), "7".into()]);
        assert!(c.to_csv().contains("braess,7"));
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("congames-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let mut c = CsvWriter::new(vec!["x"]);
        c.row(&[9.0]);
        c.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n9\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "metacharacters")]
    fn rejects_commas_in_cells() {
        let mut c = CsvWriter::new(vec!["a"]);
        c.row_strings(&["1,2".into()]);
    }
}
