//! Least-squares fits, including log–log fits for scaling exponents.

/// Result of a least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²`.
    pub r_squared: f64,
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// # Panics
///
/// Panics if fewer than two points are given, inputs are non-finite, or all
/// `x` coincide.
pub fn linear_fit(points: &[(f64, f64)]) -> Fit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    assert!(
        points.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
        "fit points must be finite"
    );
    let n = points.len() as f64;
    let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    assert!(sxx > 0.0, "x values must not all coincide");
    let sxy: f64 = points.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|(x, y)| (y - (slope * x + intercept)).powi(2)).sum();
    let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    Fit { slope, intercept, r_squared }
}

/// Fit `y ≈ c·x^slope` by least squares on `(ln x, ln y)`.
///
/// The returned slope is the scaling exponent — the quantity the C4
/// experiments compare against the paper's `1/ε²` and `1/δ` bounds.
///
/// # Panics
///
/// Panics if any coordinate is non-positive (logarithms must exist), or on
/// the conditions of [`linear_fit`].
pub fn loglog_fit(points: &[(f64, f64)]) -> Fit {
    assert!(
        points.iter().all(|(x, y)| *x > 0.0 && *y > 0.0),
        "log-log fits need strictly positive coordinates"
    );
    let logged: Vec<(f64, f64)> = points.iter().map(|(x, y)| (x.ln(), y.ln())).collect();
    linear_fit(&logged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovers_parameters() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_fits_reasonably() {
        // Deterministic pseudo-noise.
        let pts: Vec<(f64, f64)> = (1..50)
            .map(|i| {
                let x = i as f64;
                let noise = ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5) * 2.0;
                (x, 2.0 * x + 1.0 + noise)
            })
            .collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 2.0).abs() < 0.05, "slope {}", fit.slope);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn loglog_recovers_power_law() {
        let pts: Vec<(f64, f64)> =
            (1..20).map(|i| (i as f64, 5.0 * (i as f64).powf(-2.0))).collect();
        let fit = loglog_fit(&pts);
        assert!((fit.slope + 2.0).abs() < 1e-9, "exponent {}", fit.slope);
        assert!((fit.intercept - 5.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn r_squared_low_for_flat_noise() {
        let pts: Vec<(f64, f64)> =
            (0..20).map(|i| (i as f64, if i % 2 == 0 { 1.0 } else { -1.0 })).collect();
        let fit = linear_fit(&pts);
        assert!(fit.r_squared < 0.1);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_rejected() {
        let _ = linear_fit(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn loglog_rejects_nonpositive() {
        let _ = loglog_fit(&[(0.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn vertical_line_rejected() {
        let _ = linear_fit(&[(1.0, 1.0), (1.0, 2.0)]);
    }
}
