//! Summary statistics.

use std::fmt;

/// Summary statistics of a sample: mean, standard deviation, quantiles, and
/// a normal-approximation 95% confidence interval for the mean.
///
/// # Example
///
/// ```
/// use congames_analysis::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.median(), 2.5);
/// assert_eq!(s.count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    sd: f64,
    min: f64,
    max: f64,
    median: f64,
    q25: f64,
    q75: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(values.iter().all(|v| v.is_finite()), "sample must be finite");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Summary {
            count: values.len(),
            mean,
            sd: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            median: quantile_sorted(&sorted, 0.5),
            q25: quantile_sorted(&sorted, 0.25),
            q75: quantile_sorted(&sorted, 0.75),
        }
    }

    /// Build a summary from an online (streamed) reduction without ever
    /// materializing the sample: count/mean/sd come from the exact
    /// streaming moments, min/max from the exact envelope, and the
    /// quartiles from the quantile sketch (within its configured relative
    /// accuracy).
    ///
    /// # Example
    ///
    /// ```
    /// use congames_analysis::Summary;
    /// use congames_dynamics::{Reducer, ScalarStats};
    ///
    /// let mut stats = ScalarStats::new();
    /// for x in [1.0, 2.0, 3.0, 4.0] {
    ///     stats.absorb(x);
    /// }
    /// let s = Summary::from_reduced(&stats);
    /// assert_eq!(s.mean(), 2.5);
    /// assert_eq!(s.count(), 4);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the reduction is empty or any statistic is non-finite.
    pub fn from_reduced(stats: &congames_dynamics::ScalarStats) -> Summary {
        assert!(stats.count() > 0, "cannot summarize an empty sample");
        let (count, mean, sd) = (stats.count() as usize, stats.mean(), stats.sd());
        let (min, max) = (stats.min(), stats.max());
        let (q25, median, q75) = (stats.quantile(0.25), stats.quantile(0.5), stats.quantile(0.75));
        assert!(
            [mean, sd, min, max, q25, median, q75].iter().all(|v| v.is_finite()),
            "summary statistics must be finite"
        );
        Summary { count, mean, sd, min, max, median, q25, q75 }
    }

    /// Sample size.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (Bessel-corrected; 0 for singletons).
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        self.sd / (self.count as f64).sqrt()
    }

    /// Normal-approximation 95% confidence half-width for the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }

    /// Minimum.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.median
    }

    /// The `q`-quantile for `q ∈ [0, 1]` of the three stored cut points
    /// (0.25, 0.5, 0.75); other quantiles are not retained.
    pub fn quartiles(&self) -> (f64, f64, f64) {
        (self.q25, self.median, self.q75)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, sd={:.4}, [{:.4}, {:.4}])",
            self.mean,
            self.ci95(),
            self.count,
            self.sd,
            self.min,
            self.max
        )
    }
}

/// Linear-interpolation quantile of a sorted slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Bessel-corrected sd of this classic sample is sqrt(32/7).
        assert!((s.sd() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn quartiles_interpolate() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let (q25, med, q75) = s.quartiles();
        assert!((q25 - 1.75).abs() < 1e-12);
        assert!((med - 2.5).abs() < 1e-12);
        assert!((q75 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn singleton_sample() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sd(), 0.0);
        assert_eq!(s.median(), 3.5);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn display_contains_mean_and_n() {
        let s = Summary::of(&[1.0, 3.0]);
        let out = s.to_string();
        assert!(out.contains("2.0000"));
        assert!(out.contains("n=2"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }
}
