//! Deterministic multi-seed trial running, optionally in parallel.
//!
//! Built on [`congames_dynamics::run_indexed`], the shared panic-transparent
//! indexed parallel map that also powers `congames_dynamics::Ensemble`.

use congames_sampling::split_seed;

/// Run `trials` independent trials of `f`, where trial `i` receives the
/// derived seed `split_seed(base_seed, i)`. Trials are distributed over up
/// to `threads` `std::thread::scope` threads; results are returned **in trial
/// order**, so the output is independent of scheduling.
///
/// Zero trials return an empty `Vec` — the workspace-wide empty-input
/// contract shared with `congames_dynamics::run_indexed` and
/// `Ensemble::run_reduced` (whose zero-trial result is the identity
/// reduction).
///
/// # Panics
///
/// Panics if `threads == 0`. If a trial panics, the remaining workers stop
/// and the **original panic payload** is re-raised on the calling thread
/// (the lowest-index payload when several trials panic concurrently) — the
/// root cause is never buried under a secondary "scoped thread panicked"
/// shell.
pub fn run_trials<T: Send>(
    trials: usize,
    base_seed: u64,
    threads: usize,
    f: impl Fn(u64) -> T + Sync,
) -> Vec<T> {
    assert!(threads > 0, "need at least one thread");
    congames_dynamics::run_indexed(trials, threads, |i| f(split_seed(base_seed, i as u64)))
}

/// Sequential version of [`run_trials`] (same seed derivation, same output
/// order, same empty-input contract: zero trials → empty `Vec`).
pub fn run_trials_sequential<T>(trials: usize, base_seed: u64, f: impl Fn(u64) -> T) -> Vec<T> {
    (0..trials).map(|i| f(split_seed(base_seed, i as u64))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let seq = run_trials_sequential(37, 99, |seed| seed.wrapping_mul(3));
        let par = run_trials(37, 99, 4, |seed| seed.wrapping_mul(3));
        assert_eq!(seq, par);
    }

    #[test]
    fn seeds_are_distinct_per_trial() {
        let seeds = run_trials(16, 7, 3, |seed| seed);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 16);
    }

    #[test]
    fn single_thread_path() {
        let out = run_trials(5, 1, 1, |s| s % 10);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn results_in_trial_order() {
        // Make later trials finish first by sleeping inversely.
        let out = run_trials(8, 3, 4, |seed| {
            std::thread::sleep(std::time::Duration::from_millis((seed % 7) * 2));
            seed
        });
        let expect: Vec<u64> = (0..8).map(|i| congames_sampling::split_seed(3, i as u64)).collect();
        assert_eq!(out, expect);
    }

    /// The unified empty-input contract: zero trials reduce to the empty
    /// result instead of panicking, matching `run_indexed(0, ..)` and the
    /// identity reduction of `Ensemble::run_reduced`.
    #[test]
    fn zero_trials_yield_empty() {
        let par: Vec<u64> = run_trials(0, 0, 1, |s| s);
        assert!(par.is_empty());
        let seq: Vec<u64> = run_trials_sequential(0, 0, |s| s);
        assert!(seq.is_empty());
    }

    /// Regression: a panicking trial used to surface as the scope's generic
    /// "a scoped thread panicked", burying the trial's own message. The
    /// runner must re-raise the original payload.
    #[test]
    #[should_panic(expected = "trial exploded: injected failure")]
    fn panicking_trial_propagates_root_cause() {
        let bad = split_seed(11, 3);
        run_trials(8, 11, 4, |seed| {
            if seed == bad {
                panic!("trial exploded: injected failure");
            }
            seed
        });
    }

    /// Sibling trials complete (or stop cleanly) when one panics: the
    /// surviving results are simply discarded, but no sibling dies on a
    /// poisoned lock, so the propagated message stays the injected one.
    #[test]
    fn sibling_trials_do_not_poison() {
        let bad = split_seed(13, 0);
        let result = std::panic::catch_unwind(|| {
            run_trials(6, 13, 2, |seed| {
                if seed == bad {
                    panic!("first trial dies");
                }
                seed
            })
        });
        let payload = result.expect_err("the injected panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("first trial dies"), "unexpected payload: {msg}");
    }
}
