//! Deterministic multi-seed trial running, optionally in parallel.

use congames_sampling::split_seed;
use std::sync::Mutex;

/// Run `trials` independent trials of `f`, where trial `i` receives the
/// derived seed `split_seed(base_seed, i)`. Trials are distributed over up
/// to `threads` `std::thread::scope` threads; results are returned **in trial
/// order**, so the output is independent of scheduling.
///
/// # Panics
///
/// Panics if `trials == 0`, if `threads == 0`, or if a trial panics.
pub fn run_trials<T: Send>(
    trials: usize,
    base_seed: u64,
    threads: usize,
    f: impl Fn(u64) -> T + Sync,
) -> Vec<T> {
    assert!(trials > 0, "need at least one trial");
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || trials == 1 {
        return run_trials_sequential(trials, base_seed, f);
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..trials).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(trials) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = f(split_seed(base_seed, i as u64));
                results.lock().expect("results lock poisoned")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("results lock poisoned")
        .into_iter()
        .map(|r| r.expect("every trial index was claimed"))
        .collect()
}

/// Sequential version of [`run_trials`] (same seed derivation, same output
/// order).
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn run_trials_sequential<T>(trials: usize, base_seed: u64, f: impl Fn(u64) -> T) -> Vec<T> {
    assert!(trials > 0, "need at least one trial");
    (0..trials).map(|i| f(split_seed(base_seed, i as u64))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let seq = run_trials_sequential(37, 99, |seed| seed.wrapping_mul(3));
        let par = run_trials(37, 99, 4, |seed| seed.wrapping_mul(3));
        assert_eq!(seq, par);
    }

    #[test]
    fn seeds_are_distinct_per_trial() {
        let seeds = run_trials(16, 7, 3, |seed| seed);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 16);
    }

    #[test]
    fn single_thread_path() {
        let out = run_trials(5, 1, 1, |s| s % 10);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn results_in_trial_order() {
        // Make later trials finish first by sleeping inversely.
        let out = run_trials(8, 3, 4, |seed| {
            std::thread::sleep(std::time::Duration::from_millis((seed % 7) * 2));
            seed
        });
        let expect: Vec<u64> = (0..8).map(|i| congames_sampling::split_seed(3, i as u64)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = run_trials(0, 0, 1, |s| s);
    }
}
