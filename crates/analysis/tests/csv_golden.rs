//! Golden-file pin for the reduced per-round CSV export.
//!
//! The values are chosen so every statistic is exactly representable
//! (means of equal or symmetric samples; a `ci95` that reduces to the
//! bare 1.96 z-factor), making the rendered text stable down to the last
//! character. If the export format changes intentionally, regenerate
//! `tests/golden/per_round_stats.csv` and say so in the changelog.

use congames_analysis::per_round_stats_csv;
use congames_dynamics::{PerRoundStats, Reducer, RoundRecord};

fn rec(round: u64, potential: f64, migrations: u64) -> RoundRecord {
    RoundRecord {
        round,
        potential,
        l_av: potential / 10.0,
        l_av_plus: potential / 10.0,
        max_latency: potential,
        migrations,
        support: 2,
        unsatisfied_fraction: None,
        shock: false,
    }
}

fn trial_one() -> Vec<RoundRecord> {
    vec![rec(0, 1.0, 0), rec(1, 5.0, 2)]
}

fn trial_two() -> Vec<RoundRecord> {
    vec![rec(0, 3.0, 0), rec(1, 5.0, 4)]
}

#[test]
fn per_round_csv_matches_golden_file() {
    let mut stats = PerRoundStats::new();
    stats.absorb(trial_one());
    stats.absorb(trial_two());
    let rendered = per_round_stats_csv(&stats).to_csv();
    let golden = include_str!("golden/per_round_stats.csv");
    assert_eq!(rendered, golden, "reduced per-round CSV drifted from the golden file");
}

#[test]
fn merged_reduction_renders_the_same_csv() {
    // Absorb each trial into its own partial and merge — the parallel
    // ensemble's reduction shape — and require the identical export.
    let mut a = PerRoundStats::new();
    a.absorb(trial_one());
    let mut b = a.identity();
    b.absorb(trial_two());
    a.merge(b);
    let golden = include_str!("golden/per_round_stats.csv");
    assert_eq!(per_round_stats_csv(&a).to_csv(), golden);
}
