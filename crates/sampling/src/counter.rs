//! Counter-based (stateless, position-addressable) random streams.
//!
//! The concurrent round engines draw randomness at *sites*: one multinomial
//! per origin strategy in the aggregate engine, one decision per player in
//! the player-level engine. A sequential generator forces every site to wait
//! for every earlier site's draws; a counter-based generator instead makes
//! each 64-bit variate a pure function of its *address*, so replica-major
//! SIMD lanes or a GPU backend can draw any site's stream independently and
//! still reproduce the single-threaded run bit for bit.
//!
//! # Construction
//!
//! The block function is Philox-style 4×64 with 10 rounds (Salmon et al.,
//! "Parallel random numbers: as easy as 1, 2, 3", SC'11): two 64×64→128-bit
//! multiplies per round, a two-word key bumped by Weyl constants each round.
//! It maps a 256-bit counter and a 128-bit key to four statistically
//! independent 64-bit outputs.
//!
//! # Key schedule
//!
//! Every draw in a run is addressed by `(trial, round, site, index)`:
//!
//! * **key** — `[split_seed(base_seed, KEY_STREAM_0), split_seed(base_seed,
//!   KEY_STREAM_1)]`: the 128-bit cipher key is derived from the
//!   experiment's base seed alone, through the same [`split_seed`]
//!   finalizer that seeds xoshiro trials (`crates/sampling/src/seeds.rs` is
//!   the single root of all derived randomness).
//! * **counter word 3** — `trial`: the ensemble replica index.
//! * **counter word 2** — `round`: set by [`CounterRng::begin_round`]
//!   (the engines call it once at the top of every concurrent round).
//! * **counter word 1** — `site`: set by [`CounterRng::begin_site`] — the
//!   origin strategy id in the aggregate engine, the global player index in
//!   the player-level engine. Beginning a site resets the draw index.
//! * **counter word 0** — `index >> 2`: the running draw index within the
//!   site, four 64-bit variates per Philox block (`index & 3` selects the
//!   word).
//!
//! Distinct `(trial, round, site, index)` tuples therefore touch distinct
//! counter blocks (or distinct words of one block), so the stream a site
//! consumes does not depend on how many draws any *other* site made — the
//! property that makes counter mode bit-identical across thread counts,
//! shard counts, and lane widths by construction.
//!
//! # Lane addressing
//!
//! Replica-major lane kernels run `W` trials of the same game in lockstep
//! (lane = trial; see `congames_dynamics::LaneKernel`). Each lane owns one
//! [`CounterRng`] from [`lane_streams`], positioned per round/site exactly
//! like the scalar engine positions its single stream. Because the address
//! tuple fully determines every variate, the interleaving the lane kernel
//! introduces — lane 0 draws site 3, then lane 1 draws site 3, … — consumes
//! *the same words* the scalar runs would have, so each lane's trajectory
//! is bit-identical to the scalar counter-mode run of its trial. No
//! cross-lane draw helper is needed: per-lane streams + pure addressing
//! ([`CounterRng::at`] is the random-access form) are the whole mechanism.

use crate::seeds::split_seed;
use congames_simd::{philox4x64_batch, Dispatch, PhiloxSpec};
use rand::RngCore;

/// Stream indices reserved for deriving the two Philox key words from a
/// base seed. Arbitrary but pinned: changing them changes every
/// counter-mode stream (they are part of the pinned construction).
const KEY_STREAM_0: u64 = 0x2009_0808_0000_0000;
const KEY_STREAM_1: u64 = 0x2009_0808_0000_0001;

/// Philox 4×64 round multipliers (Random123 reference constants).
const PHILOX_M0: u64 = 0xD2E7_470E_E14C_6C93;
const PHILOX_M1: u64 = 0xCA5A_8263_9512_1157;
/// Weyl key-schedule increments: ⌊2⁶⁴·φ⌋ and ⌊2⁶⁴·(√3−1)⌋.
const PHILOX_W0: u64 = 0x9E37_79B9_7F4A_7C15;
const PHILOX_W1: u64 = 0xBB67_AE85_84CA_A73B;
/// Ten rounds is the Random123 default safety margin (seven pass BigCrush).
const PHILOX_ROUNDS: u32 = 10;

/// The pinned construction above, in the form the `congames-simd` batched
/// generator consumes. One definition site: the batch arm runs the same
/// constants the scalar [`philox4x64`] runs.
const SPEC: PhiloxSpec = PhiloxSpec {
    m0: PHILOX_M0,
    m1: PHILOX_M1,
    w0: PHILOX_W0,
    w1: PHILOX_W1,
    rounds: PHILOX_ROUNDS,
};

#[inline]
fn mulhilo(a: u64, b: u64) -> (u64, u64) {
    let wide = a as u128 * b as u128;
    ((wide >> 64) as u64, wide as u64)
}

/// One keyed Philox 4×64-10 block: 256-bit counter in, 256 random bits out.
#[inline]
fn philox4x64(mut key: [u64; 2], mut ctr: [u64; 4]) -> [u64; 4] {
    for _ in 0..PHILOX_ROUNDS {
        let (hi0, lo0) = mulhilo(PHILOX_M0, ctr[0]);
        let (hi1, lo1) = mulhilo(PHILOX_M1, ctr[2]);
        ctr = [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0];
        key[0] = key[0].wrapping_add(PHILOX_W0);
        key[1] = key[1].wrapping_add(PHILOX_W1);
    }
    ctr
}

/// A counter-mode random stream addressed by `(trial, round, site, index)`.
///
/// Implements [`RngCore`], so every sampler in this crate (binomial,
/// multinomial, alias) works on it unchanged; the engines position it with
/// [`begin_round`](CounterRng::begin_round) /
/// [`begin_site`](CounterRng::begin_site) and then draw sequentially within
/// the site. See the [module docs](self) for the key schedule.
#[derive(Debug, Clone)]
pub struct CounterRng {
    key: [u64; 2],
    trial: u64,
    round: u64,
    site: u64,
    /// Next draw index within the current `(trial, round, site)` scope.
    index: u64,
    /// Cached output block for counter word 0 == `block_id` (u64::MAX when
    /// invalid): draws within a site consume 4 words per Philox call.
    block: [u64; 4],
    block_id: u64,
}

impl CounterRng {
    /// The stream for replica `trial` of the experiment keyed by
    /// `base_seed`. Positioned at round 0, site 0, index 0.
    pub fn for_trial(base_seed: u64, trial: u64) -> Self {
        CounterRng {
            key: [split_seed(base_seed, KEY_STREAM_0), split_seed(base_seed, KEY_STREAM_1)],
            trial,
            round: 0,
            site: 0,
            index: 0,
            block: [0; 4],
            block_id: u64::MAX,
        }
    }

    /// Reposition the stream at the start of `round` (site 0, index 0).
    #[inline]
    pub fn begin_round(&mut self, round: u64) {
        self.round = round;
        self.site = 0;
        self.index = 0;
        self.block_id = u64::MAX;
    }

    /// Reposition the stream at the start of `site` within the current
    /// round (index 0).
    #[inline]
    pub fn begin_site(&mut self, site: u64) {
        self.site = site;
        self.index = 0;
        self.block_id = u64::MAX;
    }

    /// The variate at an explicit `(trial, round, site, index)` address —
    /// the pure function the sequential interface walks. Exposed so tests
    /// (and lane kernels) can pin random access against it.
    pub fn at(base_seed: u64, trial: u64, round: u64, site: u64, index: u64) -> u64 {
        let key = [split_seed(base_seed, KEY_STREAM_0), split_seed(base_seed, KEY_STREAM_1)];
        philox4x64(key, [index >> 2, site, round, trial])[(index & 3) as usize]
    }
}

/// One [`CounterRng`] per lane of a replica-major lane block: lane `l`
/// draws the stream of trial `first_trial + l`, so a kernel stepping the
/// lanes in lockstep consumes exactly the words the scalar per-trial runs
/// would (see the [module docs](self) on lane addressing).
pub fn lane_streams(base_seed: u64, first_trial: u64, lanes: usize) -> Vec<CounterRng> {
    (0..lanes as u64).map(|l| CounterRng::for_trial(base_seed, first_trial + l)).collect()
}

/// Batched random access: `out[i]` receives the four words at addresses
/// `(trials[i], round, site, block*4 .. block*4+4)` of the experiment keyed
/// by `base_seed` — i.e. `out[i][j] == CounterRng::at(base_seed, trials[i],
/// round, site, block*4 + j)` for every lane, produced by one across-lane
/// Philox sweep. Bit-identical in both dispatch arms.
///
/// # Panics
///
/// Panics if `out.len() != trials.len()`.
pub fn counter_blocks(
    dispatch: Dispatch,
    base_seed: u64,
    round: u64,
    site: u64,
    block: u64,
    trials: &[u64],
    out: &mut [[u64; 4]],
) {
    let key = [split_seed(base_seed, KEY_STREAM_0), split_seed(base_seed, KEY_STREAM_1)];
    philox4x64_batch(dispatch, SPEC, key, [block, site, round], trials, out);
}

/// The lane-block stream set of a replica-major kernel: per-lane
/// [`CounterRng`]s (lane `l` = trial `first_trial + l`, exactly
/// [`lane_streams`]) plus a batched front end —
/// [`prime_site`](LaneStreams::prime_site) computes the *first* Philox block of a
/// `(round, site)` scope for every participating lane in one across-lane
/// sweep and installs it into the lanes' block caches, so the per-lane
/// samplers start the site with their keystream already in hand. Draws past
/// the first block (rare: rejection loops, many-origin multinomials) fall
/// back to the lanes' own sequential walk, which computes the same
/// addressed words — the batching is a pure cache warm-up and cannot change
/// any stream's bits.
///
/// The buffers (streams, trial scratch, block scratch) are reused across
/// [`reset`](LaneStreams::reset) calls, so an ensemble scheduler stepping
/// many lane groups through one kernel allocates streams once, not per
/// group.
#[derive(Debug)]
pub struct LaneStreams {
    base_seed: u64,
    dispatch: Dispatch,
    rngs: Vec<CounterRng>,
    trials: Vec<u64>,
    blocks: Vec<[u64; 4]>,
}

impl LaneStreams {
    /// Streams for lanes `0..lanes` of the group starting at `first_trial`,
    /// batching with `dispatch`.
    pub fn new(base_seed: u64, first_trial: u64, lanes: usize, dispatch: Dispatch) -> Self {
        LaneStreams {
            base_seed,
            dispatch: dispatch.resolve(),
            rngs: lane_streams(base_seed, first_trial, lanes),
            trials: Vec::with_capacity(lanes),
            blocks: Vec::with_capacity(lanes),
        }
    }

    /// Re-point the existing buffers at a new lane group (possibly
    /// narrower), without reallocating: after this call the streams are
    /// exactly `LaneStreams::new(base_seed, first_trial, lanes, dispatch)`.
    pub fn reset(&mut self, first_trial: u64, lanes: usize) {
        self.rngs.truncate(lanes);
        for (l, rng) in self.rngs.iter_mut().enumerate() {
            *rng = CounterRng::for_trial(self.base_seed, first_trial + l as u64);
        }
        for l in self.rngs.len() as u64..lanes as u64 {
            self.rngs.push(CounterRng::for_trial(self.base_seed, first_trial + l));
        }
    }

    /// Override the batching dispatch (testing hook; the streams' bits are
    /// dispatch-independent). Resolved once so the steady-state sweep
    /// carries an always-runnable arm.
    pub fn set_dispatch(&mut self, dispatch: Dispatch) {
        self.dispatch = dispatch.resolve();
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.rngs.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.rngs.is_empty()
    }

    /// Lane `l`'s stream, for sequential draws within a primed site.
    #[inline]
    pub fn rng_mut(&mut self, l: usize) -> &mut CounterRng {
        &mut self.rngs[l]
    }

    /// Position every participating lane at `(round, site, index 0)` with
    /// the site's first keystream block already computed — one batched
    /// Philox sweep instead of `lanes.len()` scalar block evaluations on
    /// the lanes' first draws.
    pub fn prime_site(&mut self, round: u64, site: u64, lanes: &[usize]) {
        self.trials.clear();
        self.trials.extend(lanes.iter().map(|&l| self.rngs[l].trial));
        self.blocks.resize(lanes.len(), [0; 4]);
        let key = self.rngs.first().map_or([0, 0], |r| r.key);
        philox4x64_batch(
            self.dispatch,
            SPEC,
            key,
            [0, site, round],
            &self.trials,
            &mut self.blocks,
        );
        for (i, &l) in lanes.iter().enumerate() {
            let rng = &mut self.rngs[l];
            rng.round = round;
            rng.site = site;
            rng.index = 0;
            rng.block = self.blocks[i];
            rng.block_id = 0;
        }
    }
}

impl RngCore for CounterRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // Match the vendored xoshiro's convention of taking the high bits.
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let block_id = self.index >> 2;
        if block_id != self.block_id {
            self.block = philox4x64(self.key, [block_id, self.site, self.round, self.trial]);
            self.block_id = block_id;
        }
        let word = self.block[(self.index & 3) as usize];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_walk_matches_random_access() {
        let mut rng = CounterRng::for_trial(42, 3);
        rng.begin_round(5);
        rng.begin_site(17);
        for i in 0..9u64 {
            assert_eq!(rng.next_u64(), CounterRng::at(42, 3, 5, 17, i), "index {i}");
        }
    }

    #[test]
    fn site_streams_are_independent_of_draw_history() {
        // Stream at site B is the same whether or not site A drew first.
        let mut a = CounterRng::for_trial(7, 0);
        a.begin_round(2);
        a.begin_site(1);
        for _ in 0..13 {
            a.next_u64();
        }
        a.begin_site(2);
        let with_history: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();

        let mut b = CounterRng::for_trial(7, 0);
        b.begin_round(2);
        b.begin_site(2);
        let fresh: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(with_history, fresh);
    }

    #[test]
    fn addresses_are_distinct_across_coordinates() {
        let base = CounterRng::at(1, 0, 0, 0, 0);
        assert_ne!(base, CounterRng::at(1, 1, 0, 0, 0), "trial");
        assert_ne!(base, CounterRng::at(1, 0, 1, 0, 0), "round");
        assert_ne!(base, CounterRng::at(1, 0, 0, 1, 0), "site");
        assert_ne!(base, CounterRng::at(1, 0, 0, 0, 1), "index");
        assert_ne!(base, CounterRng::at(2, 0, 0, 0, 0), "base seed");
    }

    #[test]
    fn pinned_philox_words() {
        // Construction pin: if any constant, the round count, or the key
        // schedule changes, these bits change and every counter-mode pin in
        // the workspace must be re-derived. Values captured from this
        // implementation and frozen.
        let got: Vec<u64> = (0..4).map(|i| CounterRng::at(20090808, 1, 2, 3, i)).collect();
        assert_eq!(
            got,
            vec![
                0xEA74_82E7_1E17_BEF7,
                0xABB0_9905_3266_E451,
                0xF6A8_E0BC_8FB1_682F,
                0x7EE7_FB72_9BCE_9F9C,
            ]
        );
    }

    #[test]
    fn lane_streams_are_the_per_trial_streams() {
        let mut lanes = lane_streams(20090808, 5, 4);
        for (l, lane) in lanes.iter_mut().enumerate() {
            lane.begin_round(3);
            lane.begin_site(2);
            let mut scalar = CounterRng::for_trial(20090808, 5 + l as u64);
            scalar.begin_round(3);
            scalar.begin_site(2);
            for i in 0..6u64 {
                assert_eq!(lane.next_u64(), scalar.next_u64(), "lane {l} index {i}");
            }
        }
    }

    #[test]
    fn counter_blocks_match_random_access() {
        let trials = [0u64, 3, 7, 8, 11, 1 << 40];
        let mut out = [[0u64; 4]; 6];
        for d in [Dispatch::Scalar, Dispatch::Avx2] {
            counter_blocks(d, 20090808, 5, 9, 2, &trials, &mut out);
            for (i, &t) in trials.iter().enumerate() {
                for j in 0..4u64 {
                    assert_eq!(
                        out[i][j as usize],
                        CounterRng::at(20090808, t, 5, 9, 2 * 4 + j),
                        "{d:?} lane {i} word {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn primed_streams_match_plain_lane_streams() {
        for d in [Dispatch::Scalar, Dispatch::Avx2] {
            let mut primed = LaneStreams::new(20090808, 5, 6, d);
            // Prime a strict subset of the lanes, out of order.
            let participating = [4usize, 0, 2, 5];
            primed.prime_site(3, 11, &participating);
            for &l in &participating {
                let mut scalar = CounterRng::for_trial(20090808, 5 + l as u64);
                scalar.begin_round(3);
                scalar.begin_site(11);
                // Walk past the primed block to cover the fallback path.
                for i in 0..7u64 {
                    assert_eq!(
                        primed.rng_mut(l).next_u64(),
                        scalar.next_u64(),
                        "{d:?} lane {l} index {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn reset_reuses_buffers_and_matches_fresh_construction() {
        let mut streams = LaneStreams::new(20090808, 0, 8, Dispatch::Scalar);
        streams.prime_site(1, 2, &[0, 1, 2, 3, 4, 5, 6, 7]);
        // Narrow tail group starting at a later trial.
        streams.reset(64, 3);
        assert_eq!(streams.len(), 3);
        streams.prime_site(0, 0, &[0, 1, 2]);
        for l in 0..3usize {
            let mut fresh = CounterRng::for_trial(20090808, 64 + l as u64);
            fresh.begin_round(0);
            fresh.begin_site(0);
            for i in 0..5u64 {
                assert_eq!(streams.rng_mut(l).next_u64(), fresh.next_u64(), "lane {l} index {i}");
            }
        }
    }

    #[test]
    fn next_u32_takes_high_bits() {
        let mut rng = CounterRng::for_trial(9, 0);
        let mut twin = rng.clone();
        let w = rng.next_u64();
        assert_eq!(twin.next_u32(), (w >> 32) as u32);
    }
}
