//! Walker–Vose alias tables for O(1) categorical sampling.

use rand::Rng;

use crate::error::SamplingError;

/// A Walker–Vose alias table over a fixed weight vector.
///
/// Construction is `O(k)` for `k` categories; each sample costs one uniform
/// index draw plus one biased coin. The player-level round engine uses this
/// to sample a strategy proportionally to its player count.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use congames_sampling::AliasTable;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
/// let table = AliasTable::new(&[1.0, 3.0, 6.0])?;
/// let i = table.sample(&mut rng);
/// assert!(i < 3);
/// # Ok::<(), congames_sampling::SamplingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build an alias table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidWeights`] if `weights` is empty,
    /// contains a negative or non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, SamplingError> {
        if weights.is_empty() {
            return Err(SamplingError::InvalidWeights { message: "empty weight vector" });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(SamplingError::InvalidWeights {
                message: "weights must be finite and non-negative",
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(SamplingError::InvalidWeights { message: "weights must not all be zero" });
        }
        let k = weights.len();
        let scale = k as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; k];
        let mut small: Vec<u32> = Vec::with_capacity(k);
        let mut large: Vec<u32> = Vec::with_capacity(k);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Move the overflow of `l` onto `s`'s slot.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries are numerically 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for constructed tables).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw a category index with probability proportional to its weight.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let k = self.prob.len();
        let i = rng.gen_range(0..k);
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_weights_rejected() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -1.0]).is_err());
        assert!(AliasTable::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn single_category_always_sampled() {
        let t = AliasTable::new(&[5.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = t.sample(&mut rng);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0, 10.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let draws = 200_000usize;
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let freq = counts[i] as f64 / draws as f64;
            let se = (expect * (1.0 - expect) / draws as f64).sqrt();
            assert!(
                (freq - expect).abs() < 5.0 * se,
                "category {i}: freq {freq} vs expected {expect}"
            );
        }
    }

    #[test]
    fn unnormalized_weights_behave_like_normalized() {
        let a = AliasTable::new(&[1.0, 1.0]).unwrap();
        let b = AliasTable::new(&[100.0, 100.0]).unwrap();
        let mut ra = SmallRng::seed_from_u64(4);
        let mut rb = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
        }
    }

    #[test]
    fn large_table_is_well_formed() {
        let weights: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(t.sample(&mut rng) < 1000);
        }
    }
}
