use std::error::Error;
use std::fmt;

/// Error type for the sampling primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SamplingError {
    /// A probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// A weight vector was empty, contained negatives/NaNs, or summed to 0.
    InvalidWeights {
        /// Human-readable description.
        message: &'static str,
    },
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::InvalidProbability { name } => {
                write!(f, "probability `{name}` must be a finite value in [0, 1]")
            }
            SamplingError::InvalidWeights { message } => {
                write!(f, "invalid weights: {message}")
            }
        }
    }
}

impl Error for SamplingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SamplingError::InvalidProbability { name: "p" }.to_string().contains("p"));
        assert!(SamplingError::InvalidWeights { message: "empty" }.to_string().contains("empty"));
    }
}
