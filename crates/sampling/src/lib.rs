//! # congames-sampling
//!
//! Random-variate substrate for the `congames` project.
//!
//! The concurrent round engines need three primitives that `rand` itself
//! does not provide (and `rand_distr` is not on the approved dependency
//! list, so they are implemented and validated here):
//!
//! * [`binomial`] — exact binomial sampling. Small cases sum Bernoullis,
//!   moderate means use the stable inversion recurrence (BINV), large means
//!   use the BTPE rejection algorithm of Kachitvichyanukul & Schmeiser
//!   (1988). This is what lets the aggregate engine simulate a round among
//!   millions of players in microseconds without changing the distribution.
//! * [`multinomial`] — one round of per-player independent choices grouped
//!   by origin strategy is exactly a multinomial draw; it is sampled by
//!   conditional binomials.
//! * [`AliasTable`] — Walker–Vose alias method for O(1) categorical
//!   sampling, used by the player-level engine to sample strategies
//!   proportionally to their player counts.
//!
//! Reproducibility helpers ([`split_seed`], [`seeded_rng`]) derive
//! independent, deterministic RNG streams for parallel experiments, and the
//! [`DrawStream`] abstraction (module [`counter`] + [`RngMode`]) lets every
//! kernel draw either from the sequential xoshiro stream or from a
//! counter-based Philox stream addressed by `(trial, round, site, index)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alias;
mod binomial;
pub mod counter;
mod error;
mod multinomial;
mod seeds;
mod stream;

pub use alias::AliasTable;
pub use binomial::binomial;
pub use counter::{counter_blocks, lane_streams, CounterRng, LaneStreams};
// Re-exported so downstream crates pick dispatch arms without depending on
// `congames-simd` directly.
pub use congames_simd::Dispatch;
pub use error::SamplingError;
pub use multinomial::{multinomial, multinomial_with_rest, multinomial_with_rest_into};
pub use seeds::{seeded_rng, split_seed, SeedSequence};
pub use stream::{DrawRng, DrawStream, RngMode};
