//! Exact binomial sampling: Bernoulli summation, BINV inversion, and the
//! BTPE rejection algorithm of Kachitvichyanukul & Schmeiser (1988).

use rand::Rng;

use crate::error::SamplingError;

/// Below this trial count we simply sum Bernoulli draws.
const SMALL_TRIALS: u64 = 32;
/// BINV is used while `n·min(p,q) < BTPE_THRESHOLD`; beyond it, BTPE.
const BTPE_THRESHOLD: f64 = 10.0;

/// Sample `X ~ Binomial(n, p)` exactly.
///
/// The sampler dispatches on the parameters:
///
/// * `n ≤ 32`: sum of Bernoulli draws (`O(n)`),
/// * `n·min(p, 1−p) < 10`: BINV inversion with a numerically stable
///   recurrence (`O(n·p)` expected),
/// * otherwise: BTPE, a constant-expected-time rejection method.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidProbability`] if `p` is not a finite
/// value in `[0, 1]`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let x = congames_sampling::binomial(&mut rng, 1_000_000, 0.25)?;
/// assert!(x <= 1_000_000);
/// # Ok::<(), congames_sampling::SamplingError>(())
/// ```
pub fn binomial(rng: &mut impl Rng, n: u64, p: f64) -> Result<u64, SamplingError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(SamplingError::InvalidProbability { name: "p" });
    }
    if n == 0 || p == 0.0 {
        return Ok(0);
    }
    if p == 1.0 {
        return Ok(n);
    }
    // Work with r = min(p, 1-p) and flip at the end if needed.
    let flipped = p > 0.5;
    let r = if flipped { 1.0 - p } else { p };
    let x = if n <= SMALL_TRIALS {
        bernoulli_sum(rng, n, r)
    } else if (n as f64) * r < BTPE_THRESHOLD {
        binv(rng, n, r)
    } else {
        btpe(rng, n, r)
    };
    Ok(if flipped { n - x } else { x })
}

fn bernoulli_sum(rng: &mut impl Rng, n: u64, p: f64) -> u64 {
    let mut x = 0;
    for _ in 0..n {
        if rng.gen::<f64>() < p {
            x += 1;
        }
    }
    x
}

/// Below this value of `q^n` the BINV inversion loses too much precision
/// to be trusted (and at 0.0 it loops forever); see [`binv`].
const BINV_R0_MIN: f64 = 1e-280;

/// BINV: inversion of the CDF via the recurrence
/// `P(X = x+1) = P(X = x) · (a/(x+1) − s)` with `s = p/q`, `a = (n+1)s`.
///
/// For `n·p < 10` and `p ≤ 1/2` the starting mass `q^n ≥ e^{-10·ln2/…}` is
/// comfortably far from underflow, but callers with extreme parameters (or
/// future dispatch changes) must not be handed an invalid sampler: if `q^n`
/// is degenerate we *split* the draw — `Bin(n, p) = Bin(⌊n/2⌋, p) +
/// Bin(⌈n/2⌉, p)` — which is exact, stays within BINV's own validity
/// regime, and terminates because halving `n` strictly increases `q^{n}`.
/// (The previous fallback jumped to BTPE, whose dominating density is only
/// valid for `n·min(p,q) ≥ 10` — exactly the regime BINV is *not* in.)
fn binv(rng: &mut impl Rng, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n as f64 + 1.0) * s;
    let r0 = q.powf(n as f64);
    if r0.is_nan() || r0 <= BINV_R0_MIN {
        // Degenerate starting mass: split the draw into two halves (each
        // with a strictly larger q^n) and sum. `n ≥ 2` holds whenever the
        // guard fires with finite inputs, so the recursion shrinks.
        let half = n / 2;
        if half == 0 {
            return bernoulli_sum(rng, n, p);
        }
        return binv(rng, half, p) + binv(rng, n - half, p);
    }
    loop {
        let mut r = r0;
        let mut u: f64 = rng.gen();
        let mut x: u64 = 0;
        loop {
            if u < r {
                return x;
            }
            u -= r;
            x += 1;
            if x > n {
                break; // numerical leakage; redraw
            }
            r *= a / x as f64 - s;
        }
    }
}

/// BTPE (Binomial, Triangle, Parallelogram, Exponential): rejection sampling
/// with a piecewise dominating density. Expected O(1) time per sample for
/// `n·min(p,q) ≥ 10`. Requires `p ≤ 0.5` (callers flip).
fn btpe(rng: &mut impl Rng, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let r = p;
    let q = 1.0 - r;
    let nrq = nf * r * q;
    let f_m = nf * r + r;
    let m = f_m.floor();
    let p1 = (2.195 * nrq.sqrt() - 4.6 * q).floor() + 0.5;
    let x_m = m + 0.5;
    let x_l = x_m - p1;
    let x_r = x_m + p1;
    let c = 0.134 + 20.5 / (15.3 + m);
    let a_l = (f_m - x_l) / (f_m - x_l * r);
    let lambda_l = a_l * (1.0 + 0.5 * a_l);
    let a_r = (x_r - f_m) / (x_r * q);
    let lambda_r = a_r * (1.0 + 0.5 * a_r);
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;

    loop {
        let u: f64 = rng.gen::<f64>() * p4;
        let v: f64 = rng.gen();
        let y: f64;
        if u <= p1 {
            // Triangular region: accept immediately.
            y = (x_m - p1 * v + u).floor();
            return y.max(0.0) as u64;
        } else if u <= p2 {
            // Parallelogram region.
            let x = x_l + (u - p1) / c;
            let v2 = v * c + 1.0 - (x_m - x).abs() / p1;
            if v2 > 1.0 || v2 <= 0.0 {
                continue;
            }
            y = x.floor();
            if accept(n, r, m, y, v2, nrq) {
                return y.max(0.0) as u64;
            }
        } else if u <= p3 {
            // Left exponential tail.
            y = (x_l + v.ln() / lambda_l).floor();
            if y < 0.0 {
                continue;
            }
            let v2 = v * (u - p2) * lambda_l;
            if accept(n, r, m, y, v2, nrq) {
                return y as u64;
            }
        } else {
            // Right exponential tail.
            y = (x_r - v.ln() / lambda_r).floor();
            if y > nf {
                continue;
            }
            let v2 = v * (u - p3) * lambda_r;
            if accept(n, r, m, y, v2, nrq) {
                return y as u64;
            }
        }
    }
}

/// Acceptance test for BTPE candidates outside the triangular region.
fn accept(n: u64, r: f64, m: f64, y: f64, v: f64, nrq: f64) -> bool {
    let nf = n as f64;
    let q = 1.0 - r;
    let k = (y - m).abs();
    if k <= 20.0 || k >= nrq / 2.0 - 1.0 {
        // Explicit evaluation of f(y)/f(m) by the recurrence.
        let s = r / q;
        let a = s * (nf + 1.0);
        let mut f = 1.0_f64;
        if m < y {
            let mut i = m as u64 + 1;
            while i <= y as u64 {
                f *= a / i as f64 - s;
                i += 1;
            }
        } else if m > y {
            let mut i = y as u64 + 1;
            while i <= m as u64 {
                f /= a / i as f64 - s;
                i += 1;
            }
        }
        v <= f
    } else {
        // Squeeze, then Stirling-corrected exact log comparison.
        let rho = (k / nrq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
        let t = -k * k / (2.0 * nrq);
        let log_v = v.ln();
        if log_v < t - rho {
            return true;
        }
        if log_v > t + rho {
            return false;
        }
        let x1 = y + 1.0;
        let f1 = m + 1.0;
        let z = nf + 1.0 - m;
        let w = nf - y + 1.0;
        let z2 = z * z;
        let x2 = x1 * x1;
        let f2 = f1 * f1;
        let w2 = w * w;
        let bound = (m + 0.5) * (f1 / x1).ln()
            + (nf - m + 0.5) * (z / w).ln()
            + (y - m) * (w * r / (x1 * q)).ln()
            + stirling_tail(f2) / f1
            + stirling_tail(z2) / z
            + stirling_tail(x2) / x1
            + stirling_tail(w2) / w;
        log_v <= bound
    }
}

/// The truncated Stirling-series tail
/// `(13860 − (462 − (132 − (99 − 140/t)/t)/t)/t) / 166320` evaluated at `t`.
fn stirling_tail(t: f64) -> f64 {
    (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / t) / t) / t) / t) / 166320.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_stats(n: u64, p: f64, draws: usize, seed: u64) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..draws {
            let x = binomial(&mut rng, n, p).unwrap() as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / draws as f64;
        let var = sumsq / draws as f64 - mean * mean;
        (mean, var)
    }

    /// Check the first two moments against Binomial(n,p). The standard error
    /// of the sample mean is sqrt(npq/draws); we allow 5 sigma.
    fn check_moments(n: u64, p: f64, draws: usize, seed: u64) {
        let (mean, var) = sample_stats(n, p, draws, seed);
        let true_mean = n as f64 * p;
        let true_var = n as f64 * p * (1.0 - p);
        let se_mean = (true_var / draws as f64).sqrt();
        assert!(
            (mean - true_mean).abs() <= 5.0 * se_mean + 1e-9,
            "n={n} p={p}: mean {mean} vs {true_mean} (se {se_mean})"
        );
        // Variance concentrates more slowly; allow 10% relative error.
        if true_var > 1.0 {
            assert!(
                (var - true_var).abs() <= 0.1 * true_var,
                "n={n} p={p}: var {var} vs {true_var}"
            );
        }
    }

    #[test]
    fn edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(binomial(&mut rng, 0, 0.5).unwrap(), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0).unwrap(), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0).unwrap(), 10);
    }

    #[test]
    fn invalid_probability_is_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(binomial(&mut rng, 10, -0.1).is_err());
        assert!(binomial(&mut rng, 10, 1.1).is_err());
        assert!(binomial(&mut rng, 10, f64::NAN).is_err());
    }

    #[test]
    fn results_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        for &(n, p) in &[(5u64, 0.3), (100, 0.01), (100, 0.99), (10_000, 0.5), (1_000_000, 0.7)] {
            for _ in 0..200 {
                let x = binomial(&mut rng, n, p).unwrap();
                assert!(x <= n, "sample {x} out of range for n={n}");
            }
        }
    }

    #[test]
    fn moments_small_bernoulli_path() {
        check_moments(20, 0.3, 40_000, 11);
    }

    #[test]
    fn moments_binv_path() {
        check_moments(500, 0.002, 40_000, 12); // n·p = 1
        check_moments(200, 0.04, 40_000, 13); // n·p = 8
    }

    #[test]
    fn moments_btpe_path() {
        check_moments(1_000, 0.5, 40_000, 14);
        check_moments(10_000, 0.03, 40_000, 15);
        check_moments(1_000_000, 0.25, 4_000, 16);
    }

    #[test]
    fn moments_flipped_p() {
        check_moments(1_000, 0.9, 40_000, 17);
        check_moments(100, 0.97, 40_000, 18);
    }

    /// Compare the full empirical CDF of the fast paths against the exact
    /// Bernoulli-sum ground truth on a moderate case, using a two-sample
    /// Kolmogorov–Smirnov-style distance with a generous bound.
    #[test]
    fn btpe_matches_bernoulli_sum_distribution() {
        let n = 300u64; // routed to BTPE (n·p = 90)
        let p = 0.3;
        let draws = 30_000usize;
        let mut rng = SmallRng::seed_from_u64(99);
        let mut hist_fast = vec![0u32; (n + 1) as usize];
        for _ in 0..draws {
            hist_fast[binomial(&mut rng, n, p).unwrap() as usize] += 1;
        }
        let mut hist_slow = vec![0u32; (n + 1) as usize];
        for _ in 0..draws {
            hist_slow[bernoulli_sum(&mut rng, n, p) as usize] += 1;
        }
        // KS distance between the two empirical CDFs.
        let mut cdf_f = 0.0;
        let mut cdf_s = 0.0;
        let mut ks: f64 = 0.0;
        for i in 0..hist_fast.len() {
            cdf_f += hist_fast[i] as f64 / draws as f64;
            cdf_s += hist_slow[i] as f64 / draws as f64;
            ks = ks.max((cdf_f - cdf_s).abs());
        }
        // Critical value at alpha=0.001 for two samples of 30k is ~0.0159.
        assert!(ks < 0.016, "KS distance too large: {ks}");
    }

    /// Exact `Binomial(n, p)` cell probabilities for `k = 0..cells-1` plus a
    /// pooled right tail, via the stable recurrence
    /// `pmf(k+1) = pmf(k)·(n−k)/(k+1)·p/q` started from
    /// `pmf(0) = exp(n·ln(1−p))`.
    fn binomial_cell_probs(n: u64, p: f64, cells: usize) -> Vec<f64> {
        let q = 1.0 - p;
        let mut probs = Vec::with_capacity(cells + 1);
        let mut pmf = (n as f64 * (-p).ln_1p()).exp();
        let mut cum = 0.0;
        for k in 0..cells {
            probs.push(pmf);
            cum += pmf;
            pmf *= (n - k as u64) as f64 / (k as f64 + 1.0) * (p / q);
        }
        probs.push((1.0 - cum).max(0.0));
        probs
    }

    /// Pearson χ² of observed counts against cell probabilities, with the
    /// tail cell absorbing everything ≥ cells.
    fn chi_square(observed: &[u64], probs: &[f64]) -> (f64, usize) {
        let n: u64 = observed.iter().sum();
        let mut stat = 0.0;
        let mut df = 0usize;
        for (&o, &e) in observed.iter().zip(probs) {
            let expect = e * n as f64;
            if expect < 5.0 {
                assert!(
                    (o as f64 - expect).abs() < 30.0,
                    "sparse cell deviates wildly: observed {o}, expected {expect}"
                );
                continue;
            }
            let d = o as f64 - expect;
            stat += d * d / expect;
            df += 1;
        }
        (stat, df.saturating_sub(1))
    }

    /// Pathological parameters — astronomically large `n` with `p` scaled so
    /// `n·p = 5` stays in the BINV regime. The old fallback could hand such
    /// draws to BTPE (invalid for `n·p < 10`); the sampler must match the
    /// exact binomial distribution, verified by χ².
    #[test]
    fn huge_n_tiny_p_matches_exact_distribution() {
        let n: u64 = 1 << 40;
        let p = 5.0 / n as f64;
        let draws = 40_000usize;
        let cells = 16usize;
        let mut rng = SmallRng::seed_from_u64(77);
        let mut hist = vec![0u64; cells + 1];
        for _ in 0..draws {
            let x = binomial(&mut rng, n, p).unwrap();
            hist[(x as usize).min(cells)] += 1;
        }
        let probs = binomial_cell_probs(n, p, cells);
        let (stat, df) = chi_square(&hist, &probs);
        // Wilson–Hilferty critical value at z ≈ 4.5 (one-sided ~3e-6).
        let k = df as f64;
        let t = 1.0 - 2.0 / (9.0 * k) + 4.5 * (2.0 / (9.0 * k)).sqrt();
        let critical = k * t * t * t;
        assert!(stat < critical, "chi^2 {stat:.2} over {df} df exceeds {critical:.2}: {hist:?}");
    }

    /// Drive `binv` directly into the `q^n` underflow branch (parameters no
    /// public dispatch produces) and check the split recursion still
    /// samples the exact distribution's first two moments.
    #[test]
    fn binv_underflow_split_keeps_moments() {
        let n = 4000u64;
        let p = 0.45; // q^n = 0.55^4000 underflows to 0.0
        assert_eq!((1.0f64 - p).powf(n as f64), 0.0, "test must hit the underflow branch");
        let draws = 40_000usize;
        let mut rng = SmallRng::seed_from_u64(78);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..draws {
            let x = binv(&mut rng, n, p) as f64;
            assert!(x <= n as f64);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / draws as f64;
        let var = sumsq / draws as f64 - mean * mean;
        let true_mean = n as f64 * p;
        let true_var = true_mean * (1.0 - p);
        let se = (true_var / draws as f64).sqrt();
        assert!((mean - true_mean).abs() < 5.0 * se, "split mean {mean} vs {true_mean}");
        assert!((var - true_var).abs() < 0.1 * true_var, "split var {var} vs {true_var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(binomial(&mut a, 1000, 0.3).unwrap(), binomial(&mut b, 1000, 0.3).unwrap());
        }
    }
}
