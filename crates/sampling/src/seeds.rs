//! Deterministic seed derivation for reproducible parallel experiments.
//!
//! This module is the **single root of derived randomness** in the
//! workspace. Every per-trial stream — an ensemble replica's xoshiro
//! generator, a counter-mode Philox key, a [`SeedSequence`] fan-out —
//! passes through [`split_seed`] exactly once:
//!
//! * xoshiro trials: [`seeded_rng`]`(base, trial)` =
//!   `SmallRng::seed_from_u64(split_seed(base, trial))`. `Ensemble` and
//!   `DrawStream::for_trial(RngMode::Xoshiro, …)` both use this
//!   constructor rather than re-wrapping `split_seed` themselves.
//! * counter trials: the Philox key words are
//!   `split_seed(base, KEY_STREAM_{0,1})` (see [`crate::counter`]); the
//!   trial index moves into the counter block instead of the seed.
//!
//! Keeping one constructor means a reproducibility header of
//! `(rng mode, base seed)` pins every stream in a run.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Mix a base seed with a stream index into an independent-looking seed
/// (SplitMix64 finalizer, applied twice for good measure).
///
/// Experiments that fan out over seeds/threads derive per-trial seeds as
/// `split_seed(base, trial)` so results are reproducible regardless of
/// thread scheduling.
pub fn split_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fast, seeded RNG for the given `(base, stream)` pair.
pub fn seeded_rng(base: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(split_seed(base, stream))
}

/// An iterator over derived seeds: `split_seed(base, 0), split_seed(base, 1), …`.
///
/// # Example
///
/// ```
/// use congames_sampling::SeedSequence;
/// let seeds: Vec<u64> = SeedSequence::new(42).take(3).collect();
/// assert_eq!(seeds.len(), 3);
/// assert_ne!(seeds[0], seeds[1]);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    base: u64,
    next: u64,
}

impl SeedSequence {
    /// Start a sequence derived from `base`.
    pub fn new(base: u64) -> Self {
        SeedSequence { base, next: 0 }
    }
}

impl Iterator for SeedSequence {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let s = split_seed(self.base, self.next);
        self.next = self.next.wrapping_add(1);
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_seed_is_deterministic() {
        assert_eq!(split_seed(1, 2), split_seed(1, 2));
        assert_ne!(split_seed(1, 2), split_seed(1, 3));
        assert_ne!(split_seed(1, 2), split_seed(2, 2));
    }

    #[test]
    fn derived_seeds_have_no_easy_collisions() {
        let mut seen = HashSet::new();
        for base in 0..20u64 {
            for stream in 0..200u64 {
                assert!(seen.insert(split_seed(base, stream)), "collision at {base},{stream}");
            }
        }
    }

    #[test]
    fn seeded_rng_reproducible() {
        use rand::Rng;
        let mut a = seeded_rng(7, 3);
        let mut b = seeded_rng(7, 3);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn sequence_matches_split_seed() {
        let seq: Vec<u64> = SeedSequence::new(5).take(4).collect();
        assert_eq!(
            seq,
            vec![split_seed(5, 0), split_seed(5, 1), split_seed(5, 2), split_seed(5, 3)]
        );
    }
}
