//! The `DrawStream` abstraction: one draw interface, two RNG backends.
//!
//! Every randomized kernel in the workspace draws through [`DrawRng`]: the
//! [`Rng`] interface plus two *positioning hooks*, [`begin_round`] and
//! [`begin_site`]. For the sequential xoshiro backend the hooks are no-ops
//! and the consumed stream is bit-identical to passing the raw [`SmallRng`]
//! (all historical pins hold unmodified); for the counter backend they
//! reposition the [`CounterRng`] so each draw is addressed by
//! `(trial, round, site, index)` — see [`crate::counter`] for the key
//! schedule.
//!
//! [`begin_round`]: DrawRng::begin_round
//! [`begin_site`]: DrawRng::begin_site

use crate::counter::CounterRng;
use crate::seeds::seeded_rng;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

/// Which RNG backend an experiment draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RngMode {
    /// Sequential xoshiro256++ per trial (the historical default; all
    /// pre-existing bit pins are in this mode).
    Xoshiro,
    /// Counter-based Philox 4×64, addressed by `(trial, round, site,
    /// index)` — bit-identical across thread/shard counts by construction.
    Counter,
}

impl RngMode {
    /// The canonical lowercase name (`"xoshiro"` / `"counter"`), as
    /// accepted by `--rng` and printed in reproducibility headers.
    pub fn name(self) -> &'static str {
        match self {
            RngMode::Xoshiro => "xoshiro",
            RngMode::Counter => "counter",
        }
    }

    /// Parse a canonical name back into a mode.
    pub fn parse(s: &str) -> Option<RngMode> {
        match s {
            "xoshiro" => Some(RngMode::Xoshiro),
            "counter" => Some(RngMode::Counter),
            _ => None,
        }
    }

    /// Stable single-byte wire code (shard headers).
    pub fn code(self) -> u8 {
        match self {
            RngMode::Xoshiro => 0,
            RngMode::Counter => 1,
        }
    }

    /// Decode a wire code written by [`RngMode::code`].
    pub fn from_code(code: u8) -> Option<RngMode> {
        match code {
            0 => Some(RngMode::Xoshiro),
            1 => Some(RngMode::Counter),
            _ => None,
        }
    }
}

impl std::fmt::Display for RngMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// [`Rng`] plus stream-positioning hooks.
///
/// Kernels call [`begin_round`](DrawRng::begin_round) once per concurrent
/// round and [`begin_site`](DrawRng::begin_site) once per draw site (origin
/// strategy, player, …) before drawing. Sequential generators ignore the
/// hooks (default no-op bodies), so threading `DrawRng` through a kernel
/// does not perturb an existing sequential stream by a single bit.
pub trait DrawRng: Rng {
    /// Position the stream at the start of `round`.
    #[inline]
    fn begin_round(&mut self, round: u64) {
        let _ = round;
    }

    /// Position the stream at the start of `site` within the current round.
    #[inline]
    fn begin_site(&mut self, site: u64) {
        let _ = site;
    }
}

/// Sequential backend: the hooks are no-ops, the stream is untouched.
impl DrawRng for SmallRng {}

impl DrawRng for CounterRng {
    #[inline]
    fn begin_round(&mut self, round: u64) {
        CounterRng::begin_round(self, round);
    }

    #[inline]
    fn begin_site(&mut self, site: u64) {
        CounterRng::begin_site(self, site);
    }
}

impl<R: DrawRng + ?Sized> DrawRng for &mut R {
    #[inline]
    fn begin_round(&mut self, round: u64) {
        (**self).begin_round(round);
    }

    #[inline]
    fn begin_site(&mut self, site: u64) {
        (**self).begin_site(site);
    }
}

/// A trial's random stream under either backend.
///
/// [`DrawStream::for_trial`] is the single constructor for per-trial
/// randomness: both arms root in [`crate::split_seed`], so the mapping from
/// `(mode, base_seed, trial)` to a stream is fully documented by
/// `seeds.rs` plus the [`crate::counter`] key schedule.
#[derive(Debug, Clone)]
pub enum DrawStream {
    /// Sequential xoshiro256++ seeded with `split_seed(base_seed, trial)` —
    /// exactly the stream `seeded_rng(base_seed, trial)` produces.
    Xoshiro(SmallRng),
    /// Counter-mode Philox stream for the trial.
    Counter(CounterRng),
}

impl DrawStream {
    /// The stream for replica `trial` of the experiment keyed by
    /// `base_seed`, under `mode`.
    pub fn for_trial(mode: RngMode, base_seed: u64, trial: u64) -> DrawStream {
        match mode {
            RngMode::Xoshiro => DrawStream::Xoshiro(seeded_rng(base_seed, trial)),
            RngMode::Counter => DrawStream::Counter(CounterRng::for_trial(base_seed, trial)),
        }
    }

    /// Wrap an already-seeded sequential generator (single-run CLI path,
    /// which historically seeds `SmallRng` directly from the user seed).
    pub fn from_small_rng(rng: SmallRng) -> DrawStream {
        DrawStream::Xoshiro(rng)
    }

    /// Which backend this stream draws from.
    pub fn mode(&self) -> RngMode {
        match self {
            DrawStream::Xoshiro(_) => RngMode::Xoshiro,
            DrawStream::Counter(_) => RngMode::Counter,
        }
    }
}

impl RngCore for DrawStream {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        match self {
            DrawStream::Xoshiro(r) => r.next_u32(),
            DrawStream::Counter(r) => r.next_u32(),
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self {
            DrawStream::Xoshiro(r) => r.next_u64(),
            DrawStream::Counter(r) => r.next_u64(),
        }
    }
}

impl DrawRng for DrawStream {
    #[inline]
    fn begin_round(&mut self, round: u64) {
        match self {
            DrawStream::Xoshiro(_) => {}
            DrawStream::Counter(r) => r.begin_round(round),
        }
    }

    #[inline]
    fn begin_site(&mut self, site: u64) {
        match self {
            DrawStream::Xoshiro(_) => {}
            DrawStream::Counter(r) => r.begin_site(site),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_stream_matches_seeded_rng_bit_for_bit() {
        let mut stream = DrawStream::for_trial(RngMode::Xoshiro, 11, 4);
        let mut raw = seeded_rng(11, 4);
        // Interleave positioning hooks to prove they do not perturb the
        // sequential stream.
        stream.begin_round(3);
        for i in 0..32u64 {
            stream.begin_site(i);
            assert_eq!(stream.next_u64(), raw.next_u64());
        }
    }

    #[test]
    fn counter_stream_honors_positioning() {
        let mut stream = DrawStream::for_trial(RngMode::Counter, 11, 4);
        stream.begin_round(9);
        stream.begin_site(2);
        let first = stream.next_u64();
        assert_eq!(first, CounterRng::at(11, 4, 9, 2, 0));
    }

    #[test]
    fn mode_round_trips_through_names_and_codes() {
        for mode in [RngMode::Xoshiro, RngMode::Counter] {
            assert_eq!(RngMode::parse(mode.name()), Some(mode));
            assert_eq!(RngMode::from_code(mode.code()), Some(mode));
            assert_eq!(DrawStream::for_trial(mode, 1, 0).mode(), mode);
        }
        assert_eq!(RngMode::parse("philox"), None);
        assert_eq!(RngMode::from_code(9), None);
    }
}
