//! Multinomial sampling via conditional binomials.

use rand::Rng;

use crate::binomial::binomial;
use crate::error::SamplingError;

/// Sample counts `(k_1, …, k_c)` from `Multinomial(n, probs)` where `probs`
/// must sum to (approximately) one.
///
/// Uses the standard conditional-binomial decomposition:
/// `k_1 ~ Bin(n, p_1)`, `k_2 ~ Bin(n − k_1, p_2/(1 − p_1))`, ….
///
/// # Errors
///
/// Returns [`SamplingError::InvalidWeights`] if `probs` is empty, contains
/// negatives/NaNs, or sums to something not within `1e-9` of one.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let counts = congames_sampling::multinomial(&mut rng, 100, &[0.2, 0.3, 0.5])?;
/// assert_eq!(counts.iter().sum::<u64>(), 100);
/// # Ok::<(), congames_sampling::SamplingError>(())
/// ```
pub fn multinomial(rng: &mut impl Rng, n: u64, probs: &[f64]) -> Result<Vec<u64>, SamplingError> {
    validate_probs(probs)?;
    let total: f64 = probs.iter().sum();
    if (total - 1.0).abs() > 1e-9 {
        return Err(SamplingError::InvalidWeights { message: "probabilities must sum to 1" });
    }
    let mut counts = vec![0u64; probs.len()];
    let rest = conditional_binomials(rng, n, probs, total, &mut counts)?;
    // Numerical slack can leave a handful of trials unassigned. Assign them
    // to the *largest*-probability category: dumping them into whatever
    // category happens to be last would hand trials to a zero-probability
    // destination whenever `probs` ends in 0.
    if rest > 0 {
        counts[slack_index(probs)] += rest;
    }
    Ok(counts)
}

/// The category that absorbs numerical slack: the index of the largest
/// probability (ties break to the first). Routing slack here keeps the
/// relative distortion minimal and — the important invariant — never
/// assigns trials to a zero-probability category.
fn slack_index(probs: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &p) in probs.iter().enumerate().skip(1) {
        if p > probs[best] {
            best = i;
        }
    }
    best
}

/// Sample counts from the *sub*-probability vector `probs`
/// (`Σ probs ≤ 1`); the remaining mass is the implicit "rest" category
/// (e.g. players who do not migrate). Returns `(counts, rest)` with
/// `Σ counts + rest = n`.
///
/// This is the primitive the aggregate round engine uses: `probs[j]` is the
/// per-player probability of migrating to destination `j` and the rest
/// category is "stay put".
///
/// # Errors
///
/// Returns [`SamplingError::InvalidWeights`] if `probs` contains
/// negatives/NaNs or sums to more than `1 + 1e-9`.
pub fn multinomial_with_rest(
    rng: &mut impl Rng,
    n: u64,
    probs: &[f64],
) -> Result<(Vec<u64>, u64), SamplingError> {
    let mut counts = Vec::new();
    let rest = multinomial_with_rest_into(rng, n, probs, &mut counts)?;
    Ok((counts, rest))
}

/// Allocation-free variant of [`multinomial_with_rest`]: clears and fills
/// the caller-provided `counts` buffer (growing it only if its capacity is
/// insufficient) and returns the rest count.
///
/// This is the primitive the aggregate round engine calls once per origin
/// strategy per round; reusing `counts` across calls keeps the round loop
/// free of steady-state heap allocations.
///
/// # Errors
///
/// Same contract as [`multinomial_with_rest`].
pub fn multinomial_with_rest_into(
    rng: &mut impl Rng,
    n: u64,
    probs: &[f64],
    counts: &mut Vec<u64>,
) -> Result<u64, SamplingError> {
    validate_probs(probs)?;
    let total: f64 = probs.iter().sum();
    if total > 1.0 + 1e-9 {
        return Err(SamplingError::InvalidWeights {
            message: "sub-probabilities must sum to at most 1",
        });
    }
    counts.clear();
    counts.resize(probs.len(), 0);
    conditional_binomials(rng, n, probs, 1.0, counts)
}

fn validate_probs(probs: &[f64]) -> Result<(), SamplingError> {
    if probs.is_empty() {
        return Err(SamplingError::InvalidWeights { message: "empty probability vector" });
    }
    if probs.iter().any(|p| !p.is_finite() || *p < 0.0) {
        return Err(SamplingError::InvalidWeights {
            message: "probabilities must be finite and non-negative",
        });
    }
    Ok(())
}

/// Shared inner loop: sequentially draw `Bin(remaining, p_i / mass_left)`
/// into the pre-zeroed `counts` slice; returns the unassigned remainder.
fn conditional_binomials(
    rng: &mut impl Rng,
    n: u64,
    probs: &[f64],
    total_mass: f64,
    counts: &mut [u64],
) -> Result<u64, SamplingError> {
    let mut remaining = n;
    let mut mass_left = total_mass;
    for (i, &p) in probs.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if p <= 0.0 {
            continue;
        }
        if mass_left <= 0.0 {
            break;
        }
        let cond = (p / mass_left).clamp(0.0, 1.0);
        let k = binomial(rng, remaining, cond)?;
        counts[i] = k;
        remaining -= k;
        mass_left -= p;
    }
    Ok(remaining)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn counts_sum_to_n() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = multinomial(&mut rng, 1000, &[0.1, 0.2, 0.3, 0.4]).unwrap();
            assert_eq!(c.iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn with_rest_conserves_players() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let (c, rest) = multinomial_with_rest(&mut rng, 500, &[0.05, 0.1]).unwrap();
            assert_eq!(c.iter().sum::<u64>() + rest, 500);
        }
    }

    #[test]
    fn means_match_probabilities() {
        let mut rng = SmallRng::seed_from_u64(3);
        let probs = [0.15, 0.35, 0.5];
        let n = 2000u64;
        let draws = 3000;
        let mut sums = [0.0f64; 3];
        for _ in 0..draws {
            let c = multinomial(&mut rng, n, &probs).unwrap();
            for i in 0..3 {
                sums[i] += c[i] as f64;
            }
        }
        for i in 0..3 {
            let mean = sums[i] / draws as f64;
            let expect = n as f64 * probs[i];
            let se = (n as f64 * probs[i] * (1.0 - probs[i]) / draws as f64).sqrt();
            assert!((mean - expect).abs() < 5.0 * se, "category {i}: mean {mean} vs {expect}");
        }
    }

    #[test]
    fn rest_mean_matches() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 1000u64;
        let draws = 5000;
        let mut rest_sum = 0.0;
        for _ in 0..draws {
            let (_, rest) = multinomial_with_rest(&mut rng, n, &[0.2, 0.1]).unwrap();
            rest_sum += rest as f64;
        }
        let mean = rest_sum / draws as f64;
        assert!((mean - 700.0).abs() < 5.0, "rest mean {mean}");
    }

    #[test]
    fn zero_probability_categories_get_zero() {
        let mut rng = SmallRng::seed_from_u64(5);
        let c = multinomial(&mut rng, 100, &[0.0, 1.0, 0.0]).unwrap();
        assert_eq!(c, vec![0, 100, 0]);
    }

    /// Regression: numerical slack (`rest > 0` after the conditional
    /// binomials) used to be dumped into the *last* category even when its
    /// probability is exactly zero, so a zero-probability destination could
    /// receive trials. The slack must go to the largest-probability
    /// category instead.
    #[test]
    fn slack_never_lands_on_zero_probability_category() {
        // The routing rule itself, including a trailing zero and ties.
        assert_eq!(slack_index(&[0.2, 0.5, 0.3, 0.0]), 1);
        assert_eq!(slack_index(&[0.0, 1.0]), 1);
        assert_eq!(slack_index(&[0.5, 0.5]), 0, "ties break to the first index");
        // End-to-end invariant over a perturbed vector whose total is only
        // 1 within the 1e-9 tolerance: zero-probability categories must
        // stay empty for every draw, slack or not.
        let probs = [0.2, 0.0, 0.3, 0.49999999995, 0.0];
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..2000 {
            let c = multinomial(&mut rng, 10_000, &probs).unwrap();
            assert_eq!(c.iter().sum::<u64>(), 10_000);
            assert_eq!(c[1], 0, "zero-probability category received trials: {c:?}");
            assert_eq!(c[4], 0, "zero-probability category received trials: {c:?}");
        }
    }

    #[test]
    fn into_variant_reuses_buffer_and_matches() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let mut buf = Vec::new();
        for _ in 0..50 {
            let (c, rest) = multinomial_with_rest(&mut a, 300, &[0.1, 0.25]).unwrap();
            let rest2 = multinomial_with_rest_into(&mut b, 300, &[0.1, 0.25], &mut buf).unwrap();
            assert_eq!(c, buf);
            assert_eq!(rest, rest2);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(multinomial(&mut rng, 10, &[]).is_err());
        assert!(multinomial(&mut rng, 10, &[0.5, 0.6]).is_err());
        assert!(multinomial(&mut rng, 10, &[-0.1, 1.1]).is_err());
        assert!(multinomial_with_rest(&mut rng, 10, &[0.9, 0.2]).is_err());
        assert!(multinomial_with_rest(&mut rng, 10, &[f64::NAN]).is_err());
    }

    #[test]
    fn n_zero_gives_zeros() {
        let mut rng = SmallRng::seed_from_u64(7);
        let c = multinomial(&mut rng, 0, &[0.5, 0.5]).unwrap();
        assert_eq!(c, vec![0, 0]);
    }
}
