//! Multinomial sampling via conditional binomials.

use rand::Rng;

use crate::binomial::binomial;
use crate::error::SamplingError;

/// Sample counts `(k_1, …, k_c)` from `Multinomial(n, probs)` where `probs`
/// must sum to (approximately) one.
///
/// Uses the standard conditional-binomial decomposition:
/// `k_1 ~ Bin(n, p_1)`, `k_2 ~ Bin(n − k_1, p_2/(1 − p_1))`, ….
///
/// # Errors
///
/// Returns [`SamplingError::InvalidWeights`] if `probs` is empty, contains
/// negatives/NaNs, or sums to something not within `1e-9` of one.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let counts = congames_sampling::multinomial(&mut rng, 100, &[0.2, 0.3, 0.5])?;
/// assert_eq!(counts.iter().sum::<u64>(), 100);
/// # Ok::<(), congames_sampling::SamplingError>(())
/// ```
pub fn multinomial(rng: &mut impl Rng, n: u64, probs: &[f64]) -> Result<Vec<u64>, SamplingError> {
    validate_probs(probs)?;
    let total: f64 = probs.iter().sum();
    if (total - 1.0).abs() > 1e-9 {
        return Err(SamplingError::InvalidWeights { message: "probabilities must sum to 1" });
    }
    let (mut counts, rest) = conditional_binomials(rng, n, probs, total)?;
    // Numerical slack can leave a handful of trials unassigned; they belong
    // to the last category by the normalization above.
    if rest > 0 {
        if let Some(last) = counts.last_mut() {
            *last += rest;
        }
    }
    Ok(counts)
}

/// Sample counts from the *sub*-probability vector `probs`
/// (`Σ probs ≤ 1`); the remaining mass is the implicit "rest" category
/// (e.g. players who do not migrate). Returns `(counts, rest)` with
/// `Σ counts + rest = n`.
///
/// This is the primitive the aggregate round engine uses: `probs[j]` is the
/// per-player probability of migrating to destination `j` and the rest
/// category is "stay put".
///
/// # Errors
///
/// Returns [`SamplingError::InvalidWeights`] if `probs` contains
/// negatives/NaNs or sums to more than `1 + 1e-9`.
pub fn multinomial_with_rest(
    rng: &mut impl Rng,
    n: u64,
    probs: &[f64],
) -> Result<(Vec<u64>, u64), SamplingError> {
    validate_probs(probs)?;
    let total: f64 = probs.iter().sum();
    if total > 1.0 + 1e-9 {
        return Err(SamplingError::InvalidWeights {
            message: "sub-probabilities must sum to at most 1",
        });
    }
    conditional_binomials(rng, n, probs, 1.0)
}

fn validate_probs(probs: &[f64]) -> Result<(), SamplingError> {
    if probs.is_empty() {
        return Err(SamplingError::InvalidWeights { message: "empty probability vector" });
    }
    if probs.iter().any(|p| !p.is_finite() || *p < 0.0) {
        return Err(SamplingError::InvalidWeights {
            message: "probabilities must be finite and non-negative",
        });
    }
    Ok(())
}

/// Shared inner loop: sequentially draw `Bin(remaining, p_i / mass_left)`.
fn conditional_binomials(
    rng: &mut impl Rng,
    n: u64,
    probs: &[f64],
    total_mass: f64,
) -> Result<(Vec<u64>, u64), SamplingError> {
    let mut counts = vec![0u64; probs.len()];
    let mut remaining = n;
    let mut mass_left = total_mass;
    for (i, &p) in probs.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if p <= 0.0 {
            continue;
        }
        if mass_left <= 0.0 {
            break;
        }
        let cond = (p / mass_left).clamp(0.0, 1.0);
        let k = binomial(rng, remaining, cond)?;
        counts[i] = k;
        remaining -= k;
        mass_left -= p;
    }
    Ok((counts, remaining))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn counts_sum_to_n() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = multinomial(&mut rng, 1000, &[0.1, 0.2, 0.3, 0.4]).unwrap();
            assert_eq!(c.iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn with_rest_conserves_players() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let (c, rest) = multinomial_with_rest(&mut rng, 500, &[0.05, 0.1]).unwrap();
            assert_eq!(c.iter().sum::<u64>() + rest, 500);
        }
    }

    #[test]
    fn means_match_probabilities() {
        let mut rng = SmallRng::seed_from_u64(3);
        let probs = [0.15, 0.35, 0.5];
        let n = 2000u64;
        let draws = 3000;
        let mut sums = [0.0f64; 3];
        for _ in 0..draws {
            let c = multinomial(&mut rng, n, &probs).unwrap();
            for i in 0..3 {
                sums[i] += c[i] as f64;
            }
        }
        for i in 0..3 {
            let mean = sums[i] / draws as f64;
            let expect = n as f64 * probs[i];
            let se = (n as f64 * probs[i] * (1.0 - probs[i]) / draws as f64).sqrt();
            assert!((mean - expect).abs() < 5.0 * se, "category {i}: mean {mean} vs {expect}");
        }
    }

    #[test]
    fn rest_mean_matches() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 1000u64;
        let draws = 5000;
        let mut rest_sum = 0.0;
        for _ in 0..draws {
            let (_, rest) = multinomial_with_rest(&mut rng, n, &[0.2, 0.1]).unwrap();
            rest_sum += rest as f64;
        }
        let mean = rest_sum / draws as f64;
        assert!((mean - 700.0).abs() < 5.0, "rest mean {mean}");
    }

    #[test]
    fn zero_probability_categories_get_zero() {
        let mut rng = SmallRng::seed_from_u64(5);
        let c = multinomial(&mut rng, 100, &[0.0, 1.0, 0.0]).unwrap();
        assert_eq!(c, vec![0, 100, 0]);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(multinomial(&mut rng, 10, &[]).is_err());
        assert!(multinomial(&mut rng, 10, &[0.5, 0.6]).is_err());
        assert!(multinomial(&mut rng, 10, &[-0.1, 1.1]).is_err());
        assert!(multinomial_with_rest(&mut rng, 10, &[0.9, 0.2]).is_err());
        assert!(multinomial_with_rest(&mut rng, 10, &[f64::NAN]).is_err());
    }

    #[test]
    fn n_zero_gives_zeros() {
        let mut rng = SmallRng::seed_from_u64(7);
        let c = multinomial(&mut rng, 0, &[0.5, 0.5]).unwrap();
        assert_eq!(c, vec![0, 0]);
    }
}
