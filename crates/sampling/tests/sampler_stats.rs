//! Distributional correctness of the hot-path samplers: χ² goodness-of-fit
//! against exact probabilities for `binomial` (all three internal paths),
//! `multinomial_with_rest`, and the Walker–Vose alias table.
//!
//! The per-round engine correctness of the whole project reduces to these
//! samplers being *exact* (not just right in mean and variance), so this
//! suite tests full distributions. Tolerances come from
//! `congames_testutil::stats` at z = 4.5 (≈ 7e-6 false-failure rate per
//! assertion); all seeds are pinned through `fixture_rng`.

use congames_sampling::{binomial, multinomial, multinomial_with_rest, AliasTable};
use congames_testutil::rng::fixture_rng;
use congames_testutil::stats::{assert_chi_square_fits, assert_close};

/// Exact Binomial(n, p) pmf by the stable multiplicative recurrence.
fn binomial_pmf(n: u64, p: f64) -> Vec<f64> {
    let q = 1.0 - p;
    let mut pmf = vec![0.0f64; n as usize + 1];
    // Start from the largest representable endpoint to avoid underflow for
    // moderate n; for the n used here (≤ 400), q^n is representable.
    pmf[0] = q.powi(n as i32);
    for k in 1..=n as usize {
        let kf = k as f64;
        pmf[k] = pmf[k - 1] * ((n as f64 - kf + 1.0) / kf) * (p / q);
    }
    pmf
}

/// χ² of `draws` samples of `binomial(n, p)` against the exact pmf.
fn check_binomial_fit(label: &str, n: u64, p: f64, draws: u64) {
    let mut rng = fixture_rng(label, 0);
    let mut counts = vec![0u64; n as usize + 1];
    for _ in 0..draws {
        counts[binomial(&mut rng, n, p).expect("valid parameters") as usize] += 1;
    }
    let pmf = binomial_pmf(n, p);
    assert_chi_square_fits(&counts, &pmf, 4.5, label);
}

#[test]
fn binomial_bernoulli_path_is_exact() {
    // n ≤ 32 routes to the Bernoulli-sum path.
    check_binomial_fit("chi2/binomial-bernoulli", 20, 0.3, 40_000);
}

#[test]
fn binomial_binv_path_is_exact() {
    // n > 32 with n·min(p,q) < 10 routes to BINV.
    check_binomial_fit("chi2/binomial-binv", 100, 0.05, 40_000);
    check_binomial_fit("chi2/binomial-binv-2", 400, 0.02, 40_000);
}

#[test]
fn binomial_btpe_path_is_exact() {
    // n·min(p,q) ≥ 10 routes to BTPE.
    check_binomial_fit("chi2/binomial-btpe", 100, 0.3, 40_000);
    check_binomial_fit("chi2/binomial-btpe-2", 300, 0.5, 40_000);
}

#[test]
fn binomial_flipped_p_is_exact() {
    // p > 0.5 exercises the flip-and-complement wrapper around each path.
    check_binomial_fit("chi2/binomial-flip-bernoulli", 20, 0.8, 40_000);
    check_binomial_fit("chi2/binomial-flip-btpe", 100, 0.7, 40_000);
}

#[test]
fn multinomial_with_rest_marginals_are_exact() {
    // Each component of a multinomial is marginally Binomial(n, p_i), and
    // the rest category is Binomial(n, 1 − Σp). Aggregating draws gives a
    // χ²-testable per-category table.
    let probs = [0.10, 0.25, 0.05, 0.20];
    let rest_p = 1.0 - probs.iter().sum::<f64>();
    let n = 50u64;
    let draws = 20_000u64;
    let mut rng = fixture_rng("chi2/multinomial-rest", 0);
    let mut totals = vec![0u64; probs.len() + 1];
    for _ in 0..draws {
        let (counts, rest) =
            multinomial_with_rest(&mut rng, n, &probs).expect("valid sub-probabilities");
        assert_eq!(counts.iter().sum::<u64>() + rest, n, "counts + rest must equal n");
        for (t, c) in totals.iter_mut().zip(counts.iter().chain(std::iter::once(&rest))) {
            *t += c;
        }
    }
    // The pooled table of n·draws category picks follows the cell
    // probabilities exactly (sums of independent multinomials).
    let mut cell_probs: Vec<f64> = probs.to_vec();
    cell_probs.push(rest_p);
    assert_chi_square_fits(&totals, &cell_probs, 4.5, "multinomial_with_rest totals");
}

#[test]
fn multinomial_full_vector_is_exact() {
    let probs = [0.2, 0.3, 0.5];
    let n = 64u64;
    let draws = 20_000u64;
    let mut rng = fixture_rng("chi2/multinomial-full", 0);
    let mut totals = vec![0u64; probs.len()];
    for _ in 0..draws {
        let counts = multinomial(&mut rng, n, &probs).expect("valid probabilities");
        assert_eq!(counts.iter().sum::<u64>(), n, "multinomial must assign every trial");
        for (t, c) in totals.iter_mut().zip(&counts) {
            *t += c;
        }
    }
    assert_chi_square_fits(&totals, &probs, 4.5, "multinomial totals");
}

#[test]
fn multinomial_with_rest_joint_distribution_small_case() {
    // Exhaustive joint check on a tiny case: n = 2 over probs (p, q) with
    // rest r. The joint outcome (k1, k2) has a closed form; χ² over all
    // 6 outcomes validates the *joint* distribution, not just marginals.
    let (p, q) = (0.3f64, 0.2f64);
    let r = 1.0 - p - q;
    let n = 2u64;
    let draws = 30_000u64;
    let mut rng = fixture_rng("chi2/multinomial-joint", 0);
    // Outcomes indexed as (k1, k2) with k1 + k2 ≤ 2.
    let outcomes = [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 0)];
    let multi = |k1: u64, k2: u64| -> f64 {
        let k3 = n - k1 - k2;
        let fact = |k: u64| -> f64 { (1..=k).map(|i| i as f64).product::<f64>().max(1.0) };
        fact(n) / (fact(k1) * fact(k2) * fact(k3))
            * p.powi(k1 as i32)
            * q.powi(k2 as i32)
            * r.powi(k3 as i32)
    };
    let probs: Vec<f64> = outcomes.iter().map(|&(a, b)| multi(a, b)).collect();
    let mut counts = vec![0u64; outcomes.len()];
    for _ in 0..draws {
        let (ks, rest) = multinomial_with_rest(&mut rng, n, &[p, q]).expect("valid");
        assert_eq!(ks[0] + ks[1] + rest, n);
        let idx = outcomes
            .iter()
            .position(|&(a, b)| (a, b) == (ks[0], ks[1]))
            .expect("outcome in support");
        counts[idx] += 1;
    }
    assert_chi_square_fits(&counts, &probs, 4.5, "multinomial joint (n=2)");
}

#[test]
fn alias_table_matches_weights() {
    let weights = [1.0f64, 4.0, 2.0, 0.5, 2.5];
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let table = AliasTable::new(&weights).expect("valid weights");
    let mut rng = fixture_rng("chi2/alias", 0);
    let mut counts = vec![0u64; weights.len()];
    for _ in 0..100_000 {
        counts[table.sample(&mut rng)] += 1;
    }
    assert_chi_square_fits(&counts, &probs, 4.5, "alias table draws");
}

#[test]
fn alias_table_skewed_weights_match() {
    // Heavy skew exercises the alias construction's small/large worklists.
    let weights = [1000.0f64, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let table = AliasTable::new(&weights).expect("valid weights");
    let mut rng = fixture_rng("chi2/alias-skew", 0);
    let mut counts = vec![0u64; weights.len()];
    for _ in 0..200_000 {
        counts[table.sample(&mut rng)] += 1;
    }
    assert_chi_square_fits(&counts, &probs, 4.5, "skewed alias draws");
}

#[test]
fn alias_table_zero_weight_categories_never_drawn() {
    let weights = [2.0f64, 0.0, 3.0, 0.0];
    let table = AliasTable::new(&weights).expect("valid weights");
    let mut rng = fixture_rng("chi2/alias-zero", 0);
    let mut counts = vec![0u64; weights.len()];
    for _ in 0..50_000 {
        counts[table.sample(&mut rng)] += 1;
    }
    assert_eq!(counts[1], 0, "zero-weight category was drawn");
    assert_eq!(counts[3], 0, "zero-weight category was drawn");
    let probs = [0.4, 0.0, 0.6, 0.0];
    assert_chi_square_fits(&counts, &probs, 4.5, "alias with zero weights");
}

#[test]
fn binomial_pmf_helper_is_a_distribution() {
    for &(n, p) in &[(20u64, 0.3f64), (100, 0.05), (300, 0.5)] {
        let pmf = binomial_pmf(n, p);
        assert_close(pmf.iter().sum::<f64>(), 1.0, 1e-9, "pmf normalization");
        let mean: f64 = pmf.iter().enumerate().map(|(k, q)| k as f64 * q).sum();
        assert_close(mean, n as f64 * p, 1e-6, "pmf mean");
    }
}
