//! Distributional quality of the counter-mode (`Philox 4×64`) streams,
//! under the same `congames-testutil` χ²/KS machinery the samplers use:
//!
//! * **per-site uniformity** — the word stream of each addressed site must
//!   be uniform (χ² over equiprobable buckets at z = 4.5);
//! * **cross-site independence** — joint bucket occupancy of sites `s` and
//!   `s + lag` must fit the product distribution for a small lag set
//!   (adjacent sites, the player-stride, and a round-crossing lag);
//! * **cross-backend agreement** — counter-mode and xoshiro-mode uniform
//!   variates must realize the same distribution (two-sample KS).
//!
//! These are the batteries that justify using counter mode interchangeably
//! with the sequential stream in the round kernels.

use congames_sampling::{seeded_rng, CounterRng, DrawRng, DrawStream, RngMode};
use congames_testutil::stats::{assert_chi_square_fits, ks_distance, ks_threshold};
use rand::RngCore;

const Z: f64 = 4.5;

/// χ² of `draws` top-bits bucketed words against the uniform pmf.
fn check_uniform(label: &str, words: impl Iterator<Item = u64>, buckets: usize) {
    let mut counts = vec![0u64; buckets];
    let mut total = 0u64;
    for w in words {
        counts[(w >> 32) as usize * buckets / (1usize << 32)] += 1;
        total += 1;
    }
    assert!(total > 0);
    let pmf = vec![1.0 / buckets as f64; buckets];
    assert_chi_square_fits(&counts, &pmf, Z, label);
}

#[test]
fn per_site_streams_are_uniform() {
    // Sites of the kind the engines address: small origin ids and larger
    // player indices, across several rounds and trials.
    for &site in &[0u64, 1, 7, 1024] {
        let mut rng = CounterRng::for_trial(20_090_808, 3);
        let words = (0..40_000u64).map(move |i| {
            // 16 draws per (round, site) scope, cycling rounds, so both
            // the in-block walk and the round coordinate are exercised.
            if i % 16 == 0 {
                rng.begin_round(i / 16);
                rng.begin_site(site);
            }
            rng.next_u64()
        });
        check_uniform(&format!("counter/uniform-site{site}"), words, 16);
    }
}

#[test]
fn cross_site_streams_are_independent() {
    // Joint occupancy of 4×4 buckets for (site, site + lag) must fit the
    // product (uniform) distribution. The lag set covers adjacent sites,
    // a player-stride lag, and a lag crossing the round coordinate.
    for &lag in &[1u64, 7, 64] {
        let mut joint = vec![0u64; 16];
        for round in 0..40_000u64 {
            let a = CounterRng::at(20_090_808, 0, round, 100, 0);
            let b = CounterRng::at(20_090_808, 0, round, 100 + lag, 0);
            let (ba, bb) = ((a >> 62) as usize, (b >> 62) as usize);
            joint[ba * 4 + bb] += 1;
        }
        let pmf = vec![1.0 / 16.0; 16];
        assert_chi_square_fits(&joint, &pmf, Z, &format!("counter/independence-lag{lag}"));
    }
    // Round-to-round independence at a fixed site (lag 1 in the round
    // coordinate): the engines rely on fresh randomness every round.
    let mut joint = vec![0u64; 16];
    for round in 0..40_000u64 {
        let a = CounterRng::at(20_090_808, 0, round, 5, 0);
        let b = CounterRng::at(20_090_808, 0, round + 1, 5, 0);
        joint[(a >> 62) as usize * 4 + (b >> 62) as usize] += 1;
    }
    assert_chi_square_fits(&joint, &[1.0 / 16.0; 16], Z, "counter/independence-round-lag1");
}

#[test]
fn counter_and_xoshiro_word_distributions_agree() {
    // Two-sample KS over a 256-bucket histogram of the top byte: the two
    // backends must be samples of the same (uniform) distribution.
    let n = 100_000u64;
    let mut xoshiro_hist = vec![0u64; 256];
    let mut rng = seeded_rng(20_090_808, 0);
    for _ in 0..n {
        xoshiro_hist[(rng.next_u64() >> 56) as usize] += 1;
    }
    let mut counter_hist = vec![0u64; 256];
    let mut stream = DrawStream::for_trial(RngMode::Counter, 20_090_808, 0);
    for i in 0..n {
        // Walk sites the way a player kernel would: a new site per draw.
        stream.begin_site(i);
        counter_hist[(stream.next_u64() >> 56) as usize] += 1;
    }
    let d = ks_distance(&xoshiro_hist, &counter_hist);
    let thresh = ks_threshold(n as usize, n as usize, 1e-4);
    assert!(
        d <= thresh,
        "counter vs xoshiro word KS distance {d:.5} exceeds {thresh:.5} over {n} draws"
    );
}

#[test]
fn trial_streams_are_mutually_uniform() {
    // Adjacent trials (as an ensemble addresses them) must look like
    // independent uniform streams too: χ² over the interleaving.
    let mut counts = vec![0u64; 16];
    for trial in 0..64u64 {
        let mut rng = CounterRng::for_trial(7, trial);
        rng.begin_round(0);
        rng.begin_site(0);
        for _ in 0..625 {
            counts[(rng.next_u64() >> 60) as usize] += 1;
        }
    }
    assert_chi_square_fits(&counts, &[1.0 / 16.0; 16], Z, "counter/trial-interleave");
}
