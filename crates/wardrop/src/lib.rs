//! # congames-wardrop
//!
//! The continuous (non-atomic) sister model of the paper: a population of
//! infinitesimal agents splits fractionally over the strategies of a
//! symmetric congestion game. This is the setting of Fischer–Räcke–Vöcking
//! (STOC 2006), which the paper cites as the continuous counterpart of its
//! IMITATION PROTOCOL, and it is the `n → ∞` limit that Theorem 9's
//! player-normalized latencies `ℓ(x/n)` converge to.
//!
//! Provided here:
//!
//! * [`FlowState`] — a fractional strategy distribution with derived edge
//!   flows,
//! * the Beckmann potential `Σ_e ∫_0^{f_e} ℓ_e` ([`beckmann_potential`]),
//!   whose minimizers are exactly the Wardrop equilibria,
//! * [`is_wardrop_equilibrium`] — all used strategies within `eps` of the
//!   best strategy,
//! * [`ImitationFlow`] — the deterministic mean-field imitation dynamics
//!   `ẏ_Q = Σ_P y_P·y_Q·(λ/d)·[(ℓ_P − ℓ_Q)/ℓ_P]_+ − (P↔Q)`, integrated by
//!   explicit Euler steps.
//!
//! The integration tests compare trajectories of the *atomic* protocol on
//! player-normalized games against this flow: the gap shrinks as `n` grows,
//! which is the empirical face of the paper's "probabilistic effects vanish
//! in the continuous model" remark (Section 1.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use congames_model::{CongestionGame, GameError, State, StrategyId};

/// A fractional population state over the strategies of a single-class game:
/// non-negative shares summing to the total demand.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowState {
    shares: Vec<f64>,
    demand: f64,
}

impl FlowState {
    /// Create a state from per-strategy volumes.
    ///
    /// # Errors
    ///
    /// Fails if the vector length mismatches the game, the game has more
    /// than one class, or a share is negative/non-finite or all are zero.
    pub fn new(game: &CongestionGame, shares: Vec<f64>) -> Result<Self, GameError> {
        if game.classes().len() != 1 {
            return Err(GameError::InvalidParameter {
                name: "game",
                message: "the Wardrop model is implemented for single-class games",
            });
        }
        if shares.len() != game.num_strategies() {
            return Err(GameError::WrongLength {
                expected: game.num_strategies(),
                found: shares.len(),
            });
        }
        if shares.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(GameError::InvalidParameter {
                name: "shares",
                message: "must be finite and non-negative",
            });
        }
        let demand: f64 = shares.iter().sum();
        if demand <= 0.0 {
            return Err(GameError::InvalidParameter {
                name: "shares",
                message: "total demand must be positive",
            });
        }
        Ok(FlowState { shares, demand })
    }

    /// The normalized share vector of an atomic [`State`] (counts divided by
    /// `n`), bridging atomic trajectories into the continuous model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlowState::new`].
    pub fn from_atomic(game: &CongestionGame, state: &State) -> Result<Self, GameError> {
        let n = game.total_players().max(1) as f64;
        FlowState::new(game, state.counts().iter().map(|&c| c as f64 / n).collect())
    }

    /// Per-strategy volumes.
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// Total demand (the sum of shares; constant along the dynamics).
    pub fn demand(&self) -> f64 {
        self.demand
    }

    /// Derived per-resource flows `f_e = Σ_{P ∋ e} y_P`.
    pub fn edge_flows(&self, game: &CongestionGame) -> Vec<f64> {
        let mut flows = vec![0.0; game.num_resources()];
        for (i, s) in game.strategies().iter().enumerate() {
            let y = self.shares[i];
            if y > 0.0 {
                for &r in s.resources() {
                    flows[r.index()] += y;
                }
            }
        }
        flows
    }

    /// Latency of strategy `sid` under the current flows.
    pub fn strategy_latency(&self, game: &CongestionGame, sid: StrategyId) -> f64 {
        let flows = self.edge_flows(game);
        strategy_latency_with(game, &flows, sid)
    }

    /// Average (demand-weighted) latency.
    pub fn average_latency(&self, game: &CongestionGame) -> f64 {
        let flows = self.edge_flows(game);
        let mut total = 0.0;
        for (i, &y) in self.shares.iter().enumerate() {
            if y > 0.0 {
                total += y * strategy_latency_with(game, &flows, StrategyId::new(i as u32));
            }
        }
        total / self.demand
    }

    /// Sup-norm distance between two share vectors (e.g. an atomic
    /// trajectory vs. the continuous one).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn distance(&self, other: &FlowState) -> f64 {
        assert_eq!(self.shares.len(), other.shares.len(), "dimension mismatch");
        self.shares.iter().zip(&other.shares).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

fn strategy_latency_with(game: &CongestionGame, flows: &[f64], sid: StrategyId) -> f64 {
    game.strategy(sid)
        .resources()
        .iter()
        .map(|&r| game.resource(r).latency().value_at(flows[r.index()]))
        .sum()
}

/// The Beckmann potential `Σ_e ∫_0^{f_e} ℓ_e(u) du` — the continuous analog
/// of Rosenthal's potential; its minimizers over feasible flows are the
/// Wardrop equilibria.
pub fn beckmann_potential(game: &CongestionGame, state: &FlowState) -> f64 {
    state
        .edge_flows(game)
        .iter()
        .enumerate()
        .map(|(i, &f)| game.resources()[i].latency().integral_to(f))
        .sum()
}

/// Whether all strategies carrying flow are within additive `eps` of the
/// cheapest strategy (the Wardrop condition).
pub fn is_wardrop_equilibrium(game: &CongestionGame, state: &FlowState, eps: f64) -> bool {
    let flows = state.edge_flows(game);
    let mut best = f64::INFINITY;
    for i in 0..game.num_strategies() {
        best = best.min(strategy_latency_with(game, &flows, StrategyId::new(i as u32)));
    }
    state.shares().iter().enumerate().all(|(i, &y)| {
        y <= 0.0 || strategy_latency_with(game, &flows, StrategyId::new(i as u32)) <= best + eps
    })
}

/// The deterministic mean-field imitation dynamics: each infinitesimal
/// agent samples a strategy proportionally to its share and switches with
/// rate `λ/d · (ℓ_P − ℓ_Q)_+/ℓ_P`. Unlike the atomic protocol there is no
/// sampling noise and no `ν` threshold (probabilistic effects vanish).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImitationFlow {
    lambda: f64,
    damping: f64,
}

impl ImitationFlow {
    /// Create the flow with migration constant `λ ∈ (0, 1]` and damping
    /// denominator `max(d, 1)`.
    ///
    /// # Errors
    ///
    /// Fails if `λ ∉ (0, 1]` or `d` is not finite/non-negative.
    pub fn new(lambda: f64, d: f64) -> Result<Self, GameError> {
        if !(lambda > 0.0 && lambda <= 1.0) {
            return Err(GameError::InvalidParameter {
                name: "lambda",
                message: "must be a finite value in (0, 1]",
            });
        }
        if !d.is_finite() || d < 0.0 {
            return Err(GameError::InvalidParameter {
                name: "d",
                message: "must be finite and non-negative",
            });
        }
        Ok(ImitationFlow { lambda, damping: d.max(1.0) })
    }

    /// The flow matching the atomic protocol's parameters for `game`
    /// (`λ = 1/4`, elasticity damping).
    pub fn for_game(game: &CongestionGame) -> Self {
        ImitationFlow::new(0.25, game.params().d).expect("derived parameters are valid")
    }

    /// The time derivative `ẏ` at `state` (sums to zero).
    pub fn derivative(&self, game: &CongestionGame, state: &FlowState) -> Vec<f64> {
        let flows = state.edge_flows(game);
        let k = game.num_strategies();
        let lat: Vec<f64> = (0..k)
            .map(|i| strategy_latency_with(game, &flows, StrategyId::new(i as u32)))
            .collect();
        let mut dy = vec![0.0; k];
        let scale = self.lambda / self.damping;
        for p in 0..k {
            let yp = state.shares()[p];
            if yp <= 0.0 || lat[p] <= 0.0 {
                continue;
            }
            for q in 0..k {
                if q == p {
                    continue;
                }
                let yq = state.shares()[q];
                if yq <= 0.0 {
                    continue;
                }
                let gain = lat[p] - lat[q];
                if gain > 0.0 {
                    // Mass moves P → Q at rate y_P·(y_Q/demand)·μ.
                    let rate = yp * (yq / state.demand()) * scale * gain / lat[p];
                    dy[p] -= rate;
                    dy[q] += rate;
                }
            }
        }
        dy
    }

    /// One explicit Euler step of size `dt`; returns the realized step
    /// (shares are clamped at zero, preserving total demand).
    pub fn step(&self, game: &CongestionGame, state: &mut FlowState, dt: f64) {
        debug_assert!(dt > 0.0 && dt.is_finite(), "step size must be positive");
        let dy = self.derivative(game, state);
        let demand = state.demand;
        for (y, d) in state.shares.iter_mut().zip(dy) {
            *y = (*y + dt * d).max(0.0);
        }
        // Renormalize the (tiny) clamping drift so demand stays exact.
        let sum: f64 = state.shares.iter().sum();
        if sum > 0.0 {
            let fix = demand / sum;
            for y in state.shares.iter_mut() {
                *y *= fix;
            }
        }
    }

    /// Integrate until the state is an `eps`-Wardrop equilibrium or
    /// `max_steps` Euler steps of size `dt` have run. Returns the number of
    /// steps taken.
    pub fn run(
        &self,
        game: &CongestionGame,
        state: &mut FlowState,
        dt: f64,
        eps: f64,
        max_steps: u64,
    ) -> u64 {
        for step in 0..max_steps {
            if is_wardrop_equilibrium(game, state, eps) {
                return step;
            }
            self.step(game, state, dt);
        }
        max_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_model::{Affine, Monomial};

    fn two_links(a1: f64, a2: f64) -> CongestionGame {
        // Unit-demand continuous model over ℓ(x) = a·x latencies; player
        // count 1 is irrelevant to the flow dynamics.
        CongestionGame::singleton(vec![Affine::linear(a1).into(), Affine::linear(a2).into()], 1)
            .unwrap()
    }

    #[test]
    fn state_validation() {
        let game = two_links(1.0, 2.0);
        assert!(FlowState::new(&game, vec![0.5]).is_err());
        assert!(FlowState::new(&game, vec![0.5, -0.1]).is_err());
        assert!(FlowState::new(&game, vec![0.0, 0.0]).is_err());
        let s = FlowState::new(&game, vec![0.25, 0.75]).unwrap();
        assert_eq!(s.demand(), 1.0);
        assert_eq!(s.shares(), &[0.25, 0.75]);
    }

    #[test]
    fn edge_flows_and_latency() {
        let game = two_links(1.0, 2.0);
        let s = FlowState::new(&game, vec![0.25, 0.75]).unwrap();
        assert_eq!(s.edge_flows(&game), vec![0.25, 0.75]);
        assert!((s.strategy_latency(&game, StrategyId::new(1)) - 1.5).abs() < 1e-12);
        assert!((s.average_latency(&game) - (0.25 * 0.25 + 0.75 * 1.5)).abs() < 1e-12);
    }

    #[test]
    fn wardrop_equilibrium_of_two_linear_links() {
        // a1·y = a2·(1−y) ⇒ y = a2/(a1+a2).
        let game = two_links(1.0, 3.0);
        let eq = FlowState::new(&game, vec![0.75, 0.25]).unwrap();
        assert!(is_wardrop_equilibrium(&game, &eq, 1e-9));
        let off = FlowState::new(&game, vec![0.5, 0.5]).unwrap();
        assert!(!is_wardrop_equilibrium(&game, &off, 0.4));
    }

    #[test]
    fn beckmann_minimum_is_the_equilibrium() {
        let game = two_links(1.0, 3.0);
        let phi_eq = beckmann_potential(&game, &FlowState::new(&game, vec![0.75, 0.25]).unwrap());
        for y in [0.0f64, 0.2, 0.5, 0.7, 0.8, 1.0] {
            let phi = beckmann_potential(
                &game,
                &FlowState::new(&game, vec![y.max(1e-12), (1.0 - y).max(1e-12)]).unwrap(),
            );
            assert!(phi >= phi_eq - 1e-9, "Φ({y}) = {phi} below equilibrium {phi_eq}");
        }
    }

    #[test]
    fn derivative_conserves_demand_and_points_downhill() {
        let game = two_links(1.0, 3.0);
        let flow = ImitationFlow::for_game(&game);
        let s = FlowState::new(&game, vec![0.2, 0.8]).unwrap();
        let dy = flow.derivative(&game, &s);
        assert!((dy.iter().sum::<f64>()).abs() < 1e-12);
        // Link 2 is overloaded (latency 2.4 vs 0.2): mass flows 2 → 1.
        assert!(dy[0] > 0.0);
        assert!(dy[1] < 0.0);
    }

    #[test]
    fn flow_converges_to_wardrop_equilibrium() {
        let game = two_links(1.0, 3.0);
        let flow = ImitationFlow::for_game(&game);
        let mut s = FlowState::new(&game, vec![0.05, 0.95]).unwrap();
        let steps = flow.run(&game, &mut s, 0.05, 1e-6, 2_000_000);
        assert!(steps < 2_000_000, "did not converge");
        assert!((s.shares()[0] - 0.75).abs() < 1e-3, "shares {:?}", s.shares());
    }

    #[test]
    fn potential_decreases_along_the_flow() {
        let game = CongestionGame::singleton(
            vec![
                Monomial::new(1.0, 2).into(),
                Affine::new(0.5, 0.3).into(),
                Affine::linear(2.0).into(),
            ],
            1,
        )
        .unwrap();
        let flow = ImitationFlow::for_game(&game);
        let mut s = FlowState::new(&game, vec![0.7, 0.2, 0.1]).unwrap();
        let mut phi = beckmann_potential(&game, &s);
        for _ in 0..2000 {
            flow.step(&game, &mut s, 0.02);
            let next = beckmann_potential(&game, &s);
            assert!(next <= phi + 1e-9, "potential rose: {phi} -> {next}");
            phi = next;
        }
    }

    #[test]
    fn imitation_flow_cannot_revive_dead_strategies() {
        // Like the atomic protocol, the mean-field imitation flow keeps
        // unused strategies at zero share forever.
        let game = two_links(10.0, 1.0);
        let flow = ImitationFlow::for_game(&game);
        let mut s = FlowState::new(&game, vec![1.0, 0.0]).unwrap();
        for _ in 0..100 {
            flow.step(&game, &mut s, 0.1);
        }
        assert_eq!(s.shares()[1], 0.0);
    }

    #[test]
    fn from_atomic_normalizes() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
            10,
        )
        .unwrap();
        let atomic = State::from_counts(&game, vec![4, 6]).unwrap();
        let s = FlowState::from_atomic(&game, &atomic).unwrap();
        assert!((s.shares()[0] - 0.4).abs() < 1e-12);
        assert!((s.demand() - 1.0).abs() < 1e-12);
        let other = FlowState::new(&game, vec![0.4, 0.6]).unwrap();
        assert_eq!(s.distance(&other), 0.0);
    }

    #[test]
    fn invalid_flow_parameters_rejected() {
        assert!(ImitationFlow::new(0.0, 1.0).is_err());
        assert!(ImitationFlow::new(1.5, 1.0).is_err());
        assert!(ImitationFlow::new(0.5, f64::NAN).is_err());
    }
}
