//! Across-lane vector primitives for the replica-major lane kernels.
//!
//! The lane kernel (`congames-dynamics::LaneKernel`) steps `W` replicas in
//! lockstep through structure-of-arrays blocks, so its inner loops are
//! element-wise over lane rows: batched Philox keystream blocks, per-lane
//! migration probabilities, per-strategy latency accumulation, load-window
//! bounds. This crate provides those loops in multiple arms behind one
//! [`Dispatch`] value: a portable scalar arm, an AVX2 `std::arch` arm, and
//! an AVX-512 arm (which widens the Philox keystream to eight lanes per
//! vector and shares the AVX2 float kernels), selected by runtime feature
//! detection.
//!
//! # Bit-identity contract
//!
//! Both arms of every operation produce **identical bits**:
//!
//! * **Integer ops are exact by construction** — the AVX2/AVX-512
//!   64×64→128 multiply is decomposed into 32-bit partial products with
//!   full carry propagation, so the batched Philox blocks equal the scalar
//!   blocks word for word, and `u64` min/max/compares are value-exact.
//! * **Float ops vectorize *across* lanes only.** Each lane's own
//!   operation sequence is unchanged — no reassociation, no FMA
//!   contraction (IEEE-754 `vmulpd`/`vaddpd`/`vsubpd`/`vdivpd` round
//!   exactly like their scalar counterparts), and `u64 → f64` conversion
//!   uses an exponent-bias decomposition with a single final rounding,
//!   equal to Rust's `as f64` for every input. A lane therefore computes
//!   the same bits whichever arm runs it.
//!
//! # Dispatch
//!
//! [`Dispatch::detect`] picks the widest available arm once;
//! [`Dispatch::global`] caches it for the process. The environment
//! variable `CONGAMES_SIMD` overrides detection for testing:
//! `CONGAMES_SIMD=scalar` forces the fallback, `CONGAMES_SIMD=avx2` /
//! `CONGAMES_SIMD=avx512` request a vector arm (silently degrading to the
//! widest available one where the CPU lacks the feature), and
//! `CONGAMES_SIMD=auto` (or unset) detects. Every operation also takes
//! the dispatch explicitly, so tests can run all arms in one process and
//! compare bits.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

/// Environment variable overriding [`Dispatch::detect`]:
/// `scalar` | `avx2` | `avx512` | `auto`.
pub const DISPATCH_ENV: &str = "CONGAMES_SIMD";

/// Which arm of each vector operation to run. Both arms are bit-identical
/// (see the [module docs](self)); dispatch only selects the cost of
/// producing the bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Portable scalar loops — the reference arm, available everywhere.
    Scalar,
    /// 4-wide AVX2 `std::arch` loops. Selecting this on a CPU without
    /// AVX2 is safe: every operation re-checks availability and degrades
    /// to the scalar arm.
    Avx2,
    /// AVX-512 loops: the Philox keystream runs eight lanes per vector
    /// (`avx512f`); the float kernels share the AVX2 arm's code. Selecting
    /// this on a CPU without AVX-512 is safe: every operation re-checks
    /// availability and degrades to the widest available arm.
    Avx512,
}

impl Dispatch {
    /// Detect the widest available arm, honoring the [`DISPATCH_ENV`]
    /// override (unknown values fall back to auto-detection).
    #[inline]
    pub fn detect() -> Dispatch {
        match std::env::var(DISPATCH_ENV).as_deref() {
            Ok("scalar") => Dispatch::Scalar,
            Ok("avx2") => resolved(Dispatch::Avx2),
            _ => resolved(Dispatch::Avx512),
        }
    }

    /// The process-wide dispatch: [`Dispatch::detect`] run once and cached.
    #[inline]
    pub fn global() -> Dispatch {
        static GLOBAL: OnceLock<Dispatch> = OnceLock::new();
        *GLOBAL.get_or_init(Dispatch::detect)
    }

    /// Whether this arm can actually run on the current CPU.
    #[inline]
    pub fn is_available(self) -> bool {
        match self {
            Dispatch::Scalar => true,
            Dispatch::Avx2 => avx2_available(),
            Dispatch::Avx512 => avx512_available(),
        }
    }

    /// Resolve this (possibly requested-but-unavailable) dispatch to the
    /// widest arm that is safe to execute on the current CPU. Kernels call
    /// this once at construction so their steady-state loops carry an
    /// always-runnable arm.
    #[inline]
    pub fn resolve(self) -> Dispatch {
        resolved(self)
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn avx2_available() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn avx512_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f") && avx2_available()
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn avx512_available() -> bool {
    false
}

/// Resolve a requested dispatch to one that is safe to execute here.
#[inline]
fn resolved(d: Dispatch) -> Dispatch {
    match d {
        Dispatch::Avx512 if avx512_available() => Dispatch::Avx512,
        Dispatch::Avx512 | Dispatch::Avx2 if avx2_available() => Dispatch::Avx2,
        _ => Dispatch::Scalar,
    }
}

/// The Philox 4×64 round constants and round count, supplied by the
/// caller so the generator's pinned construction stays in one place
/// (`congames-sampling::counter`).
#[derive(Debug, Clone, Copy)]
pub struct PhiloxSpec {
    /// First round multiplier.
    pub m0: u64,
    /// Second round multiplier.
    pub m1: u64,
    /// Weyl increment of the first key word.
    pub w0: u64,
    /// Weyl increment of the second key word.
    pub w1: u64,
    /// Number of rounds.
    pub rounds: u32,
}

#[inline]
fn philox_scalar(spec: PhiloxSpec, mut key: [u64; 2], mut ctr: [u64; 4]) -> [u64; 4] {
    for _ in 0..spec.rounds {
        let wide0 = spec.m0 as u128 * ctr[0] as u128;
        let wide1 = spec.m1 as u128 * ctr[2] as u128;
        let (hi0, lo0) = ((wide0 >> 64) as u64, wide0 as u64);
        let (hi1, lo1) = ((wide1 >> 64) as u64, wide1 as u64);
        ctr = [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0];
        key[0] = key[0].wrapping_add(spec.w0);
        key[1] = key[1].wrapping_add(spec.w1);
    }
    ctr
}

/// Batched keyed Philox 4×64: `out[i]` is the output block of counter
/// `[prefix[0], prefix[1], prefix[2], trials[i]]` under `key` — one call
/// produces every lane's block for a shared `(block, site, round)`
/// address prefix. Bit-identical across arms (integer construction).
///
/// # Panics
///
/// Panics if `out.len() != trials.len()`.
#[inline]
pub fn philox4x64_batch(
    d: Dispatch,
    spec: PhiloxSpec,
    key: [u64; 2],
    prefix: [u64; 3],
    trials: &[u64],
    out: &mut [[u64; 4]],
) {
    assert_eq!(out.len(), trials.len(), "one output block per trial");
    match resolved(d) {
        Dispatch::Scalar => {
            for (o, &t) in out.iter_mut().zip(trials) {
                *o = philox_scalar(spec, key, [prefix[0], prefix[1], prefix[2], t]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => {
            let n4 = trials.len() & !3;
            avx2::philox4x64_batch(spec, key, prefix, &trials[..n4], &mut out[..n4]);
            for (o, &t) in out[n4..].iter_mut().zip(&trials[n4..]) {
                *o = philox_scalar(spec, key, [prefix[0], prefix[1], prefix[2], t]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx512 => {
            let n8 = trials.len() & !7;
            avx512::philox4x64_batch(spec, key, prefix, &trials[..n8], &mut out[..n8]);
            let tail_t = &trials[n8..];
            let tail_o = &mut out[n8..];
            let n4 = tail_t.len() & !3;
            avx2::philox4x64_batch(spec, key, prefix, &tail_t[..n4], &mut tail_o[..n4]);
            for (o, &t) in tail_o[n4..].iter_mut().zip(&tail_t[n4..]) {
                *o = philox_scalar(spec, key, [prefix[0], prefix[1], prefix[2], t]);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            unreachable!("resolved() degrades vector arms off x86_64")
        }
    }
}

/// `out[l] += src[l]` — the vertical lane-row accumulation of the
/// per-strategy latency sums and the pair-walk `ℓ_to` rows. Each lane's
/// own add sequence is unchanged (one add per call per lane), so the
/// arms are bit-identical.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn add_assign(d: Dispatch, out: &mut [f64], src: &[f64]) {
    assert_eq!(out.len(), src.len(), "lane rows must have equal width");
    match resolved(d) {
        Dispatch::Scalar => {
            for (o, &v) in out.iter_mut().zip(src) {
                *o += v;
            }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 | Dispatch::Avx512 => avx2::add_assign(out, src),
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            unreachable!("resolved() degrades vector arms off x86_64")
        }
    }
}

/// The `(min, max)` of a non-empty `u64` lane row — the union load-window
/// bounds when every lane is live. Value-exact in both arms.
///
/// # Panics
///
/// Panics if `vals` is empty.
#[inline]
pub fn min_max_u64(d: Dispatch, vals: &[u64]) -> (u64, u64) {
    assert!(!vals.is_empty(), "min/max of an empty lane row");
    match resolved(d) {
        Dispatch::Scalar => {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for &v in vals {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            (lo, hi)
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => avx2::min_max_u64(vals),
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx512 => avx512::min_max_u64(vals),
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            unreachable!("resolved() degrades vector arms off x86_64")
        }
    }
}

/// Whether any lane has `a[l] > 0 && b[l] > 0 && mask[l] != 0` — the
/// unioned pair early-out of the lane pair walk (origin occupied,
/// destination occupied, lane live).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn any_pair_nonzero(d: Dispatch, a: &[u64], b: &[u64], mask: &[u64]) -> bool {
    assert!(a.len() == b.len() && a.len() == mask.len(), "lane rows must have equal width");
    match resolved(d) {
        Dispatch::Scalar => {
            a.iter().zip(b).zip(mask).any(|((&x, &y), &m)| x > 0 && y > 0 && m != 0)
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 | Dispatch::Avx512 => avx2::any_pair_nonzero(a, b, mask),
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            unreachable!("resolved() degrades vector arms off x86_64")
        }
    }
}

/// Whether any lane has `a[l] > 0 && mask[l] != 0` — the pair early-out
/// when exploration or virtual agents make every destination reachable.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn any_nonzero(d: Dispatch, a: &[u64], mask: &[u64]) -> bool {
    assert_eq!(a.len(), mask.len(), "lane rows must have equal width");
    match resolved(d) {
        Dispatch::Scalar => a.iter().zip(mask).any(|(&x, &m)| x > 0 && m != 0),
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 | Dispatch::Avx512 => avx2::any_nonzero(a, mask),
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            unreachable!("resolved() degrades vector arms off x86_64")
        }
    }
}

/// Per-lane pure-imitation migration probability of one `(from, to)`
/// pair:
///
/// ```text
/// probs[l] = (imit_scale · x_to) · clamp((coef · gain) / ℓ_from, 0, 1)
///            where gain = ℓ_from − ℓ_to,
/// ```
///
/// and `0.0` for every lane the scalar engine would skip: retired
/// (`active[l] == 0`), empty origin (`counts_from[l] == 0`), empty
/// destination (`counts_to[l] == 0`), non-positive `ℓ_from`, or
/// `gain ≤ gain_threshold`. `coef` is the pre-divided `λ/d`, so the
/// surviving lanes run exactly the scalar μ sequence
/// `((λ/d)·gain)/ℓ_from` — same operands, same order, one rounding per
/// operation — and a `probs[l] > 0.0` filter reproduces the scalar pair
/// list bit for bit. Returns whether any lane's probability is positive,
/// so callers can skip that filter scan when the row is all-zero.
///
/// # Panics
///
/// Panics if any slice length differs from `probs.len()`.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn imitation_pair_probs(
    d: Dispatch,
    counts_from: &[u64],
    counts_to: &[u64],
    active: &[u64],
    l_from: &[f64],
    l_to: &[f64],
    imit_scale: f64,
    coef: f64,
    gain_threshold: f64,
    probs: &mut [f64],
) -> bool {
    let w = probs.len();
    assert!(
        counts_from.len() == w
            && counts_to.len() == w
            && active.len() == w
            && l_from.len() == w
            && l_to.len() == w,
        "lane rows must have equal width"
    );
    match resolved(d) {
        Dispatch::Scalar => {
            let mut any = false;
            for l in 0..w {
                let mut p = 0.0;
                if active[l] != 0 && counts_from[l] > 0 && counts_to[l] > 0 {
                    let lf = l_from[l];
                    let gain = lf - l_to[l];
                    if lf > 0.0 && gain > gain_threshold {
                        let mu = (coef * gain / lf).clamp(0.0, 1.0);
                        p = (imit_scale * counts_to[l] as f64) * mu;
                    }
                }
                any |= p > 0.0;
                probs[l] = p;
            }
            any
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            let n4 = w & !3;
            let mut any = avx2::imitation_pair_probs(
                &counts_from[..n4],
                &counts_to[..n4],
                &active[..n4],
                &l_from[..n4],
                &l_to[..n4],
                imit_scale,
                coef,
                gain_threshold,
                &mut probs[..n4],
            );
            for l in n4..w {
                let mut p = 0.0;
                if active[l] != 0 && counts_from[l] > 0 && counts_to[l] > 0 {
                    let lf = l_from[l];
                    let gain = lf - l_to[l];
                    if lf > 0.0 && gain > gain_threshold {
                        let mu = (coef * gain / lf).clamp(0.0, 1.0);
                        p = (imit_scale * counts_to[l] as f64) * mu;
                    }
                }
                any |= p > 0.0;
                probs[l] = p;
            }
            any
        }
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            unreachable!("resolved() degrades vector arms off x86_64")
        }
    }
}

/// Gather each lane's `(window[idx], window[idx + 1])` pair with
/// `idx = loads[l] - lo` — the per-resource `ℓ(x)` / `ℓ(x+1)` gather from
/// the union-window evaluation buffer. Pure moves, so value-exact.
///
/// # Panics
///
/// Panics if the lane rows differ in length, or (in either arm) if any
/// `loads[l] - lo + 1` falls outside `window`.
#[inline]
pub fn gather_window_pairs(
    d: Dispatch,
    window: &[f64],
    loads: &[u64],
    lo: u64,
    out0: &mut [f64],
    out1: &mut [f64],
) {
    let w = loads.len();
    assert!(out0.len() == w && out1.len() == w, "lane rows must have equal width");
    match resolved(d) {
        Dispatch::Scalar => {
            for l in 0..w {
                let off = (loads[l] - lo) as usize;
                out0[l] = window[off];
                out1[l] = window[off + 1];
            }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            avx2::gather_window_pairs(window, loads, lo, out0, out1)
        }
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            unreachable!("resolved() degrades vector arms off x86_64")
        }
    }
}

/// `out[j] = a · ((start + j) as f64) + b` — the affine latency window.
/// The vector arm converts `start + j` with the exact exponent-bias
/// decomposition (single final rounding, equal to `as f64`) and applies
/// the same multiply-add sequence per element, so both arms match the
/// pointwise evaluation bit for bit.
#[inline]
pub fn affine_fill(d: Dispatch, a: f64, b: f64, start: u64, out: &mut [f64]) {
    match resolved(d) {
        Dispatch::Scalar => {
            for (j, slot) in out.iter_mut().enumerate() {
                *slot = a * (start + j as u64) as f64 + b;
            }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 | Dispatch::Avx512 => avx2::affine_fill(a, b, start, out),
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            unreachable!("resolved() degrades vector arms off x86_64")
        }
    }
}

/// `out[j] = a · x^k` with `x = (start + j) as f64`, using the exact
/// square-and-multiply chains of degrees 1–4 (`x`, `x·x`, `x·x²`,
/// `x²·x²`) — the same chains the scalar monomial batch evaluator runs,
/// so both arms match pointwise `powi` evaluation bit for bit.
///
/// # Panics
///
/// Panics unless `1 <= k <= 4` (higher degrees keep the scalar `powi`
/// path in the caller).
#[inline]
pub fn monomial_fill(d: Dispatch, a: f64, k: u32, start: u64, out: &mut [f64]) {
    assert!((1..=4).contains(&k), "monomial_fill covers degrees 1-4");
    match resolved(d) {
        Dispatch::Scalar => {
            for (j, slot) in out.iter_mut().enumerate() {
                let x = (start + j as u64) as f64;
                *slot = match k {
                    1 => a * x,
                    2 => a * (x * x),
                    3 => {
                        let x2 = x * x;
                        a * (x * x2)
                    }
                    _ => {
                        let x2 = x * x;
                        a * (x2 * x2)
                    }
                };
            }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 | Dispatch::Avx512 => avx2::monomial_fill(a, k, start, out),
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Avx2 | Dispatch::Avx512 => {
            unreachable!("resolved() degrades vector arms off x86_64")
        }
    }
}

/// The AVX2 arm. Every function is compiled with
/// `#[target_feature(enable = "avx2")]` and must only be reached through
/// the public wrappers, which verify availability via [`resolved`].
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::PhiloxSpec;
    use core::arch::x86_64::*;

    const LO32: u64 = 0xFFFF_FFFF;

    /// Full 64×64→128 multiply of a pre-split scalar constant against a
    /// lane vector, via four 32×32→64 partial products with exact carry
    /// propagation — bit-identical to the scalar `u128` widening multiply.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mulhilo(
        a_lo: __m256i,
        a_hi: __m256i,
        b: __m256i,
        lo32: __m256i,
    ) -> (__m256i, __m256i) {
        let b_lo = _mm256_and_si256(b, lo32);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let ll = _mm256_mul_epu32(a_lo, b_lo);
        let lh = _mm256_mul_epu32(a_lo, b_hi);
        let hl = _mm256_mul_epu32(a_hi, b_lo);
        let hh = _mm256_mul_epu32(a_hi, b_hi);
        // mid/mid2 cannot overflow: (2³²−1)² + (2³²−1) < 2⁶⁴.
        let mid = _mm256_add_epi64(lh, _mm256_srli_epi64::<32>(ll));
        let mid2 = _mm256_add_epi64(hl, _mm256_and_si256(mid, lo32));
        let hi = _mm256_add_epi64(
            hh,
            _mm256_add_epi64(_mm256_srli_epi64::<32>(mid), _mm256_srli_epi64::<32>(mid2)),
        );
        let lo = _mm256_or_si256(_mm256_slli_epi64::<32>(mid2), _mm256_and_si256(ll, lo32));
        (hi, lo)
    }

    #[inline]
    pub fn philox4x64_batch(
        spec: PhiloxSpec,
        key: [u64; 2],
        prefix: [u64; 3],
        trials: &[u64],
        out: &mut [[u64; 4]],
    ) {
        debug_assert_eq!(trials.len() % 4, 0);
        debug_assert_eq!(out.len(), trials.len());
        // SAFETY: the public wrapper verified AVX2 availability.
        unsafe { philox4x64_batch_impl(spec, key, prefix, trials, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn philox4x64_batch_impl(
        spec: PhiloxSpec,
        key: [u64; 2],
        prefix: [u64; 3],
        trials: &[u64],
        out: &mut [[u64; 4]],
    ) {
        let lo32 = _mm256_set1_epi64x(LO32 as i64);
        let m0_lo = _mm256_set1_epi64x((spec.m0 & LO32) as i64);
        let m0_hi = _mm256_set1_epi64x((spec.m0 >> 32) as i64);
        let m1_lo = _mm256_set1_epi64x((spec.m1 & LO32) as i64);
        let m1_hi = _mm256_set1_epi64x((spec.m1 >> 32) as i64);
        let w0 = _mm256_set1_epi64x(spec.w0 as i64);
        let w1 = _mm256_set1_epi64x(spec.w1 as i64);
        for (chunk, blocks) in trials.chunks_exact(4).zip(out.chunks_exact_mut(4)) {
            let mut k0 = _mm256_set1_epi64x(key[0] as i64);
            let mut k1 = _mm256_set1_epi64x(key[1] as i64);
            let mut c0 = _mm256_set1_epi64x(prefix[0] as i64);
            let mut c1 = _mm256_set1_epi64x(prefix[1] as i64);
            let mut c2 = _mm256_set1_epi64x(prefix[2] as i64);
            let mut c3 = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
            for _ in 0..spec.rounds {
                let (hi0, lo0) = mulhilo(m0_lo, m0_hi, c0, lo32);
                let (hi1, lo1) = mulhilo(m1_lo, m1_hi, c2, lo32);
                c0 = _mm256_xor_si256(_mm256_xor_si256(hi1, c1), k0);
                c1 = lo1;
                c2 = _mm256_xor_si256(_mm256_xor_si256(hi0, c3), k1);
                c3 = lo0;
                k0 = _mm256_add_epi64(k0, w0);
                k1 = _mm256_add_epi64(k1, w1);
            }
            // Transpose the four word-vectors into per-lane blocks.
            let t0 = _mm256_unpacklo_epi64(c0, c1);
            let t1 = _mm256_unpackhi_epi64(c0, c1);
            let t2 = _mm256_unpacklo_epi64(c2, c3);
            let t3 = _mm256_unpackhi_epi64(c2, c3);
            let base = blocks.as_mut_ptr() as *mut __m256i;
            _mm256_storeu_si256(base, _mm256_permute2x128_si256::<0x20>(t0, t2));
            _mm256_storeu_si256(base.add(1), _mm256_permute2x128_si256::<0x20>(t1, t3));
            _mm256_storeu_si256(base.add(2), _mm256_permute2x128_si256::<0x31>(t0, t2));
            _mm256_storeu_si256(base.add(3), _mm256_permute2x128_si256::<0x31>(t1, t3));
        }
    }

    #[inline]
    pub fn add_assign(out: &mut [f64], src: &[f64]) {
        // SAFETY: the public wrapper verified AVX2 availability.
        unsafe { add_assign_impl(out, src) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_assign_impl(out: &mut [f64], src: &[f64]) {
        let n4 = out.len() & !3;
        let mut i = 0;
        while i < n4 {
            let o = _mm256_loadu_pd(out.as_ptr().add(i));
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_add_pd(o, s));
            i += 4;
        }
        for l in n4..out.len() {
            out[l] += src[l];
        }
    }

    #[inline]
    pub fn min_max_u64(vals: &[u64]) -> (u64, u64) {
        // SAFETY: the public wrapper verified AVX2 availability.
        unsafe { min_max_u64_impl(vals) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn min_max_u64_impl(vals: &[u64]) -> (u64, u64) {
        let n4 = vals.len() & !3;
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        if n4 >= 4 {
            // AVX2 has no unsigned 64-bit compare; bias by 2⁶³ and compare
            // signed, which is order-isomorphic over the full u64 range.
            let bias = _mm256_set1_epi64x(i64::MIN);
            let first = _mm256_xor_si256(_mm256_loadu_si256(vals.as_ptr() as *const __m256i), bias);
            let mut vmin = first;
            let mut vmax = first;
            let mut i = 4;
            while i < n4 {
                let v = _mm256_xor_si256(
                    _mm256_loadu_si256(vals.as_ptr().add(i) as *const __m256i),
                    bias,
                );
                let gt_min = _mm256_cmpgt_epi64(vmin, v);
                vmin = _mm256_blendv_epi8(vmin, v, gt_min);
                let gt_max = _mm256_cmpgt_epi64(v, vmax);
                vmax = _mm256_blendv_epi8(vmax, v, gt_max);
                i += 4;
            }
            let mut mins = [0u64; 4];
            let mut maxs = [0u64; 4];
            _mm256_storeu_si256(mins.as_mut_ptr() as *mut __m256i, _mm256_xor_si256(vmin, bias));
            _mm256_storeu_si256(maxs.as_mut_ptr() as *mut __m256i, _mm256_xor_si256(vmax, bias));
            for k in 0..4 {
                lo = lo.min(mins[k]);
                hi = hi.max(maxs[k]);
            }
        }
        for &v in &vals[n4..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    #[inline]
    pub fn any_pair_nonzero(a: &[u64], b: &[u64], mask: &[u64]) -> bool {
        // SAFETY: the public wrapper verified AVX2 availability.
        unsafe { any_pair_nonzero_impl(a, b, mask) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn any_pair_nonzero_impl(a: &[u64], b: &[u64], mask: &[u64]) -> bool {
        let n4 = a.len() & !3;
        let zero = _mm256_setzero_si256();
        let mut i = 0;
        while i < n4 {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let vm = _mm256_loadu_si256(mask.as_ptr().add(i) as *const __m256i);
            // live = !(a == 0) & !(b == 0) & !(m == 0)
            let dead = _mm256_or_si256(
                _mm256_or_si256(_mm256_cmpeq_epi64(va, zero), _mm256_cmpeq_epi64(vb, zero)),
                _mm256_cmpeq_epi64(vm, zero),
            );
            if _mm256_movemask_epi8(dead) != -1i32 {
                return true;
            }
            i += 4;
        }
        a[n4..].iter().zip(&b[n4..]).zip(&mask[n4..]).any(|((&x, &y), &m)| x > 0 && y > 0 && m != 0)
    }

    #[inline]
    pub fn any_nonzero(a: &[u64], mask: &[u64]) -> bool {
        // SAFETY: the public wrapper verified AVX2 availability.
        unsafe { any_nonzero_impl(a, mask) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn any_nonzero_impl(a: &[u64], mask: &[u64]) -> bool {
        let n4 = a.len() & !3;
        let zero = _mm256_setzero_si256();
        let mut i = 0;
        while i < n4 {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vm = _mm256_loadu_si256(mask.as_ptr().add(i) as *const __m256i);
            let dead = _mm256_or_si256(_mm256_cmpeq_epi64(va, zero), _mm256_cmpeq_epi64(vm, zero));
            if _mm256_movemask_epi8(dead) != -1i32 {
                return true;
            }
            i += 4;
        }
        a[n4..].iter().zip(&mask[n4..]).any(|(&x, &m)| x > 0 && m != 0)
    }

    /// Exact `u64 → f64`: exponent-bias decomposition into a high part
    /// (`2⁸⁴ + hi·2³²`) and a low part (`2⁵² + lo`), both exact, combined
    /// with one rounding — equal to Rust's `as f64` for every input.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn u64_to_f64(v: __m256i, lo32: __m256i) -> __m256d {
        let hi_magic = _mm256_set1_epi64x(0x4530_0000_0000_0000);
        let lo_magic = _mm256_set1_epi64x(0x4330_0000_0000_0000);
        // 2⁸⁴ + 2⁵²: the value the biased high part must shed.
        let offset = _mm256_set1_pd(19342813118337666422669312.0);
        let v_hi = _mm256_castsi256_pd(_mm256_or_si256(_mm256_srli_epi64::<32>(v), hi_magic));
        let v_lo = _mm256_castsi256_pd(_mm256_or_si256(_mm256_and_si256(v, lo32), lo_magic));
        _mm256_add_pd(_mm256_sub_pd(v_hi, offset), v_lo)
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn imitation_pair_probs(
        counts_from: &[u64],
        counts_to: &[u64],
        active: &[u64],
        l_from: &[f64],
        l_to: &[f64],
        imit_scale: f64,
        coef: f64,
        gain_threshold: f64,
        probs: &mut [f64],
    ) -> bool {
        debug_assert_eq!(probs.len() % 4, 0);
        // SAFETY: the public wrapper verified AVX2 availability.
        unsafe {
            imitation_pair_probs_impl(
                counts_from,
                counts_to,
                active,
                l_from,
                l_to,
                imit_scale,
                coef,
                gain_threshold,
                probs,
            )
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn imitation_pair_probs_impl(
        counts_from: &[u64],
        counts_to: &[u64],
        active: &[u64],
        l_from: &[f64],
        l_to: &[f64],
        imit_scale: f64,
        coef: f64,
        gain_threshold: f64,
        probs: &mut [f64],
    ) -> bool {
        let zero_i = _mm256_setzero_si256();
        let zero_d = _mm256_setzero_pd();
        let one_d = _mm256_set1_pd(1.0);
        let lo32 = _mm256_set1_epi64x(LO32 as i64);
        let coef_v = _mm256_set1_pd(coef);
        let scale_v = _mm256_set1_pd(imit_scale);
        let thr_v = _mm256_set1_pd(gain_threshold);
        let mut any = 0i32;
        let mut i = 0;
        while i < probs.len() {
            let cf = _mm256_loadu_si256(counts_from.as_ptr().add(i) as *const __m256i);
            let ct = _mm256_loadu_si256(counts_to.as_ptr().add(i) as *const __m256i);
            let act = _mm256_loadu_si256(active.as_ptr().add(i) as *const __m256i);
            let dead = _mm256_or_si256(
                _mm256_or_si256(_mm256_cmpeq_epi64(cf, zero_i), _mm256_cmpeq_epi64(ct, zero_i)),
                _mm256_cmpeq_epi64(act, zero_i),
            );
            let lf = _mm256_loadu_pd(l_from.as_ptr().add(i));
            let lt = _mm256_loadu_pd(l_to.as_ptr().add(i));
            let gain = _mm256_sub_pd(lf, lt);
            // Live lanes: counts and activity pass, ℓ_from > 0, gain above
            // threshold (NaN gains compare false, exactly as the scalar
            // `gain <= thr → skip` keeps them out of the pair list).
            let live = _mm256_andnot_pd(
                _mm256_castsi256_pd(dead),
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_GT_OQ>(lf, zero_d),
                    _mm256_cmp_pd::<_CMP_GT_OQ>(gain, thr_v),
                ),
            );
            // μ = clamp((coef·gain)/ℓ_from, 0, 1): same multiply, divide,
            // and bound sequence as the scalar arm, one rounding each.
            let mu = _mm256_div_pd(_mm256_mul_pd(coef_v, gain), lf);
            let mu = _mm256_min_pd(_mm256_max_pd(mu, zero_d), one_d);
            let x_to = u64_to_f64(ct, lo32);
            let prob = _mm256_mul_pd(_mm256_mul_pd(scale_v, x_to), mu);
            let masked = _mm256_and_pd(prob, live);
            any |= _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(masked, zero_d));
            _mm256_storeu_pd(probs.as_mut_ptr().add(i), masked);
            i += 4;
        }
        any != 0
    }

    #[inline]
    pub fn gather_window_pairs(
        window: &[f64],
        loads: &[u64],
        lo: u64,
        out0: &mut [f64],
        out1: &mut [f64],
    ) {
        // Bounds are checked up front so the gathers below cannot touch
        // memory outside `window` (same panic the scalar arm's indexing
        // would raise).
        let n = window.len();
        for &ld in loads {
            let off = (ld - lo) as usize;
            assert!(off + 1 < n, "window gather out of bounds");
        }
        // SAFETY: the public wrapper verified AVX2 availability, and every
        // gathered index was just bounds-checked.
        unsafe { gather_window_pairs_impl(window, loads, lo, out0, out1) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gather_window_pairs_impl(
        window: &[f64],
        loads: &[u64],
        lo: u64,
        out0: &mut [f64],
        out1: &mut [f64],
    ) {
        let n4 = loads.len() & !3;
        let lo_v = _mm256_set1_epi64x(lo as i64);
        let base = window.as_ptr();
        let mut i = 0;
        while i < n4 {
            let ld = _mm256_loadu_si256(loads.as_ptr().add(i) as *const __m256i);
            let idx = _mm256_sub_epi64(ld, lo_v);
            let g0 = _mm256_i64gather_pd::<8>(base, idx);
            let g1 = _mm256_i64gather_pd::<8>(base.add(1), idx);
            _mm256_storeu_pd(out0.as_mut_ptr().add(i), g0);
            _mm256_storeu_pd(out1.as_mut_ptr().add(i), g1);
            i += 4;
        }
        for l in n4..loads.len() {
            let off = (loads[l] - lo) as usize;
            out0[l] = window[off];
            out1[l] = window[off + 1];
        }
    }

    #[inline]
    pub fn affine_fill(a: f64, b: f64, start: u64, out: &mut [f64]) {
        // SAFETY: the public wrapper verified AVX2 availability.
        unsafe { affine_fill_impl(a, b, start, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn affine_fill_impl(a: f64, b: f64, start: u64, out: &mut [f64]) {
        let lo32 = _mm256_set1_epi64x(LO32 as i64);
        let a_v = _mm256_set1_pd(a);
        let b_v = _mm256_set1_pd(b);
        let step = _mm256_set1_epi64x(4);
        let mut idx =
            _mm256_add_epi64(_mm256_set1_epi64x(start as i64), _mm256_setr_epi64x(0, 1, 2, 3));
        let n4 = out.len() & !3;
        let mut j = 0;
        while j < n4 {
            let x = u64_to_f64(idx, lo32);
            _mm256_storeu_pd(out.as_mut_ptr().add(j), _mm256_add_pd(_mm256_mul_pd(a_v, x), b_v));
            idx = _mm256_add_epi64(idx, step);
            j += 4;
        }
        for (j, slot) in out[n4..].iter_mut().enumerate() {
            *slot = a * (start + (n4 + j) as u64) as f64 + b;
        }
    }

    #[inline]
    pub fn monomial_fill(a: f64, k: u32, start: u64, out: &mut [f64]) {
        // SAFETY: the public wrapper verified AVX2 availability.
        unsafe { monomial_fill_impl(a, k, start, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn monomial_fill_impl(a: f64, k: u32, start: u64, out: &mut [f64]) {
        let lo32 = _mm256_set1_epi64x(LO32 as i64);
        let a_v = _mm256_set1_pd(a);
        let step = _mm256_set1_epi64x(4);
        let mut idx =
            _mm256_add_epi64(_mm256_set1_epi64x(start as i64), _mm256_setr_epi64x(0, 1, 2, 3));
        let n4 = out.len() & !3;
        let mut j = 0;
        while j < n4 {
            let x = u64_to_f64(idx, lo32);
            let v = match k {
                1 => _mm256_mul_pd(a_v, x),
                2 => _mm256_mul_pd(a_v, _mm256_mul_pd(x, x)),
                3 => {
                    let x2 = _mm256_mul_pd(x, x);
                    _mm256_mul_pd(a_v, _mm256_mul_pd(x, x2))
                }
                _ => {
                    let x2 = _mm256_mul_pd(x, x);
                    _mm256_mul_pd(a_v, _mm256_mul_pd(x2, x2))
                }
            };
            _mm256_storeu_pd(out.as_mut_ptr().add(j), v);
            idx = _mm256_add_epi64(idx, step);
            j += 4;
        }
        for (j, slot) in out[n4..].iter_mut().enumerate() {
            let x = (start + (n4 + j) as u64) as f64;
            *slot = match k {
                1 => a * x,
                2 => a * (x * x),
                3 => {
                    let x2 = x * x;
                    a * (x * x2)
                }
                _ => {
                    let x2 = x * x;
                    a * (x2 * x2)
                }
            };
        }
    }
}

/// The AVX-512 arm of the Philox keystream: identical partial-product
/// decomposition to the AVX2 arm, widened to eight lanes per vector
/// (`_mm512_mul_epu32` needs only `avx512f`). Must only be reached
/// through the public wrappers, which verify availability via
/// [`resolved`].
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx512 {
    use super::PhiloxSpec;
    use core::arch::x86_64::*;

    const LO32: u64 = 0xFFFF_FFFF;

    /// Full 64×64→128 multiply of a pre-split scalar constant against a
    /// lane vector — the 512-bit twin of the AVX2 `mulhilo`, same partial
    /// products and carry chain, bit-identical to the scalar `u128`
    /// widening multiply.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn mulhilo(
        a_lo: __m512i,
        a_hi: __m512i,
        b: __m512i,
        lo32: __m512i,
    ) -> (__m512i, __m512i) {
        let b_lo = _mm512_and_si512(b, lo32);
        let b_hi = _mm512_srli_epi64::<32>(b);
        let ll = _mm512_mul_epu32(a_lo, b_lo);
        let lh = _mm512_mul_epu32(a_lo, b_hi);
        let hl = _mm512_mul_epu32(a_hi, b_lo);
        let hh = _mm512_mul_epu32(a_hi, b_hi);
        // mid/mid2 cannot overflow: (2³²−1)² + (2³²−1) < 2⁶⁴.
        let mid = _mm512_add_epi64(lh, _mm512_srli_epi64::<32>(ll));
        let mid2 = _mm512_add_epi64(hl, _mm512_and_si512(mid, lo32));
        let hi = _mm512_add_epi64(
            hh,
            _mm512_add_epi64(_mm512_srli_epi64::<32>(mid), _mm512_srli_epi64::<32>(mid2)),
        );
        let lo = _mm512_or_si512(_mm512_slli_epi64::<32>(mid2), _mm512_and_si512(ll, lo32));
        (hi, lo)
    }

    #[inline]
    pub fn philox4x64_batch(
        spec: PhiloxSpec,
        key: [u64; 2],
        prefix: [u64; 3],
        trials: &[u64],
        out: &mut [[u64; 4]],
    ) {
        debug_assert_eq!(trials.len() % 8, 0);
        debug_assert_eq!(out.len(), trials.len());
        // SAFETY: the public wrapper verified AVX-512 availability.
        unsafe { philox4x64_batch_impl(spec, key, prefix, trials, out) }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn philox4x64_batch_impl(
        spec: PhiloxSpec,
        key: [u64; 2],
        prefix: [u64; 3],
        trials: &[u64],
        out: &mut [[u64; 4]],
    ) {
        let lo32 = _mm512_set1_epi64(LO32 as i64);
        let m0_lo = _mm512_set1_epi64((spec.m0 & LO32) as i64);
        let m0_hi = _mm512_set1_epi64((spec.m0 >> 32) as i64);
        let m1_lo = _mm512_set1_epi64((spec.m1 & LO32) as i64);
        let m1_hi = _mm512_set1_epi64((spec.m1 >> 32) as i64);
        let w0 = _mm512_set1_epi64(spec.w0 as i64);
        let w1 = _mm512_set1_epi64(spec.w1 as i64);
        for (chunk, blocks) in trials.chunks_exact(8).zip(out.chunks_exact_mut(8)) {
            let mut k0 = _mm512_set1_epi64(key[0] as i64);
            let mut k1 = _mm512_set1_epi64(key[1] as i64);
            let mut c0 = _mm512_set1_epi64(prefix[0] as i64);
            let mut c1 = _mm512_set1_epi64(prefix[1] as i64);
            let mut c2 = _mm512_set1_epi64(prefix[2] as i64);
            let mut c3 = _mm512_loadu_si512(chunk.as_ptr() as *const __m512i);
            for _ in 0..spec.rounds {
                let (hi0, lo0) = mulhilo(m0_lo, m0_hi, c0, lo32);
                let (hi1, lo1) = mulhilo(m1_lo, m1_hi, c2, lo32);
                c0 = _mm512_xor_si512(_mm512_xor_si512(hi1, c1), k0);
                c1 = lo1;
                c2 = _mm512_xor_si512(_mm512_xor_si512(hi0, c3), k1);
                c3 = lo0;
                k0 = _mm512_add_epi64(k0, w0);
                k1 = _mm512_add_epi64(k1, w1);
            }
            // Transpose the four word-vectors into eight per-lane blocks:
            // qword interleave within 128-bit lanes, then two rounds of
            // 128-bit-lane shuffles.
            let t0 = _mm512_unpacklo_epi64(c0, c1); // [c0ᵢ c1ᵢ] for even i
            let t1 = _mm512_unpackhi_epi64(c0, c1); // [c0ᵢ c1ᵢ] for odd i
            let t2 = _mm512_unpacklo_epi64(c2, c3); // [c2ᵢ c3ᵢ] for even i
            let t3 = _mm512_unpackhi_epi64(c2, c3); // [c2ᵢ c3ᵢ] for odd i
            let p02_lo = _mm512_shuffle_i64x2::<0x44>(t0, t2); // t0.L0 t0.L1 t2.L0 t2.L1
            let p13_lo = _mm512_shuffle_i64x2::<0x44>(t1, t3);
            let p02_hi = _mm512_shuffle_i64x2::<0xEE>(t0, t2); // t0.L2 t0.L3 t2.L2 t2.L3
            let p13_hi = _mm512_shuffle_i64x2::<0xEE>(t1, t3);
            let base = blocks.as_mut_ptr() as *mut __m512i;
            // lanes 0,1 · 2,3 · 4,5 · 6,7 — each 512-bit store is two blocks.
            _mm512_storeu_si512(base, _mm512_shuffle_i64x2::<0x88>(p02_lo, p13_lo));
            _mm512_storeu_si512(base.add(1), _mm512_shuffle_i64x2::<0xDD>(p02_lo, p13_lo));
            _mm512_storeu_si512(base.add(2), _mm512_shuffle_i64x2::<0x88>(p02_hi, p13_hi));
            _mm512_storeu_si512(base.add(3), _mm512_shuffle_i64x2::<0xDD>(p02_hi, p13_hi));
        }
    }

    #[inline]
    pub fn min_max_u64(vals: &[u64]) -> (u64, u64) {
        // SAFETY: the public wrapper verified AVX-512 availability.
        unsafe { min_max_u64_impl(vals) }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn min_max_u64_impl(vals: &[u64]) -> (u64, u64) {
        let n8 = vals.len() & !7;
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        if n8 >= 8 {
            // AVX-512 has native unsigned 64-bit min/max (`vpminuq` /
            // `vpmaxuq`) — no sign bias needed.
            let first = _mm512_loadu_si512(vals.as_ptr() as *const __m512i);
            let mut vmin = first;
            let mut vmax = first;
            let mut i = 8;
            while i < n8 {
                let v = _mm512_loadu_si512(vals.as_ptr().add(i) as *const __m512i);
                vmin = _mm512_min_epu64(vmin, v);
                vmax = _mm512_max_epu64(vmax, v);
                i += 8;
            }
            lo = _mm512_reduce_min_epu64(vmin);
            hi = _mm512_reduce_max_epu64(vmax);
        }
        for &v in &vals[n8..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap deterministic word mixer for test inputs (no external RNG
    /// dependency in this crate).
    fn mix(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^ (x >> 33)
    }

    fn both_arms() -> Vec<Dispatch> {
        let mut arms = vec![Dispatch::Scalar];
        if Dispatch::Avx2.is_available() {
            arms.push(Dispatch::Avx2);
        }
        if Dispatch::Avx512.is_available() {
            arms.push(Dispatch::Avx512);
        }
        arms
    }

    const SPEC: PhiloxSpec = PhiloxSpec {
        m0: 0xD2E7_470E_E14C_6C93,
        m1: 0xCA5A_8263_9512_1157,
        w0: 0x9E37_79B9_7F4A_7C15,
        w1: 0xBB67_AE85_84CA_A73B,
        rounds: 10,
    };

    #[test]
    fn philox_batch_arms_agree_bitwise() {
        for seed in 0..8u64 {
            let key = [mix(seed), mix(seed + 100)];
            let prefix = [mix(seed + 200), mix(seed + 300), mix(seed + 400)];
            for width in [1usize, 3, 4, 5, 8, 32, 64] {
                let trials: Vec<u64> = (0..width as u64).map(|t| mix(seed * 64 + t)).collect();
                let mut scalar = vec![[0u64; 4]; width];
                philox4x64_batch(Dispatch::Scalar, SPEC, key, prefix, &trials, &mut scalar);
                for (i, &t) in trials.iter().enumerate() {
                    let direct = philox_scalar(SPEC, key, [prefix[0], prefix[1], prefix[2], t]);
                    assert_eq!(scalar[i], direct, "scalar batch lane {i}");
                }
                for d in [Dispatch::Avx2, Dispatch::Avx512] {
                    if !d.is_available() {
                        continue;
                    }
                    let mut vector = vec![[0u64; 4]; width];
                    philox4x64_batch(d, SPEC, key, prefix, &trials, &mut vector);
                    assert_eq!(scalar, vector, "{d:?} seed {seed} width {width}");
                }
            }
        }
    }

    #[test]
    fn add_assign_arms_agree_bitwise() {
        for d in both_arms() {
            for width in [1usize, 4, 7, 32] {
                let src: Vec<f64> = (0..width).map(|i| mix(i as u64) as f64 * 1e-3).collect();
                let mut out: Vec<f64> =
                    (0..width).map(|i| mix(i as u64 + 77) as f64 * 1e-6).collect();
                let mut reference = out.clone();
                add_assign(d, &mut out, &src);
                for (o, &s) in reference.iter_mut().zip(&src) {
                    *o += s;
                }
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{d:?} width {width}"
                );
            }
        }
    }

    #[test]
    fn min_max_arms_agree_across_the_u64_range() {
        for d in both_arms() {
            for width in [1usize, 4, 6, 32] {
                let vals: Vec<u64> = (0..width)
                    .map(|i| if i % 3 == 0 { mix(i as u64) } else { mix(i as u64) >> 40 })
                    .collect();
                let lo = *vals.iter().min().unwrap();
                let hi = *vals.iter().max().unwrap();
                assert_eq!(min_max_u64(d, &vals), (lo, hi), "{d:?} width {width}");
            }
            // Values straddling the signed boundary exercise the bias.
            let vals = [0u64, u64::MAX, 1 << 63, (1 << 63) - 1];
            assert_eq!(min_max_u64(d, &vals), (0, u64::MAX), "{d:?} boundary");
        }
    }

    #[test]
    fn any_helpers_agree_with_reference() {
        for d in both_arms() {
            for width in [1usize, 4, 5, 32] {
                for case in 0..64u64 {
                    let a: Vec<u64> = (0..width).map(|i| mix(case * 131 + i as u64) % 3).collect();
                    let b: Vec<u64> = (0..width).map(|i| mix(case * 137 + i as u64) % 3).collect();
                    let m: Vec<u64> = (0..width).map(|i| mix(case * 139 + i as u64) % 2).collect();
                    let expect_pair = (0..width).any(|l| a[l] > 0 && b[l] > 0 && m[l] != 0);
                    let expect_one = (0..width).any(|l| a[l] > 0 && m[l] != 0);
                    assert_eq!(any_pair_nonzero(d, &a, &b, &m), expect_pair, "{d:?} {case}");
                    assert_eq!(any_nonzero(d, &a, &m), expect_one, "{d:?} {case}");
                }
            }
        }
    }

    #[test]
    fn imitation_probs_arms_agree_bitwise() {
        let coef = 0.25 / 2.0;
        let scale = 1.0 / 119.0;
        for thr in [0.0, 0.5] {
            for width in [4usize, 8, 17, 32] {
                let cf: Vec<u64> = (0..width).map(|i| mix(i as u64) % 4).collect();
                let ct: Vec<u64> =
                    (0..width).map(|i| (mix(i as u64 + 7) % 5) * 1_000_003).collect();
                let act: Vec<u64> = (0..width).map(|i| u64::from(i % 5 != 0)).collect();
                let lf: Vec<f64> =
                    (0..width).map(|i| (mix(i as u64 + 13) % 100) as f64 - 2.0).collect();
                let lt: Vec<f64> =
                    (0..width).map(|i| (mix(i as u64 + 17) % 100) as f64 * 0.5).collect();
                let mut scalar = vec![0.0; width];
                imitation_pair_probs(
                    Dispatch::Scalar,
                    &cf,
                    &ct,
                    &act,
                    &lf,
                    &lt,
                    scale,
                    coef,
                    thr,
                    &mut scalar,
                );
                // Reference: the scalar engine's exact sequence.
                for l in 0..width {
                    let expect = if act[l] != 0 && cf[l] > 0 && ct[l] > 0 {
                        let gain = lf[l] - lt[l];
                        if lf[l] <= 0.0 || gain <= thr {
                            0.0
                        } else {
                            (scale * ct[l] as f64) * (coef * gain / lf[l]).clamp(0.0, 1.0)
                        }
                    } else {
                        0.0
                    };
                    assert_eq!(scalar[l].to_bits(), expect.to_bits(), "lane {l}");
                }
                if Dispatch::Avx2.is_available() {
                    let mut vector = vec![0.0; width];
                    imitation_pair_probs(
                        Dispatch::Avx2.resolve(),
                        &cf,
                        &ct,
                        &act,
                        &lf,
                        &lt,
                        scale,
                        coef,
                        thr,
                        &mut vector,
                    );
                    assert_eq!(
                        scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        vector.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "thr {thr} width {width}"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_window_pairs_arms_agree() {
        for d in both_arms() {
            let window: Vec<f64> = (0..50).map(|i| i as f64 * 1.5 + 0.25).collect();
            for width in [1usize, 4, 9, 32] {
                let loads: Vec<u64> = (0..width).map(|i| 100 + mix(i as u64) % 48).collect();
                let mut o0 = vec![0.0; width];
                let mut o1 = vec![0.0; width];
                gather_window_pairs(d, &window, &loads, 100, &mut o0, &mut o1);
                for l in 0..width {
                    let off = (loads[l] - 100) as usize;
                    assert_eq!(o0[l].to_bits(), window[off].to_bits(), "{d:?} lane {l}");
                    assert_eq!(o1[l].to_bits(), window[off + 1].to_bits(), "{d:?} lane {l}");
                }
            }
        }
    }

    #[test]
    fn fills_match_pointwise_bitwise() {
        for d in both_arms() {
            let mut out = vec![0.0; 37];
            // Bases beyond 2⁵³ exercise the exact-conversion rounding.
            for start in [0u64, 17, 1 << 40, (1 << 53) + 12_345, u64::MAX - 100] {
                affine_fill(d, 2.5, 0.75, start, &mut out);
                for (j, v) in out.iter().enumerate() {
                    let expect = 2.5 * (start + j as u64) as f64 + 0.75;
                    assert_eq!(v.to_bits(), expect.to_bits(), "{d:?} affine at {start}+{j}");
                }
                for k in 1..=4u32 {
                    monomial_fill(d, 1.5, k, start, &mut out);
                    for (j, v) in out.iter().enumerate() {
                        let x = (start + j as u64) as f64;
                        let expect = 1.5 * x.powi(k as i32);
                        assert_eq!(v.to_bits(), expect.to_bits(), "{d:?} k={k} at {start}+{j}");
                    }
                }
            }
        }
    }

    #[test]
    fn env_override_is_honored() {
        // `detect` reads the environment on every call (only `global`
        // caches), so the override can be probed directly.
        std::env::set_var(DISPATCH_ENV, "scalar");
        assert_eq!(Dispatch::detect(), Dispatch::Scalar);
        std::env::set_var(DISPATCH_ENV, "avx2");
        let d = Dispatch::detect();
        assert!(d == Dispatch::Avx2 || !avx2_available());
        std::env::set_var(DISPATCH_ENV, "avx512");
        let d = Dispatch::detect();
        assert!(d == Dispatch::Avx512 || !avx512_available());
        std::env::remove_var(DISPATCH_ENV);
    }
}
