//! Simple s–t path enumeration.

use crate::error::NetworkError;
use crate::graph::{DiGraph, EdgeId, NodeId};

/// A simple s–t path: the sequence of edges traversed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    edges: Vec<EdgeId>,
}

impl Path {
    /// The edges of the path in traversal order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Paths are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Enumerate all simple s–t paths of `graph` by depth-first search.
///
/// `cap` bounds the number of paths returned; path counts are exponential in
/// general, so a cap keeps enumeration predictable. The result is in a
/// deterministic (DFS by edge id) order.
///
/// # Errors
///
/// * [`NetworkError::UnknownNode`] for invalid endpoints,
/// * [`NetworkError::Disconnected`] if no path exists,
/// * [`NetworkError::TooManyPaths`] if more than `cap` paths exist.
///
/// # Example
///
/// ```
/// use congames_network::{enumerate_paths, DiGraph};
/// use congames_model::Affine;
///
/// let mut g = DiGraph::new();
/// let s = g.add_node();
/// let t = g.add_node();
/// g.add_edge(s, t, Affine::linear(1.0).into())?;
/// g.add_edge(s, t, Affine::linear(2.0).into())?;
/// let paths = enumerate_paths(&g, s, t, 100)?;
/// assert_eq!(paths.len(), 2);
/// # Ok::<(), congames_network::NetworkError>(())
/// ```
pub fn enumerate_paths(
    graph: &DiGraph,
    source: NodeId,
    sink: NodeId,
    cap: usize,
) -> Result<Vec<Path>, NetworkError> {
    graph.check_node(source)?;
    graph.check_node(sink)?;
    let mut paths = Vec::new();
    let mut visited = vec![false; graph.num_nodes()];
    let mut stack: Vec<EdgeId> = Vec::new();
    dfs(graph, source, sink, cap, &mut visited, &mut stack, &mut paths)?;
    if paths.is_empty() {
        return Err(NetworkError::Disconnected { source: source.raw(), sink: sink.raw() });
    }
    Ok(paths)
}

fn dfs(
    graph: &DiGraph,
    node: NodeId,
    sink: NodeId,
    cap: usize,
    visited: &mut [bool],
    stack: &mut Vec<EdgeId>,
    paths: &mut Vec<Path>,
) -> Result<(), NetworkError> {
    if node == sink {
        if paths.len() >= cap {
            return Err(NetworkError::TooManyPaths { cap });
        }
        paths.push(Path { edges: stack.clone() });
        return Ok(());
    }
    visited[node.index()] = true;
    for &e in graph.out_edges(node) {
        let (_, to) = graph.endpoints(e);
        if !visited[to.index()] {
            stack.push(e);
            dfs(graph, to, sink, cap, visited, stack, paths)?;
            stack.pop();
        }
    }
    visited[node.index()] = false;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_model::Affine;

    fn lin() -> congames_model::LatencyFn {
        Affine::linear(1.0).into()
    }

    /// Build the 4-node diamond s→{a,b}→t plus the Braess bridge a→b.
    fn braess_graph() -> (DiGraph, NodeId, NodeId) {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, lin()).unwrap();
        g.add_edge(s, b, lin()).unwrap();
        g.add_edge(a, t, lin()).unwrap();
        g.add_edge(b, t, lin()).unwrap();
        g.add_edge(a, b, lin()).unwrap();
        (g, s, t)
    }

    #[test]
    fn braess_has_three_paths() {
        let (g, s, t) = braess_graph();
        let paths = enumerate_paths(&g, s, t, 100).unwrap();
        assert_eq!(paths.len(), 3);
        // Each path is simple and starts at s / ends at t.
        for p in &paths {
            assert!(!p.is_empty());
            let (first_from, _) = g.endpoints(p.edges()[0]);
            assert_eq!(first_from, s);
            let (_, last_to) = g.endpoints(*p.edges().last().unwrap());
            assert_eq!(last_to, t);
            // Consecutive edges chain up.
            for w in p.edges().windows(2) {
                let (_, mid) = g.endpoints(w[0]);
                let (from, _) = g.endpoints(w[1]);
                assert_eq!(mid, from);
            }
        }
        // Path lengths: two of length 2, one of length 3 (the bridge path).
        let mut lens: Vec<usize> = paths.iter().map(Path::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 2, 3]);
    }

    #[test]
    fn parallel_links_enumerate_individually() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        for _ in 0..5 {
            g.add_edge(s, t, lin()).unwrap();
        }
        let paths = enumerate_paths(&g, s, t, 100).unwrap();
        assert_eq!(paths.len(), 5);
    }

    #[test]
    fn cap_is_enforced() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        for _ in 0..5 {
            g.add_edge(s, t, lin()).unwrap();
        }
        assert!(matches!(enumerate_paths(&g, s, t, 3), Err(NetworkError::TooManyPaths { cap: 3 })));
    }

    #[test]
    fn disconnected_graph_errors() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        let _ = g.add_node();
        assert!(matches!(enumerate_paths(&g, s, t, 10), Err(NetworkError::Disconnected { .. })));
    }

    #[test]
    fn cycles_do_not_produce_nonsimple_paths() {
        // s → a → t with a cycle a → b → a.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, lin()).unwrap();
        g.add_edge(a, b, lin()).unwrap();
        g.add_edge(b, a, lin()).unwrap();
        g.add_edge(a, t, lin()).unwrap();
        let paths = enumerate_paths(&g, s, t, 100).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
    }

    #[test]
    fn grid_path_count_is_binomial() {
        // A 3x3 grid DAG has C(4,2) = 6 monotone paths.
        let (g, s, t) = crate::builders::grid(3, 3, |_| Affine::linear(1.0).into());
        let paths = enumerate_paths(&g, s, t, 1000).unwrap();
        assert_eq!(paths.len(), 6);
    }
}
