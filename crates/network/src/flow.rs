//! Exact minimization of separable convex objectives over integral s–t
//! flows, by successive shortest-path augmentation on the residual network.
//!
//! Two instantiations matter for the paper:
//!
//! * **`Φ*` (minimum Rosenthal potential).** The potential
//!   `Φ(x) = Σ_e Σ_{i≤x_e} ℓ_e(i)` is separable with non-decreasing marginal
//!   `ℓ_e(x_e + 1)`, so its minimum over states (= integral s–t flows of
//!   value `n`) is computed exactly. Theorem 7's bound is
//!   `O(d/(ε²δ) · log(Φ(x0)/Φ*))`, so experiments need `Φ*`.
//! * **Optimal social cost.** `Σ_e x_e·ℓ_e(x_e)` has marginal
//!   `(k+1)ℓ_e(k+1) − k·ℓ_e(k)`, non-decreasing whenever `x·ℓ(x)` is convex
//!   (true for all convex non-decreasing latencies, e.g. polynomials with
//!   non-negative coefficients).
//!
//! Correctness relies on the marginals being non-decreasing in the load
//! (convexity): augmenting one unit along a cheapest residual path then
//! yields an optimal flow of the next value (classical convex-cost flow
//! result). Residual (backward) arcs carry negative costs, so shortest paths
//! use Bellman–Ford rather than Dijkstra.

use crate::error::NetworkError;
use crate::graph::{DiGraph, EdgeId, NodeId};

/// Result of a convex-cost flow computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResult {
    /// Optimal per-edge loads (a feasible integral s–t flow of the requested
    /// value).
    pub loads: Vec<u64>,
    /// The optimal objective value (e.g. `Φ*`).
    pub cost: f64,
}

/// Minimize `Σ_e Σ_{i=1..x_e} marginal(e, i)` over integral s–t flows of
/// value `units`, where `marginal(e, i)` is the cost of the `i`-th unit on
/// edge `e` and must be non-negative and non-decreasing in `i`.
///
/// # Errors
///
/// * [`NetworkError::Disconnected`] if fewer than `units` units can reach the
///   sink,
/// * [`NetworkError::InvalidParameter`] if a marginal is negative/NaN,
/// * [`NetworkError::UnknownNode`] for invalid endpoints.
pub fn convex_min_cost_flow(
    graph: &DiGraph,
    source: NodeId,
    sink: NodeId,
    units: u64,
    mut marginal: impl FnMut(EdgeId, u64) -> f64,
) -> Result<FlowResult, NetworkError> {
    graph.check_node(source)?;
    graph.check_node(sink)?;
    let m = graph.num_edges();
    let nv = graph.num_nodes();
    let mut loads = vec![0u64; m];
    let mut cost = 0.0_f64;

    for _ in 0..units {
        // Bellman–Ford over the residual network.
        let mut dist = vec![f64::INFINITY; nv];
        // Predecessor: (edge, is_forward).
        let mut pred: Vec<Option<(EdgeId, bool)>> = vec![None; nv];
        dist[source.index()] = 0.0;
        for _ in 0..nv.max(1) - 1 {
            let mut changed = false;
            for (ei, &load_ei) in loads.iter().enumerate().take(m) {
                let e = EdgeId::new(ei as u32);
                let (u, v) = graph.endpoints(e);
                // Forward arc u → v with marginal cost of the next unit.
                if dist[u.index()].is_finite() {
                    let w = marginal(e, load_ei + 1);
                    if !w.is_finite() || w < 0.0 {
                        return Err(NetworkError::InvalidParameter {
                            name: "marginal",
                            message: "marginal costs must be finite and non-negative",
                        });
                    }
                    let nd = dist[u.index()] + w;
                    if nd < dist[v.index()] - 1e-15 {
                        dist[v.index()] = nd;
                        pred[v.index()] = Some((e, true));
                        changed = true;
                    }
                }
                // Backward (residual) arc v → u: undo the last unit.
                if loads[ei] > 0 && dist[v.index()].is_finite() {
                    let w = -marginal(e, loads[ei]);
                    let nd = dist[v.index()] + w;
                    if nd < dist[u.index()] - 1e-15 {
                        dist[u.index()] = nd;
                        pred[u.index()] = Some((e, false));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if !dist[sink.index()].is_finite() {
            return Err(NetworkError::Disconnected { source: source.raw(), sink: sink.raw() });
        }
        // Walk the predecessor chain back from the sink, collecting arcs; we
        // guard against cycles (which cannot occur with non-negative forward
        // costs and the strict improvement threshold above).
        let mut v = sink;
        let mut steps = 0usize;
        while v != source {
            let (e, forward) =
                pred[v.index()].expect("finite sink distance implies a predecessor chain");
            let (from, to) = graph.endpoints(e);
            if forward {
                loads[e.index()] += 1;
                v = from;
                debug_assert_eq!(to, if steps == 0 { sink } else { to });
            } else {
                loads[e.index()] -= 1;
                v = to;
            }
            steps += 1;
            if steps > nv + m {
                unreachable!("predecessor chain longer than the residual network");
            }
        }
        cost += dist[sink.index()];
    }
    Ok(FlowResult { loads, cost })
}

/// The minimum Rosenthal potential `Φ*` over all states of the network game
/// `(graph, source, sink)` with `players` players, together with a state
/// (edge-load vector) attaining it. The attaining load vector is the edge
/// profile of a Nash equilibrium.
///
/// # Errors
///
/// See [`convex_min_cost_flow`].
pub fn min_potential_flow(
    graph: &DiGraph,
    source: NodeId,
    sink: NodeId,
    players: u64,
) -> Result<FlowResult, NetworkError> {
    convex_min_cost_flow(graph, source, sink, players, |e, i| graph.latency(e).value(i))
}

/// The minimum total latency `Σ_e x_e·ℓ_e(x_e)` over all states, with an
/// attaining load vector. Requires `x·ℓ_e(x)` to be convex for every edge
/// (all convex non-decreasing latencies qualify); marginals must come out
/// non-decreasing or the result may be suboptimal.
///
/// # Errors
///
/// See [`convex_min_cost_flow`].
pub fn min_social_cost_flow(
    graph: &DiGraph,
    source: NodeId,
    sink: NodeId,
    players: u64,
) -> Result<FlowResult, NetworkError> {
    convex_min_cost_flow(graph, source, sink, players, |e, i| {
        let l = graph.latency(e);
        i as f64 * l.value(i) - (i - 1) as f64 * l.value(i - 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_model::{Affine, Constant, Monomial};

    #[test]
    fn parallel_links_balance() {
        // Two identical linear links, 10 units ⇒ 5/5 and Φ* = 2·(1+..+5)=30.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, Affine::linear(1.0).into()).unwrap();
        g.add_edge(s, t, Affine::linear(1.0).into()).unwrap();
        let r = min_potential_flow(&g, s, t, 10).unwrap();
        assert_eq!(r.loads, vec![5, 5]);
        assert!((r.cost - 30.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_links_split_by_marginals() {
        // ℓ1 = x, ℓ2 = 2x, 9 units: greedy marginals fill 6 / 3.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, Affine::linear(1.0).into()).unwrap();
        g.add_edge(s, t, Affine::linear(2.0).into()).unwrap();
        let r = min_potential_flow(&g, s, t, 9).unwrap();
        assert_eq!(r.loads, vec![6, 3]);
        // Φ = 21 + 2·6 = 33
        assert!((r.cost - 33.0).abs() < 1e-9);
    }

    #[test]
    fn potential_cost_telescopes_to_potential_of_loads() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, Monomial::new(1.0, 2).into()).unwrap();
        g.add_edge(a, t, Affine::new(1.0, 1.0).into()).unwrap();
        g.add_edge(s, t, Affine::linear(3.0).into()).unwrap();
        let r = min_potential_flow(&g, s, t, 7).unwrap();
        // Recompute Φ from loads and compare with the telescoped cost.
        let mut phi = 0.0;
        for (ei, &x) in r.loads.iter().enumerate() {
            for i in 1..=x {
                phi += g.latency(EdgeId::new(ei as u32)).value(i);
            }
        }
        assert!((phi - r.cost).abs() < 1e-9, "telescoped {} vs recomputed {phi}", r.cost);
        // Flow conservation: out(s) = in(t) = 7.
        assert_eq!(r.loads[0] + r.loads[2], 7);
        assert_eq!(r.loads[1], r.loads[0]);
    }

    #[test]
    fn flow_matches_brute_force_on_braess() {
        // Braess network with the classic latencies: s→a: x, a→t: c=10,
        // s→b: c=10, b→t: x, bridge a→b: 0·x (we use a tiny constant).
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, Affine::linear(1.0).into()).unwrap();
        g.add_edge(a, t, Constant::new(10.0).into()).unwrap();
        g.add_edge(s, b, Constant::new(10.0).into()).unwrap();
        g.add_edge(b, t, Affine::linear(1.0).into()).unwrap();
        g.add_edge(a, b, Constant::new(0.1).into()).unwrap();
        let n = 6u64;
        let r = min_potential_flow(&g, s, t, n).unwrap();

        // Brute force over path multiplicities: paths are sab? s-a-t, s-b-t,
        // s-a-b-t.
        let paths: [&[usize]; 3] = [&[0, 1], &[2, 3], &[0, 4, 3]];
        let mut best = f64::INFINITY;
        for x0 in 0..=n {
            for x1 in 0..=n - x0 {
                let x2 = n - x0 - x1;
                let mut loads = [0u64; 5];
                for (p, &cnt) in paths.iter().zip([x0, x1, x2].iter()) {
                    for &e in *p {
                        loads[e] += cnt;
                    }
                }
                let mut phi = 0.0;
                for (ei, &x) in loads.iter().enumerate() {
                    for i in 1..=x {
                        phi += g.latency(EdgeId::new(ei as u32)).value(i);
                    }
                }
                best = best.min(phi);
            }
        }
        assert!((r.cost - best).abs() < 1e-9, "flow Φ* {} differs from brute force {best}", r.cost);
    }

    #[test]
    fn social_cost_flow_on_pigou() {
        // Pigou: ℓ1 = 1 (constant), ℓ2 = x/4 with 4 units.
        // Total latency: put k on link 2: (4−k)·1 + k·(k/4); minimized at
        // k = 2: 2 + 1 = 3.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, Constant::new(1.0).into()).unwrap();
        g.add_edge(s, t, Affine::linear(0.25).into()).unwrap();
        let r = min_social_cost_flow(&g, s, t, 4).unwrap();
        assert_eq!(r.loads, vec![2, 2]);
        assert!((r.cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rerouting_through_residual_arcs() {
        // A case where the second unit must reroute the first:
        // s→a cheap-then-steep, a→t expensive, a→b free, b→t cheap-then-steep,
        // s→b moderate. Forward-only greedy would strand the second unit on a
        // path costing more than the optimum; residual arcs fix it.
        let steep = |first: f64| {
            congames_model::FnLatency::with_elasticity("steep", 20.0, move |x| {
                if x <= 1 {
                    first
                } else {
                    1000.0
                }
            })
        };
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, steep(0.0).into()).unwrap(); // e0
        g.add_edge(a, t, Constant::new(10.0).into()).unwrap(); // e1
        g.add_edge(a, b, Constant::new(0.0).into()).unwrap(); // e2
        g.add_edge(b, t, steep(0.0).into()).unwrap(); // e3
        g.add_edge(s, b, Constant::new(1.0).into()).unwrap(); // e4
                                                              // Optimal 2-unit flow: s→a→t (10) and s→b→t (1) = 11.
        let r = min_potential_flow(&g, s, t, 2).unwrap();
        assert!((r.cost - 11.0).abs() < 1e-9, "cost {}", r.cost);
        assert_eq!(r.loads, vec![1, 1, 0, 1, 1]);
    }

    #[test]
    fn disconnected_graph_errors() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        assert!(matches!(min_potential_flow(&g, s, t, 1), Err(NetworkError::Disconnected { .. })));
    }

    #[test]
    fn zero_units_is_trivial() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, Affine::linear(1.0).into()).unwrap();
        let r = min_potential_flow(&g, s, t, 0).unwrap();
        assert_eq!(r.loads, vec![0]);
        assert_eq!(r.cost, 0.0);
    }
}
