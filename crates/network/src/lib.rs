//! # congames-network
//!
//! Network substrate for symmetric *network* congestion games: a directed
//! multigraph, s–t path enumeration, shortest paths, graph builders for the
//! families used in the experiments, and an exact computation of the global
//! Rosenthal-potential minimum `Φ*` via convex-cost successive-shortest-path
//! flow.
//!
//! The paper defines games on a network `G = (V, E)` with a source `s` and a
//! sink `t`; the common strategy space is the set of simple s–t paths. This
//! crate enumerates those paths into a [`congames_model::CongestionGame`]
//! (via [`NetworkGame`]) and, independently of the enumeration, computes
//!
//! * `Φ* = min_x Φ(x)` — the potential of a global Nash equilibrium — and
//! * the optimal (integral) social cost,
//!
//! both by `n` successive shortest-path augmentations with marginal-cost
//! weights, which is exact for non-decreasing (hence convex-potential)
//! latencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builders;
mod dijkstra;
mod error;
mod flow;
mod graph;
mod paths;
mod to_game;

pub use dijkstra::shortest_path;
pub use error::NetworkError;
pub use flow::{convex_min_cost_flow, min_potential_flow, min_social_cost_flow, FlowResult};
pub use graph::{DiGraph, EdgeId, NodeId};
pub use paths::{enumerate_paths, Path};
pub use to_game::NetworkGame;
