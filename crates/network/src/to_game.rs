//! Conversion of a network into a symmetric congestion game.

use congames_model::{CongestionGame, GameError, Resource, ResourceId, Strategy};

use crate::error::NetworkError;
use crate::flow::{min_potential_flow, min_social_cost_flow};
use crate::graph::{DiGraph, NodeId};
use crate::paths::{enumerate_paths, Path};

/// A symmetric network congestion game: the graph, its enumerated strategy
/// space, and the derived [`CongestionGame`].
///
/// Edges become resources (same indices); simple s–t paths become
/// strategies. The struct keeps the graph so exact baselines (`Φ*`, optimal
/// social cost, best responses via shortest paths) remain available
/// alongside the combinatorial game.
///
/// # Example
///
/// ```
/// use congames_network::{builders, NetworkGame};
/// use congames_model::Affine;
///
/// let (graph, s, t) = builders::parallel_links(3, |i| {
///     Affine::linear((i + 1) as f64).into()
/// });
/// let net = NetworkGame::build(graph, s, t, 30, 1000)?;
/// assert_eq!(net.game().num_strategies(), 3);
/// let phi_star = net.min_potential()?;
/// assert!(phi_star > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkGame {
    graph: DiGraph,
    source: NodeId,
    sink: NodeId,
    paths: Vec<Path>,
    game: CongestionGame,
}

impl NetworkGame {
    /// Enumerate the s–t paths of `graph` (up to `path_cap`) and build the
    /// symmetric congestion game with `players` players.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors ([`NetworkError`]) and game-construction
    /// errors ([`GameError`], via the `Box`ed combined error in practice —
    /// the two never overlap here because edges/paths are valid by
    /// construction).
    pub fn build(
        graph: DiGraph,
        source: NodeId,
        sink: NodeId,
        players: u64,
        path_cap: usize,
    ) -> Result<Self, BuildError> {
        let paths = enumerate_paths(&graph, source, sink, path_cap)?;
        let resources: Vec<Resource> = graph.latencies().into_iter().map(Resource::new).collect();
        let strategies: Vec<Strategy> = paths
            .iter()
            .map(|p| Strategy::new(p.edges().iter().map(|e| ResourceId::new(e.raw())).collect()))
            .collect::<Result<_, _>>()?;
        let game = CongestionGame::symmetric(resources, strategies, players)?;
        Ok(NetworkGame { graph, source, sink, paths, game })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The sink node.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// The enumerated strategy paths (index-aligned with the game's
    /// strategies).
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// The derived congestion game.
    pub fn game(&self) -> &CongestionGame {
        &self.game
    }

    /// Exact minimum Rosenthal potential `Φ*` of the game (via convex-cost
    /// flow on the graph — no path enumeration involved).
    ///
    /// # Errors
    ///
    /// Propagates flow errors (disconnection is impossible once `build`
    /// succeeded, but invalid custom latencies can still surface).
    pub fn min_potential(&self) -> Result<f64, NetworkError> {
        Ok(min_potential_flow(&self.graph, self.source, self.sink, self.game.total_players())?.cost)
    }

    /// Exact optimal social cost (total latency `Σ_e x_e ℓ_e(x_e)`),
    /// requiring convex `x·ℓ(x)` per edge.
    ///
    /// # Errors
    ///
    /// Propagates flow errors.
    pub fn min_total_latency(&self) -> Result<f64, NetworkError> {
        Ok(min_social_cost_flow(&self.graph, self.source, self.sink, self.game.total_players())?
            .cost)
    }
}

/// Error for [`NetworkGame::build`]: either a network or a game error.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildError {
    /// Path enumeration / graph validation failed.
    Network(NetworkError),
    /// Game construction failed.
    Game(GameError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Network(e) => write!(f, "network error: {e}"),
            BuildError::Game(e) => write!(f, "game error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Network(e) => Some(e),
            BuildError::Game(e) => Some(e),
        }
    }
}

impl From<NetworkError> for BuildError {
    fn from(e: NetworkError) -> Self {
        BuildError::Network(e)
    }
}

impl From<GameError> for BuildError {
    fn from(e: GameError) -> Self {
        BuildError::Game(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use congames_model::{potential_of_loads, Affine, State};

    #[test]
    fn build_parallel_links_game() {
        let (g, s, t) = builders::parallel_links(3, |i| Affine::linear((i + 1) as f64).into());
        let net = NetworkGame::build(g, s, t, 12, 100).unwrap();
        assert_eq!(net.game().num_resources(), 3);
        assert_eq!(net.game().num_strategies(), 3);
        assert_eq!(net.game().total_players(), 12);
        assert_eq!(net.paths().len(), 3);
    }

    #[test]
    fn min_potential_matches_model_potential_of_loads() {
        let (g, s, t) = builders::braess([
            Affine::linear(1.0).into(),
            Affine::new(0.0, 6.0).into(),
            Affine::new(0.0, 6.0).into(),
            Affine::linear(1.0).into(),
            Affine::new(0.0, 0.5).into(),
        ]);
        let net = NetworkGame::build(g, s, t, 6, 100).unwrap();
        let flow = min_potential_flow(net.graph(), net.source(), net.sink(), 6).unwrap();
        let phi = potential_of_loads(net.game(), &flow.loads);
        assert!((phi - flow.cost).abs() < 1e-9);
        assert!((net.min_potential().unwrap() - flow.cost).abs() < 1e-12);
    }

    #[test]
    fn phi_star_lower_bounds_all_states() {
        let (g, s, t) = builders::parallel_links(2, |i| Affine::linear((i + 1) as f64).into());
        let net = NetworkGame::build(g, s, t, 6, 100).unwrap();
        let phi_star = net.min_potential().unwrap();
        for k in 0..=6u64 {
            let state = State::from_counts(net.game(), vec![k, 6 - k]).unwrap();
            let phi = congames_model::potential(net.game(), &state);
            assert!(phi >= phi_star - 1e-9, "state {k} has Φ {phi} < Φ* {phi_star}");
        }
    }

    #[test]
    fn min_total_latency_lower_bounds_states() {
        let (g, s, t) = builders::parallel_links(2, |i| Affine::linear((i + 1) as f64).into());
        let net = NetworkGame::build(g, s, t, 6, 100).unwrap();
        let opt = net.min_total_latency().unwrap();
        for k in 0..=6u64 {
            let state = State::from_counts(net.game(), vec![k, 6 - k]).unwrap();
            let tot = congames_model::total_latency(net.game(), &state);
            assert!(tot >= opt - 1e-9);
        }
    }

    #[test]
    fn path_cap_propagates() {
        let (g, s, t) = builders::parallel_links(5, |_| Affine::linear(1.0).into());
        assert!(matches!(
            NetworkGame::build(g, s, t, 3, 2),
            Err(BuildError::Network(NetworkError::TooManyPaths { cap: 2 }))
        ));
    }
}
