//! Dijkstra shortest path with arbitrary non-negative edge weights.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::NetworkError;
use crate::graph::{DiGraph, EdgeId, NodeId};

/// A heap entry ordered by smallest distance first.
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; NaNs are rejected before insertion.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
    }
}

/// Compute a shortest s–t path under per-edge weights `weight(e) ≥ 0`.
///
/// Returns `(total_weight, edges_of_path)`. Weights are evaluated once per
/// edge via the provided closure, which lets callers price edges by
/// *marginal* costs (`ℓ_e(x_e + 1)`) for best-response and flow computations.
///
/// # Errors
///
/// * [`NetworkError::UnknownNode`] for invalid endpoints,
/// * [`NetworkError::Disconnected`] if the sink is unreachable,
/// * [`NetworkError::InvalidParameter`] if a weight is negative or NaN.
pub fn shortest_path(
    graph: &DiGraph,
    source: NodeId,
    sink: NodeId,
    mut weight: impl FnMut(EdgeId) -> f64,
) -> Result<(f64, Vec<EdgeId>), NetworkError> {
    graph.check_node(source)?;
    graph.check_node(sink)?;
    let n = graph.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: source });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == sink {
            break;
        }
        for &e in graph.out_edges(node) {
            let w = weight(e);
            if !w.is_finite() || w < 0.0 {
                return Err(NetworkError::InvalidParameter {
                    name: "weight",
                    message: "edge weights must be finite and non-negative",
                });
            }
            let (_, to) = graph.endpoints(e);
            let nd = d + w;
            if nd < dist[to.index()] {
                dist[to.index()] = nd;
                pred[to.index()] = Some(e);
                heap.push(HeapEntry { dist: nd, node: to });
            }
        }
    }
    if !dist[sink.index()].is_finite() {
        return Err(NetworkError::Disconnected { source: source.raw(), sink: sink.raw() });
    }
    // Reconstruct the path backwards.
    let mut edges = Vec::new();
    let mut v = sink;
    while v != source {
        let e = pred[v.index()].expect("predecessor chain must reach the source");
        edges.push(e);
        let (from, _) = graph.endpoints(e);
        v = from;
    }
    edges.reverse();
    Ok((dist[sink.index()], edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_model::Affine;

    fn lin(a: f64) -> congames_model::LatencyFn {
        Affine::linear(a).into()
    }

    #[test]
    fn picks_cheaper_parallel_edge() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        let _slow = g.add_edge(s, t, lin(5.0)).unwrap();
        let fast = g.add_edge(s, t, lin(1.0)).unwrap();
        let (d, path) = shortest_path(&g, s, t, |e| g.latency(e).value(1)).unwrap();
        assert_eq!(path, vec![fast]);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn multi_hop_route() {
        // s → a → t costs 2, direct s → t costs 5.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        let e0 = g.add_edge(s, a, lin(1.0)).unwrap();
        let e1 = g.add_edge(a, t, lin(1.0)).unwrap();
        let _e2 = g.add_edge(s, t, lin(5.0)).unwrap();
        let (d, path) = shortest_path(&g, s, t, |e| g.latency(e).value(1)).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path, vec![e0, e1]);
    }

    #[test]
    fn disconnected_errors() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        assert!(matches!(shortest_path(&g, s, t, |_| 1.0), Err(NetworkError::Disconnected { .. })));
    }

    #[test]
    fn negative_weight_rejected() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, lin(1.0)).unwrap();
        assert!(matches!(
            shortest_path(&g, s, t, |_| -1.0),
            Err(NetworkError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn zero_weights_are_fine() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, lin(1.0)).unwrap();
        g.add_edge(a, t, lin(1.0)).unwrap();
        let (d, path) = shortest_path(&g, s, t, |_| 0.0).unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn source_equals_sink() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let (d, path) = shortest_path(&g, s, s, |_| 1.0).unwrap();
        assert_eq!(d, 0.0);
        assert!(path.is_empty());
    }
}
