use std::error::Error;
use std::fmt;

/// Error type for network construction and algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// A node id was out of range.
    UnknownNode {
        /// The offending node index.
        node: u32,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// No s–t path exists.
    Disconnected {
        /// Source node.
        source: u32,
        /// Sink node.
        sink: u32,
    },
    /// Path enumeration exceeded the configured cap.
    TooManyPaths {
        /// The cap that was exceeded.
        cap: usize,
    },
    /// An invalid parameter (e.g. zero players for a flow computation).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        message: &'static str,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownNode { node, nodes } => {
                write!(f, "node {node} out of range for a graph with {nodes} nodes")
            }
            NetworkError::Disconnected { source, sink } => {
                write!(f, "no path from node {source} to node {sink}")
            }
            NetworkError::TooManyPaths { cap } => {
                write!(f, "path enumeration exceeded the cap of {cap} paths")
            }
            NetworkError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            NetworkError::UnknownNode { node: 5, nodes: 3 },
            NetworkError::Disconnected { source: 0, sink: 1 },
            NetworkError::TooManyPaths { cap: 10 },
            NetworkError::InvalidParameter { name: "n", message: "must be positive" },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
