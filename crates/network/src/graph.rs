//! A directed multigraph with latency-labelled edges.

use std::fmt;

use congames_model::LatencyFn;

use crate::error::NetworkError;

/// Identifier of a node in a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Create a node id from a raw index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as `u32`.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an edge in a [`DiGraph`]. Edge ids double as the resource
/// ids of the derived congestion game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Create an edge id from a raw index.
    pub fn new(index: u32) -> Self {
        EdgeId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as `u32`.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) latency: LatencyFn,
}

/// A directed multigraph whose edges carry latency functions.
///
/// Parallel edges and multiple edges between the same node pair are allowed
/// (they are distinct resources); self-loops are rejected because no simple
/// s–t path can use them.
///
/// # Example
///
/// ```
/// use congames_network::DiGraph;
/// use congames_model::Affine;
///
/// let mut g = DiGraph::new();
/// let s = g.add_node();
/// let t = g.add_node();
/// g.add_edge(s, t, Affine::linear(1.0).into())?;
/// g.add_edge(s, t, Affine::new(1.0, 10.0).into())?;
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), congames_network::NetworkError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    num_nodes: u32,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node (rebuilt lazily on mutation).
    out_edges: Vec<Vec<EdgeId>>,
}

impl DiGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.num_nodes += 1;
        self.out_edges.push(Vec::new());
        NodeId(self.num_nodes - 1)
    }

    /// Add `count` nodes; returns their ids.
    pub fn add_nodes(&mut self, count: u32) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Add a directed edge `from → to` with the given latency.
    ///
    /// # Errors
    ///
    /// Fails if either endpoint is unknown or `from == to`.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        latency: LatencyFn,
    ) -> Result<EdgeId, NetworkError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(NetworkError::InvalidParameter {
                name: "edge",
                message: "self-loops are not allowed",
            });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { from, to, latency });
        self.out_edges[from.index()].push(id);
        Ok(id)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The endpoints of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e.index()];
        (edge.from, edge.to)
    }

    /// The latency function of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn latency(&self, e: EdgeId) -> &LatencyFn {
        &self.edges[e.index()].latency
    }

    /// Outgoing edges of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out_edges[v.index()]
    }

    /// Validate a node id.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownNode`] if out of range.
    pub fn check_node(&self, v: NodeId) -> Result<(), NetworkError> {
        if v.index() < self.num_nodes as usize {
            Ok(())
        } else {
            Err(NetworkError::UnknownNode { node: v.raw(), nodes: self.num_nodes as usize })
        }
    }

    /// All latency functions in edge order (the resource vector of the
    /// derived congestion game).
    pub fn latencies(&self) -> Vec<LatencyFn> {
        self.edges.iter().map(|e| e.latency.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_model::Affine;

    #[test]
    fn build_and_query() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let e0 = g.add_edge(a, b, Affine::linear(1.0).into()).unwrap();
        let e1 = g.add_edge(b, c, Affine::linear(2.0).into()).unwrap();
        let e2 = g.add_edge(a, c, Affine::linear(3.0).into()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.endpoints(e1), (b, c));
        assert_eq!(g.out_edges(a), &[e0, e2]);
        assert_eq!(g.latency(e2).value(2), 6.0);
        assert_eq!(g.latencies().len(), 3);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, Affine::linear(1.0).into()).unwrap();
        g.add_edge(a, b, Affine::linear(1.0).into()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_edges(a).len(), 2);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        assert!(matches!(
            g.add_edge(a, a, Affine::linear(1.0).into()),
            Err(NetworkError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let ghost = NodeId::new(9);
        assert!(matches!(
            g.add_edge(a, ghost, Affine::linear(1.0).into()),
            Err(NetworkError::UnknownNode { node: 9, nodes: 1 })
        ));
        assert!(g.check_node(a).is_ok());
    }

    #[test]
    fn add_nodes_bulk() {
        let mut g = DiGraph::new();
        let ids = g.add_nodes(4);
        assert_eq!(ids.len(), 4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(ids[3].index(), 3);
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId::new(2).to_string(), "v2");
        assert_eq!(EdgeId::new(3).to_string(), "e3");
    }
}
