//! Builders for the network families used throughout the experiments.

use congames_model::LatencyFn;
use rand::Rng;

use crate::graph::{DiGraph, EdgeId, NodeId};

/// `m` parallel links from a fresh source to a fresh sink, with latencies
/// produced by `latency(i)` for link `i`. The singleton-game topology.
pub fn parallel_links(
    m: usize,
    mut latency: impl FnMut(usize) -> LatencyFn,
) -> (DiGraph, NodeId, NodeId) {
    assert!(m > 0, "need at least one link");
    let mut g = DiGraph::new();
    let s = g.add_node();
    let t = g.add_node();
    for i in 0..m {
        g.add_edge(s, t, latency(i)).expect("endpoints are valid by construction");
    }
    (g, s, t)
}

/// The Braess diamond: `s→a`, `s→b`, `a→t`, `b→t` plus the bridge `a→b`.
///
/// Latencies are supplied per edge in the order
/// `[s→a, s→b, a→t, b→t, a→b]`. The classic parametrization uses fast
/// congestible outer edges (`x`-like) on `s→a`/`b→t`, constant edges on
/// `s→b`/`a→t`, and a free bridge.
pub fn braess(latencies: [LatencyFn; 5]) -> (DiGraph, NodeId, NodeId) {
    let mut g = DiGraph::new();
    let s = g.add_node();
    let a = g.add_node();
    let b = g.add_node();
    let t = g.add_node();
    let [sa, sb, at, bt, ab] = latencies;
    g.add_edge(s, a, sa).expect("valid");
    g.add_edge(s, b, sb).expect("valid");
    g.add_edge(a, t, at).expect("valid");
    g.add_edge(b, t, bt).expect("valid");
    g.add_edge(a, b, ab).expect("valid");
    (g, s, t)
}

/// An `rows × cols` grid DAG. Node `(i, j)` connects right to `(i, j+1)` and
/// down to `(i+1, j)`; the source is `(0,0)`, the sink `(rows−1, cols−1)`.
/// Monotone lattice paths are the strategies: `C(rows+cols−2, rows−1)` many.
pub fn grid(
    rows: usize,
    cols: usize,
    mut latency: impl FnMut(EdgeId) -> LatencyFn,
) -> (DiGraph, NodeId, NodeId) {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid must have at least two nodes");
    let mut g = DiGraph::new();
    let nodes: Vec<NodeId> = (0..rows * cols).map(|_| g.add_node()).collect();
    let idx = |i: usize, j: usize| nodes[i * cols + j];
    let mut next_edge = 0u32;
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                let l = latency(EdgeId::new(next_edge));
                g.add_edge(idx(i, j), idx(i, j + 1), l).expect("valid");
                next_edge += 1;
            }
            if i + 1 < rows {
                let l = latency(EdgeId::new(next_edge));
                g.add_edge(idx(i, j), idx(i + 1, j), l).expect("valid");
                next_edge += 1;
            }
        }
    }
    (g, idx(0, 0), idx(rows - 1, cols - 1))
}

/// A layered random DAG: `layers` layers of `width` nodes between source and
/// sink. Every node of layer `i` connects to each node of layer `i+1`
/// independently with probability `p_edge` (at least one edge per node is
/// guaranteed by wiring a fallback to a random successor); the source
/// connects to all of layer 0 and all of the last layer connect to the sink.
///
/// Latencies come from `latency(rng)`, letting callers randomize.
pub fn layered_random<R: Rng>(
    layers: usize,
    width: usize,
    p_edge: f64,
    rng: &mut R,
    mut latency: impl FnMut(&mut R) -> LatencyFn,
) -> (DiGraph, NodeId, NodeId) {
    assert!(layers >= 1 && width >= 1, "need at least one layer and one node per layer");
    let mut g = DiGraph::new();
    let s = g.add_node();
    let t = g.add_node();
    let mut layer_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(layers);
    for _ in 0..layers {
        layer_nodes.push((0..width).map(|_| g.add_node()).collect());
    }
    for &v in &layer_nodes[0] {
        let l = latency(rng);
        g.add_edge(s, v, l).expect("valid");
    }
    for li in 0..layers - 1 {
        for &u in &layer_nodes[li] {
            let mut connected = false;
            for &v in &layer_nodes[li + 1] {
                if rng.gen::<f64>() < p_edge {
                    let l = latency(rng);
                    g.add_edge(u, v, l).expect("valid");
                    connected = true;
                }
            }
            if !connected {
                let v = layer_nodes[li + 1][rng.gen_range(0..width)];
                let l = latency(rng);
                g.add_edge(u, v, l).expect("valid");
            }
        }
    }
    for &v in &layer_nodes[layers - 1] {
        let l = latency(rng);
        g.add_edge(v, t, l).expect("valid");
    }
    (g, s, t)
}

/// Series composition of two-terminal graphs: chain `k` copies of a
/// `blocks`-wide parallel-link block, giving `blocks^k` paths with `k` edges
/// each. A simple series-parallel family with controllable path count.
pub fn series_parallel_chain(
    k: usize,
    blocks: usize,
    mut latency: impl FnMut(usize, usize) -> LatencyFn,
) -> (DiGraph, NodeId, NodeId) {
    assert!(k >= 1 && blocks >= 1, "need at least one stage and one block");
    let mut g = DiGraph::new();
    let s = g.add_node();
    let mut prev = s;
    for stage in 0..k {
        let next = g.add_node();
        for b in 0..blocks {
            let l = latency(stage, b);
            g.add_edge(prev, next, l).expect("valid");
        }
        prev = next;
    }
    (g, s, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::enumerate_paths;
    use congames_model::Affine;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn lin() -> LatencyFn {
        Affine::linear(1.0).into()
    }

    #[test]
    fn parallel_links_shape() {
        let (g, s, t) = parallel_links(4, |_| lin());
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(enumerate_paths(&g, s, t, 100).unwrap().len(), 4);
    }

    #[test]
    fn braess_shape() {
        let (g, s, t) = braess([lin(), lin(), lin(), lin(), lin()]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(enumerate_paths(&g, s, t, 100).unwrap().len(), 3);
    }

    #[test]
    fn grid_path_count() {
        // C(rows+cols-2, rows-1): 4x3 grid → C(5,3) = 10.
        let (g, s, t) = grid(4, 3, |_| lin());
        assert_eq!(enumerate_paths(&g, s, t, 1000).unwrap().len(), 10);
    }

    #[test]
    fn layered_random_is_connected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for seed in 0..5u64 {
            let mut r2 = SmallRng::seed_from_u64(seed);
            let (g, s, t) = layered_random(4, 3, 0.4, &mut r2, |_| lin());
            let paths = enumerate_paths(&g, s, t, 100_000).unwrap();
            assert!(!paths.is_empty());
            let _ = &mut rng;
        }
    }

    #[test]
    fn series_parallel_path_count() {
        let (g, s, t) = series_parallel_chain(3, 2, |_, _| lin());
        assert_eq!(enumerate_paths(&g, s, t, 100).unwrap().len(), 8);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn parallel_links_rejects_zero() {
        let _ = parallel_links(0, |_| lin());
    }
}
