//! Stopping conditions for simulation runs.

use congames_model::ApproxEquilibrium;

use crate::trajectory::Trajectory;

/// A condition that ends a run.
///
/// Conditions come in two cost classes, and [`StopSpec::check_every`]
/// applies only to the expensive one:
///
/// * **Cheap, checked every round** (exempt from `check_every`):
///   [`StopCondition::MaxRounds`] and [`StopCondition::PotentialAtMost`]
///   read values the simulation already maintains, so they fire on the
///   exact round they become true — whatever the cadence.
/// * **Expensive, cadence-gated**: [`StopCondition::ImitationStable`],
///   [`StopCondition::ApproxEquilibrium`], and
///   [`StopCondition::NashEquilibrium`] cost `O(S²·k)` per evaluation and
///   are only evaluated on rounds with `round % check_every == 0`, so
///   detection can lag by up to `check_every − 1` rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum StopCondition {
    /// Stop after this many rounds. Cheap: checked every round, never
    /// gated by [`StopSpec::check_every`].
    MaxRounds(u64),
    /// Stop when the state is imitation-stable (no player can gain more than
    /// the protocol's effective `ν` by imitating within the support). For
    /// innovative protocols prefer [`StopCondition::NashEquilibrium`].
    /// Expensive: only evaluated at the [`StopSpec::check_every`] cadence.
    ImitationStable,
    /// Stop when the state is a (δ,ε,ν)-equilibrium (Definition 1).
    /// Expensive: only evaluated at the [`StopSpec::check_every`] cadence.
    ApproxEquilibrium(ApproxEquilibrium),
    /// Stop when the state is an `ε`-Nash equilibrium with additive
    /// tolerance `tol` over the *full* strategy space.
    /// Expensive: only evaluated at the [`StopSpec::check_every`] cadence.
    NashEquilibrium {
        /// Additive tolerance (0 = exact Nash).
        tol: f64,
    },
    /// Stop when the potential is at most this value (e.g. `(1+ε)·Φ*`).
    /// Cheap: checked every round, never gated by
    /// [`StopSpec::check_every`].
    PotentialAtMost(f64),
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StopReason {
    /// The round budget was exhausted.
    MaxRounds,
    /// An imitation-stable state was reached.
    ImitationStable,
    /// A (δ,ε,ν)-equilibrium was reached.
    ApproxEquilibrium,
    /// An (approximate) Nash equilibrium was reached.
    NashEquilibrium,
    /// The potential target was reached.
    PotentialReached,
}

/// A set of stop conditions plus a check cadence.
///
/// Equilibrium checks cost `O(S²·k)`; `check_every` trades detection latency
/// against per-round overhead. The cadence gates **only** the expensive
/// conditions ([`StopCondition::ImitationStable`],
/// [`StopCondition::ApproxEquilibrium`],
/// [`StopCondition::NashEquilibrium`]); the cheap conditions
/// ([`StopCondition::MaxRounds`], [`StopCondition::PotentialAtMost`]) are
/// exempt and checked every round, so a round budget fires exactly even at
/// `check_every > 1` while an equilibrium reached on an off-cadence round
/// is detected at the next cadence round.
#[derive(Debug, Clone, PartialEq)]
pub struct StopSpec {
    conditions: Vec<StopCondition>,
    check_every: u64,
}

impl StopSpec {
    /// Create a spec checking the expensive conditions every round.
    pub fn new(conditions: Vec<StopCondition>) -> Self {
        StopSpec { conditions, check_every: 1 }
    }

    /// Only bound the number of rounds.
    pub fn max_rounds(rounds: u64) -> Self {
        StopSpec::new(vec![StopCondition::MaxRounds(rounds)])
    }

    /// Check expensive conditions every `every` rounds (≥ 1). Cheap
    /// conditions (round budget, potential target) stay exempt and are
    /// checked every round; see the type-level docs for the split.
    pub fn with_check_every(mut self, every: u64) -> Self {
        self.check_every = every.max(1);
        self
    }

    /// The configured conditions.
    pub fn conditions(&self) -> &[StopCondition] {
        &self.conditions
    }

    /// The expensive-check cadence.
    pub fn check_every(&self) -> u64 {
        self.check_every
    }
}

/// The trajectory-free result of a run: what stopped it, when, and at
/// which potential.
///
/// This is what `Simulation::run_observed` returns — per-round data flows
/// through the caller's [`Observer`](crate::Observer) instead of being
/// materialized. [`RunOutcome`] is this summary plus a recorded
/// [`Trajectory`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Which condition fired.
    pub reason: StopReason,
    /// Rounds executed (the stop condition was detected after this many).
    pub rounds: u64,
    /// Final potential.
    pub potential: f64,
}

/// The result of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Which condition fired.
    pub reason: StopReason,
    /// Rounds executed (the stop condition was detected after this many).
    pub rounds: u64,
    /// Final potential.
    pub potential: f64,
    /// Recorded metrics (empty if recording was disabled).
    pub trajectory: Trajectory,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders() {
        let s = StopSpec::max_rounds(10);
        assert_eq!(s.conditions().len(), 1);
        assert_eq!(s.check_every(), 1);
        let s2 = StopSpec::new(vec![StopCondition::ImitationStable]).with_check_every(0);
        assert_eq!(s2.check_every(), 1, "cadence is clamped to at least 1");
        let s3 = s2.with_check_every(16);
        assert_eq!(s3.check_every(), 16);
    }
}
