//! Replica-major lane kernel: `W` counter-mode replicas in lockstep.
//!
//! An ensemble sweep runs many *trials* of the same game. The scalar path
//! simulates them one at a time, so every trial re-walks the same CSR pair
//! structure, re-evaluates the same latency functions, and re-derives the
//! same per-class μ constants — work that depends only on the *game*, not
//! on the trial. [`LaneKernel`] instead runs a block of `W` replicas (the
//! *lanes*) through one structure-of-arrays state block:
//!
//! * **loads** — `[resources × W]`: per resource, the `W` lanes' loads sit
//!   contiguously, so one batched
//!   [`Latency::eval_range_into`](congames_model::Latency::eval_range_into)
//!   call over the union load window serves every lane's `ℓ(x)`/`ℓ(x+1)`
//!   pair (the per-lane values are gathered from the window, bit-identical
//!   to the pointwise evaluations by the batching contract).
//! * **counts** — `[strategies × W]`: the per-origin player counts all
//!   lanes' multinomials read.
//! * **pair walk** — the `(from, to)` CSR merge walk over strategy resource
//!   lists runs *once* per pair per round; the inner loop accumulates every
//!   lane's `ℓ_Q(x + 1_Q − 1_P)` from the already-gathered lane rows.
//!
//! # Bit-identity
//!
//! Each lane `l` simulates trial `first_trial + l` with its own
//! [`CounterRng`] stream (see [`congames_sampling::lane_streams`] and the
//! lane-addressing notes in `congames_sampling::counter`). Because every
//! counter-mode variate is a pure function of its
//! `(trial, round, site, index)` address, the lockstep interleaving
//! consumes exactly the words the scalar per-trial runs would, and each
//! lane's trajectory is **bit-identical to the scalar counter-mode run of
//! its trial**. The kernel reproduces the scalar aggregate engine's
//! floating-point operation order exactly: per-strategy latencies
//! accumulate in resource order from the `-0.0` fold identity of `Sum`,
//! pair probabilities apply the same μ formulas to the same operands, and
//! the per-round potential delta walks changed resources in ascending id
//! order, as `Simulation::step` does.
//!
//! A lane whose trial finishes (stop condition) or fails (sampling error)
//! *retires*: it drops out of the union windows and pair masks, and the
//! remaining lanes continue unperturbed — counter addressing makes their
//! streams independent of the retired lane by construction.
//!
//! The supported widths are pinned in [`LANE_WIDTHS`]; the ensemble
//! scheduler (see `Ensemble::lane_width`) slices its 32-trial reduce
//! blocks into lane groups of at most `W`, and a group may be narrower
//! than `W` at a sweep tail — the kernel accepts any group size ≥ 1.
//!
//! # SIMD dispatch
//!
//! The across-lane inner loops (batched Philox keystream, union-window
//! bounds and gathers, per-strategy latency accumulation, pair-walk
//! migration probabilities) run through `congames-simd`, which selects an
//! AVX2 arm or its bit-identical scalar fallback once per kernel
//! ([`congames_simd::Dispatch::global`], overridable via the
//! `CONGAMES_SIMD` environment variable and, for tests, per kernel via
//! [`LaneKernel::with_dispatch`]). Integer ops are exact in both arms and
//! float ops vectorize *across* lanes only — each lane's own operation
//! sequence is unchanged — so the dispatch choice never changes any
//! lane's bits; it only changes how fast they are produced.

use congames_model::{
    potential, potential_delta_for_load_change, CongestionGame, GameError, GameParams, ResourceId,
    State, StrategyId,
};
use congames_sampling::{multinomial_with_rest_into, Dispatch, LaneStreams};
use congames_simd as simd;

use crate::engine::{exploration_mu, imitation_mu, PairBuffer};
use crate::error::DynamicsError;
use crate::observe::Observer;
use crate::protocol::{ImitationProtocol, Protocol, SelfSampling};
use crate::stopping::{RunSummary, StopCondition, StopReason, StopSpec};
use crate::trajectory::{capture_record, RecordConfig};

/// Lane widths the ensemble scheduler accepts: the power-of-two block
/// sizes that divide (8, 16, 32) or pair up (64) the 32-trial reduce
/// block, so lane groups never straddle a reduce-block boundary by more
/// than the scheduler plans for.
pub const LANE_WIDTHS: [usize; 4] = [8, 16, 32, 64];

/// `W` counter-mode replicas of one simulation, stepped in lockstep
/// through a replica-major (structure-of-arrays) state block.
///
/// See the `lanes` module docs for the layout and the bit-identity
/// contract. Construct with [`LaneKernel::new`], drive manually with
/// [`LaneKernel::step`] or to completion with
/// [`LaneKernel::run_observed`].
pub struct LaneKernel<'g> {
    game: &'g CongestionGame,
    protocol: Protocol,
    params: GameParams,
    record: RecordConfig,
    /// Number of lanes in this group (`1 ..= 64`; lane `l` is trial
    /// `first_trial + l`).
    lanes: usize,
    first_trial: u64,
    round: u64,
    /// `[strategies × lanes]` player counts, lane-minor.
    counts: Vec<u64>,
    /// `[resources × lanes]` loads, lane-minor.
    loads: Vec<u64>,
    /// Per-resource base load (virtual agents); shared by all lanes and
    /// constant over the run.
    base_loads: Vec<u64>,
    /// Per-strategy count summed over *active* lanes — the union support
    /// that drives the shared pair walk.
    lane_totals: Vec<u64>,
    potentials: Vec<f64>,
    last_migrations: Vec<u64>,
    active: Vec<bool>,
    /// `active` as a `u64` lane row (`u64::MAX` live, `0` retired) — the
    /// mask form the across-lane vector ops consume.
    active_mask: Vec<u64>,
    /// Count of live lanes; the full-group fast paths fire when it equals
    /// `lanes`.
    num_active: usize,
    errors: Vec<Option<DynamicsError>>,
    /// Which vector arm the across-lane loops run (bit-identical either
    /// way; selected once at construction, see the module docs).
    simd: Dispatch,
    /// Per-lane counter streams with a batched keystream front end.
    streams: LaneStreams,
    /// Per-lane CSR pair buffer: lanes share the walk but not the pair
    /// *lists* (a pair has positive probability in one lane and zero in
    /// another, and the multinomial must see exactly the scalar list).
    pairs: Vec<PairBuffer>,
    /// Whether any lane's pair buffer holds a pair this round. `false`
    /// (the converged steady state) lets the draw sweep return without
    /// touching the per-lane buffers, and the next round's rebuild skip
    /// the (already-empty) clears.
    have_pairs: bool,
    /// Scalar scratch state for observation/stop checks: one lane's
    /// column gathered via [`State::assign_lane_column`].
    scratch: State,
    /// `[resources × lanes]` cached `ℓ(x)` / `ℓ(x+1)`, rebuilt per round.
    lat0: Vec<f64>,
    lat1: Vec<f64>,
    /// `[strategies × lanes]` per-strategy latency sums, rebuilt per round.
    strat_lat: Vec<f64>,
    /// Union-window evaluation buffer (sized once to the worst case).
    window: Vec<f64>,
    /// Per-pair `ℓ_Q(x + 1_Q − 1_P)` accumulator, one slot per lane.
    l_to_buf: Vec<f64>,
    /// Per-pair migration probabilities, one slot per lane (vector-arm
    /// scratch).
    prob_buf: Vec<f64>,
    /// Multinomial output scratch.
    draw_counts: Vec<u64>,
    /// `[resources × lanes]` pre-round loads snapshot (for the potential
    /// delta), one contiguous copy per round.
    loads_prev: Vec<u64>,
    /// Per-lane drawn migrations `(from, to, movers)` of the current
    /// round (draws run origin-major, applies run lane-major).
    migs_all: Vec<Vec<(StrategyId, StrategyId, u64)>>,
    /// Per-lane cursor into its CSR origin list during the origin-major
    /// draw sweep.
    cursors: Vec<usize>,
    /// Lanes participating in the current draw site (scratch).
    site_lanes: Vec<usize>,
    /// Per-strategy flags marking the union of the lanes' origin sites
    /// this round (scratch for the origin-major draw sweep).
    site_flags: Vec<bool>,
    /// The starting per-strategy counts / per-resource loads / potential,
    /// kept so [`LaneKernel::reset`] can re-point the kernel at a new
    /// lane group without reallocating.
    init_counts: Vec<u64>,
    init_loads: Vec<u64>,
    init_phi: f64,
}

impl std::fmt::Debug for LaneKernel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneKernel")
            .field("lanes", &self.lanes)
            .field("first_trial", &self.first_trial)
            .field("round", &self.round)
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

impl<'g> LaneKernel<'g> {
    /// Create a lane group of `lanes` replicas of `protocol` on `game`,
    /// all starting from `start`; lane `l` draws the counter-mode stream
    /// of trial `first_trial + l` under `base_seed`.
    ///
    /// `lanes` is the *group size*, not the scheduler width — tails of a
    /// sweep produce narrow groups and any size ≥ 1 is accepted.
    ///
    /// # Errors
    ///
    /// Fails exactly when [`Simulation`](crate::Simulation)`::new` would:
    /// mismatched state, or a virtual-agent protocol/state disagreement.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(
        game: &'g CongestionGame,
        protocol: Protocol,
        start: &State,
        base_seed: u64,
        first_trial: u64,
        lanes: usize,
    ) -> Result<Self, DynamicsError> {
        assert!(lanes > 0, "need at least one lane");
        if start.counts().len() != game.num_strategies() {
            return Err(GameError::WrongLength {
                expected: game.num_strategies(),
                found: start.counts().len(),
            }
            .into());
        }
        for (ci, class) in game.classes().iter().enumerate() {
            let sum: u64 = class.strategy_range().map(|s| start.counts()[s as usize]).sum();
            if sum != class.players() {
                return Err(GameError::CountMismatch {
                    class: ci,
                    expected: class.players(),
                    found: sum,
                }
                .into());
            }
        }
        let wants_virtual = protocol.imitation().is_some_and(|p| p.virtual_agents());
        if wants_virtual != start.has_virtual_agents() {
            return Err(DynamicsError::InvalidParameter {
                name: "state",
                message:
                    "virtual-agent protocols require State::with_virtual_agents (and vice versa)",
            });
        }
        let params = game.params();
        let phi = potential(game, start);
        let s = game.num_strategies();
        let r = game.num_resources();
        let mut counts = vec![0u64; s * lanes];
        for (si, &c) in start.counts().iter().enumerate() {
            counts[si * lanes..(si + 1) * lanes].fill(c);
        }
        let mut loads = vec![0u64; r * lanes];
        for (ri, &ld) in start.loads().iter().enumerate() {
            loads[ri * lanes..(ri + 1) * lanes].fill(ld);
        }
        let base_loads: Vec<u64> = (0..r)
            .map(|i| {
                let rid = ResourceId::new(i as u32);
                start.effective_load(rid) - start.load(rid)
            })
            .collect();
        let lane_totals: Vec<u64> = start.counts().iter().map(|&c| c * lanes as u64).collect();
        // Worst-case union window: no lane's effective load can exceed the
        // total population plus the largest base load, so one fixed buffer
        // serves every round allocation-free.
        let max_base = base_loads.iter().copied().max().unwrap_or(0);
        let window = vec![0.0; (game.total_players() + max_base + 2) as usize];
        let dispatch = Dispatch::global();
        Ok(LaneKernel {
            game,
            protocol,
            params,
            record: RecordConfig::disabled(),
            lanes,
            first_trial,
            round: 0,
            counts,
            loads,
            base_loads,
            lane_totals,
            potentials: vec![phi; lanes],
            last_migrations: vec![0; lanes],
            active: vec![true; lanes],
            active_mask: vec![u64::MAX; lanes],
            num_active: lanes,
            errors: (0..lanes).map(|_| None).collect(),
            simd: dispatch,
            streams: LaneStreams::new(base_seed, first_trial, lanes, dispatch),
            pairs: (0..lanes)
                .map(|_| {
                    // Establish the CSR invariant up front: clears are lazy
                    // (`have_pairs`), so the first push may hit an
                    // otherwise-untouched buffer.
                    let mut pb = PairBuffer::default();
                    pb.clear();
                    pb
                })
                .collect(),
            have_pairs: false,
            scratch: start.clone(),
            lat0: vec![0.0; r * lanes],
            lat1: vec![0.0; r * lanes],
            strat_lat: vec![0.0; s * lanes],
            window,
            l_to_buf: vec![0.0; lanes],
            prob_buf: vec![0.0; lanes],
            draw_counts: Vec::new(),
            loads_prev: vec![0; r * lanes],
            migs_all: (0..lanes).map(|_| Vec::new()).collect(),
            cursors: vec![0; lanes],
            site_lanes: Vec::with_capacity(lanes),
            site_flags: vec![false; s],
            init_counts: start.counts().to_vec(),
            init_loads: start.loads().to_vec(),
            init_phi: phi,
        })
    }

    /// Force a specific vector arm (testing hook — the arms are
    /// bit-identical, see the module docs). The default is
    /// [`Dispatch::global`], which honors the `CONGAMES_SIMD` environment
    /// variable.
    pub fn with_dispatch(mut self, dispatch: Dispatch) -> Self {
        // Resolve once so the steady-state loops carry an always-runnable
        // arm and skip per-op availability degradation.
        let dispatch = dispatch.resolve();
        self.simd = dispatch;
        self.streams.set_dispatch(dispatch);
        self
    }

    /// Re-point this kernel at a new lane group of the *same* game,
    /// protocol, and start state — all per-lane buffers are rewound to
    /// round 0 of trials `first_trial .. first_trial + lanes` without
    /// reallocating (tail groups may be narrower than the group the
    /// kernel was built with). After `reset`, the kernel behaves exactly
    /// like `LaneKernel::new(game, protocol, start, base_seed,
    /// first_trial, lanes)` with the same recording and dispatch
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn reset(&mut self, first_trial: u64, lanes: usize) {
        assert!(lanes > 0, "need at least one lane");
        let s = self.game.num_strategies();
        let r = self.game.num_resources();
        self.lanes = lanes;
        self.first_trial = first_trial;
        self.round = 0;
        self.counts.truncate(s * lanes);
        self.counts.resize(s * lanes, 0);
        for (si, &c) in self.init_counts.iter().enumerate() {
            self.counts[si * lanes..(si + 1) * lanes].fill(c);
        }
        self.loads.truncate(r * lanes);
        self.loads.resize(r * lanes, 0);
        for (ri, &ld) in self.init_loads.iter().enumerate() {
            self.loads[ri * lanes..(ri + 1) * lanes].fill(ld);
        }
        self.lane_totals.clear();
        self.lane_totals.extend(self.init_counts.iter().map(|&c| c * lanes as u64));
        self.potentials.clear();
        self.potentials.resize(lanes, self.init_phi);
        self.last_migrations.clear();
        self.last_migrations.resize(lanes, 0);
        self.active.clear();
        self.active.resize(lanes, true);
        self.active_mask.clear();
        self.active_mask.resize(lanes, u64::MAX);
        self.num_active = lanes;
        self.errors.clear();
        self.errors.resize_with(lanes, || None);
        self.streams.reset(first_trial, lanes);
        self.pairs.truncate(lanes);
        self.pairs.resize_with(lanes, PairBuffer::default);
        // Pair clears are lazy (guarded by `have_pairs`), so a reset must
        // scrub any leftovers itself: retired lanes can hold stale pairs
        // from their last active round.
        for pb in &mut self.pairs {
            pb.clear();
        }
        self.have_pairs = false;
        self.lat0.clear();
        self.lat0.resize(r * lanes, 0.0);
        self.lat1.clear();
        self.lat1.resize(r * lanes, 0.0);
        self.strat_lat.clear();
        self.strat_lat.resize(s * lanes, 0.0);
        self.l_to_buf.clear();
        self.l_to_buf.resize(lanes, 0.0);
        self.prob_buf.clear();
        self.prob_buf.resize(lanes, 0.0);
        self.loads_prev.clear();
        self.loads_prev.resize(r * lanes, 0);
        self.migs_all.truncate(lanes);
        self.migs_all.resize_with(lanes, Vec::new);
        self.cursors.clear();
        self.cursors.resize(lanes, 0);
    }

    /// Configure trajectory recording for [`LaneKernel::run_observed`].
    pub fn with_recording(mut self, record: RecordConfig) -> Self {
        self.record = record;
        self
    }

    /// Number of lanes in the group.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The current round index (rounds executed; all lanes share it).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether lane `l` is still running (not finished, not failed).
    pub fn lane_active(&self, l: usize) -> bool {
        self.active[l]
    }

    /// Lane `l`'s current Rosenthal potential (maintained incrementally,
    /// like the scalar engine's).
    pub fn lane_potential(&self, l: usize) -> f64 {
        self.potentials[l]
    }

    /// Lane `l`'s players that migrated in the most recent round.
    pub fn lane_migrations(&self, l: usize) -> u64 {
        self.last_migrations[l]
    }

    /// Lane `l`'s per-strategy player counts (a gathered copy).
    pub fn lane_counts(&self, l: usize) -> Vec<u64> {
        let w = self.lanes;
        (0..self.game.num_strategies()).map(|s| self.counts[s * w + l]).collect()
    }

    /// The sampling error that retired lane `l`, if any.
    pub fn lane_error(&self, l: usize) -> Option<&DynamicsError> {
        self.errors[l].as_ref()
    }

    /// Gather lane `l` into the scratch scalar state and refresh its
    /// caches (used by observation and expensive stop checks).
    fn gather(&mut self, l: usize) {
        self.scratch.assign_lane_column(&self.counts, &self.loads, self.lanes, l);
        self.scratch.ensure_latency_cache(self.game);
        self.scratch.ensure_support_index(self.game);
    }

    /// Retire lane `l`: remove its counts from the union support so the
    /// shared walks stop paying for it.
    fn retire(&mut self, l: usize) {
        self.active[l] = false;
        self.active_mask[l] = 0;
        self.num_active -= 1;
        let w = self.lanes;
        for s in 0..self.game.num_strategies() {
            self.lane_totals[s] -= self.counts[s * w + l];
        }
    }

    /// Execute one concurrent round on every active lane (a no-op when
    /// none are). A lane whose multinomial fails retires with its error
    /// recorded ([`LaneKernel::lane_error`]); the other lanes continue.
    pub fn step(&mut self) {
        if self.num_active == 0 {
            return;
        }
        self.eval_latencies();
        self.build_strategy_latencies();
        self.build_pairs();
        self.draw_and_apply();
        self.round += 1;
    }

    /// Fill `lat0`/`lat1` (`ℓ(x)`, `ℓ(x+1)` per resource per lane) with
    /// one batched evaluation over the union load window per resource.
    fn eval_latencies(&mut self) {
        let w = self.lanes;
        let all_live = self.num_active == w;
        for (ri, resource) in self.game.resources().iter().enumerate() {
            let base = self.base_loads[ri];
            let row = &self.loads[ri * w..(ri + 1) * w];
            // Raw-load window bounds: `base` is constant per resource, so
            // min/max over raw loads + base equals min/max over effective
            // loads. The full-group fast path runs the across-lane
            // reduction unmasked.
            let (raw_lo, lo, hi);
            if all_live {
                let (min_raw, max_raw) = simd::min_max_u64(self.simd, row);
                raw_lo = min_raw;
                lo = min_raw + base;
                hi = max_raw + base;
            } else {
                let mut min_eff = u64::MAX;
                let mut max_eff = 0u64;
                for (l, &ld) in row.iter().enumerate() {
                    if self.active[l] {
                        let eff = ld + base;
                        min_eff = min_eff.min(eff);
                        max_eff = max_eff.max(eff);
                    }
                }
                if min_eff == u64::MAX {
                    continue;
                }
                raw_lo = min_eff - base;
                lo = min_eff;
                hi = max_eff;
            }
            // Evaluate loads `lo ..= hi + 1` once; every lane's pair is a
            // gather from the window. `eval_range_into` is bit-identical
            // to pointwise `value` for every latency family (pinned in
            // `congames-model::latency`), so the gathered entries match
            // the scalar cache exactly.
            let n = (hi - lo + 2) as usize;
            let buf = &mut self.window[..n];
            resource.latency().eval_range_into(lo, 0..n as u64, buf);
            let lat0 = &mut self.lat0[ri * w..(ri + 1) * w];
            let lat1 = &mut self.lat1[ri * w..(ri + 1) * w];
            if all_live && n == 2 {
                // Every lane sits on the same load (the converged common
                // case): the gather is a broadcast of the two-entry window.
                lat0.fill(buf[0]);
                lat1.fill(buf[1]);
            } else if all_live {
                simd::gather_window_pairs(self.simd, buf, row, raw_lo, lat0, lat1);
            } else {
                for l in 0..w {
                    if self.active[l] {
                        let off = (row[l] - raw_lo) as usize;
                        lat0[l] = buf[off];
                        lat1[l] = buf[off + 1];
                    }
                }
            }
        }
    }

    /// Fill `strat_lat` for every strategy in the union support,
    /// accumulating `lat0` rows in resource order from the `-0.0`
    /// identity — the exact float sequence of the scalar per-strategy
    /// cache rebuild (`resources().iter().map(..).sum()`).
    fn build_strategy_latencies(&mut self) {
        let w = self.lanes;
        for (si, strat) in self.game.strategies().iter().enumerate() {
            if self.lane_totals[si] == 0 {
                continue;
            }
            let out = &mut self.strat_lat[si * w..(si + 1) * w];
            // `-0.0 + v` is bitwise `v` for every `v` (including both
            // zeros), so seeding the accumulator with a copy of the first
            // row is identical to `fill(-0.0)` plus its add.
            let mut rest = strat.resources();
            match rest.split_first() {
                None => out.fill(-0.0),
                Some((&first, tail)) => {
                    out.copy_from_slice(&self.lat0[first.index() * w..(first.index() + 1) * w]);
                    rest = tail;
                }
            }
            for &r in rest {
                let row = &self.lat0[r.index() * w..(r.index() + 1) * w];
                simd::add_assign(self.simd, out, row);
            }
        }
    }

    /// Mirror of the scalar `for_each_pair` across all lanes: walk the
    /// union `(from, to)` pair space once, compute each lane's migration
    /// probability from its own column, and push positive-probability
    /// pairs into that lane's CSR buffer. Per lane, the resulting pair
    /// list is exactly the scalar engine's — the union only adds pairs
    /// the lane's own conditions (zero origin count, zero sampling
    /// weight) filter back out.
    fn build_pairs(&mut self) {
        let w = self.lanes;
        // A round that pushed nothing leaves every buffer empty, so the
        // clears only run after rounds that actually built pairs.
        if self.have_pairs {
            for (l, pb) in self.pairs.iter_mut().enumerate() {
                if self.active[l] {
                    pb.clear();
                }
            }
        }
        self.have_pairs = false;
        let (explore_prob, imit, expl) = match &self.protocol {
            Protocol::Imitation(p) => (0.0, Some(p), None),
            Protocol::Exploration(p) => (1.0, None, Some(p)),
            Protocol::Combined { imitation, exploration, explore_prob } => {
                (*explore_prob, Some(imitation), Some(exploration))
            }
        };
        let virtual_agents = imit.is_some_and(|p| p.virtual_agents());
        for class in self.game.classes() {
            let n_c = class.players();
            if n_c == 0 {
                continue;
            }
            let s_c = class.num_strategies();
            let imit_total = match imit.map(ImitationProtocol::self_sampling) {
                Some(SelfSampling::Exclude) => (n_c - 1) as f64,
                Some(SelfSampling::Include) => n_c as f64,
                None => 0.0,
            } + if virtual_agents { s_c as f64 } else { 0.0 };
            let imit_scale = if imit.is_some() && explore_prob < 1.0 && imit_total > 0.0 {
                (1.0 - explore_prob) / imit_total
            } else {
                0.0
            };
            let explore_scale = if expl.is_some() && explore_prob > 0.0 && s_c > 0 {
                explore_prob / s_c as f64
            } else {
                0.0
            };
            if imit_scale == 0.0 && explore_scale == 0.0 {
                continue;
            }
            let support_dest = explore_scale == 0.0 && !virtual_agents;
            // Pure imitation without virtual agents is the paper's default
            // protocol and the only shape whose per-lane probability is a
            // single branch-free formula; it runs the across-lane vector
            // arm. `coef` pre-divides λ/d — the scalar μ is
            // `((λ/d)·gain)/ℓ_from`, left-associated, so factoring the
            // division out is operation-identical.
            let pure_imit = support_dest && imit_scale > 0.0;
            let (coef, thr) = match imit {
                Some(p) if pure_imit => {
                    (p.lambda() / p.damping_factor(&self.params), p.gain_threshold(&self.params))
                }
                _ => (0.0, 0.0),
            };
            for from_raw in class.strategy_range() {
                let from = StrategyId::new(from_raw);
                let fi = from.index();
                if self.lane_totals[fi] == 0 {
                    continue;
                }
                let from_res = self.game.strategy(from).resources();
                for to_raw in class.strategy_range() {
                    if to_raw == from_raw {
                        continue;
                    }
                    let to = StrategyId::new(to_raw);
                    let ti = to.index();
                    if support_dest && self.lane_totals[ti] == 0 {
                        continue;
                    }
                    // Skip the latency walk when no lane can sample this
                    // pair (the scalar early-out, unioned over lanes).
                    let cf_row = &self.counts[fi * w..(fi + 1) * w];
                    let ct_row = &self.counts[ti * w..(ti + 1) * w];
                    let need = if explore_scale > 0.0 || virtual_agents {
                        simd::any_nonzero(self.simd, cf_row, &self.active_mask)
                    } else {
                        simd::any_pair_nonzero(self.simd, cf_row, ct_row, &self.active_mask)
                    };
                    if !need {
                        continue;
                    }
                    // One sorted merge walk over (to, from) resource lists
                    // accumulates every lane's `ℓ_Q(x + 1_Q − 1_P)` —
                    // same resource order and `0.0` start as the scalar
                    // `latency_after_move`.
                    let to_res = self.game.strategy(to).resources();
                    let lto = &mut self.l_to_buf[..w];
                    lto.fill(0.0);
                    let mut i = 0usize;
                    for &r in to_res {
                        while i < from_res.len() && from_res[i] < r {
                            i += 1;
                        }
                        let shared = i < from_res.len() && from_res[i] == r;
                        let table = if shared { &self.lat0 } else { &self.lat1 };
                        let row = &table[r.index() * w..(r.index() + 1) * w];
                        simd::add_assign(self.simd, lto, row);
                    }
                    if pure_imit {
                        // Across-lane arm: identical per-lane operation
                        // sequence, masked to the lanes the scalar loop
                        // would push (see `congames_simd`'s contract).
                        let any_pos = simd::imitation_pair_probs(
                            self.simd,
                            cf_row,
                            ct_row,
                            &self.active_mask,
                            &self.strat_lat[fi * w..(fi + 1) * w],
                            &self.l_to_buf[..w],
                            imit_scale,
                            coef,
                            thr,
                            &mut self.prob_buf[..w],
                        );
                        if any_pos {
                            self.have_pairs = true;
                            for (l, &prob) in self.prob_buf[..w].iter().enumerate() {
                                if prob > 0.0 {
                                    self.pairs[l].push(from, to, prob);
                                }
                            }
                        }
                        continue;
                    }
                    for l in 0..w {
                        if !self.active[l] || self.counts[fi * w + l] == 0 {
                            continue;
                        }
                        let x_to = self.counts[ti * w + l];
                        let weight = x_to as f64 + if virtual_agents { 1.0 } else { 0.0 };
                        let imit_w = if weight > 0.0 { imit_scale * weight } else { 0.0 };
                        if imit_w == 0.0 && explore_scale == 0.0 {
                            continue;
                        }
                        let l_from = self.strat_lat[fi * w + l];
                        let gain = l_from - self.l_to_buf[l];
                        let mut prob = 0.0;
                        if imit_w > 0.0 {
                            let p = imit.expect("imit_w > 0 implies imitation component");
                            prob += imit_w * imitation_mu(p, &self.params, l_from, gain);
                        }
                        if explore_scale > 0.0 {
                            let p = expl.expect("explore_scale > 0 implies exploration component");
                            prob += explore_scale
                                * exploration_mu(p, &self.params, l_from, gain, s_c, n_c);
                        }
                        if prob > 0.0 {
                            self.have_pairs = true;
                            self.pairs[l].push(from, to, prob);
                        }
                    }
                }
            }
        }
    }

    /// Draw each lane's per-origin multinomials and apply the migrations —
    /// the lane mirror of the scalar `aggregate_round` + apply/delta tail
    /// of `Simulation::step`.
    ///
    /// The draw sweep runs *origin-major*: each lane's origin list is an
    /// ascending strategy walk (the CSR builder visits classes and
    /// strategies in id order), so one pass over strategy ids with
    /// per-lane cursors visits every lane's origins in its own order while
    /// grouping the lanes that share a site. Each shared site's first
    /// keystream block is then one batched across-lane Philox sweep
    /// ([`LaneStreams::prime_site`]); draws past the first block fall back
    /// to the lanes' sequential walk. Counter addressing makes the
    /// reordering invisible: every variate is a pure function of its
    /// `(trial, round, site, index)` address, so each lane consumes
    /// exactly the words the lane-major (and scalar) order would.
    fn draw_and_apply(&mut self) {
        let w = self.lanes;
        let r_count = self.game.num_resources();
        let round = self.round;
        // A converged round builds no pairs at all: nothing to draw means
        // nothing moves and `ΔΦ = 0`, so the sweep returns before touching
        // any per-lane buffer.
        if !self.have_pairs {
            for l in 0..w {
                if self.active[l] {
                    self.last_migrations[l] = 0;
                }
            }
            return;
        }
        // Union of the lanes' origin sites: one pass over the CSR origin
        // lists (each ascending) bounds the site loop to the strategies
        // some lane actually draws at.
        self.site_flags.fill(false);
        for l in 0..w {
            if !self.active[l] || self.errors[l].is_some() {
                continue;
            }
            for &o in &self.pairs[l].origins {
                self.site_flags[o.index()] = true;
            }
        }
        // One contiguous pre-round snapshot serves every lane's potential
        // delta (failed lanes never apply, so their columns stay pristine).
        self.loads_prev.copy_from_slice(&self.loads);
        for l in 0..w {
            self.migs_all[l].clear();
            self.cursors[l] = 0;
        }
        for si in 0..self.game.num_strategies() {
            if !self.site_flags[si] {
                continue;
            }
            self.site_lanes.clear();
            for l in 0..w {
                if !self.active[l] || self.errors[l].is_some() {
                    continue;
                }
                let pb = &self.pairs[l];
                let j = self.cursors[l];
                if j < pb.origins.len() && pb.origins[j].index() == si {
                    self.site_lanes.push(l);
                }
            }
            if self.site_lanes.is_empty() {
                continue;
            }
            self.streams.prime_site(round, si as u64, &self.site_lanes);
            for k in 0..self.site_lanes.len() {
                let l = self.site_lanes[k];
                let j = self.cursors[l];
                self.cursors[l] = j + 1;
                let pairs = &self.pairs[l];
                let from = pairs.origins[j];
                let slice = pairs.offsets[j]..pairs.offsets[j + 1];
                let x_from = self.counts[from.index() * w + l];
                match multinomial_with_rest_into(
                    self.streams.rng_mut(l),
                    x_from,
                    &pairs.pair_prob[slice.clone()],
                    &mut self.draw_counts,
                ) {
                    Ok(_stay) => {
                        for (&to, &k) in pairs.pair_to[slice].iter().zip(&self.draw_counts) {
                            if k > 0 {
                                self.migs_all[l].push((from, to, k));
                            }
                        }
                    }
                    Err(e) => {
                        // First failing origin (origins ascend per lane, so
                        // this is the origin the scalar run fails at); the
                        // lane's later sites are skipped above.
                        self.errors[l] = Some(e.into());
                    }
                }
            }
        }
        for l in 0..w {
            if !self.active[l] {
                continue;
            }
            if self.errors[l].is_some() {
                // The scalar run surfaces the error without applying the
                // round; retire the lane at its pre-round state.
                self.retire(l);
                continue;
            }
            if self.migs_all[l].is_empty() {
                // Nothing moved: loads are unchanged, `ΔΦ = 0` (the
                // potential row is never `-0.0`, so skipping the `+= 0.0`
                // is bit-identical).
                self.last_migrations[l] = 0;
                continue;
            }
            let mut moved = 0u64;
            for &(from, to, k) in &self.migs_all[l] {
                moved += k;
                self.counts[from.index() * w + l] -= k;
                self.counts[to.index() * w + l] += k;
                self.lane_totals[from.index()] -= k;
                self.lane_totals[to.index()] += k;
                for &r in self.game.strategy(from).resources() {
                    self.loads[r.index() * w + l] -= k;
                }
                for &r in self.game.strategy(to).resources() {
                    self.loads[r.index() * w + l] += k;
                }
            }
            let mut delta = 0.0;
            for r in 0..r_count {
                let old = self.loads_prev[r * w + l];
                let new = self.loads[r * w + l];
                if old != new {
                    delta += potential_delta_for_load_change(
                        self.game,
                        ResourceId::new(r as u32),
                        self.base_loads[r],
                        old,
                        new,
                    );
                }
            }
            self.potentials[l] += delta;
            self.last_migrations[l] = moved;
        }
    }

    /// Per-lane mirror of the scalar stop check (`Simulation::check_stop`
    /// with no hook, so no condition is deferred). `gathered` memoizes the
    /// scratch gather across the conditions of one lane-round.
    fn check_stop_lane(
        &mut self,
        stop: &StopSpec,
        l: usize,
        gathered: &mut bool,
    ) -> Option<StopReason> {
        let expensive_due = self.round % stop.check_every() == 0;
        for cond in stop.conditions() {
            match cond {
                StopCondition::MaxRounds(r) if self.round >= *r => {
                    return Some(StopReason::MaxRounds);
                }
                StopCondition::PotentialAtMost(v) if self.potentials[l] <= *v => {
                    return Some(StopReason::PotentialReached);
                }
                StopCondition::ImitationStable if expensive_due => {
                    if !*gathered {
                        self.gather(l);
                        *gathered = true;
                    }
                    let nu = self.protocol.stability_threshold(&self.params);
                    if congames_model::is_imitation_stable(self.game, &self.scratch, nu) {
                        return Some(StopReason::ImitationStable);
                    }
                }
                StopCondition::ApproxEquilibrium(eq) if expensive_due => {
                    if !*gathered {
                        self.gather(l);
                        *gathered = true;
                    }
                    if eq.is_satisfied(self.game, &self.scratch) {
                        return Some(StopReason::ApproxEquilibrium);
                    }
                }
                StopCondition::NashEquilibrium { tol } if expensive_due => {
                    if !*gathered {
                        self.gather(l);
                        *gathered = true;
                    }
                    if congames_model::is_nash_equilibrium(self.game, &self.scratch, *tol) {
                        return Some(StopReason::NashEquilibrium);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Run every lane until its stop condition fires, streaming each
    /// lane's recorded rounds into its observer — the lane-group analogue
    /// of `Simulation::run_observed`, with the same record cadence
    /// (start record, cadence records, deduplicated stop record) per
    /// lane. Outputs are returned in lane (= trial) order.
    ///
    /// # Errors
    ///
    /// If any lane's replica fails, the lowest lane's error is returned as
    /// `(lane, error)` — the error the scalar sequential sweep of the same
    /// trials would surface first. Lanes that already finished are
    /// discarded, exactly as a failing scalar sweep discards its partial
    /// reduction.
    ///
    /// # Panics
    ///
    /// Panics if `observers.len() != self.lanes()`.
    pub fn run_observed<O: Observer>(
        &mut self,
        stop: &StopSpec,
        observers: Vec<O>,
    ) -> Result<Vec<O::Output>, (usize, DynamicsError)> {
        let w = self.lanes;
        assert_eq!(observers.len(), w, "one observer per lane");
        let mut observers: Vec<Option<O>> = observers.into_iter().map(Some).collect();
        let mut outputs: Vec<Option<O::Output>> = (0..w).map(|_| None).collect();
        let start_round = self.round;
        loop {
            for l in 0..w {
                if !self.active[l] {
                    continue;
                }
                let recording = self.record.every > 0
                    && (self.round == start_round || self.round % self.record.every == 0);
                let mut gathered = false;
                if recording {
                    self.gather(l);
                    gathered = true;
                    let record = capture_record(
                        self.game,
                        &self.scratch,
                        self.round,
                        self.potentials[l],
                        self.last_migrations[l],
                        self.record.approx.as_ref(),
                        false,
                    );
                    observers[l].as_mut().expect("active lane has its observer").observe(&record);
                }
                if let Some(reason) = self.check_stop_lane(stop, l, &mut gathered) {
                    if self.record.every > 0 && !recording {
                        if !gathered {
                            self.gather(l);
                        }
                        let record = capture_record(
                            self.game,
                            &self.scratch,
                            self.round,
                            self.potentials[l],
                            self.last_migrations[l],
                            self.record.approx.as_ref(),
                            false,
                        );
                        observers[l]
                            .as_mut()
                            .expect("active lane has its observer")
                            .observe(&record);
                    }
                    let summary =
                        RunSummary { reason, rounds: self.round, potential: self.potentials[l] };
                    let observer = observers[l].take().expect("active lane has its observer");
                    outputs[l] = Some(observer.finish(&summary));
                    self.retire(l);
                }
            }
            if !self.active.iter().any(|&a| a) {
                break;
            }
            self.step();
        }
        for l in 0..w {
            if let Some(e) = self.errors[l].take() {
                return Err((l, e));
            }
        }
        Ok(outputs.into_iter().map(|o| o.expect("every non-erroring lane finished")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::protocol::ImitationProtocol;
    use congames_model::Affine;
    use congames_sampling::{DrawStream, RngMode};

    fn affine_links(n: u64) -> CongestionGame {
        CongestionGame::singleton(
            vec![
                Affine::new(1.0, 4.0).into(),
                Affine::new(2.0, 2.0).into(),
                Affine::new(3.0, 1.0).into(),
                Affine::linear(4.0).into(),
            ],
            n,
        )
        .unwrap()
    }

    #[test]
    fn lanes_match_scalar_counter_runs_bitwise() {
        let game = affine_links(120);
        let start = State::from_counts(&game, vec![60, 30, 20, 10]).unwrap();
        let protocol: Protocol = ImitationProtocol::paper_default().into();
        let base_seed = 20090808;
        let lanes = 8;
        let mut kernel = LaneKernel::new(&game, protocol, &start, base_seed, 3, lanes).unwrap();
        let mut sims: Vec<(Simulation<'_>, DrawStream)> = (0..lanes)
            .map(|l| {
                let sim = Simulation::new(&game, protocol, start.clone()).unwrap();
                let rng = DrawStream::for_trial(RngMode::Counter, base_seed, 3 + l as u64);
                (sim, rng)
            })
            .collect();
        for round in 0..25 {
            kernel.step();
            for (l, (sim, rng)) in sims.iter_mut().enumerate() {
                let stats = sim.step(rng).unwrap();
                assert_eq!(
                    kernel.lane_counts(l),
                    sim.state().counts(),
                    "round {round} lane {l} counts"
                );
                assert_eq!(
                    kernel.lane_potential(l).to_bits(),
                    sim.potential().to_bits(),
                    "round {round} lane {l} potential"
                );
                assert_eq!(
                    kernel.lane_migrations(l),
                    stats.migrations,
                    "round {round} lane {l} migrations"
                );
            }
        }
    }

    #[test]
    fn narrow_tail_group_is_accepted() {
        let game = affine_links(40);
        let start = State::from_counts(&game, vec![20, 10, 6, 4]).unwrap();
        let protocol: Protocol = ImitationProtocol::paper_default().into();
        let mut kernel = LaneKernel::new(&game, protocol, &start, 7, 0, 3).unwrap();
        for _ in 0..5 {
            kernel.step();
        }
        let mut sim = Simulation::new(&game, protocol, start).unwrap();
        let mut rng = DrawStream::for_trial(RngMode::Counter, 7, 2);
        for _ in 0..5 {
            sim.step(&mut rng).unwrap();
        }
        assert_eq!(kernel.lane_counts(2), sim.state().counts());
    }

    #[test]
    fn run_observed_matches_scalar_summaries() {
        use crate::observe::FinalSummary;
        let game = affine_links(80);
        let start = State::from_counts(&game, vec![50, 20, 6, 4]).unwrap();
        let protocol: Protocol = ImitationProtocol::paper_default().into();
        let stop =
            StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(200)])
                .with_check_every(4);
        let mut kernel = LaneKernel::new(&game, protocol, &start, 99, 0, 4).unwrap();
        let outs = kernel.run_observed(&stop, (0..4).map(|_| FinalSummary).collect()).unwrap();
        for (l, out) in outs.iter().enumerate() {
            let mut sim = Simulation::new(&game, protocol, start.clone()).unwrap();
            let mut rng = DrawStream::for_trial(RngMode::Counter, 99, l as u64);
            let scalar = sim.run_observed(&stop, &mut rng, &mut FinalSummary).unwrap();
            assert_eq!(out.reason, scalar.reason, "lane {l}");
            assert_eq!(out.rounds, scalar.rounds, "lane {l}");
            assert_eq!(out.potential.to_bits(), scalar.potential.to_bits(), "lane {l}");
        }
    }

    #[test]
    fn rejects_mismatched_state() {
        let game = affine_links(10);
        let other = affine_links(12);
        let bad = State::from_counts(&other, vec![6, 3, 2, 1]).unwrap();
        let protocol: Protocol = ImitationProtocol::paper_default().into();
        assert!(LaneKernel::new(&game, protocol, &bad, 0, 0, 8).is_err());
    }
}
