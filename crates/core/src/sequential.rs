//! Sequential (one-player-per-step) dynamics: best response, better
//! response, and sequential imitation.
//!
//! These serve two purposes: they are the classical baselines the paper
//! discusses (Rosenthal's convergence, the exponential lower bounds of
//! Section 3.2), and best-response descent doubles as a local potential
//! minimizer for general games where `Φ*` is PLS-hard.

use congames_model::{best_deviation, BestDeviation, CongestionGame, State, StrategyId};
use congames_sampling::DrawRng;

use crate::error::DynamicsError;

/// How the moving player/deviation is selected each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PivotRule {
    /// Apply the deviation with the largest latency gain.
    #[default]
    BestGain,
    /// Apply the first improving deviation in scan order.
    FirstFound,
    /// Apply an improving deviation chosen uniformly at random.
    Random,
}

/// Outcome of a sequential dynamics run.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialOutcome {
    /// Improvement steps performed.
    pub steps: u64,
    /// Whether a stable state was reached (vs. the step budget running out).
    pub converged: bool,
    /// Final potential.
    pub potential: f64,
}

/// Run sequential *better/best-response* dynamics: while some player can
/// improve by more than `tol` (over the full strategy space of its class),
/// move one player per the pivot rule. Returns after `max_steps` regardless.
///
/// With `PivotRule::BestGain` this is best-response dynamics; Rosenthal's
/// potential argument guarantees termination.
///
/// # Errors
///
/// Surfaces state-application failures (none for valid inputs).
pub fn best_response_dynamics(
    game: &CongestionGame,
    state: &mut State,
    tol: f64,
    max_steps: u64,
    rule: PivotRule,
    rng: &mut impl DrawRng,
) -> Result<SequentialOutcome, DynamicsError> {
    run_sequential(game, state, tol, max_steps, rule, rng, false)
}

/// Run sequential *imitation* dynamics: like
/// [`best_response_dynamics`] but deviations are restricted to the current
/// support (a player may only adopt a strategy some other player uses).
/// This is the model of Section 3.2 and Theorem 6.
///
/// # Errors
///
/// Surfaces state-application failures (none for valid inputs).
pub fn sequential_imitation(
    game: &CongestionGame,
    state: &mut State,
    tol: f64,
    max_steps: u64,
    rule: PivotRule,
    rng: &mut impl DrawRng,
) -> Result<SequentialOutcome, DynamicsError> {
    run_sequential(game, state, tol, max_steps, rule, rng, true)
}

fn run_sequential(
    game: &CongestionGame,
    state: &mut State,
    tol: f64,
    max_steps: u64,
    rule: PivotRule,
    rng: &mut impl DrawRng,
    support_only: bool,
) -> Result<SequentialOutcome, DynamicsError> {
    // Build the support index once; `apply_move` maintains it, so every
    // scan below iterates occupied strategies instead of testing
    // `count == 0` across the dense range.
    state.ensure_support_index(game);
    let mut steps = 0u64;
    while steps < max_steps {
        // One sequential deviation per "round": counter-mode streams
        // address the pivot draw by the step index.
        rng.begin_round(steps);
        let deviation = match rule {
            PivotRule::BestGain => {
                best_deviation(game, state, support_only).filter(|b| b.gain > tol)
            }
            PivotRule::FirstFound => first_improving(game, state, tol, support_only, None),
            PivotRule::Random => {
                let all = improving_deviations(game, state, tol, support_only);
                if all.is_empty() {
                    None
                } else {
                    Some(all[rng.gen_range(0..all.len())])
                }
            }
        };
        match deviation {
            Some(b) => {
                state.apply_move(game, b.from, b.to)?;
                steps += 1;
            }
            None => {
                return Ok(SequentialOutcome {
                    steps,
                    converged: true,
                    potential: congames_model::potential(game, state),
                });
            }
        }
    }
    Ok(SequentialOutcome {
        steps,
        converged: false,
        potential: congames_model::potential(game, state),
    })
}

/// All deviations improving by more than `tol` (with `support_only`, the
/// moves available to sequential imitation).
pub fn improving_deviations(
    game: &CongestionGame,
    state: &State,
    tol: f64,
    support_only: bool,
) -> Vec<BestDeviation> {
    let mut out = Vec::new();
    let _ = first_improving(game, state, tol, support_only, Some(&mut out));
    out
}

/// Scan deviations in class/strategy order. If `collect` is provided, every
/// improving deviation is pushed (and the scan completes); otherwise the
/// first one is returned.
///
/// Origins — and, with `support_only`, destinations — iterate the state's
/// [`State::occupied_or_scan`] view: the support index when it is built
/// (ascending strategy id, the same order as the dense scan), a
/// count-testing dense fallback otherwise.
fn first_improving(
    game: &CongestionGame,
    state: &State,
    tol: f64,
    support_only: bool,
    mut collect: Option<&mut Vec<BestDeviation>>,
) -> Option<BestDeviation> {
    for (ci, class) in game.classes().iter().enumerate() {
        for from in state.occupied_or_scan(game, ci) {
            let l_from = state.strategy_latency(game, from);
            let mut first = None;
            {
                // Returns `true` to stop the scan (first-found mode).
                let mut scan = |to: StrategyId| -> bool {
                    if to == from {
                        return false;
                    }
                    let gain = l_from - state.latency_after_move(game, from, to);
                    if gain > tol {
                        let dev = BestDeviation { from, to, gain };
                        match collect.as_deref_mut() {
                            Some(v) => v.push(dev),
                            None => {
                                first = Some(dev);
                                return true;
                            }
                        }
                    }
                    false
                };
                if support_only {
                    for to in state.occupied_or_scan(game, ci) {
                        if scan(to) {
                            break;
                        }
                    }
                } else {
                    for to in class.strategy_ids() {
                        if scan(to) {
                            break;
                        }
                    }
                }
            }
            if first.is_some() {
                return first;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_model::{Affine, Constant};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sid(i: u32) -> StrategyId {
        StrategyId::new(i)
    }

    #[test]
    fn best_response_balances_identical_links() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
            10,
        )
        .unwrap();
        let mut state = State::from_counts(&game, vec![10, 0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let out =
            best_response_dynamics(&game, &mut state, 0.0, 1000, PivotRule::BestGain, &mut rng)
                .unwrap();
        assert!(out.converged);
        assert_eq!(state.count(sid(0)), 5);
        assert_eq!(out.steps, 5);
    }

    #[test]
    fn potential_decreases_monotonically() {
        let game = CongestionGame::singleton(
            vec![
                Affine::linear(1.0).into(),
                Affine::linear(2.0).into(),
                Affine::linear(3.0).into(),
            ],
            12,
        )
        .unwrap();
        let mut state = State::from_counts(&game, vec![12, 0, 0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut phi = congames_model::potential(&game, &state);
        loop {
            let out =
                best_response_dynamics(&game, &mut state, 0.0, 1, PivotRule::Random, &mut rng)
                    .unwrap();
            let next = congames_model::potential(&game, &state);
            assert!(next <= phi + 1e-12);
            phi = next;
            if out.converged {
                break;
            }
        }
        assert!(congames_model::is_nash_equilibrium(&game, &state, 1e-12));
    }

    #[test]
    fn sequential_imitation_cannot_leave_support() {
        // All players on an expensive constant link; the cheap link is
        // unused. Imitation is stuck; best response escapes.
        let game = CongestionGame::singleton(
            vec![Constant::new(10.0).into(), Constant::new(1.0).into()],
            4,
        )
        .unwrap();
        let mut s1 = State::from_counts(&game, vec![4, 0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let imi =
            sequential_imitation(&game, &mut s1, 0.0, 100, PivotRule::BestGain, &mut rng).unwrap();
        assert!(imi.converged);
        assert_eq!(imi.steps, 0);
        assert_eq!(s1.count(sid(0)), 4);

        let mut s2 = State::from_counts(&game, vec![4, 0]).unwrap();
        let br = best_response_dynamics(&game, &mut s2, 0.0, 100, PivotRule::BestGain, &mut rng)
            .unwrap();
        assert!(br.converged);
        assert_eq!(s2.count(sid(1)), 4);
    }

    /// Support invariance survives the support-index refactor: a run that
    /// *does* migrate still never adopts an unused strategy, and the index
    /// the run builds stays consistent through every applied move.
    #[test]
    fn sequential_imitation_stays_in_support_while_migrating() {
        // Links 2/3 are far cheaper but unused; sequential imitation must
        // rebalance within {0, 1} and never discover them.
        let game = CongestionGame::singleton(
            vec![
                Affine::linear(1.0).into(),
                Affine::linear(1.0).into(),
                Affine::linear(0.001).into(),
                Affine::linear(0.001).into(),
            ],
            8,
        )
        .unwrap();
        let mut state = State::from_counts(&game, vec![7, 1, 0, 0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let out = sequential_imitation(&game, &mut state, 0.0, 100, PivotRule::BestGain, &mut rng)
            .unwrap();
        assert!(out.converged);
        assert!(out.steps > 0, "rebalancing inside the support must happen");
        assert_eq!(state.count(sid(2)), 0);
        assert_eq!(state.count(sid(3)), 0);
        assert_eq!(state.count(sid(0)) + state.count(sid(1)), 8);
        // The run built the index and every applied move maintained it.
        assert!(state.support_index_valid());
        assert!(state.support_consistent(&game));
    }

    #[test]
    fn pivot_rules_agree_on_convergence_point_potential() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(2.0).into()],
            9,
        )
        .unwrap();
        let mut potentials = Vec::new();
        for rule in [PivotRule::BestGain, PivotRule::FirstFound, PivotRule::Random] {
            let mut state = State::from_counts(&game, vec![9, 0]).unwrap();
            let mut rng = SmallRng::seed_from_u64(4);
            let out = best_response_dynamics(&game, &mut state, 0.0, 1000, rule, &mut rng).unwrap();
            assert!(out.converged);
            potentials.push(out.potential);
        }
        // Two-link linear games have a unique equilibrium potential.
        assert!((potentials[0] - potentials[1]).abs() < 1e-12);
        assert!((potentials[0] - potentials[2]).abs() < 1e-12);
    }

    #[test]
    fn step_budget_is_respected() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
            100,
        )
        .unwrap();
        let mut state = State::from_counts(&game, vec![100, 0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let out = best_response_dynamics(&game, &mut state, 0.0, 3, PivotRule::BestGain, &mut rng)
            .unwrap();
        assert!(!out.converged);
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn tolerance_blocks_small_gains() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
            10,
        )
        .unwrap();
        // (6,4): best gain = 6 − 5 = 1; tol = 1 blocks it.
        let mut state = State::from_counts(&game, vec![6, 4]).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let out =
            best_response_dynamics(&game, &mut state, 1.0, 100, PivotRule::BestGain, &mut rng)
                .unwrap();
        assert!(out.converged);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn improving_deviations_enumerates_all() {
        let game = CongestionGame::singleton(
            vec![
                Affine::linear(1.0).into(),
                Affine::linear(1.0).into(),
                Affine::linear(1.0).into(),
            ],
            9,
        )
        .unwrap();
        let state = State::from_counts(&game, vec![7, 1, 1]).unwrap();
        let devs = improving_deviations(&game, &state, 0.0, false);
        // From link 0 (latency 7) to link 1 or 2 (after-move latency 2).
        assert_eq!(devs.len(), 2);
        assert!(devs.iter().all(|d| d.from == sid(0) && d.gain == 5.0));
    }
}
