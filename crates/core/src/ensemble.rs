//! Deterministic parallel ensembles of simulations.
//!
//! Verifying the paper's statistical claims (the Lemma 2 drift bound,
//! Theorem 7's pseudopolynomial convergence) means running thousands of
//! independent replicas of the same simulation. [`Ensemble`] is the
//! subsystem for that: it runs `trials` replicas of a [`Simulation`] across
//! a pool of scoped threads, deriving the replica seeds with
//! [`congames_sampling::split_seed`], and returns the outcomes **in trial
//! order** — the result is bit-identical for any thread count, because each
//! replica's randomness depends only on `(base_seed, trial_index)` and
//! never on scheduling.
//!
//! The lower-level [`run_indexed`] primitive (a panic-transparent indexed
//! parallel map) is exported for harnesses that fan out non-simulation
//! work; `congames-analysis::run_trials` builds on it.

use congames_model::{CongestionGame, State};
use congames_sampling::split_seed;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::{EngineKind, Simulation};
use crate::error::DynamicsError;
use crate::protocol::Protocol;
use crate::stopping::{RunOutcome, StopSpec};
use crate::trajectory::RecordConfig;

/// Run `f(0), f(1), …, f(tasks − 1)` across up to `threads` scoped worker
/// threads and return the results **in index order**.
///
/// Work is claimed dynamically (an atomic counter), so the schedule adapts
/// to uneven task durations — but because results are written to their own
/// slot, the output never depends on the schedule.
///
/// # Panics
///
/// Panics if `threads == 0`. If a task panics, the remaining workers stop
/// claiming new tasks and the **original panic payload** is re-raised on
/// the calling thread (the lowest-index payload when several tasks panic
/// concurrently), so the root cause is what the caller sees — not a
/// secondary "scoped thread panicked" shell.
pub fn run_indexed<T: Send>(tasks: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    assert!(threads > 0, "need at least one thread");
    if tasks == 0 {
        return Vec::new();
    }
    if threads == 1 || tasks == 1 {
        // Sequential fast path: panics already propagate untouched.
        return (0..tasks).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    type Panic = Box<dyn std::any::Any + Send + 'static>;
    let first_panic: Mutex<Option<(usize, Panic)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(tasks) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks || abort.load(Ordering::Relaxed) {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(out) => {
                        let mut slot =
                            slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        *slot = Some(out);
                    }
                    Err(payload) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut first =
                            first_panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        if first.as_ref().map_or(true, |(j, _)| i < *j) {
                            *first = Some((i, payload));
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some((_, payload)) =
        first_panic.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every task index was claimed exactly once")
        })
        .collect()
}

/// A batch of independent simulation replicas: one game, protocol, and
/// start state, run `trials` times with per-trial seeds derived from a
/// base seed, optionally across threads.
///
/// Replica `i` always receives the RNG `SmallRng::seed_from_u64(
/// split_seed(base_seed, i))` and a fresh copy of the start state, so the
/// returned outcomes are **bit-identical regardless of the thread count**
/// and reproducible across runs.
///
/// # Example
///
/// ```
/// use congames_dynamics::{Ensemble, ImitationProtocol, StopSpec};
/// use congames_model::{Affine, CongestionGame, State};
///
/// let game = CongestionGame::singleton(
///     vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
///     100,
/// )?;
/// let start = State::from_counts(&game, vec![90, 10])?;
/// let outcomes = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start)?
///     .trials(8)
///     .base_seed(42)
///     .threads(4)
///     .run(&StopSpec::max_rounds(50))?;
/// assert_eq!(outcomes.len(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Ensemble<'g> {
    game: &'g CongestionGame,
    protocol: Protocol,
    start: State,
    engine: EngineKind,
    record: RecordConfig,
    trials: usize,
    base_seed: u64,
    threads: usize,
}

impl<'g> Ensemble<'g> {
    /// Create an ensemble of simulations of `protocol` on `game` starting
    /// from `start`, with 1 trial, base seed 0, [`Ensemble::default_threads`]
    /// threads, the default engine, and no recording.
    ///
    /// # Errors
    ///
    /// Fails exactly when [`Simulation::new`] would: mismatched state, or a
    /// virtual-agent protocol/state disagreement. Validation happens here,
    /// once, instead of surfacing from every replica.
    pub fn new(
        game: &'g CongestionGame,
        protocol: Protocol,
        start: State,
    ) -> Result<Self, DynamicsError> {
        // Probe-construct one simulation to validate the configuration.
        Simulation::new(game, protocol, start.clone())?;
        Ok(Ensemble {
            game,
            protocol,
            start,
            engine: EngineKind::default(),
            record: RecordConfig::disabled(),
            trials: 1,
            base_seed: 0,
            threads: Self::default_threads(),
        })
    }

    /// A conservative thread count for trial parallelism: the machine's
    /// available parallelism, capped at 8.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map(|p| p.get().min(8)).unwrap_or(4)
    }

    /// Select the round engine for every replica.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Configure trajectory recording for every replica.
    pub fn recording(mut self, record: RecordConfig) -> Self {
        self.record = record;
        self
    }

    /// Set the number of replicas.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Set the base seed replica seeds derive from.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Set the worker-thread budget (clamped to at least 1). The results
    /// are identical for every choice; only wall-clock time changes.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The seed replica `trial` derives its RNG from.
    pub fn trial_seed(&self, trial: usize) -> u64 {
        split_seed(self.base_seed, trial as u64)
    }

    /// Run every replica until `stop` fires; outcomes in trial order.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest trial index) replica error, if any.
    pub fn run(&self, stop: &StopSpec) -> Result<Vec<RunOutcome>, DynamicsError> {
        self.run_with(stop, |_, outcome| outcome)
    }

    /// Run every replica and map `(finished simulation, outcome)` through
    /// `f` — use this to extract final-state statistics without cloning
    /// whole trajectories. Results are in trial order.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest trial index) replica error, if any.
    pub fn run_with<T: Send>(
        &self,
        stop: &StopSpec,
        f: impl Fn(&Simulation<'_>, RunOutcome) -> T + Sync,
    ) -> Result<Vec<T>, DynamicsError> {
        let results = run_indexed(self.trials, self.threads, |trial| {
            let mut sim = Simulation::new(self.game, self.protocol, self.start.clone())?
                .with_engine(self.engine)
                .with_recording(self.record);
            let mut rng = SmallRng::seed_from_u64(self.trial_seed(trial));
            let outcome = sim.run(stop, &mut rng)?;
            Ok(f(&sim, outcome))
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ImitationProtocol;
    use crate::stopping::{StopCondition, StopReason};
    use congames_model::Affine;

    fn two_links(n: u64) -> CongestionGame {
        CongestionGame::singleton(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], n)
            .unwrap()
    }

    #[test]
    fn run_indexed_orders_results() {
        let out = run_indexed(16, 4, |i| i * 3);
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(run_indexed(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
        assert!(run_indexed(0, 2, |i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "task 7 says hi")]
    fn run_indexed_propagates_original_panic() {
        run_indexed(32, 4, |i| {
            if i == 7 {
                panic!("task 7 says hi");
            }
            i
        });
    }

    #[test]
    fn ensemble_is_thread_count_invariant() {
        let game = two_links(200);
        let start = State::from_counts(&game, vec![150, 50]).unwrap();
        let stop =
            StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(2_000)]);
        let run = |threads: usize| {
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .unwrap()
                .trials(12)
                .base_seed(99)
                .threads(threads)
                .run_with(&stop, |sim, out| {
                    (out.rounds, out.potential.to_bits(), sim.state().counts().to_vec())
                })
                .unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        assert!(one.iter().all(|(r, _, _)| *r < 2_000));
    }

    #[test]
    fn ensemble_validates_eagerly() {
        let game = two_links(4);
        let other = two_links(6);
        let bad = State::from_counts(&other, vec![3, 3]).unwrap();
        assert!(Ensemble::new(&game, ImitationProtocol::paper_default().into(), bad).is_err());
    }

    #[test]
    fn ensemble_outcomes_carry_stop_reasons() {
        let game = two_links(50);
        let start = State::from_counts(&game, vec![25, 25]).unwrap();
        let outcomes = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start)
            .unwrap()
            .trials(3)
            .run(&StopSpec::new(vec![StopCondition::ImitationStable]))
            .unwrap();
        assert!(outcomes.iter().all(|o| o.reason == StopReason::ImitationStable && o.rounds == 0));
    }
}
