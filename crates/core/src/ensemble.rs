//! Deterministic parallel ensembles of simulations.
//!
//! Verifying the paper's statistical claims (the Lemma 2 drift bound,
//! Theorem 7's pseudopolynomial convergence) means running thousands of
//! independent replicas of the same simulation. [`Ensemble`] is the
//! subsystem for that: it runs `trials` replicas of a [`Simulation`] across
//! a pool of scoped threads, deriving the replica seeds with
//! [`congames_sampling::split_seed`], and returns the outcomes **in trial
//! order** — the result is bit-identical for any thread count, because each
//! replica's randomness depends only on `(base_seed, trial_index)` and
//! never on scheduling.
//!
//! Two batch shapes are offered. [`Ensemble::run`] / [`Ensemble::run_with`]
//! materialize one value per replica; [`Ensemble::run_reduced`] streams
//! every replica's observed output into a [`Reducer`] so a 10⁵-trial sweep
//! reduces online in memory independent of the trial count — same
//! bit-identical-across-thread-counts guarantee, via a reduction tree that
//! is a function of the trial count alone.
//!
//! The lower-level [`run_indexed`] primitive (a panic-transparent indexed
//! parallel map) is exported for harnesses that fan out non-simulation
//! work; `congames-analysis::run_trials` builds on it. All batch entry
//! points share one empty-input contract: zero tasks/trials yield an empty
//! result (for the reducer path, the untouched identity reduction) rather
//! than panicking.

use congames_model::{CongestionGame, State};
use congames_sampling::{split_seed, DrawStream, RngMode};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

use crate::engine::{EngineKind, Simulation};
use crate::error::DynamicsError;
use crate::hook::RoundHook;
use crate::lanes::{LaneKernel, LANE_WIDTHS};
use crate::observe::Observer;
use crate::protocol::Protocol;
use crate::reduce::Reducer;
use crate::stopping::{RunOutcome, StopSpec};
use crate::trajectory::RecordConfig;

/// Trials per reduction block in [`Ensemble::run_reduced`]. The block
/// structure is a function of the trial count alone — never of the thread
/// count, schedule, or shard split — which is what makes reduced results
/// bit-identical across thread counts, and what lets a multi-process
/// sharded sweep ([`Ensemble::run_reduced_shard`] + `congames merge`)
/// replay the same reduction tree and land on the same bits.
pub const REDUCE_BLOCK: usize = 32;

/// Run `f(0), f(1), …, f(tasks − 1)` across up to `threads` scoped worker
/// threads and return the results **in index order**.
///
/// Work is claimed dynamically (an atomic counter), so the schedule adapts
/// to uneven task durations — but because results are written to their own
/// slot, the output never depends on the schedule. Zero tasks return an
/// empty `Vec` — the workspace-wide empty-input contract shared with
/// `congames_analysis::run_trials` and [`Ensemble::run_reduced`] (which
/// returns its identity reduction).
///
/// # Panics
///
/// Panics if `threads == 0`. If a task panics, the remaining workers stop
/// claiming new tasks and the **original panic payload** is re-raised on
/// the calling thread (the lowest-index payload when several tasks panic
/// concurrently), so the root cause is what the caller sees — not a
/// secondary "scoped thread panicked" shell.
pub fn run_indexed<T: Send>(tasks: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    assert!(threads > 0, "need at least one thread");
    if tasks == 0 {
        return Vec::new();
    }
    if threads == 1 || tasks == 1 {
        // Sequential fast path: panics already propagate untouched.
        return (0..tasks).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    type Panic = Box<dyn std::any::Any + Send + 'static>;
    let first_panic: Mutex<Option<(usize, Panic)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(tasks) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks || abort.load(Ordering::Relaxed) {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(out) => {
                        let mut slot =
                            slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        *slot = Some(out);
                    }
                    Err(payload) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut first =
                            first_panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        if first.as_ref().map_or(true, |(j, _)| i < *j) {
                            *first = Some((i, payload));
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some((_, payload)) =
        first_panic.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every task index was claimed exactly once")
        })
        .collect()
}

/// A batch of independent simulation replicas: one game, protocol, and
/// start state, run `trials` times with per-trial seeds derived from a
/// base seed, optionally across threads.
///
/// Replica `i` always receives the stream
/// `DrawStream::for_trial(rng_mode, base_seed, i)` — in xoshiro mode the
/// historical `SmallRng::seed_from_u64(split_seed(base_seed, i))` stream,
/// in counter mode the Philox stream keyed by the base seed and addressed
/// by `(trial, round, site, index)` — and a fresh copy of the start state,
/// so the returned outcomes are **bit-identical regardless of the thread
/// count** and reproducible across runs.
///
/// # Example
///
/// ```
/// use congames_dynamics::{Ensemble, ImitationProtocol, StopSpec};
/// use congames_model::{Affine, CongestionGame, State};
///
/// let game = CongestionGame::singleton(
///     vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
///     100,
/// )?;
/// let start = State::from_counts(&game, vec![90, 10])?;
/// let outcomes = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start)?
///     .trials(8)
///     .base_seed(42)
///     .threads(4)
///     .run(&StopSpec::max_rounds(50))?;
/// assert_eq!(outcomes.len(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Ensemble<'g> {
    game: &'g CongestionGame,
    protocol: Protocol,
    start: State,
    engine: EngineKind,
    record: RecordConfig,
    trials: usize,
    base_seed: u64,
    threads: usize,
    rng_mode: RngMode,
    /// Builds one fresh [`RoundHook`] per replica, so every trial replays
    /// the same event schedule against its own simulation. `None` for
    /// stationary ensembles.
    round_hook: Option<std::sync::Arc<dyn Fn() -> Box<dyn RoundHook> + Send + Sync>>,
    /// When set, the reduced paths run trials through the replica-major
    /// [`LaneKernel`] in lockstep groups of at most this width.
    lane_width: Option<usize>,
}

impl std::fmt::Debug for Ensemble<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("game", &self.game)
            .field("protocol", &self.protocol)
            .field("start", &self.start)
            .field("engine", &self.engine)
            .field("record", &self.record)
            .field("trials", &self.trials)
            .field("base_seed", &self.base_seed)
            .field("threads", &self.threads)
            .field("rng_mode", &self.rng_mode)
            .field("round_hook", &self.round_hook.as_ref().map(|_| "<factory>"))
            .field("lane_width", &self.lane_width)
            .finish()
    }
}

impl<'g> Ensemble<'g> {
    /// Create an ensemble of simulations of `protocol` on `game` starting
    /// from `start`, with 1 trial, base seed 0, [`Ensemble::default_threads`]
    /// threads, the default engine, and no recording.
    ///
    /// # Errors
    ///
    /// Fails exactly when [`Simulation::new`] would: mismatched state, or a
    /// virtual-agent protocol/state disagreement. Validation happens here,
    /// once, instead of surfacing from every replica.
    pub fn new(
        game: &'g CongestionGame,
        protocol: Protocol,
        start: State,
    ) -> Result<Self, DynamicsError> {
        // Probe-construct one simulation to validate the configuration.
        Simulation::new(game, protocol, start.clone())?;
        Ok(Ensemble {
            game,
            protocol,
            start,
            engine: EngineKind::default(),
            record: RecordConfig::disabled(),
            trials: 1,
            base_seed: 0,
            threads: Self::default_threads(),
            rng_mode: RngMode::Xoshiro,
            round_hook: None,
            lane_width: None,
        })
    }

    /// A conservative thread count for trial parallelism: the machine's
    /// available parallelism, capped at 8.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map(|p| p.get().min(8)).unwrap_or(4)
    }

    /// Select the round engine for every replica.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Configure trajectory recording for every replica.
    pub fn recording(mut self, record: RecordConfig) -> Self {
        self.record = record;
        self
    }

    /// Set the number of replicas.
    ///
    /// Zero is allowed and uniform across the batch APIs: [`Ensemble::run`]
    /// and [`Ensemble::run_with`] return an empty `Vec`, and
    /// [`Ensemble::run_reduced`] returns the untouched reducer (the
    /// *identity reduction*) — the same contract as [`run_indexed`] with
    /// zero tasks and `congames_analysis::run_trials` with zero trials.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Set the base seed replica seeds derive from.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Select the RNG backend every replica draws from (default:
    /// [`RngMode::Xoshiro`], the historical sequential stream).
    pub fn rng_mode(mut self, mode: RngMode) -> Self {
        self.rng_mode = mode;
        self
    }

    /// The RNG backend replicas draw from.
    pub fn get_rng_mode(&self) -> RngMode {
        self.rng_mode
    }

    /// Attach a nonstationary scenario: `factory` builds one fresh
    /// [`RoundHook`] per replica (hooks are stateful cursors, so they
    /// cannot be shared), and every replica — including every shard of a
    /// sharded sweep — replays the same event schedule. Hooks are RNG-free
    /// by contract, so all the ensemble's bit-identity guarantees (thread
    /// counts, shard/merge, both RNG backends) carry over unchanged.
    pub fn with_round_hook(
        mut self,
        factory: impl Fn() -> Box<dyn RoundHook> + Send + Sync + 'static,
    ) -> Self {
        self.round_hook = Some(std::sync::Arc::new(factory));
        self
    }

    /// Run the reduced paths through the replica-major [`LaneKernel`]:
    /// trials are grouped into lockstep lane blocks of at most `width`
    /// replicas (one of [`LANE_WIDTHS`]), aligned with the
    /// [`REDUCE_BLOCK`]-trial reduction blocks (widths ≤ 32 slice a block,
    /// width 64 pairs two). Counter mode only: each lane's trajectory is
    /// bit-identical to the scalar counter-mode run of its trial, so
    /// reduced results — and the thread-count and shard/merge identities —
    /// are **byte-identical with the lane kernel on or off**; only
    /// wall-clock changes. Validated when a run starts (see
    /// [`Ensemble::run_reduced`] for the accepted configurations).
    pub fn lane_width(mut self, width: usize) -> Self {
        self.lane_width = Some(width);
        self
    }

    /// The configured lane width, if any.
    pub fn get_lane_width(&self) -> Option<usize> {
        self.lane_width
    }

    /// Check a [`Ensemble::lane_width`] configuration: the width must be
    /// one of [`LANE_WIDTHS`], the RNG backend must be counter mode (lane
    /// bit-identity is a property of addressed draws), the engine must be
    /// the aggregate kernel, and no round hook may be attached (scenario
    /// schedules mutate the game, which lanes share).
    fn validate_lane_config(&self, width: usize) -> Result<(), DynamicsError> {
        if !LANE_WIDTHS.contains(&width) {
            return Err(DynamicsError::InvalidParameter {
                name: "lane_width",
                message: "lane width must be one of 8, 16, 32, 64",
            });
        }
        if self.rng_mode != RngMode::Counter {
            return Err(DynamicsError::InvalidParameter {
                name: "lane_width",
                message: "the lane kernel requires counter-mode RNG (rng_mode(RngMode::Counter))",
            });
        }
        if self.engine != EngineKind::Aggregate {
            return Err(DynamicsError::InvalidParameter {
                name: "lane_width",
                message: "the lane kernel supports only the aggregate engine",
            });
        }
        if self.round_hook.is_some() {
            return Err(DynamicsError::InvalidParameter {
                name: "lane_width",
                message: "the lane kernel does not support round hooks (nonstationary scenarios)",
            });
        }
        Ok(())
    }

    /// Run trials `start..end` through lockstep lane groups of at most
    /// `width`, feeding each finished trial's output to `absorb` in trial
    /// order. Grouping is pure scheduling — per-trial outputs are
    /// bit-identical for any chunking — so callers may anchor groups
    /// wherever their block coverage starts. Errors carry the failing
    /// global trial index; `abort` (when given) stops the group loop
    /// early after a concurrent failure.
    #[allow(clippy::too_many_arguments)]
    fn run_lane_trials<O: Observer>(
        &self,
        start: usize,
        end: usize,
        width: usize,
        stop: &StopSpec,
        observer_factory: &(impl Fn(usize) -> O + Sync),
        abort: Option<&AtomicBool>,
        mut absorb: impl FnMut(usize, O::Output),
    ) -> Result<(), (usize, DynamicsError)> {
        // One kernel serves every group in the range: `reset` re-points
        // the stream/state buffers at the next group without reallocating
        // (tails reset to a narrower lane count), so a sweep's steady
        // state allocates lane storage once, not once per group.
        let mut kernel: Option<LaneKernel<'_>> = None;
        let mut t = start;
        while t < end {
            if abort.is_some_and(|a| a.load(Ordering::Relaxed)) {
                return Ok(());
            }
            let lanes = width.min(end - t);
            let kernel = match kernel.as_mut() {
                Some(k) => {
                    k.reset(t as u64, lanes);
                    k
                }
                None => kernel.insert(
                    LaneKernel::new(
                        self.game,
                        self.protocol,
                        &self.start,
                        self.base_seed,
                        t as u64,
                        lanes,
                    )
                    .map_err(|e| (t, e))?
                    .with_recording(self.record),
                ),
            };
            let observers: Vec<O> = (0..lanes).map(|l| observer_factory(t + l)).collect();
            let outputs =
                kernel.run_observed(stop, observers).map_err(|(lane, e)| (t + lane, e))?;
            for (l, out) in outputs.into_iter().enumerate() {
                absorb(t + l, out);
            }
            t += lanes;
        }
        Ok(())
    }

    /// One replica simulation, with the engine, recording, and (if any)
    /// scenario hook attached — the single constructor all run paths use.
    fn make_sim(&self) -> Result<Simulation<'g>, DynamicsError> {
        let mut sim = Simulation::new(self.game, self.protocol, self.start.clone())?
            .with_engine(self.engine)
            .with_recording(self.record);
        if let Some(factory) = &self.round_hook {
            sim = sim.with_hook(factory());
        }
        Ok(sim)
    }

    /// Set the worker-thread budget (clamped to at least 1). The results
    /// are identical for every choice; only wall-clock time changes.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The seed replica `trial` derives its xoshiro stream from
    /// (`split_seed(base_seed, trial)`; see `congames-sampling::seeds`). In
    /// counter mode the trial index addresses the stream directly and this
    /// seed is unused.
    pub fn trial_seed(&self, trial: usize) -> u64 {
        split_seed(self.base_seed, trial as u64)
    }

    /// The replica stream for `trial` — the single constructor all run
    /// paths use (`run_with`, `run_reduced`, sharded runs).
    fn trial_stream(&self, trial: usize) -> DrawStream {
        DrawStream::for_trial(self.rng_mode, self.base_seed, trial as u64)
    }

    /// Run every replica until `stop` fires; outcomes in trial order.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest trial index) replica error, if any.
    pub fn run(&self, stop: &StopSpec) -> Result<Vec<RunOutcome>, DynamicsError> {
        self.run_with(stop, |_, outcome| outcome)
    }

    /// Run every replica and map `(finished simulation, outcome)` through
    /// `f` — use this to extract final-state statistics without cloning
    /// whole trajectories. Results are in trial order.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest trial index) replica error, if any.
    pub fn run_with<T: Send>(
        &self,
        stop: &StopSpec,
        f: impl Fn(&Simulation<'_>, RunOutcome) -> T + Sync,
    ) -> Result<Vec<T>, DynamicsError> {
        if self.lane_width.is_some() {
            return Err(DynamicsError::InvalidParameter {
                name: "lane_width",
                message: "lane groups stream through run_reduced/run_reduced_shard; \
                          run/run_with are scalar-only",
            });
        }
        let results = run_indexed(self.trials, self.threads, |trial| {
            let mut sim = self.make_sim()?;
            let mut rng = self.trial_stream(trial);
            let outcome = sim.run(stop, &mut rng)?;
            Ok(f(&sim, outcome))
        });
        results.into_iter().collect()
    }

    /// Run one replica and fold its observed output into `partial`.
    fn reduce_one_trial<O: Observer>(
        &self,
        trial: usize,
        stop: &StopSpec,
        observer_factory: &(impl Fn(usize) -> O + Sync),
    ) -> Result<O::Output, DynamicsError> {
        let mut sim = self.make_sim()?;
        let mut rng = self.trial_stream(trial);
        let mut observer = observer_factory(trial);
        let summary = sim.run_observed(stop, &mut rng, &mut observer)?;
        Ok(observer.finish(&summary))
    }

    /// Run every replica and fold the per-trial observer outputs into
    /// `reducer` **online** — the memory-bounded path for large sweeps: no
    /// per-trial `Trajectory`, outcome `Vec`, or any other
    /// `O(trials · rounds)` collection is ever materialized. Live memory is
    /// `O(threads · (observer + reducer partial))`; for the stock
    /// [`RecordSeries`](crate::RecordSeries) →
    /// [`PerRoundStats`](crate::PerRoundStats) pipeline that is
    /// `O(threads · recorded_rounds)`, independent of the trial count.
    ///
    /// `observer_factory(trial)` builds the per-trial observer (give the
    /// ensemble a [`RecordConfig`] via [`Ensemble::recording`] if the
    /// observer wants per-round records; summary-only observers such as
    /// [`FinalSummary`](crate::FinalSummary) need no recording at all).
    ///
    /// # Determinism
    ///
    /// Trials are partitioned into fixed-size consecutive blocks
    /// (currently 32 trials); each block partial starts from
    /// `reducer.identity()`, absorbs its trials in trial order, and the
    /// partials are merged into the accumulator **in block order**. The
    /// reduction tree therefore depends only on the trial count, so the
    /// returned reducer is **bit-identical for every thread count** — the
    /// same contract the outcome-level APIs pin for threads 1/2/8.
    /// Workers claim blocks dynamically but a bounded reorder window (a
    /// small multiple of the thread count) keeps pending partials — and
    /// hence memory — bounded even when early blocks run long.
    ///
    /// With zero trials the reducer is returned untouched (the identity
    /// reduction; see [`Ensemble::trials`]).
    ///
    /// # Errors
    ///
    /// A failing replica aborts the sweep early (remaining workers stop
    /// claiming trials) and the lowest-trial-index error observed is
    /// returned; a panicking replica or reducer likewise aborts and the
    /// original payload is re-raised, as in [`run_indexed`].
    ///
    /// # Example
    ///
    /// ```
    /// use congames_dynamics::{
    ///     ConvergenceHistogram, Ensemble, FinalSummary, ImitationProtocol, StopCondition,
    ///     StopReason, StopSpec,
    /// };
    /// use congames_model::{Affine, CongestionGame, State};
    ///
    /// let game = CongestionGame::singleton(
    ///     vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
    ///     100,
    /// )?;
    /// let start = State::from_counts(&game, vec![80, 20])?;
    /// let stop =
    ///     StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(5_000)]);
    /// let histogram = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start)?
    ///     .trials(64)
    ///     .base_seed(7)
    ///     .run_reduced(&stop, |_trial| FinalSummary, ConvergenceHistogram::new())?;
    /// assert_eq!(histogram.total(), 64);
    /// assert!(histogram.reason(StopReason::ImitationStable).count() > 0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn run_reduced<O, R>(
        &self,
        stop: &StopSpec,
        observer_factory: impl Fn(usize) -> O + Sync,
        reducer: R,
    ) -> Result<R, DynamicsError>
    where
        O: Observer,
        R: Reducer<Item = O::Output> + Send + Sync,
    {
        let trials = self.trials;
        let mut acc = reducer;
        if trials == 0 {
            return Ok(acc);
        }
        if let Some(width) = self.lane_width {
            self.validate_lane_config(width)?;
        }
        let blocks = trials.div_ceil(REDUCE_BLOCK);
        let block_range = |b: usize| b * REDUCE_BLOCK..((b + 1) * REDUCE_BLOCK).min(trials);
        // The scheduling unit: one reduce block, except that a 64-lane
        // group spans two consecutive blocks (one lockstep run fills both
        // partials). The unit split is scheduling only — per-trial outputs,
        // and therefore the block partials and the merge tree, are
        // bit-identical however trials are grouped into lanes.
        let unit_blocks = self.lane_width.map_or(1, |w| w.div_ceil(REDUCE_BLOCK));
        let units = blocks.div_ceil(unit_blocks);
        let threads = self.threads.min(units);
        if threads <= 1 {
            // Sequential path: same block structure, same merge order.
            for unit in 0..units {
                let b0 = unit * unit_blocks;
                let b1 = ((unit + 1) * unit_blocks).min(blocks);
                let mut partials: Vec<R> = (b0..b1).map(|_| acc.identity()).collect();
                match self.lane_width {
                    None => {
                        for block in b0..b1 {
                            for trial in block_range(block) {
                                partials[block - b0].absorb(self.reduce_one_trial(
                                    trial,
                                    stop,
                                    &observer_factory,
                                )?);
                            }
                        }
                    }
                    Some(width) => {
                        let t0 = b0 * REDUCE_BLOCK;
                        let t1 = (b1 * REDUCE_BLOCK).min(trials);
                        self.run_lane_trials(
                            t0,
                            t1,
                            width,
                            stop,
                            &observer_factory,
                            None,
                            |trial, out| partials[trial / REDUCE_BLOCK - b0].absorb(out),
                        )
                        .map_err(|(_, e)| e)?;
                    }
                }
                for partial in partials {
                    acc.merge(partial);
                }
            }
            return Ok(acc);
        }

        type Panic = Box<dyn std::any::Any + Send + 'static>;
        struct MergeState<R> {
            /// Next scheduling unit to hand out (a unit is `unit_blocks`
            /// consecutive reduce blocks; see above).
            next_unit: usize,
            /// Blocks merged into `acc` so far (block `merged` is the next
            /// one the in-order merge is waiting for).
            merged: usize,
            /// Finished partials waiting for their in-order merge slot.
            pending: BTreeMap<usize, R>,
            acc: Option<R>,
            /// Lowest-trial-index replica error observed.
            error: Option<(usize, DynamicsError)>,
            /// Lowest-trial-index panic payload observed.
            panic: Option<(usize, Panic)>,
        }
        let prototype = acc.identity();
        let state = Mutex::new(MergeState {
            next_unit: 0,
            merged: 0,
            pending: BTreeMap::new(),
            acc: Some(acc),
            error: None,
            panic: None,
        });
        let cv = Condvar::new();
        // Set on the first error or panic: workers stop claiming blocks
        // (and finish their current block early), so a failing sweep
        // surfaces its failure promptly instead of simulating every
        // remaining trial first — mirroring `run_indexed`'s abort flag.
        let abort = AtomicBool::new(false);
        // Reorder window: a worker only claims a unit whose first block is
        // `b` once block `b − window` has been merged, bounding `pending`
        // (and therefore live partials) to `O(threads)` however uneven the
        // block durations are.
        let window = threads * 2 * unit_blocks;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let unit = {
                        let mut st = state.lock().unwrap_or_else(PoisonError::into_inner);
                        loop {
                            if st.next_unit >= units || abort.load(Ordering::Relaxed) {
                                return;
                            }
                            if st.next_unit * unit_blocks - st.merged < window {
                                break;
                            }
                            st = cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                        }
                        st.next_unit += 1;
                        st.next_unit - 1
                    };
                    let b0 = unit * unit_blocks;
                    let b1 = ((unit + 1) * unit_blocks).min(blocks);
                    // Even `identity()` runs under a catch: a worker that
                    // dies without parking its blocks would stall the
                    // in-order pipeline, and window waiters would sleep
                    // forever.
                    let partials = catch_unwind(AssertUnwindSafe(|| {
                        (b0..b1).map(|_| prototype.identity()).collect::<Vec<R>>()
                    }));
                    let mut partials = match partials {
                        Ok(p) => p,
                        Err(payload) => {
                            let trial = b0 * REDUCE_BLOCK;
                            let mut st = state.lock().unwrap_or_else(PoisonError::into_inner);
                            if st.panic.as_ref().map_or(true, |(t, _)| trial < *t) {
                                st.panic = Some((trial, payload));
                            }
                            abort.store(true, Ordering::Relaxed);
                            cv.notify_all();
                            return;
                        }
                    };
                    let mut error: Option<(usize, DynamicsError)> = None;
                    let mut panic: Option<(usize, Panic)> = None;
                    match self.lane_width {
                        None => {
                            'blocks: for block in b0..b1 {
                                for trial in block_range(block) {
                                    if abort.load(Ordering::Relaxed) {
                                        break 'blocks;
                                    }
                                    // The catch covers the reducer's `absorb`
                                    // too: a panicking accumulator (e.g. a
                                    // user-written reducer with an internal
                                    // assertion) must not kill the worker, or
                                    // the in-order merge pipeline would wait
                                    // on its block forever.
                                    let result = catch_unwind(AssertUnwindSafe(|| {
                                        self.reduce_one_trial(trial, stop, &observer_factory)
                                            .map(|item| partials[block - b0].absorb(item))
                                    }));
                                    match result {
                                        Ok(Ok(())) => {}
                                        Ok(Err(e)) => {
                                            error = Some((trial, e));
                                            break 'blocks;
                                        }
                                        Err(payload) => {
                                            panic = Some((trial, payload));
                                            break 'blocks;
                                        }
                                    }
                                }
                            }
                        }
                        Some(width) => {
                            let t0 = b0 * REDUCE_BLOCK;
                            let t1 = (b1 * REDUCE_BLOCK).min(trials);
                            // One catch around the whole lane group: the
                            // kernel steps all lanes in lockstep, so a panic
                            // cannot be pinned to a single trial — attribute
                            // it to the group's first trial (the payload is
                            // what propagates; the index only picks the
                            // winner when several workers fail at once).
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                self.run_lane_trials(
                                    t0,
                                    t1,
                                    width,
                                    stop,
                                    &observer_factory,
                                    Some(&abort),
                                    |trial, out| {
                                        partials[trial / REDUCE_BLOCK - b0].absorb(out);
                                    },
                                )
                            }));
                            match result {
                                Ok(Ok(())) => {}
                                Ok(Err((trial, e))) => error = Some((trial, e)),
                                Err(payload) => panic = Some((t0, payload)),
                            }
                        }
                    }
                    let failed = error.is_some() || panic.is_some();
                    let mut st = state.lock().unwrap_or_else(PoisonError::into_inner);
                    if let Some((trial, e)) = error {
                        if st.error.as_ref().map_or(true, |(t, _)| trial < *t) {
                            st.error = Some((trial, e));
                        }
                    }
                    if let Some((trial, p)) = panic {
                        if st.panic.as_ref().map_or(true, |(t, _)| trial < *t) {
                            st.panic = Some((trial, p));
                        }
                    }
                    // Park the partials (possibly incomplete on error — the
                    // reduction is discarded in that case, but parking them
                    // keeps the in-order pipeline advancing), then drain
                    // every partial whose merge slot has come up.
                    for (i, partial) in partials.into_iter().enumerate() {
                        st.pending.insert(b0 + i, partial);
                    }
                    let mut advanced = false;
                    loop {
                        let slot = st.merged;
                        let Some(ready) = st.pending.remove(&slot) else { break };
                        let acc = st.acc.as_mut().expect("accumulator present during the run");
                        // A panicking `merge` gets the same treatment as a
                        // panicking `absorb`: record, abort, keep the
                        // worker alive so the scope can unwind cleanly.
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| acc.merge(ready))) {
                            let trial = slot * REDUCE_BLOCK;
                            if st.panic.as_ref().map_or(true, |(t, _)| trial < *t) {
                                st.panic = Some((trial, payload));
                            }
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                        st.merged += 1;
                        advanced = true;
                    }
                    if failed {
                        abort.store(true, Ordering::Relaxed);
                    }
                    if advanced || abort.load(Ordering::Relaxed) {
                        // Merge progress unblocks window waiters; an abort
                        // must wake them too so they can exit.
                        cv.notify_all();
                    }
                });
            }
        });
        let st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
        if let Some((_, payload)) = st.panic {
            resume_unwind(payload);
        }
        if let Some((_, e)) = st.error {
            return Err(e);
        }
        Ok(st.acc.expect("accumulator present after the run"))
    }

    /// The global trial range shard `shard` of `num_shards` covers.
    ///
    /// Shard boundaries are **block-aligned**: the sweep's
    /// `trials.div_ceil(REDUCE_BLOCK)` reduction blocks (see
    /// [`REDUCE_BLOCK`]) are split as evenly as possible, shard `s`
    /// getting blocks `[s·B/K, (s+1)·B/K)`. Alignment matters because the
    /// unit a sharded sweep ships to the merger is the block partial —
    /// splitting a block across shards would change the reduction tree and
    /// therefore the merged bits. A shard may cover zero trials when there
    /// are more shards than blocks; that is fine (its partial file simply
    /// carries no blocks).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0` or `shard >= num_shards`.
    pub fn shard_trials(&self, shard: usize, num_shards: usize) -> std::ops::Range<usize> {
        assert!(num_shards > 0, "need at least one shard");
        assert!(shard < num_shards, "shard index {shard} out of range for {num_shards} shards");
        let blocks = self.trials.div_ceil(REDUCE_BLOCK);
        let lo_block = shard * blocks / num_shards;
        let hi_block = (shard + 1) * blocks / num_shards;
        (lo_block * REDUCE_BLOCK).min(self.trials)..(hi_block * REDUCE_BLOCK).min(self.trials)
    }

    /// Run only shard `shard` of `num_shards` and return its reduction-tree
    /// **leaves**: one partial per [`REDUCE_BLOCK`]-trial block, in block
    /// order — exactly the partials [`Ensemble::run_reduced`] would have
    /// produced for those blocks in a single-process sweep.
    ///
    /// Per-trial seeds still derive from `split_seed(base_seed, trial)`
    /// with **global** trial indices, so the shard split cannot change any
    /// trial's stream. A merger that concatenates every shard's leaves in
    /// shard order and folds them with
    /// [`merge_partials`](crate::merge_partials) replays the single
    /// process's left-deep merge chain and is therefore **bit-identical**
    /// to `run_reduced` for any shard count — the leaves are returned
    /// unmerged precisely because floating-point merges (Welford/Chan) are
    /// not bitwise associative, so pre-merging per shard would change the
    /// final bits. Live memory is `O(shard blocks)` partials.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-trial-index replica error of this shard, if
    /// any.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0` or `shard >= num_shards`; replica or
    /// reducer panics are re-raised as in [`run_indexed`].
    pub fn run_reduced_shard<O, R>(
        &self,
        shard: usize,
        num_shards: usize,
        stop: &StopSpec,
        observer_factory: impl Fn(usize) -> O + Sync,
        reducer: &R,
    ) -> Result<Vec<R>, DynamicsError>
    where
        O: Observer,
        R: Reducer<Item = O::Output> + Send + Sync,
    {
        let range = self.shard_trials(shard, num_shards);
        if range.is_empty() {
            if let Some(width) = self.lane_width {
                self.validate_lane_config(width)?;
            }
            return Ok(Vec::new());
        }
        debug_assert_eq!(range.start % REDUCE_BLOCK, 0, "shard ranges are block-aligned");
        let lo_block = range.start / REDUCE_BLOCK;
        let shard_blocks = (range.end - range.start).div_ceil(REDUCE_BLOCK);
        if let Some(width) = self.lane_width {
            self.validate_lane_config(width)?;
            // Lane groups anchor at shard-local block boundaries. That is
            // safe without any global alignment: the counter addressing
            // makes every trial's output bit-identical regardless of which
            // lane group runs it, so only the per-block absorption order
            // matters — and `run_lane_trials` delivers outputs in trial
            // order within each group.
            let unit_blocks = width.div_ceil(REDUCE_BLOCK);
            let units = shard_blocks.div_ceil(unit_blocks);
            let results: Vec<Result<Vec<R>, DynamicsError>> =
                run_indexed(units, self.threads.min(units), |u| {
                    let b0 = lo_block + u * unit_blocks;
                    let b1 = (b0 + unit_blocks).min(lo_block + shard_blocks);
                    let mut partials: Vec<R> = (b0..b1).map(|_| reducer.identity()).collect();
                    let t0 = b0 * REDUCE_BLOCK;
                    let t1 = (b1 * REDUCE_BLOCK).min(self.trials);
                    self.run_lane_trials(
                        t0,
                        t1,
                        width,
                        stop,
                        &observer_factory,
                        None,
                        |trial, out| {
                            partials[trial / REDUCE_BLOCK - b0].absorb(out);
                        },
                    )
                    .map_err(|(_, e)| e)?;
                    Ok(partials)
                });
            let mut leaves = Vec::with_capacity(shard_blocks);
            for unit in results {
                leaves.extend(unit?);
            }
            return Ok(leaves);
        }
        let results = run_indexed(shard_blocks, self.threads.min(shard_blocks), |b| {
            let block = lo_block + b;
            let block_range = block * REDUCE_BLOCK..((block + 1) * REDUCE_BLOCK).min(self.trials);
            let mut partial = reducer.identity();
            for trial in block_range {
                partial.absorb(self.reduce_one_trial(trial, stop, &observer_factory)?);
            }
            Ok(partial)
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ImitationProtocol;
    use crate::stopping::{StopCondition, StopReason};
    use congames_model::Affine;

    fn two_links(n: u64) -> CongestionGame {
        CongestionGame::singleton(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], n)
            .unwrap()
    }

    #[test]
    fn run_indexed_orders_results() {
        let out = run_indexed(16, 4, |i| i * 3);
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(run_indexed(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
        assert!(run_indexed(0, 2, |i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "task 7 says hi")]
    fn run_indexed_propagates_original_panic() {
        run_indexed(32, 4, |i| {
            if i == 7 {
                panic!("task 7 says hi");
            }
            i
        });
    }

    #[test]
    fn ensemble_is_thread_count_invariant() {
        let game = two_links(200);
        let start = State::from_counts(&game, vec![150, 50]).unwrap();
        let stop =
            StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(2_000)]);
        let run = |threads: usize| {
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .unwrap()
                .trials(12)
                .base_seed(99)
                .threads(threads)
                .run_with(&stop, |sim, out| {
                    (out.rounds, out.potential.to_bits(), sim.state().counts().to_vec())
                })
                .unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        assert!(one.iter().all(|(r, _, _)| *r < 2_000));
    }

    #[test]
    fn ensemble_validates_eagerly() {
        let game = two_links(4);
        let other = two_links(6);
        let bad = State::from_counts(&other, vec![3, 3]).unwrap();
        assert!(Ensemble::new(&game, ImitationProtocol::paper_default().into(), bad).is_err());
    }

    #[test]
    fn run_reduced_is_thread_count_invariant_and_matches_trial_order() {
        use crate::observe::FinalSummary;
        use crate::reduce::{MapItem, ScalarStats};
        use crate::stopping::RunSummary;
        let game = two_links(120);
        let start = State::from_counts(&game, vec![90, 30]).unwrap();
        let stop = StopSpec::max_rounds(20);
        // 70 trials = 3 reduction blocks, so the merge path is exercised.
        let run = |threads: usize| {
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .unwrap()
                .trials(70)
                .base_seed(5)
                .threads(threads)
                .run_reduced(
                    &stop,
                    |_trial| FinalSummary,
                    MapItem::new(|s: RunSummary| s.potential, ScalarStats::new()),
                )
                .unwrap()
                .into_inner()
        };
        let one = run(1);
        assert_eq!(one, run(2), "2 threads changed the reduction");
        assert_eq!(one, run(8), "8 threads changed the reduction");
        assert_eq!(one.count(), 70);
        // The collecting reducer preserves trial order exactly.
        let collected: Vec<u64> =
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .unwrap()
                .trials(70)
                .base_seed(5)
                .threads(4)
                .run_reduced(
                    &stop,
                    |_trial| FinalSummary,
                    MapItem::new(|s: RunSummary| s.rounds, Vec::new()),
                )
                .unwrap()
                .into_inner();
        let reference: Vec<u64> =
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .unwrap()
                .trials(70)
                .base_seed(5)
                .run_with(&stop, |_, out| out.rounds)
                .unwrap();
        assert_eq!(collected, reference);
    }

    #[test]
    fn run_reduced_zero_trials_is_the_identity_reduction() {
        use crate::observe::FinalSummary;
        use crate::reduce::ConvergenceHistogram;
        let game = two_links(10);
        let start = State::from_counts(&game, vec![5, 5]).unwrap();
        let out = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
            .unwrap()
            .trials(0)
            .run_reduced(
                &StopSpec::max_rounds(5),
                |_trial| FinalSummary,
                ConvergenceHistogram::new(),
            )
            .unwrap();
        assert_eq!(out.total(), 0);
        // The materializing APIs agree: zero trials → empty Vec.
        assert!(Ensemble::new(&game, ImitationProtocol::paper_default().into(), start)
            .unwrap()
            .trials(0)
            .run(&StopSpec::max_rounds(5))
            .unwrap()
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "observer factory exploded")]
    fn run_reduced_propagates_original_panic() {
        use crate::observe::FinalSummary;
        use crate::reduce::ConvergenceHistogram;
        let game = two_links(20);
        let start = State::from_counts(&game, vec![15, 5]).unwrap();
        let _ = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start)
            .unwrap()
            .trials(80)
            .threads(4)
            .run_reduced(
                &StopSpec::max_rounds(5),
                |trial| {
                    if trial == 41 {
                        panic!("observer factory exploded");
                    }
                    FinalSummary
                },
                ConvergenceHistogram::new(),
            );
    }

    /// A reducer that panics inside `absorb` (here: a `MapItem` projection)
    /// must neither hang the in-order merge pipeline nor surface as the
    /// scope's generic panic — the original payload is re-raised.
    #[test]
    #[should_panic(expected = "absorb exploded")]
    fn run_reduced_propagates_reducer_panics() {
        use crate::observe::FinalSummary;
        use crate::reduce::{MapItem, Welford};
        use crate::stopping::RunSummary;
        let game = two_links(20);
        let start = State::from_counts(&game, vec![15, 5]).unwrap();
        let _ = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start)
            .unwrap()
            .trials(80)
            .threads(4)
            .run_reduced(
                &StopSpec::max_rounds(5),
                |_trial| FinalSummary,
                MapItem::new(
                    |s: RunSummary| {
                        if s.rounds <= 5 {
                            panic!("absorb exploded");
                        }
                        s.potential
                    },
                    Welford::new(),
                ),
            );
    }

    #[test]
    fn sharded_leaves_merge_bit_identical_to_run_reduced() {
        use crate::observe::FinalSummary;
        use crate::reduce::{merge_partials, MapItem, ScalarStats};
        use crate::stopping::RunSummary;
        let game = two_links(120);
        let start = State::from_counts(&game, vec![90, 30]).unwrap();
        let stop = StopSpec::max_rounds(20);
        let ensemble = |threads: usize| {
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .unwrap()
                .trials(70)
                .base_seed(5)
                .threads(threads)
        };
        let reducer = || MapItem::new(|s: RunSummary| s.potential, ScalarStats::new());
        let single =
            ensemble(2).run_reduced(&stop, |_trial| FinalSummary, reducer()).unwrap().into_inner();
        // 70 trials = 3 blocks; split them over every shard count that
        // exercises empty shards, one-block shards, and multi-block shards.
        for num_shards in [1usize, 2, 3, 5] {
            let mut leaves = Vec::new();
            let mut covered = 0;
            for shard in 0..num_shards {
                let e = ensemble(2);
                let range = e.shard_trials(shard, num_shards);
                assert_eq!(range.start, covered, "shard ranges must be contiguous");
                covered = range.end;
                leaves.extend(
                    e.run_reduced_shard(
                        shard,
                        num_shards,
                        &stop,
                        |_trial| FinalSummary,
                        &reducer(),
                    )
                    .unwrap(),
                );
            }
            assert_eq!(covered, 70);
            let merged = merge_partials(reducer(), leaves).into_inner();
            assert_eq!(merged, single, "{num_shards} shards changed the reduction bits");
        }
    }

    #[test]
    fn run_reduced_survives_non_finite_samples() {
        use crate::observe::FinalSummary;
        use crate::reduce::{MapItem, ScalarStats};
        use crate::stopping::RunSummary;
        let game = two_links(40);
        let start = State::from_counts(&game, vec![30, 10]).unwrap();
        // Inject a NaN "latency" for one trial of a multi-block sweep: the
        // sweep must complete and report the bad sample instead of aborting.
        let stats = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start)
            .unwrap()
            .trials(40)
            .threads(4)
            .run_reduced(
                &StopSpec::max_rounds(5),
                |_trial| FinalSummary,
                MapItem::new(
                    |s: RunSummary| if s.rounds == 5 { s.potential } else { f64::NAN },
                    ScalarStats::new(),
                ),
            )
            .unwrap()
            .into_inner();
        assert_eq!(stats.count() + stats.non_finite(), 40);
    }

    #[test]
    fn lane_reduced_is_bit_identical_to_scalar_for_every_width_and_thread_count() {
        use crate::observe::FinalSummary;
        use crate::reduce::{MapItem, ScalarStats};
        use crate::stopping::RunSummary;
        let game = two_links(120);
        let start = State::from_counts(&game, vec![90, 30]).unwrap();
        let stop = StopSpec::max_rounds(20);
        // 70 trials = 3 blocks: W=64 exercises a two-block unit plus a
        // narrow tail group, W=8..32 exercise sub-block groups.
        let run = |lanes: Option<usize>, threads: usize| {
            let mut e =
                Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                    .unwrap()
                    .trials(70)
                    .base_seed(5)
                    .threads(threads)
                    .rng_mode(RngMode::Counter);
            if let Some(w) = lanes {
                e = e.lane_width(w);
            }
            e.run_reduced(
                &stop,
                |_trial| FinalSummary,
                MapItem::new(|s: RunSummary| s.potential, ScalarStats::new()),
            )
            .unwrap()
            .into_inner()
        };
        let scalar = run(None, 1);
        for width in LANE_WIDTHS {
            for threads in [1, 2, 8] {
                assert_eq!(
                    scalar,
                    run(Some(width), threads),
                    "lanes={width} threads={threads} changed the reduction bits"
                );
            }
        }
    }

    #[test]
    fn lane_sharded_leaves_merge_bit_identical_to_scalar_run_reduced() {
        use crate::observe::FinalSummary;
        use crate::reduce::{merge_partials, MapItem, ScalarStats};
        use crate::stopping::RunSummary;
        let game = two_links(120);
        let start = State::from_counts(&game, vec![90, 30]).unwrap();
        let stop = StopSpec::max_rounds(20);
        let ensemble = |lanes: Option<usize>| {
            let mut e =
                Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                    .unwrap()
                    .trials(70)
                    .base_seed(5)
                    .threads(2)
                    .rng_mode(RngMode::Counter);
            if let Some(w) = lanes {
                e = e.lane_width(w);
            }
            e
        };
        let reducer = || MapItem::new(|s: RunSummary| s.potential, ScalarStats::new());
        let single = ensemble(None)
            .run_reduced(&stop, |_trial| FinalSummary, reducer())
            .unwrap()
            .into_inner();
        // W=64 lane groups re-anchor at each shard's first block; the
        // leaves must still be the single-process leaves bit for bit.
        for num_shards in [1usize, 2, 3, 5] {
            let mut leaves = Vec::new();
            for shard in 0..num_shards {
                leaves.extend(
                    ensemble(Some(64))
                        .run_reduced_shard(
                            shard,
                            num_shards,
                            &stop,
                            |_trial| FinalSummary,
                            &reducer(),
                        )
                        .unwrap(),
                );
            }
            let merged = merge_partials(reducer(), leaves).into_inner();
            assert_eq!(merged, single, "{num_shards} lane shards changed the reduction bits");
        }
    }

    #[test]
    fn lane_width_is_validated() {
        use crate::observe::FinalSummary;
        use crate::reduce::ConvergenceHistogram;
        let game = two_links(20);
        let start = State::from_counts(&game, vec![15, 5]).unwrap();
        let stop = StopSpec::max_rounds(5);
        let base = || {
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .unwrap()
                .trials(8)
        };
        // Width must be one of LANE_WIDTHS.
        let err = base()
            .rng_mode(RngMode::Counter)
            .lane_width(12)
            .run_reduced(&stop, |_t| FinalSummary, ConvergenceHistogram::new())
            .unwrap_err();
        assert!(err.to_string().contains("8, 16, 32, 64"), "got: {err}");
        // Counter mode is required (xoshiro streams are draw-order serial).
        let err = base()
            .rng_mode(RngMode::Xoshiro)
            .lane_width(8)
            .run_reduced(&stop, |_t| FinalSummary, ConvergenceHistogram::new())
            .unwrap_err();
        assert!(err.to_string().contains("counter-mode RNG"), "got: {err}");
        // Sharded entry point validates too, even for an empty shard.
        let err = base()
            .rng_mode(RngMode::Xoshiro)
            .lane_width(8)
            .run_reduced_shard(0, 1, &stop, |_t| FinalSummary, &ConvergenceHistogram::new())
            .unwrap_err();
        assert!(err.to_string().contains("counter-mode RNG"), "got: {err}");
        // The materializing path is scalar-only.
        let err = base().rng_mode(RngMode::Counter).lane_width(8).run(&stop).unwrap_err();
        assert!(err.to_string().contains("scalar-only"), "got: {err}");
    }

    #[test]
    fn ensemble_outcomes_carry_stop_reasons() {
        let game = two_links(50);
        let start = State::from_counts(&game, vec![25, 25]).unwrap();
        let outcomes = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start)
            .unwrap()
            .trials(3)
            .run(&StopSpec::new(vec![StopCondition::ImitationStable]))
            .unwrap();
        assert!(outcomes.iter().all(|o| o.reason == StopReason::ImitationStable && o.rounds == 0));
    }
}
