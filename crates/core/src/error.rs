use std::error::Error;
use std::fmt;

use congames_model::GameError;
use congames_sampling::SamplingError;

/// Error type for configuring and running dynamics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DynamicsError {
    /// A protocol parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        message: &'static str,
    },
    /// An underlying game/state operation failed.
    Game(GameError),
    /// An underlying sampling operation failed (indicates an internal
    /// probability computation bug; surfaced rather than panicking).
    Sampling(SamplingError),
    /// A between-rounds mutation hook (see
    /// [`RoundHook`](crate::RoundHook)) failed or left the simulation in
    /// an inconsistent configuration.
    Hook {
        /// What went wrong, in the hook's own words.
        message: String,
    },
}

impl fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicsError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            DynamicsError::Game(e) => write!(f, "game error: {e}"),
            DynamicsError::Sampling(e) => write!(f, "sampling error: {e}"),
            DynamicsError::Hook { message } => write!(f, "round hook error: {message}"),
        }
    }
}

impl Error for DynamicsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DynamicsError::InvalidParameter { .. } => None,
            DynamicsError::Game(e) => Some(e),
            DynamicsError::Sampling(e) => Some(e),
            DynamicsError::Hook { .. } => None,
        }
    }
}

impl From<GameError> for DynamicsError {
    fn from(e: GameError) -> Self {
        DynamicsError::Game(e)
    }
}

impl From<SamplingError> for DynamicsError {
    fn from(e: SamplingError) -> Self {
        DynamicsError::Sampling(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = DynamicsError::InvalidParameter { name: "lambda", message: "must be in (0,1]" };
        assert!(e.to_string().contains("lambda"));
        assert!(e.source().is_none());
        let g: DynamicsError = GameError::EmptyStrategy.into();
        assert!(g.source().is_some());
        let s: DynamicsError = SamplingError::InvalidProbability { name: "p" }.into();
        assert!(s.to_string().contains("sampling"));
    }
}
