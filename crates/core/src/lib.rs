//! # congames-dynamics
//!
//! The core contribution of *"Concurrent Imitation Dynamics in Congestion
//! Games"* (Ackermann, Berenbrink, Fischer, Hoefer; PODC 2009): concurrent,
//! round-based revision protocols for atomic congestion games, plus the
//! machinery to simulate and measure them.
//!
//! * [`ImitationProtocol`] — Protocol 1 of the paper. Each round, every
//!   player samples another player uniformly at random and adopts the sampled
//!   strategy with probability `λ/d · (ℓ_P − ℓ_Q(x+1_Q−1_P))/ℓ_P`, provided
//!   the anticipated gain exceeds `ν`. The `1/d` elasticity damping prevents
//!   overshooting (Section 2.3); both the damping and the `ν` rule are
//!   configurable so the paper's ablations (undamped dynamics, the Section 6
//!   variants) can be reproduced.
//! * [`ExplorationProtocol`] — Protocol 2 (Section 6): sample a *strategy*
//!   uniformly instead of a player; guarantees convergence to Nash
//!   equilibria at the price of much heavier damping.
//! * [`Protocol::combined`] — the 50/50 mixture discussed in Section 6.
//!
//! Rounds are simulated by either of two statistically identical engines
//! (see [`EngineKind`]): a ground-truth *player-level* engine that iterates
//! players individually, and an *aggregate* engine that draws per-origin
//! multinomials in `O(S²)` time per round independent of the number of
//! players.
//!
//! # Performance architecture
//!
//! Both round kernels are **zero-steady-state-allocation**: every piece of
//! per-round working memory is reusable scratch owned by the [`Simulation`]
//! (a flat CSR pair buffer and a multinomial counts buffer for the
//! aggregate kernel; an epoch-versioned dense μ memo plus move/commit
//! buffers for the player-level kernel) or by the `State` (the per-round
//! latency cache, which memoizes `ℓ_e(x_e)`, `ℓ_e(x_e+1)`, and `ℓ_P(x)`
//! and is maintained incrementally as migrations apply). An integration
//! test pins this with a counting global allocator.
//!
//! # Ensembles
//!
//! The statistical experiments run thousands of replicas; [`Ensemble`]
//! executes them across threads with `split_seed`-derived per-replica
//! seeds and returns trial-ordered outcomes that are **bit-identical for
//! any thread count**. The underlying panic-transparent parallel map,
//! [`run_indexed`], is exported for non-simulation fan-out.
//!
//! # Streaming observers and reducers
//!
//! Per-round metrics stream through the [`Observer`] trait
//! ([`Simulation::run_observed`] feeds one [`RoundRecord`] per recorded
//! round; [`Trajectory`] is just the stock materializing observer), and
//! ensembles fold per-trial outputs into a [`Reducer`]
//! (`identity`/`absorb`/`merge`) via [`Ensemble::run_reduced`] — so a
//! 10⁵-trial sweep reduces online with memory independent of the trial
//! count, still bit-identical for every thread count. Stock reducers cover
//! per-round-index mean/variance/CI ([`PerRoundStats`], built on
//! [`Welford`]), min/max envelopes ([`MinMax`]), convergence-round
//! histograms keyed by stop reason ([`ConvergenceHistogram`]), and a
//! counted, reservoir-free quantile summary ([`QuantileSketch`]).
//!
//! # Example
//!
//! ```
//! use congames_dynamics::{ImitationProtocol, Simulation, StopCondition, StopSpec};
//! use congames_model::{ApproxEquilibrium, CongestionGame, Affine, State};
//! use rand::SeedableRng;
//!
//! let game = CongestionGame::singleton(
//!     (0..4).map(|i| Affine::linear((i + 1) as f64).into()).collect(),
//!     1000,
//! )?;
//! let start = State::all_on_first(&game);
//! let protocol = ImitationProtocol::paper_default().into();
//! let mut sim = Simulation::new(&game, protocol, start)?;
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let eq = ApproxEquilibrium::new(0.05, 0.1, sim.params().nu)?;
//! let outcome = sim.run(
//!     &StopSpec::new(vec![
//!         StopCondition::ApproxEquilibrium(eq),
//!         StopCondition::MaxRounds(100_000),
//!     ]),
//!     &mut rng,
//! )?;
//! assert!(outcome.rounds < 100_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod ensemble;
mod error;
mod expectation;
mod hook;
mod lanes;
mod observe;
mod protocol;
mod reduce;
pub mod sequential;
mod stopping;
mod trajectory;
pub mod wire;

pub use engine::{EngineKind, MuMemoStats, RoundStats, Simulation};
pub use ensemble::{run_indexed, Ensemble, REDUCE_BLOCK};
pub use error::DynamicsError;
pub use expectation::PairFlow;
pub use hook::RoundHook;
pub use lanes::{LaneKernel, LANE_WIDTHS};
pub use observe::{FinalSummary, Observer, RecordSeries};
pub use protocol::{
    Damping, ExplorationProtocol, ImitationProtocol, NuRule, Protocol, SelfSampling,
};
pub use reduce::{
    merge_partials, ConvergenceHistogram, MapItem, MinMax, PerRoundStats, QuantileSketch,
    ReasonStats, Reducer, RoundIndexStats, ScalarStats, Welford, STOP_REASONS,
};
pub use sequential::{PivotRule, SequentialOutcome};
pub use stopping::{RunOutcome, RunSummary, StopCondition, StopReason, StopSpec};
pub use trajectory::{RecordConfig, RoundRecord, Trajectory};
