//! Per-round metrics recording.

use congames_model::{ApproxEquilibrium, CongestionGame, State};

/// Metrics of one recorded round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round index (0 = initial state, before any migration).
    pub round: u64,
    /// Rosenthal potential `Φ`.
    pub potential: f64,
    /// Average latency `L_av`.
    pub l_av: f64,
    /// Average ex-post latency `L+_av`.
    pub l_av_plus: f64,
    /// Maximum latency of a used strategy.
    pub max_latency: f64,
    /// Number of players that migrated in the round ending here (0 for a
    /// record of round 0; a run resumed from a manually-stepped state
    /// reports the migrations of the step that produced its start round).
    pub migrations: u64,
    /// Number of strategies in use (`O(1)` off the state's support index,
    /// which the engines keep maintained — recording never rescans the
    /// counts).
    pub support: usize,
    /// Fraction of players on expensive/cheap strategies per Definition 1,
    /// when an [`ApproxEquilibrium`] was configured.
    pub unsatisfied_fraction: Option<f64>,
    /// Whether a scheduled-event hook (see [`RoundHook`](crate::RoundHook))
    /// mutated the game/state immediately before this round — i.e. this
    /// record is the first one reflecting the post-shock world. Always
    /// `false` in stationary runs.
    pub shock: bool,
}

/// What to record along a run.
///
/// Recording happens only inside `Simulation::run` /
/// `Simulation::run_observed` (which captures each record and hands it to
/// the caller's [`Observer`](crate::Observer)); manual `step` calls never
/// record, whatever this is set to.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecordConfig {
    /// Record every `every` rounds (0 disables recording entirely). When
    /// non-zero, a run records the state it starts from (round index
    /// `r₀`, its current round — not necessarily round 0) and the state
    /// the stop condition fires in (deduplicated if that round is on the
    /// cadence anyway). A run that fails mid-way returns an error and no
    /// trajectory at all.
    pub every: u64,
    /// Also track the unsatisfied fraction against this test.
    pub approx: Option<ApproxEquilibrium>,
}

impl RecordConfig {
    /// Record every round.
    pub fn every_round() -> Self {
        RecordConfig { every: 1, approx: None }
    }

    /// Record every `every` rounds (0 disables recording).
    pub fn every(every: u64) -> Self {
        RecordConfig { every, approx: None }
    }

    /// Record every round, including the unsatisfied fraction of `approx`.
    pub fn with_approx(approx: ApproxEquilibrium) -> Self {
        RecordConfig { every: 1, approx: Some(approx) }
    }

    /// Disable recording.
    pub fn disabled() -> Self {
        RecordConfig { every: 0, approx: None }
    }
}

/// The recorded time series of a run.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    records: Vec<RoundRecord>,
}

impl Trajectory {
    pub(crate) fn new() -> Self {
        Trajectory { records: Vec::new() }
    }

    pub(crate) fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// The recorded rounds, in order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// The potential series `(round, Φ)`.
    pub fn potential_series(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.records.iter().map(|r| (r.round, r.potential))
    }

    /// Whether the recorded potentials are non-increasing within `slack`
    /// (diagnostic used by the super-martingale experiments — individual
    /// runs may fluctuate, averages must not).
    pub fn potential_monotone_within(&self, slack: f64) -> bool {
        self.records.windows(2).all(|w| w[1].potential <= w[0].potential + slack)
    }
}

pub(crate) fn capture_record(
    game: &CongestionGame,
    state: &State,
    round: u64,
    potential: f64,
    migrations: u64,
    approx: Option<&ApproxEquilibrium>,
    shock: bool,
) -> RoundRecord {
    let l_av = congames_model::average_latency(game, state);
    let l_av_plus = congames_model::average_latency_plus(game, state);
    let max_latency = congames_model::makespan(game, state);
    let unsatisfied_fraction = approx.map(|a| a.status(game, state).unsatisfied_fraction());
    RoundRecord {
        round,
        potential,
        l_av,
        l_av_plus,
        max_latency,
        migrations,
        support: state.support_size(),
        unsatisfied_fraction,
        shock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u64, potential: f64) -> RoundRecord {
        RoundRecord {
            round,
            potential,
            l_av: 0.0,
            l_av_plus: 0.0,
            max_latency: 0.0,
            migrations: 0,
            support: 1,
            unsatisfied_fraction: None,
            shock: false,
        }
    }

    #[test]
    fn monotone_check() {
        let mut t = Trajectory::new();
        t.push(rec(0, 10.0));
        t.push(rec(1, 8.0));
        t.push(rec(2, 8.0));
        assert!(t.potential_monotone_within(0.0));
        t.push(rec(3, 9.0));
        assert!(!t.potential_monotone_within(0.5));
        assert!(t.potential_monotone_within(1.0));
        assert_eq!(t.records().len(), 4);
        let series: Vec<_> = t.potential_series().collect();
        assert_eq!(series[1], (1, 8.0));
    }

    #[test]
    fn record_config_constructors() {
        assert_eq!(RecordConfig::every_round().every, 1);
        assert_eq!(RecordConfig::disabled().every, 0);
        let approx = ApproxEquilibrium::new(0.1, 0.1, 0.0).unwrap();
        assert!(RecordConfig::with_approx(approx).approx.is_some());
    }
}
