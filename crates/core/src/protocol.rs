//! The IMITATION and EXPLORATION protocols and their configuration knobs.

use congames_model::{CongestionGame, GameParams, State, StrategyId};

use crate::error::DynamicsError;

/// How the imitation migration probability is damped (the `1/d` factor).
///
/// The paper damps by the elasticity bound `d` to avoid overshooting
/// (Section 2.3). `None` reproduces the undamped dynamics of the
/// overshooting discussion; `Fixed` allows ablations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Damping {
    /// Damp by `max(d, 1)` where `d` is the game's elasticity bound
    /// (the paper's protocol).
    #[default]
    Elasticity,
    /// No damping (the overshooting counter-example configuration).
    None,
    /// Damp by a fixed factor `≥ 1`.
    Fixed(f64),
}

/// Whether migration requires the anticipated gain to exceed `ν`.
///
/// The paper's protocol migrates only when
/// `ℓ_P(x) > ℓ_Q(x+1_Q−1_P) + ν`; Theorem 9 shows the rule can be dropped
/// for large singleton games (Section 6, option 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NuRule {
    /// Require `gain > ν` (the paper's protocol).
    #[default]
    Threshold,
    /// Require only `gain > 0`.
    None,
}

/// Whether the uniformly sampled "other player" may be the sampler itself.
///
/// The paper says "samples *another* player" (exclude, the default); its
/// analysis uses the asymptotically identical include form `x_Q/n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfSampling {
    /// Sample uniformly among the other `n−1` players of the class.
    #[default]
    Exclude,
    /// Sample uniformly among all `n` players (self-samples never migrate).
    Include,
}

/// Protocol 1: the IMITATION PROTOCOL.
///
/// Each round every player (concurrently) samples another player of its
/// class and, if the anticipated latency gain clears the `ν` threshold,
/// migrates with probability
///
/// ```text
/// μ_PQ = λ/d · (ℓ_P(x) − ℓ_Q(x + 1_Q − 1_P)) / ℓ_P(x)
/// ```
///
/// # Example
///
/// ```
/// use congames_dynamics::ImitationProtocol;
/// let p = ImitationProtocol::new(0.25)?;
/// assert_eq!(p.lambda(), 0.25);
/// # Ok::<(), congames_dynamics::DynamicsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImitationProtocol {
    lambda: f64,
    damping: Damping,
    nu_rule: NuRule,
    self_sampling: SelfSampling,
    virtual_agents: bool,
}

impl ImitationProtocol {
    /// Create an imitation protocol with migration constant `λ ∈ (0, 1]` and
    /// default (paper) settings: elasticity damping, `ν` threshold, sampling
    /// excludes self, no virtual agents.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError::InvalidParameter`] if `λ ∉ (0, 1]`.
    pub fn new(lambda: f64) -> Result<Self, DynamicsError> {
        if !(lambda > 0.0 && lambda <= 1.0) {
            return Err(DynamicsError::InvalidParameter {
                name: "lambda",
                message: "must be a finite value in (0, 1]",
            });
        }
        Ok(ImitationProtocol {
            lambda,
            damping: Damping::Elasticity,
            nu_rule: NuRule::Threshold,
            self_sampling: SelfSampling::Exclude,
            virtual_agents: false,
        })
    }

    /// The paper-default protocol with `λ = 1/4`.
    ///
    /// The proofs use a (much smaller) constant; `1/4` keeps every proof's
    /// qualitative behaviour while converging at a practical speed, and the
    /// ablation experiment sweeps `λ` to show where overshooting begins.
    pub fn paper_default() -> Self {
        ImitationProtocol::new(0.25).expect("0.25 is a valid lambda")
    }

    /// Set the damping mode.
    pub fn with_damping(mut self, damping: Damping) -> Self {
        self.damping = damping;
        self
    }

    /// Set the `ν` rule.
    pub fn with_nu_rule(mut self, rule: NuRule) -> Self {
        self.nu_rule = rule;
        self
    }

    /// Set the self-sampling mode.
    pub fn with_self_sampling(mut self, mode: SelfSampling) -> Self {
        self.self_sampling = mode;
        self
    }

    /// Enable the virtual-agent variant (Section 6, option 2): every
    /// strategy permanently hosts one virtual agent that can be sampled.
    /// The caller must pair this with
    /// [`congames_model::State::with_virtual_agents`] so the base loads are
    /// accounted for.
    pub fn with_virtual_agents(mut self, enabled: bool) -> Self {
        self.virtual_agents = enabled;
        self
    }

    /// The migration constant `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The damping mode.
    pub fn damping(&self) -> Damping {
        self.damping
    }

    /// The `ν` rule.
    pub fn nu_rule(&self) -> NuRule {
        self.nu_rule
    }

    /// The self-sampling mode.
    pub fn self_sampling(&self) -> SelfSampling {
        self.self_sampling
    }

    /// Whether virtual agents are enabled.
    pub fn virtual_agents(&self) -> bool {
        self.virtual_agents
    }

    /// The effective damping denominator for a game with parameters `params`.
    pub fn damping_factor(&self, params: &GameParams) -> f64 {
        match self.damping {
            Damping::Elasticity => params.damping(),
            Damping::None => 1.0,
            Damping::Fixed(v) => v.max(1.0),
        }
    }

    /// The effective gain threshold.
    pub fn gain_threshold(&self, params: &GameParams) -> f64 {
        match self.nu_rule {
            NuRule::Threshold => params.nu,
            NuRule::None => 0.0,
        }
    }

    /// Migration probability for a player on `from` that sampled `to`
    /// (`0` when the gain does not clear the threshold).
    pub fn migration_probability(
        &self,
        game: &CongestionGame,
        state: &State,
        params: &GameParams,
        from: StrategyId,
        to: StrategyId,
    ) -> f64 {
        if from == to {
            return 0.0;
        }
        let l_from = state.strategy_latency(game, from);
        if l_from <= 0.0 {
            return 0.0;
        }
        let l_to = state.latency_after_move(game, from, to);
        let gain = l_from - l_to;
        if gain <= self.gain_threshold(params) {
            return 0.0;
        }
        (self.lambda / self.damping_factor(params) * gain / l_from).clamp(0.0, 1.0)
    }
}

/// Protocol 2: the EXPLORATION PROTOCOL (Section 6).
///
/// Players sample a *strategy* uniformly at random (rather than a player)
/// and migrate with probability
///
/// ```text
/// μ_PQ = min{1, λ · |P|·ℓ_min/(β·n) · (ℓ_P − ℓ_Q(x+1_Q−1_P))/ℓ_P}
/// ```
///
/// where `β` bounds the maximum latency slope and `ℓ_min = min_e ℓ_e(1)`.
/// The heavy damping is required because uniform sampling can direct many
/// players at an empty strategy at once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplorationProtocol {
    lambda: f64,
}

impl ExplorationProtocol {
    /// Create an exploration protocol with constant `λ ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError::InvalidParameter`] if `λ ∉ (0, 1]`.
    pub fn new(lambda: f64) -> Result<Self, DynamicsError> {
        if !(lambda > 0.0 && lambda <= 1.0) {
            return Err(DynamicsError::InvalidParameter {
                name: "lambda",
                message: "must be a finite value in (0, 1]",
            });
        }
        Ok(ExplorationProtocol { lambda })
    }

    /// The paper-default exploration protocol (`λ = 1/4`).
    pub fn paper_default() -> Self {
        ExplorationProtocol::new(0.25).expect("0.25 is a valid lambda")
    }

    /// The migration constant `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Migration probability for a player on `from` that sampled strategy
    /// `to` uniformly. `class_strategies`/`class_players` are `|P|` and `n`
    /// of the player's class.
    #[allow(clippy::too_many_arguments)]
    pub fn migration_probability(
        &self,
        game: &CongestionGame,
        state: &State,
        params: &GameParams,
        from: StrategyId,
        to: StrategyId,
        class_strategies: usize,
        class_players: u64,
    ) -> f64 {
        if from == to || class_players == 0 {
            return 0.0;
        }
        let l_from = state.strategy_latency(game, from);
        if l_from <= 0.0 {
            return 0.0;
        }
        let l_to = state.latency_after_move(game, from, to);
        let gain = l_from - l_to;
        if gain <= 0.0 {
            return 0.0;
        }
        let beta = params.beta.max(f64::MIN_POSITIVE);
        let scale = class_strategies as f64 * params.ell_min / (beta * class_players as f64);
        (self.lambda * scale * gain / l_from).clamp(0.0, 1.0)
    }
}

/// A revision protocol: imitation, exploration, or a random mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Protocol {
    /// Pure imitation (Protocol 1).
    Imitation(ImitationProtocol),
    /// Pure exploration (Protocol 2).
    Exploration(ExplorationProtocol),
    /// With probability `explore_prob` a player explores, otherwise it
    /// imitates (Section 6, option 3; the paper suggests `1/2`).
    Combined {
        /// The imitation component.
        imitation: ImitationProtocol,
        /// The exploration component.
        exploration: ExplorationProtocol,
        /// Probability of exploring in a given round.
        explore_prob: f64,
    },
}

impl Protocol {
    /// The 50/50 combined protocol from Section 6 with both `λ = 1/4`.
    pub fn combined_default() -> Protocol {
        Protocol::Combined {
            imitation: ImitationProtocol::paper_default(),
            exploration: ExplorationProtocol::paper_default(),
            explore_prob: 0.5,
        }
    }

    /// Build a combined protocol with an explicit mixture probability.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError::InvalidParameter`] if
    /// `explore_prob ∉ [0, 1]`.
    pub fn combined(
        imitation: ImitationProtocol,
        exploration: ExplorationProtocol,
        explore_prob: f64,
    ) -> Result<Protocol, DynamicsError> {
        if !(0.0..=1.0).contains(&explore_prob) || !explore_prob.is_finite() {
            return Err(DynamicsError::InvalidParameter {
                name: "explore_prob",
                message: "must be a finite value in [0, 1]",
            });
        }
        Ok(Protocol::Combined { imitation, exploration, explore_prob })
    }

    /// The imitation component, if any.
    pub fn imitation(&self) -> Option<&ImitationProtocol> {
        match self {
            Protocol::Imitation(p) => Some(p),
            Protocol::Combined { imitation, .. } => Some(imitation),
            Protocol::Exploration(_) => None,
        }
    }

    /// The exploration component, if any.
    pub fn exploration(&self) -> Option<&ExplorationProtocol> {
        match self {
            Protocol::Exploration(p) => Some(p),
            Protocol::Combined { exploration, .. } => Some(exploration),
            Protocol::Imitation(_) => None,
        }
    }

    /// The gain threshold used by the imitation-stability stop condition:
    /// the imitation component's threshold, or 0 for pure exploration.
    pub fn stability_threshold(&self, params: &GameParams) -> f64 {
        self.imitation().map_or(0.0, |p| p.gain_threshold(params))
    }

    /// Whether this protocol can discover strategies outside the support.
    pub fn is_innovative(&self) -> bool {
        match self {
            Protocol::Imitation(p) => p.virtual_agents(),
            Protocol::Exploration(_) => true,
            Protocol::Combined { explore_prob, .. } => *explore_prob > 0.0,
        }
    }
}

impl From<ImitationProtocol> for Protocol {
    fn from(p: ImitationProtocol) -> Protocol {
        Protocol::Imitation(p)
    }
}

impl From<ExplorationProtocol> for Protocol {
    fn from(p: ExplorationProtocol) -> Protocol {
        Protocol::Exploration(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_model::{Affine, CongestionGame, Monomial};

    fn sid(i: u32) -> StrategyId {
        StrategyId::new(i)
    }

    #[test]
    fn lambda_validation() {
        assert!(ImitationProtocol::new(0.0).is_err());
        assert!(ImitationProtocol::new(1.5).is_err());
        assert!(ImitationProtocol::new(f64::NAN).is_err());
        assert!(ImitationProtocol::new(1.0).is_ok());
        assert!(ExplorationProtocol::new(-0.5).is_err());
        assert!(Protocol::combined(
            ImitationProtocol::paper_default(),
            ExplorationProtocol::paper_default(),
            1.5
        )
        .is_err());
    }

    #[test]
    fn imitation_probability_matches_formula() {
        // Two links x and 2x with counts (6, 2) over 8 players: ℓ_P = 6,
        // ℓ_Q(+1) = 2·3 = 6 → gain 0 ⇒ no move. Counts (7,1): ℓ_P = 7,
        // ℓ_Q(+1) = 4 → gain 3.
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(2.0).into()],
            8,
        )
        .unwrap();
        let params = game.params(); // d = 1, ν = 2
        let state = congames_model::State::from_counts(&game, vec![7, 1]).unwrap();
        let p = ImitationProtocol::new(0.5).unwrap();
        let mu = p.migration_probability(&game, &state, &params, sid(0), sid(1));
        // λ/d · gain/ℓ_P = 0.5 · 3/7
        assert!((mu - 0.5 * 3.0 / 7.0).abs() < 1e-12);
        // Below the ν threshold nothing moves: gain must exceed ν = 2.
        let state2 = congames_model::State::from_counts(&game, vec![6, 2]).unwrap();
        assert_eq!(p.migration_probability(&game, &state2, &params, sid(0), sid(1)), 0.0);
    }

    #[test]
    fn nu_rule_none_lowers_threshold() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
            6,
        )
        .unwrap();
        let params = game.params(); // ν = 1
                                    // counts (4, 2): gain = 4 − 3 = 1; threshold ν = 1 blocks it.
        let state = congames_model::State::from_counts(&game, vec![4, 2]).unwrap();
        let strict = ImitationProtocol::new(0.5).unwrap();
        assert_eq!(strict.migration_probability(&game, &state, &params, sid(0), sid(1)), 0.0);
        let relaxed = strict.with_nu_rule(NuRule::None);
        assert!(relaxed.migration_probability(&game, &state, &params, sid(0), sid(1)) > 0.0);
    }

    #[test]
    fn elasticity_damping_divides_by_d() {
        let game = CongestionGame::singleton(
            vec![Monomial::new(1.0, 4).into(), Monomial::new(1.0, 4).into()],
            10,
        )
        .unwrap();
        let params = game.params(); // d = 4
        let state = congames_model::State::from_counts(&game, vec![9, 1]).unwrap();
        let damped = ImitationProtocol::new(1.0).unwrap();
        let undamped = damped.with_damping(Damping::None);
        let m_d = damped.migration_probability(&game, &state, &params, sid(0), sid(1));
        let m_u = undamped.migration_probability(&game, &state, &params, sid(0), sid(1));
        assert!((m_u / m_d - 4.0).abs() < 1e-9);
        let fixed = damped.with_damping(Damping::Fixed(2.0));
        let m_f = fixed.migration_probability(&game, &state, &params, sid(0), sid(1));
        assert!((m_u / m_f - 2.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_are_clamped() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(100.0).into(), Affine::linear(0.001).into()],
            4,
        )
        .unwrap();
        let params = game.params();
        let state = congames_model::State::from_counts(&game, vec![3, 1]).unwrap();
        let p = ImitationProtocol::new(1.0).unwrap().with_damping(Damping::None);
        let mu = p.migration_probability(&game, &state, &params, sid(0), sid(1));
        assert!((0.0..=1.0).contains(&mu));
    }

    #[test]
    fn exploration_probability_scales_with_class_size() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
            100,
        )
        .unwrap();
        let params = game.params();
        let state = congames_model::State::from_counts(&game, vec![100, 0]).unwrap();
        let p = ExplorationProtocol::new(1.0).unwrap();
        let mu_small = p.migration_probability(&game, &state, &params, sid(0), sid(1), 2, 100);
        let mu_large = p.migration_probability(&game, &state, &params, sid(0), sid(1), 2, 10_000);
        assert!(mu_small > 0.0);
        // More players ⇒ heavier damping (per capita).
        assert!(mu_large < mu_small);
    }

    #[test]
    fn protocol_accessors() {
        let imit = ImitationProtocol::paper_default();
        let expl = ExplorationProtocol::paper_default();
        let c = Protocol::combined(imit, expl, 0.5).unwrap();
        assert!(c.imitation().is_some());
        assert!(c.exploration().is_some());
        assert!(c.is_innovative());
        let pi: Protocol = imit.into();
        assert!(!pi.is_innovative());
        assert!(pi.exploration().is_none());
        let pv: Protocol = imit.with_virtual_agents(true).into();
        assert!(pv.is_innovative());
        let pe: Protocol = expl.into();
        assert!(pe.is_innovative());
        assert!(pe.imitation().is_none());
    }
}
