//! Between-rounds game mutation hooks — the seam nonstationary scenarios
//! plug into.
//!
//! A [`RoundHook`] is polled by `Simulation::run_observed` before every
//! round: when its [`next_fire`](RoundHook::next_fire) round comes up, the
//! hook gets `&mut` access to the game and the state, mutates them (latency
//! drift, arrivals/departures, demand changes), and the simulation rebuilds
//! every derived structure — protocol parameters, class offsets, the
//! player array, the state's latency cache and support index, and the
//! potential — before the next round runs. The concrete scheduled-event
//! implementation lives in the `congames-scenario` crate; keeping the
//! trait here lets the core engine stay independent of it.
//!
//! # Determinism contract
//!
//! Hooks must be **RNG-free** and a pure function of the round index (plus
//! their own construction): every replica of an ensemble replays the same
//! schedule, counter-mode draw streams are addressed purely by
//! `(trial, round, site, index)`, and the bit-identity guarantees (thread
//! counts 1/2/8, shard/merge, both RNG backends) all assume a firing hook
//! changes the *state the kernels see*, never the randomness they consume.

use congames_model::{CongestionGame, State};

use crate::error::DynamicsError;

/// A between-rounds mutation hook (see the module docs above).
///
/// Attached via `Simulation::with_hook` (which clones the game into the
/// simulation so the hook can mutate it) or, for ensembles, via
/// `Ensemble::with_round_hook` (one fresh hook per trial). An attached
/// hook with no due event costs one `Option` compare per round, so the
/// no-schedule fast path keeps its historical performance — and its
/// fixed-seed stream pins — unchanged.
pub trait RoundHook: Send + std::fmt::Debug {
    /// The next round index at which [`RoundHook::fire`] wants to run, or
    /// `None` when the hook is exhausted. Must be non-decreasing across
    /// [`RoundHook::fire`] calls (a hook that keeps reporting the current
    /// round would wedge the run loop; the engine errors instead).
    fn next_fire(&self) -> Option<u64>;

    /// Apply every mutation due at round `round` to `game`/`state`.
    /// Returns `true` if anything changed — the round's records are then
    /// marked as shock rounds ([`RoundRecord::shock`](crate::RoundRecord)).
    ///
    /// Implementations must leave `game` and `state` mutually consistent
    /// (each class's player count equal to the sum of its strategy counts);
    /// the simulation re-validates after every firing and surfaces
    /// violations as errors. State mutations should route through
    /// `State::invalidate_caches_for_game_change` (the population mutators
    /// `State::add_players` / `State::remove_players` do so internally) —
    /// the engine additionally forces a full cache rebuild after any
    /// change, so a forgotten invalidation inside the hook cannot leak
    /// stale latencies into the dynamics.
    ///
    /// # Errors
    ///
    /// A failing hook aborts the run with its error; the simulation may be
    /// left mid-mutation and must not be stepped further.
    fn fire(
        &mut self,
        round: u64,
        game: &mut CongestionGame,
        state: &mut State,
    ) -> Result<bool, DynamicsError>;
}
