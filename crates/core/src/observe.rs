//! Streaming observation of simulation runs.
//!
//! [`Observer`] is the read side of the recording layer: `Simulation::run`
//! and `Simulation::run_observed` feed one [`RoundRecord`] per recorded
//! round (cadence and extra metrics come from the simulation's
//! [`RecordConfig`](crate::RecordConfig)) into whatever observer the caller
//! provides. [`Trajectory`] — the materialized time series the library
//! started with — is just one stock observer; streaming consumers
//! (ensemble reducers, live dashboards, on-line statistics) implement the
//! trait instead of collecting records first.
//!
//! The companion write side is [`Reducer`](crate::Reducer): an ensemble
//! folds every trial's [`Observer::Output`] into a reducer without ever
//! materializing a per-trial collection (see `Ensemble::run_reduced`).

use crate::stopping::RunSummary;
use crate::trajectory::{RoundRecord, Trajectory};

/// A streaming consumer of per-round metrics.
///
/// `Simulation::run_observed` calls [`observe`](Observer::observe) once per
/// recorded round, in round order, and the caller then converts the
/// observer into its per-run output with [`finish`](Observer::finish). The
/// records an observer sees are exactly those a [`Trajectory`] would have
/// stored: the record of the round the run starts in, one record per
/// cadence round, and the record of the round the stop condition fires in
/// (deduplicated when it is on the cadence anyway). With recording disabled
/// (`RecordConfig::disabled()`), `observe` is never called — but `finish`
/// still receives the final [`RunSummary`], so summary-only observers such
/// as [`FinalSummary`] work without any recording overhead.
///
/// # Example
///
/// ```
/// use congames_dynamics::{
///     ImitationProtocol, Observer, RecordConfig, RoundRecord, RunSummary, Simulation, StopSpec,
/// };
/// use congames_model::{Affine, CongestionGame, State};
/// use rand::SeedableRng;
///
/// /// Observes the minimum potential seen along the run.
/// struct MinPotential(f64);
/// impl Observer for MinPotential {
///     type Output = f64;
///     fn observe(&mut self, record: &RoundRecord) {
///         self.0 = self.0.min(record.potential);
///     }
///     fn finish(self, _summary: &RunSummary) -> f64 {
///         self.0
///     }
/// }
///
/// let game = CongestionGame::singleton(
///     vec![Affine::linear(1.0).into(), Affine::linear(2.0).into()],
///     100,
/// )?;
/// let start = State::from_counts(&game, vec![90, 10])?;
/// let mut sim = Simulation::new(&game, ImitationProtocol::paper_default().into(), start)?
///     .with_recording(RecordConfig::every_round());
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let mut observer = MinPotential(f64::INFINITY);
/// let summary = sim.run_observed(&StopSpec::max_rounds(50), &mut rng, &mut observer)?;
/// let min_potential = observer.finish(&summary);
/// assert!(min_potential <= summary.potential);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait Observer {
    /// What one observed run turns into (fed to a `Reducer` by ensembles).
    type Output;

    /// Called once per recorded round, in round order.
    fn observe(&mut self, record: &RoundRecord);

    /// Convert the observer into its per-run output once the run stopped.
    fn finish(self, summary: &RunSummary) -> Self::Output;
}

/// The no-op observer: ignores every record.
impl Observer for () {
    type Output = ();

    fn observe(&mut self, _record: &RoundRecord) {}

    fn finish(self, _summary: &RunSummary) -> Self::Output {}
}

/// [`Trajectory`] is the stock *materializing* observer: it stores every
/// record it sees, reproducing the classic `RunOutcome::trajectory`.
impl Observer for Trajectory {
    type Output = Trajectory;

    fn observe(&mut self, record: &RoundRecord) {
        self.push(*record);
    }

    fn finish(self, _summary: &RunSummary) -> Trajectory {
        self
    }
}

/// Stock observer that ignores per-round records and yields the run's
/// [`RunSummary`] — the cheapest observer for convergence statistics
/// (pair it with [`ConvergenceHistogram`](crate::ConvergenceHistogram) and
/// keep recording disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FinalSummary;

impl Observer for FinalSummary {
    type Output = RunSummary;

    fn observe(&mut self, _record: &RoundRecord) {}

    fn finish(self, summary: &RunSummary) -> RunSummary {
        *summary
    }
}

/// Stock observer that collects the run's records into a `Vec` — the
/// per-trial input of [`PerRoundStats`](crate::PerRoundStats). Unlike a
/// full [`Trajectory`]-per-trial ensemble, the vector lives only until the
/// reducer absorbs it, so an ensemble's live memory stays
/// `O(threads · recorded_rounds)` instead of `O(trials · rounds)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordSeries {
    records: Vec<RoundRecord>,
}

impl RecordSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for RecordSeries {
    type Output = Vec<RoundRecord>;

    fn observe(&mut self, record: &RoundRecord) {
        self.records.push(*record);
    }

    fn finish(self, _summary: &RunSummary) -> Vec<RoundRecord> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stopping::StopReason;

    fn rec(round: u64, potential: f64) -> RoundRecord {
        RoundRecord {
            round,
            potential,
            l_av: 1.0,
            l_av_plus: 1.0,
            max_latency: 1.0,
            migrations: 0,
            support: 1,
            unsatisfied_fraction: None,
            shock: false,
        }
    }

    fn summary() -> RunSummary {
        RunSummary { reason: StopReason::MaxRounds, rounds: 2, potential: 5.0 }
    }

    #[test]
    fn trajectory_is_an_observer() {
        let mut t = Trajectory::new();
        t.observe(&rec(0, 10.0));
        t.observe(&rec(1, 8.0));
        let t = t.finish(&summary());
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[1].round, 1);
    }

    #[test]
    fn final_summary_passes_the_summary_through() {
        let mut o = FinalSummary;
        o.observe(&rec(0, 10.0));
        let s = o.finish(&summary());
        assert_eq!(s.rounds, 2);
        assert_eq!(s.reason, StopReason::MaxRounds);
    }

    #[test]
    fn record_series_collects() {
        let mut o = RecordSeries::new();
        o.observe(&rec(0, 3.0));
        o.observe(&rec(1, 2.0));
        let v = o.finish(&summary());
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].potential, 3.0);
    }
}
