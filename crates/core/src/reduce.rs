//! Online (streaming) reduction of ensemble outputs.
//!
//! The paper's statistical claims — Lemma 2's expected potential drop per
//! round, Theorem 7's pseudopolynomial convergence time — are verified by
//! averaging over thousands of independent replicas. A 10⁵-trial sweep must
//! therefore reduce **online**: per-trial outputs are absorbed into small
//! accumulators as they finish and never materialize as an
//! `O(trials · rounds)` collection.
//!
//! [`Reducer`] is the fold: `identity()` spawns an empty accumulator,
//! `absorb(item)` folds one trial's output in, and `merge(other)` combines
//! two accumulators. `Ensemble::run_reduced` partitions trials into
//! fixed-size consecutive blocks, reduces each block by absorbing its
//! trials in order, and merges the block partials **in block order** — a
//! reduction tree that depends only on the trial count, never on the
//! thread count or schedule, so the result is bit-identical for 1, 2, or
//! 8 worker threads.
//!
//! Stock reducers:
//!
//! * [`Welford`] — numerically stable streaming mean/variance (merged with
//!   Chan's parallel formula).
//! * [`MinMax`] — envelope of the extremes.
//! * [`QuantileSketch`] — a counted, log-bucketed quantile summary with
//!   bounded relative error and *exact* (integer) merges; no reservoir,
//!   no stored samples. Non-finite samples are tallied, not fatal:
//!   quantiles are taken over the finite mass.
//! * [`ScalarStats`] — the three above bundled for one `f64` stream.
//! * [`PerRoundStats`] — per-round-index [`Welford`] + [`MinMax`] over the
//!   [`RoundRecord`] fields, the streamed replacement for averaging a pile
//!   of trajectories.
//! * [`ConvergenceHistogram`] — convergence-round histograms keyed by
//!   [`StopReason`].
//! * [`MapItem`] — adapts a reducer over `U` to items of type `T` via a
//!   projection `T → U`.
//! * `Vec<T>` and 2-/3-tuples of reducers for composition.
//!
//! # Wire format & versioning
//!
//! Every stock reducer partial (and the combinators above) also has a
//! **stable, versioned wire encoding** via the
//! [`WireReduce`](crate::wire::WireReduce) extension trait in
//! [`crate::wire`], so partials can be written by one process and merged
//! by another — the cross-process aggregation path `Ensemble::
//! run_reduced_shard` and the `congames shard`/`congames merge` CLI build
//! on. Because floating-point merges (Welford/Chan) are not bitwise
//! associative, the unit shipped over the wire is the **reduction-tree
//! leaf** — one partial per fixed 32-trial block — and the merger replays
//! [`merge_partials`] in global block order, reproducing the
//! single-process [`Ensemble::run_reduced`](crate::Ensemble::run_reduced)
//! result bit for bit. See the [`crate::wire`] module docs for the frame
//! layout, checksum, and versioning rules.

use std::collections::BTreeMap;

use crate::stopping::{RunSummary, StopReason};
use crate::trajectory::RoundRecord;

/// A streaming, mergeable accumulator (a monoid fold over trial outputs).
///
/// `identity()` must return an accumulator that absorbs items exactly like
/// a fresh one; `merge` must combine two accumulators as if their items
/// had been absorbed into one (floating-point reducers may round
/// differently between `absorb` chains and `merge` trees — that is fine,
/// because `Ensemble::run_reduced` fixes the tree shape independent of the
/// thread count, so any given reduction is still bit-reproducible).
///
/// # Example
///
/// ```
/// use congames_dynamics::{Reducer, Welford};
///
/// let mut a = Welford::new();
/// a.absorb(1.0);
/// a.absorb(2.0);
/// let mut b = a.identity(); // empty accumulator of the same shape
/// b.absorb(6.0);
/// a.merge(b);
/// assert_eq!(a.count(), 3);
/// assert!((a.mean() - 3.0).abs() < 1e-12);
/// ```
pub trait Reducer: Sized {
    /// The per-trial output type this reducer folds over.
    type Item;

    /// A fresh, empty accumulator with the same configuration as `self`.
    fn identity(&self) -> Self;

    /// Fold one trial output into the accumulator.
    fn absorb(&mut self, item: Self::Item);

    /// Combine another accumulator (absorbed from a *later* consecutive
    /// range of trials) into this one.
    fn merge(&mut self, other: Self);
}

/// Merge `partials` into `acc` one by one, **in iteration order** (a
/// left-deep merge chain).
///
/// This is exactly the merge sequence `Ensemble::run_reduced` applies to
/// its block partials, so feeding the same leaves in the same order —
/// whether they came from this process or were decoded from shard files —
/// reproduces the single-process reduction bit for bit. Merging into a
/// fresh identity accumulator is a bitwise no-op for every stock reducer
/// (`Welford` copies, envelopes take the other side, integer tallies add
/// to zero), which is what lets a merger start from `identity()` and still
/// match a `run_reduced` that started from the same.
pub fn merge_partials<R: Reducer>(mut acc: R, partials: impl IntoIterator<Item = R>) -> R {
    for partial in partials {
        acc.merge(partial);
    }
    acc
}

/// The materializing fallback: collects every item, preserving trial
/// order (block partials are merged in trial order).
impl<T> Reducer for Vec<T> {
    type Item = T;

    fn identity(&self) -> Self {
        Vec::new()
    }

    fn absorb(&mut self, item: T) {
        self.push(item);
    }

    fn merge(&mut self, mut other: Self) {
        self.append(&mut other);
    }
}

/// Reduce one item stream with two reducers at once.
impl<T: Clone, A: Reducer<Item = T>, B: Reducer<Item = T>> Reducer for (A, B) {
    type Item = T;

    fn identity(&self) -> Self {
        (self.0.identity(), self.1.identity())
    }

    fn absorb(&mut self, item: T) {
        self.0.absorb(item.clone());
        self.1.absorb(item);
    }

    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

/// Reduce one item stream with three reducers at once.
impl<T: Clone, A: Reducer<Item = T>, B: Reducer<Item = T>, C: Reducer<Item = T>> Reducer
    for (A, B, C)
{
    type Item = T;

    fn identity(&self) -> Self {
        (self.0.identity(), self.1.identity(), self.2.identity())
    }

    fn absorb(&mut self, item: T) {
        self.0.absorb(item.clone());
        self.1.absorb(item.clone());
        self.2.absorb(item);
    }

    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
        self.2.merge(other.2);
    }
}

/// Adapt a reducer over `U` to a stream of `T` via a projection `T → U`.
///
/// # Example
///
/// ```
/// use congames_dynamics::{MapItem, Reducer, RunSummary, Welford};
///
/// // Average convergence rounds straight off `RunSummary` items.
/// let mut rounds = MapItem::new(|s: RunSummary| s.rounds as f64, Welford::new());
/// # let summary = RunSummary {
/// #     reason: congames_dynamics::StopReason::MaxRounds, rounds: 12, potential: 0.0,
/// # };
/// rounds.absorb(summary);
/// assert_eq!(rounds.inner().mean(), 12.0);
/// ```
pub struct MapItem<T, F, R> {
    f: F,
    inner: R,
    /// `fn(T)` keeps the marker `Send + Sync` whatever `T` is.
    _item: std::marker::PhantomData<fn(T)>,
}

impl<T, F, R> MapItem<T, F, R> {
    /// Reduce `f(item)` with `inner`.
    pub fn new(f: F, inner: R) -> Self {
        MapItem { f, inner, _item: std::marker::PhantomData }
    }

    /// The wrapped reducer.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The projection, for rebuilding a `MapItem` around a wire-decoded
    /// inner reducer (the projection itself is configuration, not data —
    /// it never rides the wire).
    pub(crate) fn project_fn(&self) -> &F {
        &self.f
    }

    /// Unwrap the inner reducer.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<T, F, R: std::fmt::Debug> std::fmt::Debug for MapItem<T, F, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapItem").field("inner", &self.inner).finish_non_exhaustive()
    }
}

/// Equality compares the wrapped reducer state only — the projection is
/// code, not data (and two `MapItem`s of the same type share it anyway).
impl<T, F, R: PartialEq> PartialEq for MapItem<T, F, R> {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<T, F: Clone, R: Clone> Clone for MapItem<T, F, R> {
    fn clone(&self) -> Self {
        MapItem { f: self.f.clone(), inner: self.inner.clone(), _item: std::marker::PhantomData }
    }
}

impl<T, F: Fn(T) -> R::Item + Clone, R: Reducer> Reducer for MapItem<T, F, R> {
    type Item = T;

    fn identity(&self) -> Self {
        MapItem { f: self.f.clone(), inner: self.inner.identity(), _item: std::marker::PhantomData }
    }

    fn absorb(&mut self, item: T) {
        self.inner.absorb((self.f)(item));
    }

    fn merge(&mut self, other: Self) {
        self.inner.merge(other.inner);
    }
}

/// Streaming mean and variance (Welford's algorithm; merged with Chan's
/// parallel formula).
///
/// The statistics of an empty accumulator are `NaN`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of absorbed samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Bessel-corrected sample variance (`NaN` when empty, 0 for a
    /// singleton).
    pub fn variance(&self) -> f64 {
        match self.count {
            0 => f64::NAN,
            1 => 0.0,
            n => self.m2 / (n - 1) as f64,
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        self.sd() / (self.count as f64).sqrt()
    }

    /// Normal-approximation 95% confidence half-width for the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }

    /// Absorb one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// The raw accumulator state `(count, mean, m2)` — the exact fields
    /// the wire encoding serializes.
    pub(crate) fn raw_parts(&self) -> (u64, f64, f64) {
        (self.count, self.mean, self.m2)
    }

    /// Rebuild an accumulator from wire-decoded raw parts.
    pub(crate) fn from_raw_parts(count: u64, mean: f64, m2: f64) -> Self {
        Welford { count, mean, m2 }
    }

    /// Merge another accumulator (Chan et al.'s pairwise update).
    pub fn merge_with(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let (n1, n2) = (self.count as f64, other.count as f64);
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * (n2 / total);
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

impl Reducer for Welford {
    type Item = f64;

    fn identity(&self) -> Self {
        Welford::new()
    }

    fn absorb(&mut self, item: f64) {
        self.push(item);
    }

    fn merge(&mut self, other: Self) {
        self.merge_with(&other);
    }
}

/// Streaming min/max envelope. Empty accumulators report `+∞`/`−∞`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    min: f64,
    max: f64,
}

impl Default for MinMax {
    fn default() -> Self {
        MinMax { min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl MinMax {
    /// An empty envelope.
    pub fn new() -> Self {
        Self::default()
    }

    /// Smallest absorbed value (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest absorbed value (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Whether nothing was absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.min > self.max
    }

    /// Absorb one sample.
    pub fn push(&mut self, x: f64) {
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Rebuild an envelope from wire-decoded bounds.
    pub(crate) fn from_raw_parts(min: f64, max: f64) -> Self {
        MinMax { min, max }
    }
}

impl Reducer for MinMax {
    type Item = f64;

    fn identity(&self) -> Self {
        MinMax::new()
    }

    fn absorb(&mut self, item: f64) {
        self.push(item);
    }

    fn merge(&mut self, other: Self) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A counted, log-bucketed streaming quantile summary (DDSketch-style).
///
/// Values are counted in geometric buckets of relative width `α`
/// (default 1%): bucket `i` covers `(γ^(i−1), γ^i]` with
/// `γ = (1+α)/(1−α)`, with mirrored buckets for negative values and an
/// exact bucket for zero. A reported quantile is therefore within relative
/// error `α` of the true sample quantile. Memory is `O(log(max/min)/α)` —
/// independent of the sample count — and **merges are exact** (integer
/// bucket additions), so merging is truly associative, unlike reservoir
/// sampling (which this replaces) or floating-point moment merges.
///
/// Non-finite samples (`NaN`, `±∞`) never abort a sweep: they are counted
/// in a dedicated, merge-compatible [`non_finite`](QuantileSketch::non_finite)
/// tally and excluded from the buckets, the envelope, and the finite
/// [`count`](QuantileSketch::count), so quantiles are always taken over
/// the finite mass.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    /// `ln γ`, precomputed.
    ln_gamma: f64,
    count: u64,
    zero: u64,
    /// Samples rejected for being `NaN` or infinite.
    non_finite: u64,
    /// Counts of positive values, keyed by `⌈ln(x)/ln γ⌉`.
    pos: BTreeMap<i32, u64>,
    /// Counts of negative values, keyed by `⌈ln(−x)/ln γ⌉`.
    neg: BTreeMap<i32, u64>,
    envelope: MinMax,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(0.01)
    }
}

impl QuantileSketch {
    /// A sketch with relative accuracy `alpha` (`0 < alpha < 1`).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "relative accuracy must be in (0, 1)");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            ln_gamma: gamma.ln(),
            count: 0,
            zero: 0,
            non_finite: 0,
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            envelope: MinMax::new(),
        }
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of absorbed **finite** samples (the mass quantiles are taken
    /// over). Non-finite samples are tallied separately in
    /// [`non_finite`](QuantileSketch::non_finite).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of absorbed non-finite (`NaN` or `±∞`) samples. One bad
    /// latency in a 10⁵-trial sweep must not abort the run: such samples
    /// are counted here (the field merges exactly, like the buckets) and
    /// excluded from the quantile mass and the envelope.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Exact smallest absorbed value (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.envelope.min()
    }

    /// Exact largest absorbed value (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.envelope.max()
    }

    fn bucket(&self, magnitude: f64) -> i32 {
        // ⌈ln(x)/ln γ⌉, clamped to i32; subnormals land in deep negative
        // buckets, which the BTreeMap handles like any other key.
        (magnitude.ln() / self.ln_gamma).ceil().clamp(i32::MIN as f64, i32::MAX as f64) as i32
    }

    fn bucket_value(&self, index: i32) -> f64 {
        // Midpoint (harmonic-ish) representative of (γ^(i−1), γ^i]:
        // 2γ^i / (γ + 1) is within α of every value in the bucket.
        let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
        2.0 * (self.ln_gamma * index as f64).exp() / (gamma + 1.0)
    }

    /// Absorb one sample. Non-finite values are counted in
    /// [`non_finite`](QuantileSketch::non_finite) and otherwise ignored —
    /// quantiles stay defined over the finite mass.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        self.envelope.push(x);
        if x == 0.0 {
            self.zero += 1;
        } else if x > 0.0 {
            *self.pos.entry(self.bucket(x)).or_insert(0) += 1;
        } else {
            *self.neg.entry(self.bucket(-x)).or_insert(0) += 1;
        }
    }

    /// The `q`-quantile for `q ∈ [0, 1]` (`NaN` when empty), within
    /// relative error [`alpha`](QuantileSketch::alpha) of the exact sample
    /// quantile; the result is clamped into `[min, max]`. The boundary
    /// quantiles are exact: `quantile(0.0)` is [`min`](QuantileSketch::min)
    /// and `quantile(1.0)` is [`max`](QuantileSketch::max) — the envelope
    /// tracks them precisely, so no bucket representative is ever returned
    /// for the extremes.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return f64::NAN;
        }
        // Serve the extremes from the exact envelope: rank 0 walks into
        // the minimum's *bucket* (a representative up to α off, and for a
        // lone negative bucket the clamp may even answer with max), and
        // the top rank can fall through to `max()` only when the largest
        // sample is positive.
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max();
        }
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        // Ascending value order: most-negative first (descending |x|
        // bucket index), then zero, then positives ascending.
        for (&i, &c) in self.neg.iter().rev() {
            seen += c;
            if seen > rank {
                return self.clamp(-self.bucket_value(i));
            }
        }
        seen += self.zero;
        if seen > rank {
            return 0.0f64.clamp(self.min(), self.max());
        }
        for (&i, &c) in self.pos.iter() {
            seen += c;
            if seen > rank {
                return self.clamp(self.bucket_value(i));
            }
        }
        self.max()
    }

    /// Median shorthand.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.min(), self.max())
    }

    /// The raw sketch state the wire encoding serializes: counts, the
    /// non-finite tally, the (sorted) bucket maps, and the envelope.
    #[allow(clippy::type_complexity)]
    pub(crate) fn raw_parts(
        &self,
    ) -> (u64, u64, u64, &BTreeMap<i32, u64>, &BTreeMap<i32, u64>, &MinMax) {
        (self.count, self.zero, self.non_finite, &self.pos, &self.neg, &self.envelope)
    }

    /// Rebuild a sketch from wire-decoded raw parts. `alpha` must already
    /// be validated into `(0, 1)` by the decoder.
    pub(crate) fn from_raw_parts(
        alpha: f64,
        count: u64,
        zero: u64,
        non_finite: u64,
        pos: BTreeMap<i32, u64>,
        neg: BTreeMap<i32, u64>,
        envelope: MinMax,
    ) -> Self {
        let mut s = QuantileSketch::new(alpha);
        s.count = count;
        s.zero = zero;
        s.non_finite = non_finite;
        s.pos = pos;
        s.neg = neg;
        s.envelope = envelope;
        s
    }
}

impl Reducer for QuantileSketch {
    type Item = f64;

    fn identity(&self) -> Self {
        QuantileSketch::new(self.alpha)
    }

    fn absorb(&mut self, item: f64) {
        self.push(item);
    }

    /// # Panics
    ///
    /// Panics if the sketches were configured with different accuracies.
    fn merge(&mut self, other: Self) {
        assert!(self.alpha == other.alpha, "cannot merge quantile sketches of different accuracy");
        self.count += other.count;
        self.zero += other.zero;
        self.non_finite += other.non_finite;
        for (i, c) in other.pos {
            *self.pos.entry(i).or_insert(0) += c;
        }
        for (i, c) in other.neg {
            *self.neg.entry(i).or_insert(0) += c;
        }
        self.envelope.merge(other.envelope);
    }
}

/// [`Welford`], [`MinMax`], and a [`QuantileSketch`] bundled for one `f64`
/// stream — everything a scalar ensemble statistic needs, in `O(1)` memory
/// per statistic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScalarStats {
    moments: Welford,
    /// The sketch also owns the exact min/max envelope.
    sketch: QuantileSketch,
}

impl ScalarStats {
    /// An empty accumulator with the default 1% quantile accuracy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of absorbed **finite** samples; non-finite samples are
    /// tallied in [`non_finite`](ScalarStats::non_finite) instead.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Number of absorbed non-finite (`NaN` or `±∞`) samples. They are
    /// excluded from every statistic (a single `NaN` would otherwise
    /// poison the mean of a 10⁵-trial sweep) and surfaced here so callers
    /// can report them.
    pub fn non_finite(&self) -> u64 {
        self.sketch.non_finite()
    }

    /// Sample mean over the finite samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Bessel-corrected sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.moments.sd()
    }

    /// Normal-approximation 95% confidence half-width for the mean.
    pub fn ci95(&self) -> f64 {
        self.moments.ci95()
    }

    /// Exact minimum (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.sketch.min()
    }

    /// Exact maximum (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.sketch.max()
    }

    /// Approximate `q`-quantile (see [`QuantileSketch::quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        self.sketch.quantile(q)
    }

    /// The underlying moment accumulator.
    pub fn moments(&self) -> &Welford {
        &self.moments
    }

    /// The underlying quantile sketch (which also owns the envelope).
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Rebuild the bundle from wire-decoded components.
    pub(crate) fn from_raw_parts(moments: Welford, sketch: QuantileSketch) -> Self {
        ScalarStats { moments, sketch }
    }
}

impl Reducer for ScalarStats {
    type Item = f64;

    fn identity(&self) -> Self {
        ScalarStats { moments: Welford::new(), sketch: self.sketch.identity() }
    }

    fn absorb(&mut self, item: f64) {
        // The sketch counts a non-finite item in its `non_finite` tally;
        // keep the moments in lockstep with the finite mass so `mean`
        // stays meaningful (and `count` consistent) whatever arrives.
        if item.is_finite() {
            self.moments.push(item);
        }
        self.sketch.push(item);
    }

    fn merge(&mut self, other: Self) {
        self.moments.merge(other.moments);
        self.sketch.merge(other.sketch);
    }
}

/// Ensemble statistics of one recorded round index: a [`Welford`] per
/// [`RoundRecord`] field plus min/max envelopes for the headline fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundIndexStats {
    /// The round numbers that landed at this index (all identical when
    /// every trial records on a common cadence from round 0).
    pub round: Welford,
    /// Rosenthal potential `Φ`.
    pub potential: Welford,
    /// Average latency `L_av`.
    pub l_av: Welford,
    /// Average ex-post latency `L+_av`.
    pub l_av_plus: Welford,
    /// Maximum latency of a used strategy.
    pub max_latency: Welford,
    /// Players migrating in the round ending here.
    pub migrations: Welford,
    /// Number of strategies in use.
    pub support: Welford,
    /// Unsatisfied fraction; only trials that recorded it count.
    pub unsatisfied_fraction: Welford,
    /// Potential envelope across trials.
    pub potential_env: MinMax,
    /// Average-latency envelope across trials.
    pub l_av_env: MinMax,
    /// Migration-count envelope across trials.
    pub migrations_env: MinMax,
}

impl RoundIndexStats {
    fn push(&mut self, r: &RoundRecord) {
        self.round.push(r.round as f64);
        self.potential.push(r.potential);
        self.l_av.push(r.l_av);
        self.l_av_plus.push(r.l_av_plus);
        self.max_latency.push(r.max_latency);
        self.migrations.push(r.migrations as f64);
        self.support.push(r.support as f64);
        if let Some(u) = r.unsatisfied_fraction {
            self.unsatisfied_fraction.push(u);
        }
        self.potential_env.push(r.potential);
        self.l_av_env.push(r.l_av);
        self.migrations_env.push(r.migrations as f64);
    }

    fn merge_with(&mut self, other: Self) {
        self.round.merge(other.round);
        self.potential.merge(other.potential);
        self.l_av.merge(other.l_av);
        self.l_av_plus.merge(other.l_av_plus);
        self.max_latency.merge(other.max_latency);
        self.migrations.merge(other.migrations);
        self.support.merge(other.support);
        self.unsatisfied_fraction.merge(other.unsatisfied_fraction);
        self.potential_env.merge(other.potential_env);
        self.l_av_env.merge(other.l_av_env);
        self.migrations_env.merge(other.migrations_env);
    }
}

/// Per-round-index ensemble statistics: the streamed replacement for
/// "collect every trajectory, then average".
///
/// Each absorbed item is one trial's recorded series (the output of a
/// [`RecordSeries`](crate::RecordSeries) observer); record `i` of every
/// trial lands in [`RoundIndexStats`] `i`. Trials that stop early simply
/// contribute to fewer indices — the per-index [`Welford::count`] says how
/// many trials reached that index. Indices align across trials when all
/// trials record on the same cadence from the same starting round (the
/// ensemble default). Caveat for `every > 1`: each trial's forced
/// stop-round record lands at its series' *last* index, so any index an
/// early-stopping trial ends at mixes that trial's stop round with other
/// trials' cadence round. Filter off-cadence records before absorbing
/// (e.g. via [`MapItem`] with `records.retain(|r| r.round % every == 0)`,
/// as the CLI's `--reduce mean` does) when every index must average one
/// exact round; [`RoundIndexStats::round`] exposes the blend otherwise.
///
/// Memory is `O(recorded_rounds)`, independent of the trial count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerRoundStats {
    rounds: Vec<RoundIndexStats>,
    trials: u64,
}

impl PerRoundStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of absorbed trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of round indices seen (the longest trial's record count).
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no trial was absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The statistics of every round index, in order.
    pub fn rounds(&self) -> &[RoundIndexStats] {
        &self.rounds
    }

    /// The statistics of round index `i`.
    pub fn get(&self, i: usize) -> Option<&RoundIndexStats> {
        self.rounds.get(i)
    }

    /// Rebuild the table from wire-decoded per-index statistics.
    pub(crate) fn from_raw_parts(trials: u64, rounds: Vec<RoundIndexStats>) -> Self {
        PerRoundStats { rounds, trials }
    }
}

impl Reducer for PerRoundStats {
    type Item = Vec<RoundRecord>;

    fn identity(&self) -> Self {
        PerRoundStats::new()
    }

    fn absorb(&mut self, item: Vec<RoundRecord>) {
        self.trials += 1;
        if self.rounds.len() < item.len() {
            self.rounds.resize(item.len(), RoundIndexStats::default());
        }
        for (slot, record) in self.rounds.iter_mut().zip(&item) {
            slot.push(record);
        }
    }

    fn merge(&mut self, other: Self) {
        self.trials += other.trials;
        if self.rounds.len() < other.rounds.len() {
            self.rounds.resize(other.rounds.len(), RoundIndexStats::default());
        }
        for (slot, theirs) in self.rounds.iter_mut().zip(other.rounds) {
            slot.merge_with(theirs);
        }
    }
}

/// Every [`StopReason`], in the order [`ConvergenceHistogram`] reports
/// them.
pub const STOP_REASONS: [StopReason; 5] = [
    StopReason::MaxRounds,
    StopReason::ImitationStable,
    StopReason::ApproxEquilibrium,
    StopReason::NashEquilibrium,
    StopReason::PotentialReached,
];

fn reason_slot(reason: StopReason) -> usize {
    match reason {
        StopReason::MaxRounds => 0,
        StopReason::ImitationStable => 1,
        StopReason::ApproxEquilibrium => 2,
        StopReason::NashEquilibrium => 3,
        StopReason::PotentialReached => 4,
    }
}

/// Convergence-round statistics of the trials that stopped for one
/// [`StopReason`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReasonStats {
    /// Moments of the convergence round.
    pub rounds: Welford,
    /// Exact round envelope.
    pub envelope: MinMax,
    /// Power-of-two histogram: bucket 0 counts runs stopping at round 0,
    /// bucket `k ≥ 1` counts rounds in `[2^(k−1), 2^k)`.
    buckets: Vec<u64>,
}

impl ReasonStats {
    fn push(&mut self, rounds: u64) {
        self.rounds.push(rounds as f64);
        self.envelope.push(rounds as f64);
        let bucket = if rounds == 0 { 0 } else { 64 - rounds.leading_zeros() as usize };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    fn merge_with(&mut self, other: Self) {
        self.rounds.merge(other.rounds);
        self.envelope.merge(other.envelope);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets) {
            *mine += theirs;
        }
    }

    /// Trials that stopped for this reason.
    pub fn count(&self) -> u64 {
        self.rounds.count()
    }

    /// The power-of-two bucket counts (see [`ReasonStats::bucket_range`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuild per-reason statistics from wire-decoded components.
    pub(crate) fn from_raw_parts(rounds: Welford, envelope: MinMax, buckets: Vec<u64>) -> Self {
        ReasonStats { rounds, envelope, buckets }
    }

    /// The half-open round range `[lo, hi)` that bucket `k` counts. The
    /// top bucket (`k = 64`) saturates its upper bound at `u64::MAX`
    /// instead of overflowing the shift, and is the one bucket that also
    /// counts `hi` itself: it covers every round ≥ 2⁶³ inclusive.
    pub fn bucket_range(k: usize) -> (u64, u64) {
        match k {
            0 => (0, 1),
            1..=63 => (1 << (k - 1), 1 << k),
            _ => (1u64 << 63, u64::MAX),
        }
    }
}

/// Histogram of convergence rounds keyed by [`StopReason`] — which
/// conditions fired across an ensemble, and after how many rounds.
///
/// Absorbs [`RunSummary`] items (pair it with the
/// [`FinalSummary`](crate::FinalSummary) observer; recording can stay
/// disabled). All merges are exact, so this reducer is associative to the
/// bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceHistogram {
    per_reason: [ReasonStats; 5],
}

impl ConvergenceHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of absorbed trials.
    pub fn total(&self) -> u64 {
        self.per_reason.iter().map(ReasonStats::count).sum()
    }

    /// The statistics of one stop reason.
    pub fn reason(&self, reason: StopReason) -> &ReasonStats {
        &self.per_reason[reason_slot(reason)]
    }

    /// Iterate the non-empty `(reason, stats)` groups in
    /// [`STOP_REASONS`] order.
    pub fn observed(&self) -> impl Iterator<Item = (StopReason, &ReasonStats)> {
        STOP_REASONS
            .into_iter()
            .map(|r| (r, &self.per_reason[reason_slot(r)]))
            .filter(|(_, s)| s.count() > 0)
    }

    /// The per-reason slots in [`STOP_REASONS`] order (the wire layout).
    pub(crate) fn raw_parts(&self) -> &[ReasonStats; 5] {
        &self.per_reason
    }

    /// Rebuild a histogram from wire-decoded per-reason statistics.
    pub(crate) fn from_raw_parts(per_reason: [ReasonStats; 5]) -> Self {
        ConvergenceHistogram { per_reason }
    }
}

impl Reducer for ConvergenceHistogram {
    type Item = RunSummary;

    fn identity(&self) -> Self {
        ConvergenceHistogram::new()
    }

    fn absorb(&mut self, item: RunSummary) {
        self.per_reason[reason_slot(item.reason)].push(item.rounds);
    }

    fn merge(&mut self, other: Self) {
        for (mine, theirs) in self.per_reason.iter_mut().zip(other.per_reason) {
            mine.merge_with(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u64, potential: f64, migrations: u64) -> RoundRecord {
        RoundRecord {
            round,
            potential,
            l_av: potential / 10.0,
            l_av_plus: potential / 9.0,
            max_latency: potential,
            migrations,
            support: 2,
            unsatisfied_fraction: Some(0.5),
            shock: false,
        }
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_singleton() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.ci95(), 0.0);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = Welford::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
        // Merging an empty side is the identity, bit for bit.
        let mut c = seq;
        c.merge(Welford::new());
        assert_eq!(c, seq);
        let mut d = Welford::new();
        d.merge(seq);
        assert_eq!(d, seq);
    }

    #[test]
    fn minmax_envelope() {
        let mut m = MinMax::new();
        assert!(m.is_empty());
        m.push(3.0);
        m.push(-1.0);
        let mut other = MinMax::new();
        other.push(7.0);
        m.merge(other);
        assert_eq!((m.min(), m.max()), (-1.0, 7.0));
    }

    #[test]
    fn quantile_sketch_bounded_relative_error() {
        let mut s = QuantileSketch::new(0.01);
        let n = 10_000;
        for i in 1..=n {
            s.push(i as f64);
        }
        assert_eq!(s.count(), n);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = 1.0 + q * (n - 1) as f64;
            let got = s.quantile(q);
            assert!(
                (got - exact).abs() <= 0.011 * exact + 1.0,
                "q={q}: sketch {got} vs exact {exact}"
            );
        }
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), n as f64);
    }

    #[test]
    fn quantile_sketch_handles_signs_and_zero() {
        let mut s = QuantileSketch::default();
        for x in [-100.0, -1.0, 0.0, 0.0, 1.0, 100.0] {
            s.push(x);
        }
        assert!(s.quantile(0.0) <= -99.0);
        assert_eq!(s.median().abs(), 0.0);
        assert!(s.quantile(1.0) >= 99.0);
    }

    /// The boundary quantiles are exact, not bucket representatives: the
    /// envelope tracks min/max precisely, so `quantile(0.0)`/`quantile(1.0)`
    /// must return them bit for bit — for any sign mix.
    #[test]
    fn quantile_sketch_boundaries_are_exact_min_and_max() {
        let mut mixed = QuantileSketch::default();
        for x in [-37.5, -2.25, 0.0, 1.125, 96.0625] {
            mixed.push(x);
        }
        assert_eq!(mixed.quantile(0.0), -37.5);
        assert_eq!(mixed.quantile(1.0), 96.0625);
        // A single sample: both boundaries are that sample exactly.
        let mut one = QuantileSketch::default();
        one.push(-3.75);
        assert_eq!((one.quantile(0.0), one.quantile(1.0)), (-3.75, -3.75));
    }

    /// All-negative samples: the top quantile must be the (negative)
    /// maximum, not a positive-bucket fallthrough, and the bottom must be
    /// the exact minimum rather than its bucket's representative.
    #[test]
    fn quantile_sketch_all_negative_samples() {
        let mut s = QuantileSketch::default();
        for x in [-80.0, -40.0, -20.0, -10.0] {
            s.push(x);
        }
        assert_eq!(s.quantile(0.0), -80.0);
        assert_eq!(s.quantile(1.0), -10.0);
        let med = s.median();
        assert!(med < 0.0, "median of all-negative samples is negative, got {med}");
        assert!((-45.0..=-35.0).contains(&med), "median near -40, got {med}");
    }

    /// All-zero samples: every quantile is exactly 0.0 (the zero bucket is
    /// exact and the envelope is [0, 0]).
    #[test]
    fn quantile_sketch_all_zero_samples() {
        let mut s = QuantileSketch::default();
        for _ in 0..5 {
            s.push(0.0);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(s.quantile(q), 0.0, "q={q}");
        }
    }

    /// One NaN latency in a huge sweep must not abort the run (the sketch
    /// used to `assert!(x.is_finite())`): non-finite samples land in a
    /// dedicated merge-compatible tally and quantiles stay defined over
    /// the finite mass.
    #[test]
    fn quantile_sketch_tallies_non_finite_instead_of_panicking() {
        let mut s = QuantileSketch::default();
        for x in [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, f64::NEG_INFINITY] {
            s.push(x);
        }
        assert_eq!(s.count(), 3, "count is the finite mass");
        assert_eq!(s.non_finite(), 3);
        assert_eq!((s.min(), s.max()), (1.0, 3.0), "envelope ignores non-finite samples");
        let q = s.median();
        assert!(q.is_finite() && (q - 2.0).abs() <= 0.03, "median over finite mass, got {q}");
        // The tally merges exactly, like the integer buckets.
        let mut other = QuantileSketch::default();
        other.push(f64::NAN);
        other.push(4.0);
        s.merge(other);
        assert_eq!((s.count(), s.non_finite()), (4, 4));
    }

    #[test]
    fn scalar_stats_keeps_moments_over_the_finite_mass() {
        let mut s = ScalarStats::new();
        for x in [1.0, f64::NAN, 3.0] {
            s.absorb(x);
        }
        assert_eq!(s.count(), 2);
        assert_eq!(s.non_finite(), 1);
        assert!((s.mean() - 2.0).abs() < 1e-12, "one NaN must not poison the mean");
        assert_eq!((s.min(), s.max()), (1.0, 3.0));
    }

    #[test]
    fn quantile_sketch_merge_is_exact() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let mut whole = QuantileSketch::default();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = QuantileSketch::default();
        let mut right = QuantileSketch::default();
        for &x in &xs[..200] {
            left.push(x);
        }
        for &x in &xs[200..] {
            right.push(x);
        }
        left.merge(right);
        assert_eq!(left, whole, "sketch merges must be exact");
    }

    #[test]
    fn scalar_stats_bundle() {
        let mut s = ScalarStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.absorb(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!((s.min(), s.max()), (1.0, 4.0));
        assert!((s.quantile(0.5) - 2.5).abs() < 1.0);
    }

    #[test]
    fn per_round_stats_aligns_indices() {
        let mut p = PerRoundStats::new();
        p.absorb(vec![rec(0, 10.0, 0), rec(1, 8.0, 4)]);
        p.absorb(vec![rec(0, 12.0, 0)]); // early stop: index 1 missing
        assert_eq!(p.trials(), 2);
        assert_eq!(p.len(), 2);
        let r0 = p.get(0).unwrap();
        assert_eq!(r0.potential.count(), 2);
        assert!((r0.potential.mean() - 11.0).abs() < 1e-12);
        assert_eq!((r0.potential_env.min(), r0.potential_env.max()), (10.0, 12.0));
        let r1 = p.get(1).unwrap();
        assert_eq!(r1.potential.count(), 1);
        assert_eq!(r1.migrations.mean(), 4.0);
    }

    #[test]
    fn per_round_stats_merge_extends() {
        let mut a = PerRoundStats::new();
        a.absorb(vec![rec(0, 10.0, 0)]);
        let mut b = PerRoundStats::new();
        b.absorb(vec![rec(0, 20.0, 0), rec(1, 15.0, 3)]);
        a.merge(b);
        assert_eq!(a.trials(), 2);
        assert_eq!(a.len(), 2);
        assert!((a.get(0).unwrap().potential.mean() - 15.0).abs() < 1e-12);
        assert_eq!(a.get(1).unwrap().potential.count(), 1);
    }

    #[test]
    fn convergence_histogram_buckets() {
        let mut h = ConvergenceHistogram::new();
        for rounds in [0u64, 1, 2, 3, 900] {
            h.absorb(RunSummary { reason: StopReason::ImitationStable, rounds, potential: 0.0 });
        }
        h.absorb(RunSummary { reason: StopReason::MaxRounds, rounds: 1000, potential: 0.0 });
        assert_eq!(h.total(), 6);
        let s = h.reason(StopReason::ImitationStable);
        assert_eq!(s.count(), 5);
        assert_eq!(s.buckets()[0], 1); // round 0
        assert_eq!(s.buckets()[1], 1); // round 1
        assert_eq!(s.buckets()[2], 2); // rounds 2–3
        assert_eq!(s.buckets()[10], 1); // 900 ∈ [512, 1024)
        assert_eq!(ReasonStats::bucket_range(10), (512, 1024));
        // The top bucket saturates instead of overflowing the shift.
        assert_eq!(ReasonStats::bucket_range(64), (1 << 63, u64::MAX));
        assert_eq!(h.observed().count(), 2);
        let mut other = ConvergenceHistogram::new();
        other.absorb(RunSummary { reason: StopReason::MaxRounds, rounds: 7, potential: 0.0 });
        h.merge(other);
        assert_eq!(h.reason(StopReason::MaxRounds).count(), 2);
    }

    #[test]
    fn vec_and_tuple_and_map_reducers_compose() {
        let mut v: Vec<u32> = Vec::new().identity();
        v.absorb(1);
        v.merge(vec![2, 3]);
        assert_eq!(v, vec![1, 2, 3]);

        let mut pair = (Welford::new(), MinMax::new());
        pair.absorb(2.0);
        pair.absorb(4.0);
        let mut other = pair.identity();
        other.absorb(9.0);
        pair.merge(other);
        assert_eq!(pair.0.count(), 3);
        assert_eq!(pair.1.max(), 9.0);

        let mut mapped = MapItem::new(|s: RunSummary| s.rounds as f64, Welford::new());
        mapped.absorb(RunSummary { reason: StopReason::MaxRounds, rounds: 10, potential: 0.0 });
        let mut part = mapped.identity();
        part.absorb(RunSummary { reason: StopReason::MaxRounds, rounds: 20, potential: 0.0 });
        mapped.merge(part);
        assert_eq!(mapped.inner().count(), 2);
        assert!((mapped.into_inner().mean() - 15.0).abs() < 1e-12);
    }
}
