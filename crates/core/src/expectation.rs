//! Closed-form per-round expectations.
//!
//! The analysis of the paper revolves around the *virtual potential gain*
//! `V_PQ = x_PQ·(ℓ_Q(x+1_Q−1_P) − ℓ_P(x))` (Section 3.1). The engine can
//! compute `E[Σ V_PQ]` exactly from the current state, which lets the C2
//! experiment check Lemma 2 quantitatively:
//! `E[ΔΦ] ≤ ½·E[Σ V_PQ]`.

use congames_model::StrategyId;

/// One entry of the migration matrix: the flow of players from one strategy
/// to another implied by the protocol in the current state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairFlow {
    /// Origin strategy.
    pub from: StrategyId,
    /// Destination strategy.
    pub to: StrategyId,
    /// Per-player migration probability (sampling × acceptance, including
    /// the mixture weight for combined protocols).
    pub probability: f64,
    /// Anticipated latency gain `ℓ_P(x) − ℓ_Q(x+1_Q−1_P)` of the move.
    pub gain: f64,
    /// Expected number of migrating players `x_P · probability`.
    pub expected_movers: f64,
}

impl PairFlow {
    /// This pair's contribution to the expected virtual potential gain
    /// (non-positive for improving moves).
    pub fn expected_virtual_gain(&self) -> f64 {
        -self.expected_movers * self.gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_gain_sign() {
        let f = PairFlow {
            from: StrategyId::new(0),
            to: StrategyId::new(1),
            probability: 0.25,
            gain: 4.0,
            expected_movers: 2.0,
        };
        assert_eq!(f.expected_virtual_gain(), -8.0);
    }
}
