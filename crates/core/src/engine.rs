//! Concurrent round engines.
//!
//! Both engines realize the same stochastic process — every player
//! independently samples and decides per the protocol, all migrations apply
//! simultaneously — but with different cost profiles:
//!
//! * [`EngineKind::PlayerLevel`] iterates players one by one (`O(n)` per
//!   round). It mirrors a naive implementation and serves as ground truth.
//! * [`EngineKind::Aggregate`] exploits anonymity: players on the same
//!   origin strategy face identical probabilities, so the joint outcome per
//!   origin is a multinomial over destinations, sampled in `O(S²)` per round
//!   regardless of `n`.
//!
//! Statistical equivalence of the two engines is asserted in the crate's
//! tests and in the integration suite.

use congames_model::{
    potential, potential_delta_for_load_change, CongestionGame, GameError, GameParams, Migration,
    ResourceId, State, StrategyId,
};
use congames_sampling::{multinomial_with_rest_into, DrawRng};

use crate::error::DynamicsError;
use crate::expectation::PairFlow;
use crate::hook::RoundHook;
use crate::observe::Observer;
use crate::protocol::{ImitationProtocol, Protocol, SelfSampling};
use crate::stopping::{RunOutcome, RunSummary, StopCondition, StopReason, StopSpec};
use crate::trajectory::{capture_record, RecordConfig, Trajectory};

/// Which round engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Multinomial sampling per origin strategy; `O(S²)` per round.
    #[default]
    Aggregate,
    /// Explicit per-player iteration; `O(n)` per round. Ground truth.
    PlayerLevel,
}

/// Statistics of one executed round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Players that migrated.
    pub migrations: u64,
    /// Realized potential change `ΔΦ`.
    pub delta_potential: f64,
}

/// Flat CSR-style buffer of the positive-probability `(from, to)` pairs of
/// one round, grouped by origin: origin `j` owns the pair slice
/// `offsets[j]..offsets[j+1]` of `pair_to`/`pair_prob`.
///
/// Reused across rounds so the aggregate kernel performs no steady-state
/// heap allocations.
/// The `Default` value has an *empty* `offsets` vector — allocation-free,
/// so `mem::take` stays free in the per-round engine loop — and therefore
/// does **not** yet satisfy the CSR invariant; call [`PairBuffer::clear`]
/// once before the first `push`.
#[derive(Debug, Default)]
pub(crate) struct PairBuffer {
    pub(crate) origins: Vec<StrategyId>,
    /// `origins.len() + 1` offsets into `pair_to`/`pair_prob`.
    pub(crate) offsets: Vec<usize>,
    pub(crate) pair_to: Vec<StrategyId>,
    pub(crate) pair_prob: Vec<f64>,
}

impl PairBuffer {
    pub(crate) fn clear(&mut self) {
        self.origins.clear();
        self.offsets.clear();
        self.offsets.push(0);
        self.pair_to.clear();
        self.pair_prob.clear();
    }

    /// Append one pair; `for_each_pair` visits origins contiguously, so a
    /// new origin group starts exactly when `from` changes.
    pub(crate) fn push(&mut self, from: StrategyId, to: StrategyId, prob: f64) {
        if self.origins.last() != Some(&from) {
            self.offsets.push(self.pair_to.len());
            self.origins.push(from);
        }
        self.pair_to.push(to);
        self.pair_prob.push(prob);
        *self.offsets.last_mut().expect("offsets is never empty") = self.pair_to.len();
    }
}

/// Counters of the player-level kernel's μ-memo **LRU row tier** (see
/// [`Simulation::with_mu_memo_capacity`] for the tier split). Classes
/// whose full dense table fits the slot budget use the counter-free dense
/// path and leave these at zero; classes above the budget — which
/// previously skipped memoization outright — account every lookup here.
///
/// All counters accumulate over the simulation's lifetime; they are
/// diagnostics only and never influence the dynamics (memoized μ values
/// are bit-identical to recomputation by construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MuMemoStats {
    /// Memoized μ values served without recomputation.
    pub slot_hits: u64,
    /// μ values computed (and stored in the looked-up row).
    pub slot_misses: u64,
    /// Origin-row lookups that found the origin's row already assigned.
    pub row_hits: u64,
    /// Fresh origin-row assignments (one per distinct origin per class
    /// visit, as long as the pool has free rows).
    pub row_allocs: u64,
    /// Least-recently-used rows reassigned to a different origin because
    /// the pool was full.
    pub evictions: u64,
}

/// Two-tier μ memo for the player-level kernel.
///
/// * **Dense tier** — classes whose full table (`2·S_c²` slots, indexed
///   `(from_local·S_c + to_local)·2 + is_explore`) fits the slot budget:
///   one stamp compare per lookup, no bookkeeping. This is the common
///   case and costs exactly what the pre-LRU dense memo did.
/// * **LRU row tier** — classes above the budget (network games with
///   thousands of paths) get one *row* per origin strategy actually
///   visited, holding that origin's `2·S_c` destination slots. Origins
///   are always in the support (players sit on them), so a near-converged
///   round touches `support_c` rows, not `S_c`; the pool is bounded by
///   `capacity / (2·S_c)` rows managed least-recently-used. Such classes
///   previously skipped memoization entirely.
///
/// Freshness is stamp-based so nothing is ever cleared: class visits and
/// row assignments draw from one monotone counter, and a slot is fresh
/// iff it carries the stamp of the current visit (dense) or of its row's
/// current assignment (rows). Stamps are globally unique, so a stale
/// entry — even one written by the other tier — can never false-hit.
/// Memoization is invisible to the dynamics: μ is a pure function of the
/// pre-round state, so hit/miss/eviction patterns cannot change a single
/// bit of the trajectory.
#[derive(Debug)]
struct MuTable {
    /// `(stamp, μ)` per slot — fused so a hit costs one cache line. Grown
    /// lazily (full table for dense classes, row by row for LRU classes),
    /// so small supports in huge classes never touch the full budget.
    slots: Vec<(u64, f64)>,
    /// Monotone stamp source shared by class visits and row assignments.
    next_stamp: u64,
    /// Stamp of the current class visit.
    current: u64,
    /// Whether the current class uses the dense tier.
    dense: bool,
    /// `(visit stamp, row)` per origin local id; valid iff the stamp is
    /// the current visit's.
    row_of: Vec<(u64, u32)>,
    /// Owning origin local id per pooled row.
    row_origin: Vec<u32>,
    /// Current assignment stamp per pooled row.
    row_tag: Vec<u64>,
    /// Intrusive LRU list over the rows claimed this visit.
    lru_prev: Vec<u32>,
    lru_next: Vec<u32>,
    head: u32,
    tail: u32,
    /// Rows of the pool claimed this visit.
    rows_in_use: u32,
    /// Slots per row (`2·S_c`), set by [`MuTable::begin`].
    row_len: usize,
    /// Row-pool bound for the current class, set by [`MuTable::begin`].
    max_rows: usize,
    /// Slot budget (default [`MU_TABLE_MAX`]; see
    /// [`Simulation::with_mu_memo_capacity`]).
    capacity: usize,
    stats: MuMemoStats,
}

/// Sentinel for "no row" in the LRU links.
const NO_ROW: u32 = u32::MAX;

/// Default μ-memo slot budget: 2²¹ slots ≈ 32 MiB of `(stamp, μ)` pairs.
const MU_TABLE_MAX: usize = 1 << 21;

impl Default for MuTable {
    fn default() -> Self {
        MuTable {
            slots: Vec::new(),
            next_stamp: 0,
            current: 0,
            dense: false,
            row_of: Vec::new(),
            row_origin: Vec::new(),
            row_tag: Vec::new(),
            lru_prev: Vec::new(),
            lru_next: Vec::new(),
            head: NO_ROW,
            tail: NO_ROW,
            rows_in_use: 0,
            row_len: 0,
            max_rows: 0,
            capacity: MU_TABLE_MAX,
            stats: MuMemoStats::default(),
        }
    }
}

impl MuTable {
    /// Start a new class visit for a class with `s_c` strategies, picking
    /// the tier. Returns `false` if not even one origin row fits the slot
    /// budget (memoization disabled; recomputing μ stays cheap thanks to
    /// the state's latency cache).
    fn begin(&mut self, s_c: usize) -> bool {
        self.next_stamp += 1;
        self.current = self.next_stamp;
        let dense_slots = s_c.saturating_mul(s_c).saturating_mul(2);
        if dense_slots <= self.capacity {
            self.dense = true;
            if self.slots.len() < dense_slots {
                self.slots.resize(dense_slots, (0, 0.0));
            }
            return true;
        }
        self.dense = false;
        self.rows_in_use = 0;
        self.head = NO_ROW;
        self.tail = NO_ROW;
        self.row_len = 2 * s_c;
        self.max_rows = self.capacity / self.row_len; // < s_c by the tier split
        if self.max_rows == 0 {
            return false;
        }
        if self.row_of.len() < s_c {
            // Stamp-0 entries never match (stamps start at 1).
            self.row_of.resize(s_c, (0, 0));
        }
        true
    }

    /// LRU tier: the row of origin `from_local`, claiming (or evicting)
    /// one if the origin has none this visit. Touches the row to
    /// most-recent.
    fn row_for(&mut self, from_local: usize) -> usize {
        let (stamp, r) = self.row_of[from_local];
        if stamp == self.current {
            self.stats.row_hits += 1;
            if self.head != r {
                self.unlink(r);
                self.push_front(r);
            }
            return r as usize;
        }
        let r = if (self.rows_in_use as usize) < self.max_rows {
            let r = self.rows_in_use;
            self.rows_in_use += 1;
            let ri = r as usize;
            if self.slots.len() < (ri + 1) * self.row_len {
                self.slots.resize((ri + 1) * self.row_len, (0, 0.0));
            }
            if self.row_origin.len() <= ri {
                self.row_origin.resize(ri + 1, 0);
                self.row_tag.resize(ri + 1, 0);
                self.lru_prev.resize(ri + 1, NO_ROW);
                self.lru_next.resize(ri + 1, NO_ROW);
            }
            self.stats.row_allocs += 1;
            r
        } else {
            // Pool full: reassign the least-recently-used row. Every
            // pooled row was claimed this visit, so its origin mapping is
            // current and must be orphaned.
            let r = self.tail;
            self.unlink(r);
            self.row_of[self.row_origin[r as usize] as usize] = (0, 0);
            self.stats.evictions += 1;
            r
        };
        self.next_stamp += 1;
        self.row_tag[r as usize] = self.next_stamp;
        self.row_origin[r as usize] = from_local as u32;
        self.row_of[from_local] = (self.current, r);
        self.push_front(r);
        r as usize
    }

    /// LRU tier: memoized μ of `(from_local, to_local, is_explore)`,
    /// computing and storing it on a miss. Kept out of line so the dense
    /// tier's hot loop stays small.
    #[inline(never)]
    fn row_mu(
        &mut self,
        from_local: usize,
        to_local: usize,
        is_explore: bool,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        let row = self.row_for(from_local);
        let slot = row * self.row_len + to_local * 2 + is_explore as usize;
        let tag = self.row_tag[row];
        if self.slots[slot].0 == tag {
            self.stats.slot_hits += 1;
            self.slots[slot].1
        } else {
            self.stats.slot_misses += 1;
            let mu = compute();
            self.slots[slot] = (tag, mu);
            mu
        }
    }

    fn unlink(&mut self, r: u32) {
        let (p, n) = (self.lru_prev[r as usize], self.lru_next[r as usize]);
        if p == NO_ROW {
            self.head = n;
        } else {
            self.lru_next[p as usize] = n;
        }
        if n == NO_ROW {
            self.tail = p;
        } else {
            self.lru_prev[n as usize] = p;
        }
    }

    fn push_front(&mut self, r: u32) {
        self.lru_prev[r as usize] = NO_ROW;
        self.lru_next[r as usize] = self.head;
        if self.head != NO_ROW {
            self.lru_prev[self.head as usize] = r;
        }
        self.head = r;
        if self.tail == NO_ROW {
            self.tail = r;
        }
    }
}

/// The simulation's game: borrowed for the common stationary case, owned
/// (a private clone) once a [`RoundHook`] needs mutable access. All reads
/// go through `Deref`, so the two cases share every code path.
#[derive(Debug)]
enum GameHandle<'g> {
    Borrowed(&'g CongestionGame),
    Owned(Box<CongestionGame>),
}

impl std::ops::Deref for GameHandle<'_> {
    type Target = CongestionGame;

    fn deref(&self) -> &CongestionGame {
        match self {
            GameHandle::Borrowed(g) => g,
            GameHandle::Owned(g) => g,
        }
    }
}

/// A running simulation: a game, a protocol, and the evolving state.
///
/// Both round kernels are *zero-steady-state-allocation*: all per-round
/// working memory (the CSR pair buffer, multinomial counts, the μ memo,
/// move/commit buffers, and the state's latency cache) lives in reusable
/// scratch owned by the simulation, so `step` touches the heap only while
/// buffers warm up to their high-water marks.
///
/// See the crate-level example for typical usage.
#[derive(Debug)]
pub struct Simulation<'g> {
    game: GameHandle<'g>,
    protocol: Protocol,
    /// Between-rounds mutation hook (nonstationary scenarios); `None` for
    /// the stationary fast path.
    hook: Option<Box<dyn RoundHook>>,
    params: GameParams,
    state: State,
    engine: EngineKind,
    record: RecordConfig,
    /// Explicit player array (player-level engine only), grouped by class:
    /// `players[class_offsets[c] .. class_offsets[c+1]]` are class `c`.
    players: Option<Vec<StrategyId>>,
    class_offsets: Vec<usize>,
    potential: f64,
    round: u64,
    /// Players that migrated in the most recent round (0 before any
    /// round), so a run resuming from a manually-stepped state can record
    /// its start round truthfully.
    last_migrations: u64,
    /// Scratch buffers reused across rounds.
    migrations_buf: Vec<Migration>,
    old_loads_buf: Vec<u64>,
    pairs_buf: PairBuffer,
    counts_buf: Vec<u64>,
    mu_table: MuTable,
    moves_buf: Vec<(usize, StrategyId)>,
    commit_buf: Vec<(u32, u32)>,
}

impl<'g> Simulation<'g> {
    /// Create a simulation of `protocol` on `game` starting from `state`,
    /// with the default (aggregate) engine and no recording.
    ///
    /// # Errors
    ///
    /// Fails if the state does not belong to the game, or if the protocol's
    /// virtual-agent setting disagrees with the state's base loads.
    pub fn new(
        game: &'g CongestionGame,
        protocol: Protocol,
        state: State,
    ) -> Result<Self, DynamicsError> {
        if state.counts().len() != game.num_strategies() {
            return Err(GameError::WrongLength {
                expected: game.num_strategies(),
                found: state.counts().len(),
            }
            .into());
        }
        for (ci, class) in game.classes().iter().enumerate() {
            let sum: u64 = class.strategy_range().map(|s| state.counts()[s as usize]).sum();
            if sum != class.players() {
                return Err(GameError::CountMismatch {
                    class: ci,
                    expected: class.players(),
                    found: sum,
                }
                .into());
            }
        }
        let wants_virtual = protocol.imitation().is_some_and(|p| p.virtual_agents());
        if wants_virtual != state.has_virtual_agents() {
            return Err(DynamicsError::InvalidParameter {
                name: "state",
                message:
                    "virtual-agent protocols require State::with_virtual_agents (and vice versa)",
            });
        }
        let params = game.params();
        let mut class_offsets = Vec::with_capacity(game.classes().len() + 1);
        let mut off = 0usize;
        class_offsets.push(0);
        for c in game.classes() {
            off += c.players() as usize;
            class_offsets.push(off);
        }
        let potential = potential(game, &state);
        let mut state = state;
        state.ensure_latency_cache(game);
        state.ensure_support_index(game);
        Ok(Simulation {
            game: GameHandle::Borrowed(game),
            protocol,
            hook: None,
            params,
            state,
            engine: EngineKind::Aggregate,
            record: RecordConfig::disabled(),
            players: None,
            class_offsets,
            potential,
            round: 0,
            last_migrations: 0,
            migrations_buf: Vec::new(),
            old_loads_buf: Vec::new(),
            pairs_buf: PairBuffer::default(),
            counts_buf: Vec::new(),
            mu_table: MuTable::default(),
            moves_buf: Vec::new(),
            commit_buf: Vec::new(),
        })
    }

    /// Select the round engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        if engine == EngineKind::PlayerLevel {
            self.ensure_players();
        }
        self
    }

    /// Configure trajectory recording.
    pub fn with_recording(mut self, record: RecordConfig) -> Self {
        self.record = record;
        self
    }

    /// Attach a between-rounds mutation hook (see [`RoundHook`]).
    ///
    /// The game is cloned into the simulation so the hook can mutate it;
    /// the borrowed original is never touched. [`Simulation::run_observed`]
    /// polls the hook before every round and fires it when an event is
    /// due; manual [`Simulation::step`] calls never fire the hook (drive
    /// the schedule through a run, or fire it by hand).
    ///
    /// While the hook still reports a pending fire, equilibrium-type stop
    /// conditions (stability, approximate/Nash equilibrium, potential
    /// targets) are deferred — a pre-shock stable state is the recovery
    /// reference, not an outcome — and only
    /// [`StopCondition::MaxRounds`](crate::StopCondition::MaxRounds) can
    /// end the run. Once the schedule drains, all conditions rearm, so a
    /// shocked run naturally ends at its first post-schedule stable state.
    pub fn with_hook(mut self, hook: Box<dyn RoundHook>) -> Self {
        if let GameHandle::Borrowed(g) = self.game {
            self.game = GameHandle::Owned(Box::new(g.clone()));
        }
        self.hook = Some(hook);
        self
    }

    /// Bound the player-level kernel's μ memo to `slots` `(stamp, μ)`
    /// pairs (default 2²¹ ≈ 32 MiB; 16 bytes each). Classes whose dense
    /// table (`2·S_c²` slots) fits use it outright; larger classes fall
    /// back to `slots / (2·S_c)` LRU-managed origin rows; `0` disables
    /// memoization entirely. Purely a memory/speed trade-off —
    /// trajectories are bit-identical for every capacity.
    pub fn with_mu_memo_capacity(mut self, slots: usize) -> Self {
        self.mu_table.capacity = slots;
        self
    }

    /// Lifetime counters of the player-level kernel's μ memo (all zero
    /// until a [`EngineKind::PlayerLevel`] round runs).
    pub fn mu_memo_stats(&self) -> MuMemoStats {
        self.mu_table.stats
    }

    /// The game's protocol parameters (`d`, `ν`, `β`, `ℓ_min`).
    pub fn params(&self) -> &GameParams {
        &self.params
    }

    /// The current state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// The protocol driving the dynamics.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// The current round index (number of executed rounds).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current Rosenthal potential (maintained incrementally).
    pub fn potential(&self) -> f64 {
        self.potential
    }

    fn ensure_players(&mut self) {
        if self.players.is_some() {
            return;
        }
        let mut players = Vec::with_capacity(self.game.total_players() as usize);
        for class in self.game.classes() {
            for sid in class.strategy_ids() {
                for _ in 0..self.state.counts()[sid.index()] {
                    players.push(sid);
                }
            }
        }
        self.players = Some(players);
    }

    /// Fire the attached hook if it has events due at (or before — a
    /// resumed run catches up) the current round. Returns whether the
    /// firing changed anything; `Ok(false)` without a hook costs one
    /// `Option` compare.
    fn fire_due_events(&mut self) -> Result<bool, DynamicsError> {
        let due = match self.hook.as_ref().and_then(|h| h.next_fire()) {
            Some(next) => next <= self.round,
            None => return Ok(false),
        };
        if !due {
            return Ok(false);
        }
        let round = self.round;
        let hook = self.hook.as_mut().expect("due implies a hook");
        let game = match &mut self.game {
            GameHandle::Owned(g) => g.as_mut(),
            GameHandle::Borrowed(_) => {
                return Err(DynamicsError::Hook {
                    message: "round hook attached to a borrowed game (attach via with_hook)"
                        .to_string(),
                });
            }
        };
        let changed = hook.fire(round, game, &mut self.state)?;
        if hook.next_fire().is_some_and(|next| next <= round) {
            return Err(DynamicsError::Hook {
                message: format!("hook did not advance past round {round} after firing"),
            });
        }
        if changed {
            self.after_game_change()?;
        }
        Ok(changed)
    }

    /// Rebuild everything derived from the game after a hook mutated it:
    /// protocol parameters (the population may have changed), class
    /// offsets, the explicit player array, the state's latency cache and
    /// support index, and the potential (recomputed from scratch — shocks
    /// are rare, and incremental tracking across an arbitrary latency swap
    /// has no valid delta).
    fn after_game_change(&mut self) -> Result<(), DynamicsError> {
        for (ci, class) in self.game.classes().iter().enumerate() {
            let sum: u64 = class.strategy_range().map(|s| self.state.counts()[s as usize]).sum();
            if sum != class.players() {
                return Err(GameError::CountMismatch {
                    class: ci,
                    expected: class.players(),
                    found: sum,
                }
                .into());
            }
        }
        self.params = self.game.params();
        self.class_offsets.clear();
        self.class_offsets.push(0);
        let mut off = 0usize;
        for c in self.game.classes() {
            off += c.players() as usize;
            self.class_offsets.push(off);
        }
        if self.players.is_some() {
            // Arrivals/departures invalidate the explicit player array;
            // rebuild it from the (deterministic) per-strategy counts.
            self.players = None;
            self.ensure_players();
        }
        self.state.invalidate_caches_for_game_change();
        self.state.ensure_latency_cache(&self.game);
        self.state.ensure_support_index(&self.game);
        self.potential = potential(&self.game, &self.state);
        Ok(())
    }

    /// Iterate all `(from, to)` pairs with positive migration probability in
    /// the *current* state, yielding the per-player probability (already
    /// combining imitation sampling, exploration sampling, and the mixture
    /// weight) and the anticipated latency gain.
    ///
    /// Origins iterate the state's per-class support index (players can
    /// only sit on occupied strategies), and pure-imitation rounds without
    /// virtual agents iterate occupied *destinations* too — support
    /// invariance makes every unoccupied destination unsampleable, so such
    /// rounds cost `O(Σ_c support_c²)` instead of `O(Σ_c S_c²)`. The index
    /// is sorted by strategy id, so the sparse walks visit exactly the
    /// pairs the dense scans would, in the same order (bit-identical pair
    /// streams). Exploration and virtual-agent rounds can target empty
    /// strategies and fall back to the dense destination scan; a state
    /// without a built index (never the case inside a [`Simulation`])
    /// falls back entirely.
    pub(crate) fn for_each_pair(&self, mut f: impl FnMut(StrategyId, StrategyId, f64, f64)) {
        let (explore_prob, imit, expl) = match &self.protocol {
            Protocol::Imitation(p) => (0.0, Some(p), None),
            Protocol::Exploration(p) => (1.0, None, Some(p)),
            Protocol::Combined { imitation, exploration, explore_prob } => {
                (*explore_prob, Some(imitation), Some(exploration))
            }
        };
        let virtual_agents = imit.is_some_and(|p| p.virtual_agents());
        for (ci, class) in self.game.classes().iter().enumerate() {
            let n_c = class.players();
            if n_c == 0 {
                continue;
            }
            let s_c = class.num_strategies();
            // Per-class constants of the imitation sampling weight.
            let imit_total = match imit.map(ImitationProtocol::self_sampling) {
                Some(SelfSampling::Exclude) => (n_c - 1) as f64,
                Some(SelfSampling::Include) => n_c as f64,
                None => 0.0,
            } + if virtual_agents { s_c as f64 } else { 0.0 };
            let imit_scale = if imit.is_some() && explore_prob < 1.0 && imit_total > 0.0 {
                (1.0 - explore_prob) / imit_total
            } else {
                0.0
            };
            let explore_scale = if expl.is_some() && explore_prob > 0.0 && s_c > 0 {
                explore_prob / s_c as f64
            } else {
                0.0
            };
            if imit_scale == 0.0 && explore_scale == 0.0 {
                continue;
            }
            let occ = self.state.occupied(&self.game, ci);
            // Only pure-imitation, non-virtual-agent rounds are confined to
            // the support on the destination side.
            let support_dest = explore_scale == 0.0 && !virtual_agents;
            let mut visit_origin = |from: StrategyId| {
                let l_from = self.state.strategy_latency(&self.game, from);
                let mut visit_dest = |to: StrategyId| {
                    let x_to = self.state.counts()[to.index()];
                    // Sampling weight of `to` before any latency is looked
                    // at; pairs nobody can sample are skipped outright.
                    let w = x_to as f64 + if virtual_agents { 1.0 } else { 0.0 };
                    let imit_w = if w > 0.0 { imit_scale * w } else { 0.0 };
                    if imit_w == 0.0 && explore_scale == 0.0 {
                        return;
                    }
                    let l_to = self.state.latency_after_move(&self.game, from, to);
                    let gain = l_from - l_to;
                    let mut prob = 0.0;
                    if imit_w > 0.0 {
                        let p = imit.expect("imit_w > 0 implies imitation component");
                        prob += imit_w * imitation_mu(p, &self.params, l_from, gain);
                    }
                    if explore_scale > 0.0 {
                        let p = expl.expect("explore_scale > 0 implies exploration component");
                        prob +=
                            explore_scale * exploration_mu(p, &self.params, l_from, gain, s_c, n_c);
                    }
                    if prob > 0.0 {
                        f(from, to, prob, gain);
                    }
                };
                match occ {
                    Some(occ) if support_dest => {
                        for &to in occ {
                            if to != from {
                                visit_dest(to);
                            }
                        }
                    }
                    _ => {
                        for to_raw in class.strategy_range() {
                            if to_raw != from.raw() {
                                visit_dest(StrategyId::new(to_raw));
                            }
                        }
                    }
                }
            };
            match occ {
                Some(occ) => {
                    for &from in occ {
                        visit_origin(from);
                    }
                }
                None => {
                    for from_raw in class.strategy_range() {
                        let from = StrategyId::new(from_raw);
                        if self.state.counts()[from.index()] > 0 {
                            visit_origin(from);
                        }
                    }
                }
            }
        }
    }

    /// The current migration matrix: one entry per `(from, to)` pair with
    /// positive probability.
    pub fn migration_matrix(&self) -> Vec<PairFlow> {
        let mut out = Vec::new();
        self.for_each_pair(|from, to, prob, gain| {
            let movers = self.state.counts()[from.index()] as f64 * prob;
            out.push(PairFlow { from, to, probability: prob, gain, expected_movers: movers });
        });
        out
    }

    /// The exact expected *virtual potential gain* of the next round,
    /// `E[Σ_{P,Q} V_PQ] = Σ_{P,Q} x_P·p_PQ·(ℓ_Q(x+1_Q−1_P) − ℓ_P(x))`
    /// (non-positive; see Lemma 2 and Theorem 7).
    pub fn expected_virtual_gain(&self) -> f64 {
        let mut total = 0.0;
        self.for_each_pair(|from, _to, prob, gain| {
            total -= self.state.counts()[from.index()] as f64 * prob * gain;
        });
        total
    }

    /// Execute one concurrent round.
    ///
    /// # Errors
    ///
    /// Surfaces internal sampling/application failures (none occur for valid
    /// simulations; the error path exists instead of panicking).
    pub fn step(&mut self, rng: &mut impl DrawRng) -> Result<RoundStats, DynamicsError> {
        // Position counter-mode streams at `(round, site 0)`; a no-op for
        // the sequential xoshiro backend (see `congames_sampling::DrawRng`).
        rng.begin_round(self.round);
        let mut migrations = std::mem::take(&mut self.migrations_buf);
        migrations.clear();
        match self.engine {
            EngineKind::Aggregate => self.aggregate_round(rng, &mut migrations)?,
            EngineKind::PlayerLevel => self.player_round(rng, &mut migrations)?,
        }
        // Apply simultaneously and update the potential incrementally:
        // each changed resource contributes one batched `Latency::sum_range`
        // walk over its intermediate loads (big-flow rounds walk thousands
        // of loads per resource behind a single virtual call). The default
        // summation order is pinned to the pre-batching scalar loops;
        // constant/affine resources use exact closed forms that may differ
        // from those loops by ulps (see the `congames-model::latency`
        // exactness notes).
        let mut old_loads = std::mem::take(&mut self.old_loads_buf);
        old_loads.clear();
        old_loads.extend_from_slice(self.state.loads());
        self.state.apply_migrations(&self.game, &migrations)?;
        let mut delta = 0.0;
        for (i, (&o, &n)) in old_loads.iter().zip(self.state.loads()).enumerate() {
            if o != n {
                let r = ResourceId::new(i as u32);
                let base = self.state.effective_load(r) - self.state.load(r);
                delta += potential_delta_for_load_change(&self.game, r, base, o, n);
            }
        }
        self.potential += delta;
        self.round += 1;
        // Re-validate the per-strategy latency sums (the apply above kept
        // the per-resource entries fresh for only the touched resources);
        // the support index was maintained in-place by the apply, so its
        // ensure is an O(1) validity check.
        self.state.ensure_latency_cache(&self.game);
        self.state.ensure_support_index(&self.game);
        let moved: u64 = migrations.iter().map(|m| m.count).sum();
        self.last_migrations = moved;
        self.migrations_buf = migrations;
        self.old_loads_buf = old_loads;
        Ok(RoundStats { migrations: moved, delta_potential: delta })
    }

    fn aggregate_round(
        &mut self,
        rng: &mut impl DrawRng,
        migrations: &mut Vec<Migration>,
    ) -> Result<(), DynamicsError> {
        // Group the pair probabilities by origin in the reusable CSR pair
        // buffer, then draw one multinomial per origin into the reusable
        // counts buffer. `for_each_pair` visits origins contiguously.
        let mut pairs = std::mem::take(&mut self.pairs_buf);
        pairs.clear();
        self.for_each_pair(|from, to, prob, _gain| pairs.push(from, to, prob));
        let mut counts = std::mem::take(&mut self.counts_buf);
        let mut result = Ok(());
        for (j, &from) in pairs.origins.iter().enumerate() {
            // Counter mode addresses the origin's multinomial by its
            // strategy id, so the draw is independent of which other
            // origins are occupied this round.
            rng.begin_site(from.raw() as u64);
            let slice = pairs.offsets[j]..pairs.offsets[j + 1];
            let x_from = self.state.counts()[from.index()];
            match multinomial_with_rest_into(
                rng,
                x_from,
                &pairs.pair_prob[slice.clone()],
                &mut counts,
            ) {
                Ok(_stay) => {
                    for (&to, &k) in pairs.pair_to[slice].iter().zip(&counts) {
                        if k > 0 {
                            migrations.push(Migration::new(from, to, k));
                        }
                    }
                }
                Err(e) => {
                    result = Err(e.into());
                    break;
                }
            }
        }
        self.pairs_buf = pairs;
        self.counts_buf = counts;
        result
    }

    fn player_round(
        &mut self,
        rng: &mut impl DrawRng,
        migrations: &mut Vec<Migration>,
    ) -> Result<(), DynamicsError> {
        self.ensure_players();
        let (explore_prob, imit, expl) = match &self.protocol {
            Protocol::Imitation(p) => (0.0, Some(*p), None),
            Protocol::Exploration(p) => (1.0, None, Some(*p)),
            Protocol::Combined { imitation, exploration, explore_prob } => {
                (*explore_prob, Some(*imitation), Some(*exploration))
            }
        };
        let virtual_agents = imit.is_some_and(|p| p.virtual_agents());
        // Decisions all use the pre-round state; μ values repeat across
        // players of one class, so memoize them in the dense epoch table.
        // Classes modify disjoint player/strategy ranges, so each class can
        // decide *and* commit before the next is visited.
        let mut mu_table = std::mem::take(&mut self.mu_table);
        let mut moves = std::mem::take(&mut self.moves_buf);
        let mut commit = std::mem::take(&mut self.commit_buf);
        for (ci, class) in self.game.classes().iter().enumerate() {
            let n_c = class.players();
            if n_c == 0 {
                continue;
            }
            let s_c = class.num_strategies();
            let start = self.class_offsets[ci];
            let my_range = class.strategy_range();
            let memoize = mu_table.begin(s_c);
            // Loop-invariant tier split, hoisted so the hot loop branches
            // on registers.
            let dense_memo = memoize && mu_table.dense;
            moves.clear();
            {
                let players = self.players.as_ref().expect("ensure_players ran");
                let class_players = &players[start..start + n_c as usize];
                // Per-class sampling-pool constants.
                let self_exclude = imit.is_some_and(|p| p.self_sampling() == SelfSampling::Exclude);
                let real_pool = if self_exclude { n_c - 1 } else { n_c };
                let pool = real_pool + if virtual_agents { s_c as u64 } else { 0 };
                for (local, &from) in class_players.iter().enumerate() {
                    // Counter mode addresses each player's decision by the
                    // global player index.
                    rng.begin_site((start + local) as u64);
                    let explore = explore_prob > 0.0 && rng.gen::<f64>() < explore_prob;
                    let to: StrategyId;
                    let is_explore: bool;
                    // The migration test's uniform variate: the imitation
                    // path derives it from the *same* 64-bit draw that
                    // picks the sampled agent (the quotient selects the
                    // agent, the remainder is uniform conditional on it),
                    // halving the per-player RNG cost.
                    let mut test_u: Option<f64> = None;
                    if explore {
                        let pick = rng.gen_range(0..s_c) as u32 + my_range.start;
                        to = StrategyId::new(pick);
                        is_explore = true;
                    } else {
                        if imit.is_none() || pool == 0 {
                            continue;
                        }
                        // Sample another agent uniformly (optionally self /
                        // virtual agents) by multiply-shift.
                        let wide = rng.next_u64() as u128 * pool as u128;
                        let draw = (wide >> 64) as u64;
                        test_u = Some((wide as u64 >> 11) as f64 * (1.0 / (1u64 << 53) as f64));
                        if draw < real_pool {
                            // Branchless self-exclusion shift: `j >= local`
                            // is data-dependent and unpredictable, so a
                            // conditional jump here would mispredict often.
                            let j =
                                draw as usize + ((draw as usize >= local) & self_exclude) as usize;
                            to = class_players[j];
                        } else {
                            to = StrategyId::new(my_range.start + (draw - real_pool) as u32);
                        }
                        is_explore = false;
                    }
                    // `to == from` flows through: its μ is 0 by definition
                    // (zero gain), so it never migrates — and keeping it on
                    // the straight-line path avoids an unpredictable branch
                    // on a freshly gathered value.
                    let compute_mu = || {
                        let l_from = self.state.strategy_latency(&self.game, from);
                        let l_to = self.state.latency_after_move(&self.game, from, to);
                        let gain = l_from - l_to;
                        if is_explore {
                            exploration_mu(
                                &expl.expect("explore implies protocol"),
                                &self.params,
                                l_from,
                                gain,
                                s_c,
                                n_c,
                            )
                        } else {
                            imitation_mu(
                                &imit.expect("imitate implies protocol"),
                                &self.params,
                                l_from,
                                gain,
                            )
                        }
                    };
                    let mu = if dense_memo {
                        // Dense tier: one stamp compare, no bookkeeping —
                        // the exact pre-LRU hot path.
                        let slot = ((from.raw() - my_range.start) as usize * s_c
                            + (to.raw() - my_range.start) as usize)
                            * 2
                            + is_explore as usize;
                        if mu_table.slots[slot].0 == mu_table.current {
                            mu_table.slots[slot].1
                        } else {
                            let mu = compute_mu();
                            mu_table.slots[slot] = (mu_table.current, mu);
                            mu
                        }
                    } else if memoize {
                        // LRU row tier: support-keyed origin row +
                        // destination slot; the row's assignment stamp
                        // doubles as the freshness stamp.
                        mu_table.row_mu(
                            (from.raw() - my_range.start) as usize,
                            (to.raw() - my_range.start) as usize,
                            is_explore,
                            compute_mu,
                        )
                    } else {
                        compute_mu()
                    };
                    if mu > 0.0 {
                        let u = match test_u {
                            Some(u) => u,
                            None => rng.gen::<f64>(),
                        };
                        if u < mu {
                            moves.push((start + local, to));
                        }
                    }
                }
            }
            // Commit the class: update the player array, then aggregate the
            // realized (from, to) pairs by sorting the reusable buffer —
            // deterministic order, no per-round allocation.
            let players = self.players.as_mut().expect("ensure_players ran");
            commit.clear();
            for &(idx, to) in &moves {
                let from = players[idx];
                players[idx] = to;
                commit.push((from.raw(), to.raw()));
            }
            commit.sort_unstable();
            let mut i = 0usize;
            while i < commit.len() {
                let (f, t) = commit[i];
                let mut k = 0u64;
                while i < commit.len() && commit[i] == (f, t) {
                    k += 1;
                    i += 1;
                }
                migrations.push(Migration::new(StrategyId::new(f), StrategyId::new(t), k));
            }
        }
        self.mu_table = mu_table;
        self.moves_buf = moves;
        self.commit_buf = commit;
        Ok(())
    }

    /// Run until a stop condition fires, materializing the recorded
    /// rounds into a [`Trajectory`].
    ///
    /// Conditions are evaluated on the state *before* each round (so a
    /// satisfied initial state reports `rounds = 0`); expensive checks run
    /// at the spec's cadence (see [`StopSpec`] for which conditions the
    /// cadence gates). This is a convenience wrapper over
    /// [`Simulation::run_observed`] with the [`Trajectory`] stock
    /// observer; streaming consumers should call `run_observed` directly
    /// and never pay for the materialization.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulation::step`] failures.
    pub fn run(
        &mut self,
        stop: &StopSpec,
        rng: &mut impl DrawRng,
    ) -> Result<RunOutcome, DynamicsError> {
        let mut trajectory = Trajectory::new();
        let summary = self.run_observed(stop, rng, &mut trajectory)?;
        Ok(RunOutcome {
            reason: summary.reason,
            rounds: summary.rounds,
            potential: summary.potential,
            trajectory,
        })
    }

    /// Run until a stop condition fires, streaming each recorded round
    /// into `observer` instead of materializing a trajectory.
    ///
    /// The observer sees exactly the records [`Simulation::run`] would
    /// have stored: with a non-zero recording cadence, the record of the
    /// round the run starts in, one record per cadence round, and the
    /// record of the stop round (deduplicated when on the cadence); with
    /// recording disabled it sees nothing. The returned [`RunSummary`]
    /// carries the stop reason, round count, and final potential — pass it
    /// to [`Observer::finish`] to extract the observer's output.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulation::step`] failures.
    pub fn run_observed<O: Observer>(
        &mut self,
        stop: &StopSpec,
        rng: &mut impl DrawRng,
        observer: &mut O,
    ) -> Result<RunSummary, DynamicsError> {
        // Seed from the simulation's own counter so a resumed run's start
        // record reports the migrations of the round that produced it.
        let mut last_migrations = self.last_migrations;
        let start_round = self.round;
        loop {
            // Scheduled events fire before the round's record is captured
            // and before the stop conditions run, so the record *at* a
            // shock round already reflects the post-event game/state (the
            // pre-shock reference is the last record strictly before).
            let fired = self.fire_due_events()?;
            // The starting round is recorded even when a manually-stepped
            // simulation resumes off the cadence — the documented contract
            // is "start record, cadence records, stop record".
            let recording = self.record.every > 0
                && (self.round == start_round || self.round % self.record.every == 0);
            if recording {
                observer.observe(&capture_record(
                    &self.game,
                    &self.state,
                    self.round,
                    self.potential,
                    last_migrations,
                    self.record.approx.as_ref(),
                    fired,
                ));
            }
            if let Some(reason) = self.check_stop(stop) {
                if self.record.every > 0 && !recording {
                    observer.observe(&capture_record(
                        &self.game,
                        &self.state,
                        self.round,
                        self.potential,
                        last_migrations,
                        self.record.approx.as_ref(),
                        fired,
                    ));
                }
                return Ok(RunSummary { reason, rounds: self.round, potential: self.potential });
            }
            let stats = self.step(rng)?;
            last_migrations = stats.migrations;
        }
    }

    fn check_stop(&self, stop: &StopSpec) -> Option<StopReason> {
        // While a round hook still has scheduled fires pending, the run is
        // nonstationary by declaration: equilibrium-type conditions are
        // deferred until the schedule drains (today's stable state is not
        // an outcome, it is the pre-shock reference). Only the round
        // budget can stop a run mid-schedule.
        let events_pending = self.hook.as_ref().and_then(|h| h.next_fire()).is_some();
        let expensive_due = self.round % stop.check_every() == 0 && !events_pending;
        for cond in stop.conditions() {
            match cond {
                StopCondition::MaxRounds(r) if self.round >= *r => {
                    return Some(StopReason::MaxRounds);
                }
                StopCondition::PotentialAtMost(v) if !events_pending && self.potential <= *v => {
                    return Some(StopReason::PotentialReached);
                }
                StopCondition::ImitationStable if expensive_due => {
                    let nu = self.protocol.stability_threshold(&self.params);
                    if congames_model::is_imitation_stable(&self.game, &self.state, nu) {
                        return Some(StopReason::ImitationStable);
                    }
                }
                StopCondition::ApproxEquilibrium(eq)
                    if expensive_due && eq.is_satisfied(&self.game, &self.state) =>
                {
                    return Some(StopReason::ApproxEquilibrium);
                }
                StopCondition::NashEquilibrium { tol }
                    if expensive_due
                        && congames_model::is_nash_equilibrium(&self.game, &self.state, *tol) =>
                {
                    return Some(StopReason::NashEquilibrium);
                }
                _ => {}
            }
        }
        None
    }
}

pub(crate) fn imitation_mu(
    p: &crate::protocol::ImitationProtocol,
    params: &GameParams,
    l_from: f64,
    gain: f64,
) -> f64 {
    if l_from <= 0.0 || gain <= p.gain_threshold(params) {
        return 0.0;
    }
    (p.lambda() / p.damping_factor(params) * gain / l_from).clamp(0.0, 1.0)
}

pub(crate) fn exploration_mu(
    p: &crate::protocol::ExplorationProtocol,
    params: &GameParams,
    l_from: f64,
    gain: f64,
    class_strategies: usize,
    class_players: u64,
) -> f64 {
    if l_from <= 0.0 || gain <= 0.0 || class_players == 0 {
        return 0.0;
    }
    let beta = params.beta.max(f64::MIN_POSITIVE);
    let scale = class_strategies as f64 * params.ell_min / (beta * class_players as f64);
    (p.lambda() * scale * gain / l_from).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Damping, ExplorationProtocol, ImitationProtocol, NuRule};
    use congames_model::Affine;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_links(n: u64) -> CongestionGame {
        CongestionGame::singleton(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], n)
            .unwrap()
    }

    fn imit() -> Protocol {
        ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into()
    }

    #[test]
    fn new_validates_state() {
        let game = two_links(4);
        let other = two_links(6);
        let state = State::from_counts(&other, vec![3, 3]).unwrap();
        assert!(Simulation::new(&game, imit(), state).is_err());
    }

    #[test]
    fn virtual_agent_mismatch_is_rejected() {
        let game = two_links(4);
        let state = State::from_counts(&game, vec![4, 0]).unwrap();
        let p: Protocol = ImitationProtocol::paper_default().with_virtual_agents(true).into();
        assert!(Simulation::new(&game, p, state).is_err());
        let state2 = State::from_counts(&game, vec![4, 0]).unwrap().with_virtual_agents(&game);
        assert!(Simulation::new(&game, p, state2).is_ok());
    }

    #[test]
    fn potential_tracks_incrementally() {
        let game = two_links(100);
        let state = State::from_counts(&game, vec![75, 25]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            sim.step(&mut rng).unwrap();
            let exact = potential(&game, sim.state());
            assert!(
                (sim.potential() - exact).abs() < 1e-6,
                "incremental potential drifted: {} vs {exact}",
                sim.potential()
            );
        }
        assert!(sim.state().loads_consistent(&game));
    }

    #[test]
    fn imbalanced_state_converges_to_balance() {
        let game = two_links(1000);
        let state = State::from_counts(&game, vec![900, 100]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let out = sim
            .run(
                &StopSpec::new(vec![
                    StopCondition::ImitationStable,
                    StopCondition::MaxRounds(10_000),
                ]),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.reason, StopReason::ImitationStable);
        // Imitation-stable on two identical linear links = balanced ± ν.
        let c0 = sim.state().count(StrategyId::new(0));
        assert!((499..=501).contains(&c0), "counts {c0}");
    }

    #[test]
    fn player_level_engine_matches_aggregate_in_distribution() {
        // Compare the mean one-round outflow of the two engines over many
        // replays from the same initial state.
        let game = two_links(64);
        let initial = State::from_counts(&game, vec![48, 16]).unwrap();
        let reps = 4000;
        let mut mean = [0.0f64; 2];
        for (ei, engine) in [EngineKind::Aggregate, EngineKind::PlayerLevel].into_iter().enumerate()
        {
            let mut sum = 0.0;
            for rep in 0..reps {
                let mut sim =
                    Simulation::new(&game, imit(), initial.clone()).unwrap().with_engine(engine);
                let mut rng = SmallRng::seed_from_u64(1000 + rep);
                sim.step(&mut rng).unwrap();
                sum += sim.state().count(StrategyId::new(0)) as f64;
            }
            mean[ei] = sum / reps as f64;
        }
        // Same distribution ⇒ same mean; tolerate 5σ of the empirical SEM
        // (counts move by a handful of players here, SEM ≪ 0.2).
        assert!(
            (mean[0] - mean[1]).abs() < 0.5,
            "engine means diverge: {} vs {}",
            mean[0],
            mean[1]
        );
    }

    #[test]
    fn expected_virtual_gain_is_nonpositive_and_zero_at_stability() {
        let game = two_links(50);
        let state = State::from_counts(&game, vec![40, 10]).unwrap();
        let sim = Simulation::new(&game, imit(), state).unwrap();
        assert!(sim.expected_virtual_gain() < 0.0);
        let balanced = State::from_counts(&game, vec![25, 25]).unwrap();
        let sim2 = Simulation::new(&game, imit(), balanced).unwrap();
        assert_eq!(sim2.expected_virtual_gain(), 0.0);
        assert!(sim2.migration_matrix().is_empty());
    }

    #[test]
    fn expected_movers_match_empirical_mean() {
        let game = two_links(64);
        let initial = State::from_counts(&game, vec![48, 16]).unwrap();
        let sim = Simulation::new(&game, imit(), initial.clone()).unwrap();
        let matrix = sim.migration_matrix();
        assert_eq!(matrix.len(), 1);
        let expect = matrix[0].expected_movers;
        let reps = 4000;
        let mut sum = 0.0;
        for rep in 0..reps {
            let mut s = Simulation::new(&game, imit(), initial.clone()).unwrap();
            let mut rng = SmallRng::seed_from_u64(rep);
            let stats = s.step(&mut rng).unwrap();
            sum += stats.migrations as f64;
        }
        let mean = sum / reps as f64;
        assert!((mean - expect).abs() < 0.2, "empirical movers {mean} vs expected {expect}");
    }

    #[test]
    fn run_stops_at_zero_rounds_for_stable_start() {
        let game = two_links(10);
        let state = State::from_counts(&game, vec![5, 5]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = sim.run(&StopSpec::new(vec![StopCondition::ImitationStable]), &mut rng).unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.reason, StopReason::ImitationStable);
    }

    #[test]
    fn recording_captures_series() {
        let game = two_links(100);
        let state = State::from_counts(&game, vec![80, 20]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state)
            .unwrap()
            .with_recording(RecordConfig::every_round());
        let mut rng = SmallRng::seed_from_u64(5);
        let out = sim.run(&StopSpec::max_rounds(10), &mut rng).unwrap();
        assert_eq!(out.reason, StopReason::MaxRounds);
        assert_eq!(out.trajectory.records().len(), 11); // rounds 0..=10
        assert_eq!(out.trajectory.records()[0].round, 0);
        assert!(out.trajectory.records()[0].potential >= out.trajectory.records()[10].potential);
    }

    /// A run resuming from a manually-stepped, off-cadence round still
    /// records its starting round — the documented "start record, cadence
    /// records, stop record" contract.
    #[test]
    fn recording_captures_an_off_cadence_start_round() {
        let game = two_links(100);
        let state = State::from_counts(&game, vec![80, 20]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state)
            .unwrap()
            .with_recording(RecordConfig { every: 3, approx: None });
        let mut rng = SmallRng::seed_from_u64(9);
        let mut moved = 0;
        for _ in 0..4 {
            moved = sim.step(&mut rng).unwrap().migrations; // round 4, off cadence
        }
        let out = sim.run(&StopSpec::max_rounds(10), &mut rng).unwrap();
        let rounds: Vec<u64> = out.trajectory.records().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![4, 6, 9, 10], "start, cadence, and stop records");
        // The start record carries the migrations of the manual step that
        // produced round 4, not a placeholder zero.
        assert_eq!(out.trajectory.records()[0].migrations, moved);
    }

    /// A hook that scales link 0's latency ×10 once, at round 5.
    #[derive(Debug)]
    struct ScaleHook {
        fired: bool,
    }

    impl crate::hook::RoundHook for ScaleHook {
        fn next_fire(&self) -> Option<u64> {
            if self.fired {
                None
            } else {
                Some(5)
            }
        }

        fn fire(
            &mut self,
            round: u64,
            game: &mut CongestionGame,
            _state: &mut State,
        ) -> Result<bool, DynamicsError> {
            assert_eq!(round, 5);
            self.fired = true;
            game.scale_latency(ResourceId::new(0), 10.0)?;
            Ok(true)
        }
    }

    #[test]
    fn hook_fires_once_marks_the_shock_round_and_rebuilds_the_potential() {
        let game = two_links(100);
        let state = State::from_counts(&game, vec![50, 50]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state)
            .unwrap()
            .with_recording(RecordConfig::every_round())
            .with_hook(Box::new(ScaleHook { fired: false }));
        let mut rng = SmallRng::seed_from_u64(21);
        let out = sim.run(&StopSpec::max_rounds(10), &mut rng).unwrap();
        let records = out.trajectory.records();
        assert_eq!(records.len(), 11);
        let shocked: Vec<u64> = records.iter().filter(|r| r.shock).map(|r| r.round).collect();
        assert_eq!(shocked, vec![5], "exactly the firing round is marked");
        // The shock round's record already reflects the ×10 latency on
        // link 0 — a strict potential jump over the pre-shock record.
        assert!(
            records[5].potential > records[4].potential * 2.0,
            "post-shock potential {} vs pre-shock {}",
            records[5].potential,
            records[4].potential
        );
        // The borrowed original game is untouched.
        assert_eq!(game.resource(ResourceId::new(0)).latency().value(10), 10.0);
        // The incrementally-maintained potential stays exact across the
        // shock (the hook path recomputes from scratch).
        let exact = potential(&game_scaled(), sim.state());
        assert!((sim.potential() - exact).abs() < 1e-9, "{} vs {exact}", sim.potential());
    }

    fn game_scaled() -> CongestionGame {
        CongestionGame::singleton(
            vec![Affine::linear(10.0).into(), Affine::linear(1.0).into()],
            100,
        )
        .unwrap()
    }

    #[test]
    fn pending_hook_defers_equilibrium_stops_until_the_schedule_drains() {
        // All players on the cheaper link is imitation-stable immediately —
        // a stationary run stops at round 0. With a shock pending at round
        // 5, the stability stop is deferred, the shock fires, and the run
        // ends at the first post-shock stable round (not the budget).
        let game = two_links(100);
        let state = State::from_counts(&game, vec![0, 100]).unwrap();
        let stop =
            StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(200)])
                .with_check_every(1);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut stationary = Simulation::new(&game, imit(), state.clone()).unwrap();
        let out = stationary.run(&stop, &mut rng).unwrap();
        assert_eq!((out.reason, out.rounds), (StopReason::ImitationStable, 0));
        let mut shocked = Simulation::new(&game, imit(), state)
            .unwrap()
            .with_hook(Box::new(ScaleHook { fired: false }));
        let mut rng = SmallRng::seed_from_u64(3);
        let out = shocked.run(&stop, &mut rng).unwrap();
        assert_eq!(out.reason, StopReason::ImitationStable, "re-stabilized after the shock");
        assert!(out.rounds >= 5, "ran through the shock round, got {}", out.rounds);
        assert!(out.rounds < 200, "did not burn the whole budget");
    }

    #[test]
    fn hook_that_does_not_advance_is_an_error() {
        #[derive(Debug)]
        struct Wedged;
        impl crate::hook::RoundHook for Wedged {
            fn next_fire(&self) -> Option<u64> {
                Some(0)
            }
            fn fire(
                &mut self,
                _round: u64,
                _game: &mut CongestionGame,
                _state: &mut State,
            ) -> Result<bool, DynamicsError> {
                Ok(false)
            }
        }
        let game = two_links(10);
        let state = State::from_counts(&game, vec![5, 5]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state).unwrap().with_hook(Box::new(Wedged));
        let mut rng = SmallRng::seed_from_u64(1);
        let err = sim.run(&StopSpec::max_rounds(3), &mut rng).unwrap_err();
        assert!(matches!(err, DynamicsError::Hook { .. }), "{err:?}");
    }

    #[test]
    fn exploration_discovers_unused_strategies() {
        // All players on link 0; imitation alone is stuck, exploration finds
        // link 1.
        let game = two_links(100);
        let state = State::from_counts(&game, vec![100, 0]).unwrap();
        let p: Protocol = ExplorationProtocol::paper_default().into();
        let mut sim = Simulation::new(&game, p, state).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let out = sim
            .run(
                &StopSpec::new(vec![
                    StopCondition::NashEquilibrium { tol: 1.0 },
                    StopCondition::MaxRounds(200_000),
                ]),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.reason, StopReason::NashEquilibrium);
        assert!(sim.state().count(StrategyId::new(1)) > 0);
    }

    #[test]
    fn combined_protocol_also_converges_to_nash() {
        let game = two_links(100);
        let state = State::from_counts(&game, vec![100, 0]).unwrap();
        let mut sim = Simulation::new(&game, Protocol::combined_default(), state).unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let out = sim
            .run(
                &StopSpec::new(vec![
                    StopCondition::NashEquilibrium { tol: 1.0 },
                    StopCondition::MaxRounds(200_000),
                ]),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.reason, StopReason::NashEquilibrium);
    }

    #[test]
    fn undamped_overshoots_on_polynomial_links() {
        // Section 2.3's instance: ℓ1 = c (constant), ℓ2 = x^d. Start with
        // everyone on link 1. One undamped round overshoots link 2 beyond
        // its balanced load; the damped protocol does not (in expectation).
        use congames_model::{Constant, Monomial};
        let d = 6u32;
        let n = 4096u64;
        let c = 1000.0;
        let game = CongestionGame::singleton(
            vec![Constant::new(c).into(), Monomial::new(1.0, d).into()],
            n,
        )
        .unwrap();
        // Balanced load: x with x^d = c ⇒ x ≈ c^(1/d) ≈ 3.16 ⇒ tiny. Start
        // with a few players on link 2 so it can be sampled.
        let start = State::from_counts(&game, vec![n - 2, 2]).unwrap();
        let reps = 200;
        let mut mean_load = [0.0f64; 2];
        for (i, damping) in [Damping::Elasticity, Damping::None].into_iter().enumerate() {
            let proto: Protocol = ImitationProtocol::new(0.9)
                .unwrap()
                .with_damping(damping)
                .with_nu_rule(NuRule::None)
                .into();
            let mut sum = 0.0;
            for rep in 0..reps {
                let mut sim = Simulation::new(&game, proto, start.clone()).unwrap();
                let mut rng = SmallRng::seed_from_u64(500 + rep);
                sim.step(&mut rng).unwrap();
                sum += sim.state().count(StrategyId::new(1)) as f64;
            }
            mean_load[i] = sum / reps as f64;
        }
        // Undamped inflow should be ≈ d times the damped inflow.
        let ratio = (mean_load[1] - 2.0) / (mean_load[0] - 2.0).max(1e-9);
        assert!(
            ratio > (d as f64) * 0.5,
            "undamped/damped inflow ratio {ratio}, means {mean_load:?}"
        );
    }
}
