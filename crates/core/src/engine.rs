//! Concurrent round engines.
//!
//! Both engines realize the same stochastic process — every player
//! independently samples and decides per the protocol, all migrations apply
//! simultaneously — but with different cost profiles:
//!
//! * [`EngineKind::PlayerLevel`] iterates players one by one (`O(n)` per
//!   round). It mirrors a naive implementation and serves as ground truth.
//! * [`EngineKind::Aggregate`] exploits anonymity: players on the same
//!   origin strategy face identical probabilities, so the joint outcome per
//!   origin is a multinomial over destinations, sampled in `O(S²)` per round
//!   regardless of `n`.
//!
//! Statistical equivalence of the two engines is asserted in the crate's
//! tests and in the integration suite.

use congames_model::{
    potential, potential_delta_for_load_change, CongestionGame, GameError, GameParams, Migration,
    ResourceId, State, StrategyId,
};
use congames_sampling::multinomial_with_rest;
use rand::Rng;

use crate::error::DynamicsError;
use crate::expectation::PairFlow;
use crate::protocol::{Protocol, SelfSampling};
use crate::stopping::{RunOutcome, StopCondition, StopReason, StopSpec};
use crate::trajectory::{capture_record, RecordConfig, Trajectory};

/// Which round engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Multinomial sampling per origin strategy; `O(S²)` per round.
    #[default]
    Aggregate,
    /// Explicit per-player iteration; `O(n)` per round. Ground truth.
    PlayerLevel,
}

/// Statistics of one executed round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Players that migrated.
    pub migrations: u64,
    /// Realized potential change `ΔΦ`.
    pub delta_potential: f64,
}

/// A running simulation: a game, a protocol, and the evolving state.
///
/// See the crate-level example for typical usage.
#[derive(Debug)]
pub struct Simulation<'g> {
    game: &'g CongestionGame,
    protocol: Protocol,
    params: GameParams,
    state: State,
    engine: EngineKind,
    record: RecordConfig,
    /// Explicit player array (player-level engine only), grouped by class:
    /// `players[class_offsets[c] .. class_offsets[c+1]]` are class `c`.
    players: Option<Vec<StrategyId>>,
    class_offsets: Vec<usize>,
    potential: f64,
    round: u64,
    /// Scratch buffers reused across rounds.
    migrations_buf: Vec<Migration>,
    old_loads_buf: Vec<u64>,
}

impl<'g> Simulation<'g> {
    /// Create a simulation of `protocol` on `game` starting from `state`,
    /// with the default (aggregate) engine and no recording.
    ///
    /// # Errors
    ///
    /// Fails if the state does not belong to the game, or if the protocol's
    /// virtual-agent setting disagrees with the state's base loads.
    pub fn new(
        game: &'g CongestionGame,
        protocol: Protocol,
        state: State,
    ) -> Result<Self, DynamicsError> {
        if state.counts().len() != game.num_strategies() {
            return Err(GameError::WrongLength {
                expected: game.num_strategies(),
                found: state.counts().len(),
            }
            .into());
        }
        for (ci, class) in game.classes().iter().enumerate() {
            let sum: u64 = class.strategy_range().map(|s| state.counts()[s as usize]).sum();
            if sum != class.players() {
                return Err(GameError::CountMismatch {
                    class: ci,
                    expected: class.players(),
                    found: sum,
                }
                .into());
            }
        }
        let wants_virtual = protocol.imitation().is_some_and(|p| p.virtual_agents());
        if wants_virtual != state.has_virtual_agents() {
            return Err(DynamicsError::InvalidParameter {
                name: "state",
                message:
                    "virtual-agent protocols require State::with_virtual_agents (and vice versa)",
            });
        }
        let params = game.params();
        let mut class_offsets = Vec::with_capacity(game.classes().len() + 1);
        let mut off = 0usize;
        class_offsets.push(0);
        for c in game.classes() {
            off += c.players() as usize;
            class_offsets.push(off);
        }
        let potential = potential(game, &state);
        Ok(Simulation {
            game,
            protocol,
            params,
            state,
            engine: EngineKind::Aggregate,
            record: RecordConfig::disabled(),
            players: None,
            class_offsets,
            potential,
            round: 0,
            migrations_buf: Vec::new(),
            old_loads_buf: Vec::new(),
        })
    }

    /// Select the round engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        if engine == EngineKind::PlayerLevel {
            self.ensure_players();
        }
        self
    }

    /// Configure trajectory recording.
    pub fn with_recording(mut self, record: RecordConfig) -> Self {
        self.record = record;
        self
    }

    /// The game's protocol parameters (`d`, `ν`, `β`, `ℓ_min`).
    pub fn params(&self) -> &GameParams {
        &self.params
    }

    /// The current state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// The protocol driving the dynamics.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// The current round index (number of executed rounds).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current Rosenthal potential (maintained incrementally).
    pub fn potential(&self) -> f64 {
        self.potential
    }

    fn ensure_players(&mut self) {
        if self.players.is_some() {
            return;
        }
        let mut players = Vec::with_capacity(self.game.total_players() as usize);
        for class in self.game.classes() {
            for sid in class.strategy_ids() {
                for _ in 0..self.state.counts()[sid.index()] {
                    players.push(sid);
                }
            }
        }
        self.players = Some(players);
    }

    /// Iterate all `(from, to)` pairs with positive migration probability in
    /// the *current* state, yielding the per-player probability (already
    /// combining imitation sampling, exploration sampling, and the mixture
    /// weight) and the anticipated latency gain.
    pub(crate) fn for_each_pair(&self, mut f: impl FnMut(StrategyId, StrategyId, f64, f64)) {
        let (explore_prob, imit, expl) = match &self.protocol {
            Protocol::Imitation(p) => (0.0, Some(p), None),
            Protocol::Exploration(p) => (1.0, None, Some(p)),
            Protocol::Combined { imitation, exploration, explore_prob } => {
                (*explore_prob, Some(imitation), Some(exploration))
            }
        };
        let virtual_agents = imit.is_some_and(|p| p.virtual_agents());
        for class in self.game.classes() {
            let n_c = class.players();
            if n_c == 0 {
                continue;
            }
            let s_c = class.num_strategies();
            for from_raw in class.strategy_range() {
                let from = StrategyId::new(from_raw);
                let x_from = self.state.counts()[from.index()];
                if x_from == 0 {
                    continue;
                }
                let l_from = self.state.strategy_latency(self.game, from);
                for to_raw in class.strategy_range() {
                    if to_raw == from_raw {
                        continue;
                    }
                    let to = StrategyId::new(to_raw);
                    let x_to = self.state.counts()[to.index()];
                    let mut prob = 0.0;
                    let l_to = self.state.latency_after_move(self.game, from, to);
                    let gain = l_from - l_to;
                    if let Some(p) = imit {
                        if explore_prob < 1.0 {
                            let w = x_to as f64 + if virtual_agents { 1.0 } else { 0.0 };
                            let total = match p.self_sampling() {
                                SelfSampling::Exclude => (n_c - 1) as f64,
                                SelfSampling::Include => n_c as f64,
                            } + if virtual_agents { s_c as f64 } else { 0.0 };
                            if w > 0.0 && total > 0.0 {
                                let mu = imitation_mu(p, &self.params, l_from, gain);
                                prob += (1.0 - explore_prob) * (w / total) * mu;
                            }
                        }
                    }
                    if let Some(p) = expl {
                        if explore_prob > 0.0 && s_c > 0 {
                            let mu = exploration_mu(p, &self.params, l_from, gain, s_c, n_c);
                            prob += explore_prob * mu / s_c as f64;
                        }
                    }
                    if prob > 0.0 {
                        f(from, to, prob, gain);
                    }
                }
            }
        }
    }

    /// The current migration matrix: one entry per `(from, to)` pair with
    /// positive probability.
    pub fn migration_matrix(&self) -> Vec<PairFlow> {
        let mut out = Vec::new();
        self.for_each_pair(|from, to, prob, gain| {
            let movers = self.state.counts()[from.index()] as f64 * prob;
            out.push(PairFlow { from, to, probability: prob, gain, expected_movers: movers });
        });
        out
    }

    /// The exact expected *virtual potential gain* of the next round,
    /// `E[Σ_{P,Q} V_PQ] = Σ_{P,Q} x_P·p_PQ·(ℓ_Q(x+1_Q−1_P) − ℓ_P(x))`
    /// (non-positive; see Lemma 2 and Theorem 7).
    pub fn expected_virtual_gain(&self) -> f64 {
        let mut total = 0.0;
        self.for_each_pair(|from, _to, prob, gain| {
            total -= self.state.counts()[from.index()] as f64 * prob * gain;
        });
        total
    }

    /// Execute one concurrent round.
    ///
    /// # Errors
    ///
    /// Surfaces internal sampling/application failures (none occur for valid
    /// simulations; the error path exists instead of panicking).
    pub fn step(&mut self, rng: &mut impl Rng) -> Result<RoundStats, DynamicsError> {
        let mut migrations = std::mem::take(&mut self.migrations_buf);
        migrations.clear();
        match self.engine {
            EngineKind::Aggregate => self.aggregate_round(rng, &mut migrations)?,
            EngineKind::PlayerLevel => self.player_round(rng, &mut migrations)?,
        }
        // Apply simultaneously and update the potential incrementally.
        let mut old_loads = std::mem::take(&mut self.old_loads_buf);
        old_loads.clear();
        old_loads.extend_from_slice(self.state.loads());
        self.state.apply_migrations(self.game, &migrations)?;
        let mut delta = 0.0;
        for (i, (&o, &n)) in old_loads.iter().zip(self.state.loads()).enumerate() {
            if o != n {
                let r = ResourceId::new(i as u32);
                let base = self.state.effective_load(r) - self.state.load(r);
                delta += potential_delta_for_load_change(self.game, r, base, o, n);
            }
        }
        self.potential += delta;
        self.round += 1;
        let moved: u64 = migrations.iter().map(|m| m.count).sum();
        self.migrations_buf = migrations;
        self.old_loads_buf = old_loads;
        Ok(RoundStats { migrations: moved, delta_potential: delta })
    }

    fn aggregate_round(
        &mut self,
        rng: &mut impl Rng,
        migrations: &mut Vec<Migration>,
    ) -> Result<(), DynamicsError> {
        // Group the pair probabilities by origin, then draw one multinomial
        // per origin. `for_each_pair` visits origins contiguously.
        let mut pending: Vec<(StrategyId, Vec<(StrategyId, f64)>)> = Vec::new();
        self.for_each_pair(|from, to, prob, _gain| match pending.last_mut() {
            Some((f, v)) if *f == from => v.push((to, prob)),
            _ => pending.push((from, vec![(to, prob)])),
        });
        for (from, dests) in pending {
            let x_from = self.state.counts()[from.index()];
            let probs: Vec<f64> = dests.iter().map(|(_, p)| *p).collect();
            let (counts, _stay) = multinomial_with_rest(rng, x_from, &probs)?;
            for ((to, _), k) in dests.into_iter().zip(counts) {
                if k > 0 {
                    migrations.push(Migration::new(from, to, k));
                }
            }
        }
        Ok(())
    }

    fn player_round(
        &mut self,
        rng: &mut impl Rng,
        migrations: &mut Vec<Migration>,
    ) -> Result<(), DynamicsError> {
        self.ensure_players();
        let (explore_prob, imit, expl) = match &self.protocol {
            Protocol::Imitation(p) => (0.0, Some(*p), None),
            Protocol::Exploration(p) => (1.0, None, Some(*p)),
            Protocol::Combined { imitation, exploration, explore_prob } => {
                (*explore_prob, Some(*imitation), Some(*exploration))
            }
        };
        let virtual_agents = imit.is_some_and(|p| p.virtual_agents());
        // Cache ℓ_P and pairwise μ for the round (decisions all use the
        // pre-round state).
        let s_total = self.game.num_strategies();
        let mut l_cache: Vec<f64> = vec![f64::NAN; s_total];
        let mut mu_cache: std::collections::HashMap<(u32, u32, bool), f64> =
            std::collections::HashMap::new();
        let players = self.players.as_ref().expect("ensure_players ran");
        let mut moves: Vec<(usize, StrategyId)> = Vec::new();
        for (ci, class) in self.game.classes().iter().enumerate() {
            let n_c = class.players();
            if n_c == 0 {
                continue;
            }
            let s_c = class.num_strategies();
            let start = self.class_offsets[ci];
            let my_range = class.strategy_range();
            for local in 0..n_c as usize {
                let idx = start + local;
                let from = players[idx];
                let explore = explore_prob > 0.0 && rng.gen::<f64>() < explore_prob;
                let to: StrategyId;
                let is_explore: bool;
                if explore {
                    let pick = rng.gen_range(0..s_c) as u32 + my_range.start;
                    to = StrategyId::new(pick);
                    is_explore = true;
                } else {
                    let p = match imit {
                        Some(p) => p,
                        None => continue,
                    };
                    // Sample another agent uniformly (optionally self /
                    // virtual agents).
                    let real_pool = match p.self_sampling() {
                        SelfSampling::Exclude => n_c - 1,
                        SelfSampling::Include => n_c,
                    };
                    let pool = real_pool + if virtual_agents { s_c as u64 } else { 0 };
                    if pool == 0 {
                        continue;
                    }
                    let draw = rng.gen_range(0..pool);
                    if draw < real_pool {
                        let mut j = draw as usize;
                        if p.self_sampling() == SelfSampling::Exclude && j >= local {
                            j += 1;
                        }
                        to = players[start + j];
                    } else {
                        to = StrategyId::new(my_range.start + (draw - real_pool) as u32);
                    }
                    is_explore = false;
                }
                if to == from {
                    continue;
                }
                let mu = *mu_cache.entry((from.raw(), to.raw(), is_explore)).or_insert_with(|| {
                    let l_from = if l_cache[from.index()].is_nan() {
                        let v = self.state.strategy_latency(self.game, from);
                        l_cache[from.index()] = v;
                        v
                    } else {
                        l_cache[from.index()]
                    };
                    let l_to = self.state.latency_after_move(self.game, from, to);
                    let gain = l_from - l_to;
                    if is_explore {
                        exploration_mu(
                            &expl.expect("explore implies protocol"),
                            &self.params,
                            l_from,
                            gain,
                            s_c,
                            n_c,
                        )
                    } else {
                        imitation_mu(
                            &imit.expect("imitate implies protocol"),
                            &self.params,
                            l_from,
                            gain,
                        )
                    }
                });
                if mu > 0.0 && rng.gen::<f64>() < mu {
                    moves.push((idx, to));
                }
            }
        }
        // Commit: update the player array and aggregate into migrations.
        let players = self.players.as_mut().expect("ensure_players ran");
        let mut agg: std::collections::HashMap<(u32, u32), u64> = std::collections::HashMap::new();
        for (idx, to) in moves {
            let from = players[idx];
            players[idx] = to;
            *agg.entry((from.raw(), to.raw())).or_insert(0) += 1;
        }
        for ((f, t), k) in agg {
            migrations.push(Migration::new(StrategyId::new(f), StrategyId::new(t), k));
        }
        Ok(())
    }

    /// Run until a stop condition fires.
    ///
    /// Conditions are evaluated on the state *before* each round (so a
    /// satisfied initial state reports `rounds = 0`); expensive checks run
    /// at the spec's cadence.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulation::step`] failures.
    pub fn run(
        &mut self,
        stop: &StopSpec,
        rng: &mut impl Rng,
    ) -> Result<RunOutcome, DynamicsError> {
        let mut trajectory = Trajectory::new();
        let mut last_migrations = 0u64;
        loop {
            let recording = self.record.every > 0 && (self.round % self.record.every == 0);
            if recording {
                trajectory.push(capture_record(
                    self.game,
                    &self.state,
                    self.round,
                    self.potential,
                    last_migrations,
                    self.record.approx.as_ref(),
                ));
            }
            if let Some(reason) = self.check_stop(stop) {
                if self.record.every > 0 && !recording {
                    trajectory.push(capture_record(
                        self.game,
                        &self.state,
                        self.round,
                        self.potential,
                        last_migrations,
                        self.record.approx.as_ref(),
                    ));
                }
                return Ok(RunOutcome {
                    reason,
                    rounds: self.round,
                    potential: self.potential,
                    trajectory,
                });
            }
            let stats = self.step(rng)?;
            last_migrations = stats.migrations;
        }
    }

    fn check_stop(&self, stop: &StopSpec) -> Option<StopReason> {
        let expensive_due = self.round % stop.check_every() == 0;
        for cond in stop.conditions() {
            match cond {
                StopCondition::MaxRounds(r) if self.round >= *r => {
                    return Some(StopReason::MaxRounds);
                }
                StopCondition::PotentialAtMost(v) if self.potential <= *v => {
                    return Some(StopReason::PotentialReached);
                }
                StopCondition::ImitationStable if expensive_due => {
                    let nu = self.protocol.stability_threshold(&self.params);
                    if congames_model::is_imitation_stable(self.game, &self.state, nu) {
                        return Some(StopReason::ImitationStable);
                    }
                }
                StopCondition::ApproxEquilibrium(eq)
                    if expensive_due && eq.is_satisfied(self.game, &self.state) =>
                {
                    return Some(StopReason::ApproxEquilibrium);
                }
                StopCondition::NashEquilibrium { tol }
                    if expensive_due
                        && congames_model::is_nash_equilibrium(self.game, &self.state, *tol) =>
                {
                    return Some(StopReason::NashEquilibrium);
                }
                _ => {}
            }
        }
        None
    }
}

fn imitation_mu(
    p: &crate::protocol::ImitationProtocol,
    params: &GameParams,
    l_from: f64,
    gain: f64,
) -> f64 {
    if l_from <= 0.0 || gain <= p.gain_threshold(params) {
        return 0.0;
    }
    (p.lambda() / p.damping_factor(params) * gain / l_from).clamp(0.0, 1.0)
}

fn exploration_mu(
    p: &crate::protocol::ExplorationProtocol,
    params: &GameParams,
    l_from: f64,
    gain: f64,
    class_strategies: usize,
    class_players: u64,
) -> f64 {
    if l_from <= 0.0 || gain <= 0.0 || class_players == 0 {
        return 0.0;
    }
    let beta = params.beta.max(f64::MIN_POSITIVE);
    let scale = class_strategies as f64 * params.ell_min / (beta * class_players as f64);
    (p.lambda() * scale * gain / l_from).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Damping, ExplorationProtocol, ImitationProtocol, NuRule};
    use congames_model::Affine;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_links(n: u64) -> CongestionGame {
        CongestionGame::singleton(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], n)
            .unwrap()
    }

    fn imit() -> Protocol {
        ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into()
    }

    #[test]
    fn new_validates_state() {
        let game = two_links(4);
        let other = two_links(6);
        let state = State::from_counts(&other, vec![3, 3]).unwrap();
        assert!(Simulation::new(&game, imit(), state).is_err());
    }

    #[test]
    fn virtual_agent_mismatch_is_rejected() {
        let game = two_links(4);
        let state = State::from_counts(&game, vec![4, 0]).unwrap();
        let p: Protocol = ImitationProtocol::paper_default().with_virtual_agents(true).into();
        assert!(Simulation::new(&game, p, state).is_err());
        let state2 = State::from_counts(&game, vec![4, 0]).unwrap().with_virtual_agents(&game);
        assert!(Simulation::new(&game, p, state2).is_ok());
    }

    #[test]
    fn potential_tracks_incrementally() {
        let game = two_links(100);
        let state = State::from_counts(&game, vec![75, 25]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            sim.step(&mut rng).unwrap();
            let exact = potential(&game, sim.state());
            assert!(
                (sim.potential() - exact).abs() < 1e-6,
                "incremental potential drifted: {} vs {exact}",
                sim.potential()
            );
        }
        assert!(sim.state().loads_consistent(&game));
    }

    #[test]
    fn imbalanced_state_converges_to_balance() {
        let game = two_links(1000);
        let state = State::from_counts(&game, vec![900, 100]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let out = sim
            .run(
                &StopSpec::new(vec![
                    StopCondition::ImitationStable,
                    StopCondition::MaxRounds(10_000),
                ]),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.reason, StopReason::ImitationStable);
        // Imitation-stable on two identical linear links = balanced ± ν.
        let c0 = sim.state().count(StrategyId::new(0));
        assert!((499..=501).contains(&c0), "counts {c0}");
    }

    #[test]
    fn player_level_engine_matches_aggregate_in_distribution() {
        // Compare the mean one-round outflow of the two engines over many
        // replays from the same initial state.
        let game = two_links(64);
        let initial = State::from_counts(&game, vec![48, 16]).unwrap();
        let reps = 4000;
        let mut mean = [0.0f64; 2];
        for (ei, engine) in [EngineKind::Aggregate, EngineKind::PlayerLevel].into_iter().enumerate()
        {
            let mut sum = 0.0;
            for rep in 0..reps {
                let mut sim =
                    Simulation::new(&game, imit(), initial.clone()).unwrap().with_engine(engine);
                let mut rng = SmallRng::seed_from_u64(1000 + rep);
                sim.step(&mut rng).unwrap();
                sum += sim.state().count(StrategyId::new(0)) as f64;
            }
            mean[ei] = sum / reps as f64;
        }
        // Same distribution ⇒ same mean; tolerate 5σ of the empirical SEM
        // (counts move by a handful of players here, SEM ≪ 0.2).
        assert!(
            (mean[0] - mean[1]).abs() < 0.5,
            "engine means diverge: {} vs {}",
            mean[0],
            mean[1]
        );
    }

    #[test]
    fn expected_virtual_gain_is_nonpositive_and_zero_at_stability() {
        let game = two_links(50);
        let state = State::from_counts(&game, vec![40, 10]).unwrap();
        let sim = Simulation::new(&game, imit(), state).unwrap();
        assert!(sim.expected_virtual_gain() < 0.0);
        let balanced = State::from_counts(&game, vec![25, 25]).unwrap();
        let sim2 = Simulation::new(&game, imit(), balanced).unwrap();
        assert_eq!(sim2.expected_virtual_gain(), 0.0);
        assert!(sim2.migration_matrix().is_empty());
    }

    #[test]
    fn expected_movers_match_empirical_mean() {
        let game = two_links(64);
        let initial = State::from_counts(&game, vec![48, 16]).unwrap();
        let sim = Simulation::new(&game, imit(), initial.clone()).unwrap();
        let matrix = sim.migration_matrix();
        assert_eq!(matrix.len(), 1);
        let expect = matrix[0].expected_movers;
        let reps = 4000;
        let mut sum = 0.0;
        for rep in 0..reps {
            let mut s = Simulation::new(&game, imit(), initial.clone()).unwrap();
            let mut rng = SmallRng::seed_from_u64(rep);
            let stats = s.step(&mut rng).unwrap();
            sum += stats.migrations as f64;
        }
        let mean = sum / reps as f64;
        assert!((mean - expect).abs() < 0.2, "empirical movers {mean} vs expected {expect}");
    }

    #[test]
    fn run_stops_at_zero_rounds_for_stable_start() {
        let game = two_links(10);
        let state = State::from_counts(&game, vec![5, 5]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = sim.run(&StopSpec::new(vec![StopCondition::ImitationStable]), &mut rng).unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.reason, StopReason::ImitationStable);
    }

    #[test]
    fn recording_captures_series() {
        let game = two_links(100);
        let state = State::from_counts(&game, vec![80, 20]).unwrap();
        let mut sim = Simulation::new(&game, imit(), state)
            .unwrap()
            .with_recording(RecordConfig::every_round());
        let mut rng = SmallRng::seed_from_u64(5);
        let out = sim.run(&StopSpec::max_rounds(10), &mut rng).unwrap();
        assert_eq!(out.reason, StopReason::MaxRounds);
        assert_eq!(out.trajectory.records().len(), 11); // rounds 0..=10
        assert_eq!(out.trajectory.records()[0].round, 0);
        assert!(out.trajectory.records()[0].potential >= out.trajectory.records()[10].potential);
    }

    #[test]
    fn exploration_discovers_unused_strategies() {
        // All players on link 0; imitation alone is stuck, exploration finds
        // link 1.
        let game = two_links(100);
        let state = State::from_counts(&game, vec![100, 0]).unwrap();
        let p: Protocol = ExplorationProtocol::paper_default().into();
        let mut sim = Simulation::new(&game, p, state).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let out = sim
            .run(
                &StopSpec::new(vec![
                    StopCondition::NashEquilibrium { tol: 1.0 },
                    StopCondition::MaxRounds(200_000),
                ]),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.reason, StopReason::NashEquilibrium);
        assert!(sim.state().count(StrategyId::new(1)) > 0);
    }

    #[test]
    fn combined_protocol_also_converges_to_nash() {
        let game = two_links(100);
        let state = State::from_counts(&game, vec![100, 0]).unwrap();
        let mut sim = Simulation::new(&game, Protocol::combined_default(), state).unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let out = sim
            .run(
                &StopSpec::new(vec![
                    StopCondition::NashEquilibrium { tol: 1.0 },
                    StopCondition::MaxRounds(200_000),
                ]),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.reason, StopReason::NashEquilibrium);
    }

    #[test]
    fn undamped_overshoots_on_polynomial_links() {
        // Section 2.3's instance: ℓ1 = c (constant), ℓ2 = x^d. Start with
        // everyone on link 1. One undamped round overshoots link 2 beyond
        // its balanced load; the damped protocol does not (in expectation).
        use congames_model::{Constant, Monomial};
        let d = 6u32;
        let n = 4096u64;
        let c = 1000.0;
        let game = CongestionGame::singleton(
            vec![Constant::new(c).into(), Monomial::new(1.0, d).into()],
            n,
        )
        .unwrap();
        // Balanced load: x with x^d = c ⇒ x ≈ c^(1/d) ≈ 3.16 ⇒ tiny. Start
        // with a few players on link 2 so it can be sampled.
        let start = State::from_counts(&game, vec![n - 2, 2]).unwrap();
        let reps = 200;
        let mut mean_load = [0.0f64; 2];
        for (i, damping) in [Damping::Elasticity, Damping::None].into_iter().enumerate() {
            let proto: Protocol = ImitationProtocol::new(0.9)
                .unwrap()
                .with_damping(damping)
                .with_nu_rule(NuRule::None)
                .into();
            let mut sum = 0.0;
            for rep in 0..reps {
                let mut sim = Simulation::new(&game, proto, start.clone()).unwrap();
                let mut rng = SmallRng::seed_from_u64(500 + rep);
                sim.step(&mut rng).unwrap();
                sum += sim.state().count(StrategyId::new(1)) as f64;
            }
            mean_load[i] = sum / reps as f64;
        }
        // Undamped inflow should be ≈ d times the damped inflow.
        let ratio = (mean_load[1] - 2.0) / (mean_load[0] - 2.0).max(1e-9);
        assert!(
            ratio > (d as f64) * 0.5,
            "undamped/damped inflow ratio {ratio}, means {mean_load:?}"
        );
    }
}
