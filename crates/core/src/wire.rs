//! Versioned wire encoding for reducer partials — the cross-process leg
//! of [`Ensemble::run_reduced`](crate::Ensemble::run_reduced).
//!
//! A distributed sweep shards its trials across processes; each shard
//! reduces its slice online and ships the resulting partials to a merger.
//! For the merged result to be **byte-identical** to a single-process
//! `run_reduced`, two things must survive the trip:
//!
//! 1. **Bits.** Every `f64` travels as its IEEE-754 bit pattern
//!    ([`f64::to_bits`], little-endian), never through decimal text, so
//!    `encode → decode` is the identity on every accumulator.
//! 2. **The merge tree.** Floating-point merges (Welford/Chan) are *not*
//!    bitwise associative, so a shard cannot pre-merge its blocks into one
//!    partial without changing the final bits. The unit on the wire is
//!    therefore the **reduction-tree leaf**: one partial per fixed
//!    [`REDUCE_BLOCK`](crate::REDUCE_BLOCK)-trial block, exactly the
//!    leaves `run_reduced` produces. The merger replays
//!    [`merge_partials`](crate::merge_partials) over all shards' leaves in
//!    global block order — the same left-deep chain the single process
//!    walks — and lands on the same bits.
//!
//! # Frame layout (version 3)
//!
//! A shard file is:
//!
//! ```text
//! magic        8 bytes  b"CGSHARD\0"
//! version      u32      WIRE_VERSION (readers reject anything else)
//! base_seed    u64      the sweep's base seed (per-trial seeds derive
//!                       from split_seed(base_seed, trial))
//! trials       u64      total trials of the *whole* sweep
//! trial_lo/hi  u64 ×2   this shard's half-open global trial range
//! shard        u32      this shard's index
//! num_shards   u32      total shard count
//! rng_mode     u8       RngMode::code() — the backend every trial drew
//!                       from (0 = xoshiro, 1 = counter); shards of one
//!                       merge must agree
//! reducer_id   string   stable reducer identifier incl. configuration
//! config       string   free-form run-configuration digest
//! checksum     u64      FNV-1a 64 over the payload bytes
//! payload_len  u64
//! payload:     u32 block count, then per block: u32 frame length +
//!              frame bytes (one encoded reducer partial)
//! ```
//!
//! Strings are `u64` length + UTF-8 bytes; all integers little-endian.
//! Every multi-element field is length-prefixed, so a truncated file fails
//! with a precise [`WireError::Truncated`] instead of misparsing, and a
//! flipped payload byte fails the checksum before any partial is decoded.
//!
//! # Versioning rules
//!
//! [`WIRE_VERSION`] bumps whenever any encoding in this module changes
//! shape or meaning (including any [`WireReduce::wire_id`] payload
//! layout). Readers reject other versions outright — partials are
//! short-lived transport between equal-version processes, not an archival
//! format, so no cross-version migration is attempted. The `reducer_id`
//! carries statistical configuration (e.g. the sketch accuracy `α`), so
//! merging partials reduced under different configurations is rejected
//! up front with [`WireError::ReducerMismatch`].

use std::collections::BTreeMap;

use congames_sampling::RngMode;

use crate::reduce::{
    ConvergenceHistogram, MapItem, MinMax, PerRoundStats, QuantileSketch, ReasonStats, Reducer,
    RoundIndexStats, ScalarStats, Welford, STOP_REASONS,
};
use crate::stopping::{RunSummary, StopReason};
use crate::trajectory::RoundRecord;

/// Version tag written into (and required from) every shard file.
/// Version 2 added the `rng_mode` header byte; version 3 added the
/// per-record `shock` flag (nonstationary scenarios).
pub const WIRE_VERSION: u32 = 3;

/// Magic bytes opening every shard file.
pub const MAGIC: [u8; 8] = *b"CGSHARD\0";

/// Why a shard file (or a partial inside one) was rejected. Every variant
/// renders a precise, distinct message — a corrupt byte, a truncated
/// download, a wrong-seed mix-up, and a version skew all look different.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The buffer ended in the middle of the named field.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The file does not open with [`MAGIC`].
    BadMagic,
    /// The file was written by a different (incompatible) format version.
    UnsupportedVersion {
        /// The version tag found in the file.
        found: u32,
    },
    /// The payload hash does not match the header checksum.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// The file carries partials of a different reducer (or the same
    /// reducer under a different statistical configuration).
    ReducerMismatch {
        /// The merger's reducer id.
        expected: String,
        /// The id found in the file.
        found: String,
    },
    /// Shard files disagree on the base seed — they come from different
    /// sweeps, and merging them would silently blend unrelated streams.
    SeedMismatch {
        /// Seed of the first file.
        expected: u64,
        /// Seed of the offending file.
        found: u64,
    },
    /// A shard file was produced with a different run configuration.
    ConfigMismatch {
        /// The offending shard index.
        shard: u32,
    },
    /// Shard files were produced under different RNG backends — their
    /// trials drew from unrelated streams, so merging them would not
    /// reproduce any single-process sweep.
    RngModeMismatch {
        /// The offending shard index.
        shard: u32,
        /// Mode of the first file.
        expected: RngMode,
        /// Mode of the offending file.
        found: RngMode,
    },
    /// Bytes remained after the declared end of the file.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A structurally invalid field (bad UTF-8, an out-of-range tag, a
    /// frame that decoded to the wrong length, …).
    Malformed {
        /// What was malformed.
        context: &'static str,
    },
    /// The shard files do not line up into one contiguous, in-order
    /// cover of the sweep's trial range.
    ShardSequence {
        /// Precise description of the first inconsistency.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "truncated shard data while reading {context}")
            }
            WireError::BadMagic => write!(f, "not a congames shard file (bad magic)"),
            WireError::UnsupportedVersion { found } => write!(
                f,
                "unsupported shard format version {found} (this build reads version \
                 {WIRE_VERSION})"
            ),
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch: header says {stored:#018x} but the payload hashes \
                 to {computed:#018x} (corrupt or tampered shard file)"
            ),
            WireError::ReducerMismatch { expected, found } => {
                write!(f, "reducer mismatch: merging `{expected}` but the file carries `{found}`")
            }
            WireError::SeedMismatch { expected, found } => write!(
                f,
                "base-seed mismatch: merging a sweep with seed {expected} but the file was \
                 produced with seed {found}"
            ),
            WireError::ConfigMismatch { shard } => write!(
                f,
                "shard {shard} was produced with a different run configuration than the first \
                 shard file"
            ),
            WireError::RngModeMismatch { shard, expected, found } => write!(
                f,
                "rng-mode mismatch: shard {shard} was produced under `--rng {found}` but the \
                 first shard file used `--rng {expected}`"
            ),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the shard payload")
            }
            WireError::Malformed { context } => write!(f, "malformed shard data: {context}"),
            WireError::ShardSequence { detail } => write!(f, "invalid shard sequence: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Byte-level primitives
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    // Bits, not decimals: the round trip must be the identity.
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over an encoded buffer. Every read names what
/// it was reading, so truncation errors are precise.
#[derive(Debug)]
pub struct WireCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireCursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The absolute read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, context)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, context)?.try_into().expect("8 bytes")))
    }

    fn i32(&mut self, context: &'static str) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4, context)?.try_into().expect("4 bytes")))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// A `u64` length that must also fit `usize` and the remaining buffer
    /// (so a corrupt length cannot drive a huge allocation).
    fn len(&mut self, context: &'static str) -> Result<usize, WireError> {
        let n = self.u64(context)?;
        let n = usize::try_from(n).map_err(|_| WireError::Malformed { context })?;
        if n > self.remaining() {
            return Err(WireError::Truncated { context });
        }
        Ok(n)
    }

    fn str(&mut self, context: &'static str) -> Result<String, WireError> {
        let n = self.len(context)?;
        let bytes = self.take(n, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed { context })
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch the flipped
/// bytes and short reads this format defends against (it is corruption
/// detection, not cryptographic integrity).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// WireReduce: the extension trait
// ---------------------------------------------------------------------------

/// A [`Reducer`] whose partials have a stable wire encoding.
///
/// `encode_partial → decode_partial` must be the identity on the
/// accumulator, bit for bit — every `f64` travels as its bit pattern.
/// `decode_partial` takes `self` as the **configuration prototype**: wire
/// payloads carry data (counts, moments, buckets), while configuration
/// that cannot ride the wire (a `MapItem` projection) or must agree with
/// the merger (a sketch's `α`) comes from the prototype, which is
/// typically `reducer.identity()` on the merging side.
pub trait WireReduce: Reducer {
    /// Stable identifier of this reducer's payload shape, including any
    /// statistical configuration. Mismatched ids are rejected before any
    /// payload is decoded.
    fn wire_id(&self) -> String;

    /// Append this partial's payload to `out`.
    fn encode_partial(&self, out: &mut Vec<u8>);

    /// Decode one partial, using `self` as the configuration prototype.
    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError>;
}

impl WireReduce for Welford {
    fn wire_id(&self) -> String {
        "welford".into()
    }

    fn encode_partial(&self, out: &mut Vec<u8>) {
        let (count, mean, m2) = self.raw_parts();
        put_u64(out, count);
        put_f64(out, mean);
        put_f64(out, m2);
    }

    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let count = cur.u64("welford count")?;
        let mean = cur.f64("welford mean")?;
        let m2 = cur.f64("welford m2")?;
        Ok(Welford::from_raw_parts(count, mean, m2))
    }
}

impl WireReduce for MinMax {
    fn wire_id(&self) -> String {
        "minmax".into()
    }

    fn encode_partial(&self, out: &mut Vec<u8>) {
        put_f64(out, self.min());
        put_f64(out, self.max());
    }

    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let min = cur.f64("minmax min")?;
        let max = cur.f64("minmax max")?;
        Ok(MinMax::from_raw_parts(min, max))
    }
}

fn encode_bucket_map(out: &mut Vec<u8>, map: &BTreeMap<i32, u64>) {
    put_u64(out, map.len() as u64);
    for (&k, &c) in map {
        put_i32(out, k);
        put_u64(out, c);
    }
}

fn decode_bucket_map(cur: &mut WireCursor<'_>) -> Result<BTreeMap<i32, u64>, WireError> {
    let n = cur.u64("sketch bucket count")?;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let k = cur.i32("sketch bucket key")?;
        let c = cur.u64("sketch bucket tally")?;
        if map.insert(k, c).is_some() {
            return Err(WireError::Malformed { context: "duplicate sketch bucket key" });
        }
    }
    Ok(map)
}

impl WireReduce for QuantileSketch {
    fn wire_id(&self) -> String {
        // α is statistical configuration: partials sketched at different
        // accuracies must not merge, so it is part of the identity.
        format!("qsketch(alpha={})", self.alpha())
    }

    fn encode_partial(&self, out: &mut Vec<u8>) {
        let (count, zero, non_finite, pos, neg, envelope) = self.raw_parts();
        put_f64(out, self.alpha());
        put_u64(out, count);
        put_u64(out, zero);
        put_u64(out, non_finite);
        encode_bucket_map(out, pos);
        encode_bucket_map(out, neg);
        envelope.encode_partial(out);
    }

    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let alpha = cur.f64("sketch alpha")?;
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(WireError::Malformed { context: "sketch alpha outside (0, 1)" });
        }
        if alpha.to_bits() != self.alpha().to_bits() {
            return Err(WireError::ReducerMismatch {
                expected: self.wire_id(),
                found: format!("qsketch(alpha={alpha})"),
            });
        }
        let count = cur.u64("sketch count")?;
        let zero = cur.u64("sketch zero tally")?;
        let non_finite = cur.u64("sketch non-finite tally")?;
        let pos = decode_bucket_map(cur)?;
        let neg = decode_bucket_map(cur)?;
        let envelope = MinMax::new().decode_partial(cur)?;
        Ok(QuantileSketch::from_raw_parts(alpha, count, zero, non_finite, pos, neg, envelope))
    }
}

impl WireReduce for ScalarStats {
    fn wire_id(&self) -> String {
        format!("scalar-stats[{}]", self.sketch().wire_id())
    }

    fn encode_partial(&self, out: &mut Vec<u8>) {
        self.moments().encode_partial(out);
        self.sketch().encode_partial(out);
    }

    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let moments = self.moments().decode_partial(cur)?;
        let sketch = self.sketch().decode_partial(cur)?;
        Ok(ScalarStats::from_raw_parts(moments, sketch))
    }
}

fn encode_round_index_stats(out: &mut Vec<u8>, s: &RoundIndexStats) {
    s.round.encode_partial(out);
    s.potential.encode_partial(out);
    s.l_av.encode_partial(out);
    s.l_av_plus.encode_partial(out);
    s.max_latency.encode_partial(out);
    s.migrations.encode_partial(out);
    s.support.encode_partial(out);
    s.unsatisfied_fraction.encode_partial(out);
    s.potential_env.encode_partial(out);
    s.l_av_env.encode_partial(out);
    s.migrations_env.encode_partial(out);
}

fn decode_round_index_stats(cur: &mut WireCursor<'_>) -> Result<RoundIndexStats, WireError> {
    let w = Welford::new();
    let m = MinMax::new();
    Ok(RoundIndexStats {
        round: w.decode_partial(cur)?,
        potential: w.decode_partial(cur)?,
        l_av: w.decode_partial(cur)?,
        l_av_plus: w.decode_partial(cur)?,
        max_latency: w.decode_partial(cur)?,
        migrations: w.decode_partial(cur)?,
        support: w.decode_partial(cur)?,
        unsatisfied_fraction: w.decode_partial(cur)?,
        potential_env: m.decode_partial(cur)?,
        l_av_env: m.decode_partial(cur)?,
        migrations_env: m.decode_partial(cur)?,
    })
}

impl WireReduce for PerRoundStats {
    fn wire_id(&self) -> String {
        "per-round-stats".into()
    }

    fn encode_partial(&self, out: &mut Vec<u8>) {
        put_u64(out, self.trials());
        put_u64(out, self.rounds().len() as u64);
        for s in self.rounds() {
            encode_round_index_stats(out, s);
        }
    }

    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let trials = cur.u64("per-round trials")?;
        let n = cur.u64("per-round index count")?;
        // Each index is ≥ 8 Welfords + 3 envelopes = 216 bytes: bound the
        // allocation by what the buffer can actually hold.
        if n > (cur.remaining() / 216) as u64 {
            return Err(WireError::Truncated { context: "per-round index table" });
        }
        let mut rounds = Vec::with_capacity(n as usize);
        for _ in 0..n {
            rounds.push(decode_round_index_stats(cur)?);
        }
        Ok(PerRoundStats::from_raw_parts(trials, rounds))
    }
}

fn encode_reason_stats(out: &mut Vec<u8>, s: &ReasonStats) {
    s.rounds.encode_partial(out);
    s.envelope.encode_partial(out);
    put_u64(out, s.buckets().len() as u64);
    for &b in s.buckets() {
        put_u64(out, b);
    }
}

fn decode_reason_stats(cur: &mut WireCursor<'_>) -> Result<ReasonStats, WireError> {
    let rounds = Welford::new().decode_partial(cur)?;
    let envelope = MinMax::new().decode_partial(cur)?;
    let n = cur.u64("histogram bucket count")?;
    if n > 65 {
        // Power-of-two buckets over u64 rounds: at most 65 exist.
        return Err(WireError::Malformed { context: "histogram bucket count exceeds 65" });
    }
    let mut buckets = Vec::with_capacity(n as usize);
    for _ in 0..n {
        buckets.push(cur.u64("histogram bucket")?);
    }
    Ok(ReasonStats::from_raw_parts(rounds, envelope, buckets))
}

impl WireReduce for ConvergenceHistogram {
    fn wire_id(&self) -> String {
        "convergence-histogram".into()
    }

    fn encode_partial(&self, out: &mut Vec<u8>) {
        for s in self.raw_parts() {
            encode_reason_stats(out, s);
        }
    }

    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let mut slots: [ReasonStats; 5] = Default::default();
        for slot in &mut slots {
            *slot = decode_reason_stats(cur)?;
        }
        Ok(ConvergenceHistogram::from_raw_parts(slots))
    }
}

impl<T, F: Fn(T) -> R::Item + Clone, R: WireReduce> WireReduce for MapItem<T, F, R> {
    fn wire_id(&self) -> String {
        // The projection is code, not data: two processes agree on it by
        // running the same configuration (enforced via the shard header's
        // config digest), not via the payload.
        format!("map({})", self.inner().wire_id())
    }

    fn encode_partial(&self, out: &mut Vec<u8>) {
        self.inner().encode_partial(out);
    }

    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let inner = self.inner().decode_partial(cur)?;
        Ok(MapItem::new(self.project_fn().clone(), inner))
    }
}

impl<T: Clone, A, B> WireReduce for (A, B)
where
    A: WireReduce<Item = T>,
    B: WireReduce<Item = T>,
{
    fn wire_id(&self) -> String {
        format!("pair({},{})", self.0.wire_id(), self.1.wire_id())
    }

    fn encode_partial(&self, out: &mut Vec<u8>) {
        self.0.encode_partial(out);
        self.1.encode_partial(out);
    }

    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Ok((self.0.decode_partial(cur)?, self.1.decode_partial(cur)?))
    }
}

impl<T: Clone, A, B, C> WireReduce for (A, B, C)
where
    A: WireReduce<Item = T>,
    B: WireReduce<Item = T>,
    C: WireReduce<Item = T>,
{
    fn wire_id(&self) -> String {
        format!("triple({},{},{})", self.0.wire_id(), self.1.wire_id(), self.2.wire_id())
    }

    fn encode_partial(&self, out: &mut Vec<u8>) {
        self.0.encode_partial(out);
        self.1.encode_partial(out);
        self.2.encode_partial(out);
    }

    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Ok((self.0.decode_partial(cur)?, self.1.decode_partial(cur)?, self.2.decode_partial(cur)?))
    }
}

// ---------------------------------------------------------------------------
// WireItem: elements of the materializing Vec reducer
// ---------------------------------------------------------------------------

/// Plain-data trial outputs that can ride the wire inside the
/// materializing `Vec<T>` reducer.
pub trait WireItem: Sized {
    /// Stable identifier of the item encoding.
    fn item_id() -> String;

    /// Append this item's encoding to `out`.
    fn encode_item(&self, out: &mut Vec<u8>);

    /// Decode one item.
    fn decode_item(cur: &mut WireCursor<'_>) -> Result<Self, WireError>;
}

impl WireItem for f64 {
    fn item_id() -> String {
        "f64".into()
    }

    fn encode_item(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }

    fn decode_item(cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        cur.f64("f64 item")
    }
}

impl WireItem for u64 {
    fn item_id() -> String {
        "u64".into()
    }

    fn encode_item(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }

    fn decode_item(cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        cur.u64("u64 item")
    }
}

fn stop_reason_tag(reason: StopReason) -> u8 {
    STOP_REASONS.iter().position(|&r| r == reason).expect("every StopReason is listed") as u8
}

fn stop_reason_from_tag(tag: u8) -> Result<StopReason, WireError> {
    STOP_REASONS
        .get(tag as usize)
        .copied()
        .ok_or(WireError::Malformed { context: "unknown stop-reason tag" })
}

impl WireItem for RunSummary {
    fn item_id() -> String {
        "run-summary".into()
    }

    fn encode_item(&self, out: &mut Vec<u8>) {
        out.push(stop_reason_tag(self.reason));
        put_u64(out, self.rounds);
        put_f64(out, self.potential);
    }

    fn decode_item(cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let reason = stop_reason_from_tag(cur.u8("stop-reason tag")?)?;
        let rounds = cur.u64("summary rounds")?;
        let potential = cur.f64("summary potential")?;
        Ok(RunSummary { reason, rounds, potential })
    }
}

impl WireItem for RoundRecord {
    fn item_id() -> String {
        "round-record".into()
    }

    fn encode_item(&self, out: &mut Vec<u8>) {
        put_u64(out, self.round);
        put_f64(out, self.potential);
        put_f64(out, self.l_av);
        put_f64(out, self.l_av_plus);
        put_f64(out, self.max_latency);
        put_u64(out, self.migrations);
        put_u64(out, self.support as u64);
        match self.unsatisfied_fraction {
            None => out.push(0),
            Some(u) => {
                out.push(1);
                put_f64(out, u);
            }
        }
        out.push(self.shock as u8);
    }

    fn decode_item(cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let round = cur.u64("record round")?;
        let potential = cur.f64("record potential")?;
        let l_av = cur.f64("record l_av")?;
        let l_av_plus = cur.f64("record l_av_plus")?;
        let max_latency = cur.f64("record max_latency")?;
        let migrations = cur.u64("record migrations")?;
        let support = usize::try_from(cur.u64("record support")?)
            .map_err(|_| WireError::Malformed { context: "record support overflows usize" })?;
        let unsatisfied_fraction = match cur.u8("record unsatisfied tag")? {
            0 => None,
            1 => Some(cur.f64("record unsatisfied fraction")?),
            _ => return Err(WireError::Malformed { context: "record unsatisfied tag" }),
        };
        let shock = match cur.u8("record shock flag")? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Malformed { context: "record shock flag" }),
        };
        Ok(RoundRecord {
            round,
            potential,
            l_av,
            l_av_plus,
            max_latency,
            migrations,
            support,
            unsatisfied_fraction,
            shock,
        })
    }
}

impl<W: WireItem> WireItem for Vec<W> {
    fn item_id() -> String {
        format!("vec({})", W::item_id())
    }

    fn encode_item(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        for item in self {
            item.encode_item(out);
        }
    }

    fn decode_item(cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        let n = cur.u64("vec item count")?;
        // Every item costs at least one byte; bound the allocation.
        if n > cur.remaining() as u64 {
            return Err(WireError::Truncated { context: "vec items" });
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(W::decode_item(cur)?);
        }
        Ok(out)
    }
}

impl<W: WireItem> WireReduce for Vec<W> {
    fn wire_id(&self) -> String {
        format!("vec({})", W::item_id())
    }

    fn encode_partial(&self, out: &mut Vec<u8>) {
        self.encode_item(out);
    }

    fn decode_partial(&self, cur: &mut WireCursor<'_>) -> Result<Self, WireError> {
        Vec::decode_item(cur)
    }
}

// ---------------------------------------------------------------------------
// Shard files
// ---------------------------------------------------------------------------

/// The self-describing header of one shard's partial file: everything the
/// merger validates before any payload is decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHeader {
    /// Base seed of the sweep; per-trial seeds derive from
    /// `split_seed(base_seed, trial)`, so equal seeds mean equal streams.
    pub base_seed: u64,
    /// Total trials of the whole sweep (not just this shard).
    pub trials: u64,
    /// First global trial index this shard covers.
    pub trial_lo: u64,
    /// One past the last global trial index this shard covers.
    pub trial_hi: u64,
    /// This shard's index.
    pub shard: u32,
    /// Total number of shards in the sweep.
    pub num_shards: u32,
    /// RNG backend every trial of the sweep drew from.
    pub rng_mode: RngMode,
    /// [`WireReduce::wire_id`] of the reducer the payload carries.
    pub reducer_id: String,
    /// Free-form digest of the run configuration (game, protocol, stop
    /// rule, …). Merging requires byte-equal configs across shards.
    pub config: String,
}

/// Encode a complete shard file: header plus `blocks` — this shard's
/// reduction-tree leaves **in block order** (see the module docs for why
/// leaves, not a pre-merged partial, are what travels).
pub fn encode_shard_file<R: WireReduce>(header: &ShardHeader, blocks: &[R]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u32(&mut payload, blocks.len() as u32);
    let mut frame = Vec::new();
    for block in blocks {
        frame.clear();
        block.encode_partial(&mut frame);
        put_u32(&mut payload, frame.len() as u32);
        payload.extend_from_slice(&frame);
    }
    let mut out = Vec::with_capacity(payload.len() + 128);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, WIRE_VERSION);
    put_u64(&mut out, header.base_seed);
    put_u64(&mut out, header.trials);
    put_u64(&mut out, header.trial_lo);
    put_u64(&mut out, header.trial_hi);
    put_u32(&mut out, header.shard);
    put_u32(&mut out, header.num_shards);
    out.push(header.rng_mode.code());
    put_str(&mut out, &header.reducer_id);
    put_str(&mut out, &header.config);
    put_u64(&mut out, fnv1a64(&payload));
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decode only the header of a shard file (no payload validation): how a
/// merger discovers which reducer a file carries before it can build the
/// matching prototype for [`decode_shard_file`].
pub fn decode_shard_header(bytes: &[u8]) -> Result<ShardHeader, WireError> {
    let mut cur = WireCursor::new(bytes);
    let magic = cur.take(8, "magic")?;
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = cur.u32("format version")?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let base_seed = cur.u64("base seed")?;
    let trials = cur.u64("trial count")?;
    let trial_lo = cur.u64("trial range start")?;
    let trial_hi = cur.u64("trial range end")?;
    let shard = cur.u32("shard index")?;
    let num_shards = cur.u32("shard count")?;
    let rng_mode = RngMode::from_code(cur.u8("rng mode")?)
        .ok_or(WireError::Malformed { context: "unknown rng-mode code" })?;
    let reducer_id = cur.str("reducer id")?;
    let config = cur.str("config digest")?;
    if trial_lo > trial_hi || trial_hi > trials {
        return Err(WireError::Malformed { context: "shard trial range outside the sweep" });
    }
    Ok(ShardHeader {
        base_seed,
        trials,
        trial_lo,
        trial_hi,
        shard,
        num_shards,
        rng_mode,
        reducer_id,
        config,
    })
}

/// Decode and fully validate one shard file against the merger's reducer
/// `prototype`: magic, version, reducer id, payload checksum, and exact
/// frame lengths all have to line up, or a precise [`WireError`] says
/// which one did not.
pub fn decode_shard_file<R: WireReduce>(
    prototype: &R,
    bytes: &[u8],
) -> Result<(ShardHeader, Vec<R>), WireError> {
    let header = decode_shard_header(bytes)?;
    if header.reducer_id != prototype.wire_id() {
        return Err(WireError::ReducerMismatch {
            expected: prototype.wire_id(),
            found: header.reducer_id,
        });
    }
    // Re-walk to the payload: the header decoder consumed an unknown
    // number of string bytes, so reparse positionally.
    let mut cur = WireCursor::new(bytes);
    cur.take(8 + 4 + 8 * 4 + 4 + 4 + 1, "header")?;
    let _ = cur.str("reducer id")?;
    let _ = cur.str("config digest")?;
    let stored = cur.u64("payload checksum")?;
    let payload_len = cur.len("payload length")?;
    let payload_at = cur.position();
    let payload = cur.take(payload_len, "payload")?;
    if cur.remaining() > 0 {
        return Err(WireError::TrailingBytes { extra: cur.remaining() });
    }
    let computed = fnv1a64(payload);
    if computed != stored {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    let mut cur = WireCursor::new(bytes);
    cur.take(payload_at, "header")?;
    let blocks = cur.u32("block count")?;
    let mut out = Vec::with_capacity(blocks as usize);
    for _ in 0..blocks {
        let frame_len = cur.u32("frame length")? as usize;
        let frame_end = cur.position() + frame_len;
        if frame_len > cur.remaining() {
            return Err(WireError::Truncated { context: "block frame" });
        }
        let partial = prototype.decode_partial(&mut cur)?;
        if cur.position() != frame_end {
            return Err(WireError::Malformed { context: "block frame length mismatch" });
        }
        out.push(partial);
    }
    if cur.position() != payload_at + payload_len {
        return Err(WireError::TrailingBytes { extra: payload_at + payload_len - cur.position() });
    }
    Ok((header, out))
}

/// Validate that `headers` (in the order the merger will replay them) form
/// one complete, in-order, same-sweep cover of `[0, trials)`: same seed,
/// same config, same reducer, shard `i` in file `i`, and contiguous trial
/// ranges. Returns the first inconsistency as a precise error.
pub fn validate_shard_sequence(headers: &[ShardHeader]) -> Result<(), WireError> {
    let Some(first) = headers.first() else {
        return Err(WireError::ShardSequence { detail: "no shard files given".into() });
    };
    if headers.len() != first.num_shards as usize {
        return Err(WireError::ShardSequence {
            detail: format!(
                "sweep was split into {} shards but {} file(s) were given",
                first.num_shards,
                headers.len()
            ),
        });
    }
    let mut expected_lo = 0u64;
    for (i, h) in headers.iter().enumerate() {
        if h.base_seed != first.base_seed {
            return Err(WireError::SeedMismatch { expected: first.base_seed, found: h.base_seed });
        }
        if h.rng_mode != first.rng_mode {
            return Err(WireError::RngModeMismatch {
                shard: h.shard,
                expected: first.rng_mode,
                found: h.rng_mode,
            });
        }
        if h.config != first.config {
            return Err(WireError::ConfigMismatch { shard: h.shard });
        }
        if h.reducer_id != first.reducer_id {
            return Err(WireError::ReducerMismatch {
                expected: first.reducer_id.clone(),
                found: h.reducer_id.clone(),
            });
        }
        if h.trials != first.trials || h.num_shards != first.num_shards {
            return Err(WireError::ShardSequence {
                detail: format!(
                    "file {i} describes a sweep of {} trials over {} shards, expected {} over {}",
                    h.trials, h.num_shards, first.trials, first.num_shards
                ),
            });
        }
        if h.shard != i as u32 {
            return Err(WireError::ShardSequence {
                detail: format!("file {i} carries shard {} — merge in shard order", h.shard),
            });
        }
        if h.trial_lo != expected_lo {
            return Err(WireError::ShardSequence {
                detail: format!(
                    "shard {} starts at trial {} but the previous shard ended at {}",
                    h.shard, h.trial_lo, expected_lo
                ),
            });
        }
        expected_lo = h.trial_hi;
    }
    if expected_lo != first.trials {
        return Err(WireError::ShardSequence {
            detail: format!(
                "shards cover trials up to {} of {} — a shard file is missing",
                expected_lo, first.trials
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> ShardHeader {
        ShardHeader {
            base_seed: 42,
            trials: 96,
            trial_lo: 0,
            trial_hi: 32,
            shard: 0,
            num_shards: 3,
            rng_mode: RngMode::Xoshiro,
            reducer_id: "welford".into(),
            config: "links=1,2;players=10".into(),
        }
    }

    fn sample_welford(xs: &[f64]) -> Welford {
        let mut w = Welford::new();
        for &x in xs {
            w.push(x);
        }
        w
    }

    #[test]
    fn welford_round_trips_bitwise() {
        let w = sample_welford(&[1.5, -2.25, 1e300, 3.0]);
        let mut buf = Vec::new();
        w.encode_partial(&mut buf);
        let got = Welford::new().decode_partial(&mut WireCursor::new(&buf)).unwrap();
        assert_eq!(got, w);
    }

    #[test]
    fn empty_envelope_round_trips_infinities() {
        let m = MinMax::new();
        let mut buf = Vec::new();
        m.encode_partial(&mut buf);
        let got = MinMax::new().decode_partial(&mut WireCursor::new(&buf)).unwrap();
        assert_eq!(got, m, "±∞ must survive the bit-level round trip");
    }

    #[test]
    fn shard_file_round_trips() {
        let blocks = vec![sample_welford(&[1.0, 2.0]), sample_welford(&[5.0])];
        let bytes = encode_shard_file(&sample_header(), &blocks);
        let (header, got) = decode_shard_file(&Welford::new(), &bytes).unwrap();
        assert_eq!(header, sample_header());
        assert_eq!(got, blocks);
    }

    #[test]
    fn header_peek_does_not_need_a_prototype() {
        let bytes = encode_shard_file(&sample_header(), &[sample_welford(&[1.0])]);
        assert_eq!(decode_shard_header(&bytes).unwrap(), sample_header());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_shard_file(&sample_header(), &[sample_welford(&[1.0])]);
        bytes[0] = b'X';
        assert_eq!(decode_shard_header(&bytes), Err(WireError::BadMagic));
    }

    #[test]
    fn wrong_version_is_rejected_with_the_found_version() {
        let mut bytes = encode_shard_file(&sample_header(), &[sample_welford(&[1.0])]);
        bytes[8] = 99;
        let err = decode_shard_header(&bytes).unwrap_err();
        assert_eq!(err, WireError::UnsupportedVersion { found: 99 });
        assert!(err.to_string().contains("version 99"));
    }

    #[test]
    fn truncation_names_the_missing_field() {
        let bytes = encode_shard_file(&sample_header(), &[sample_welford(&[1.0])]);
        let err = decode_shard_file(&Welford::new(), &bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err, WireError::Truncated { context: "payload length" });
        assert!(err.to_string().contains("truncated"));
        // Cutting into the header names the header field instead.
        let err = decode_shard_header(&bytes[..20]).unwrap_err();
        assert_eq!(err, WireError::Truncated { context: "trial count" });
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let mut bytes = encode_shard_file(&sample_header(), &[sample_welford(&[1.0, 2.0])]);
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        let err = decode_shard_file(&Welford::new(), &bytes).unwrap_err();
        assert!(matches!(err, WireError::ChecksumMismatch { .. }), "{err}");
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn reducer_mismatch_names_both_sides() {
        let bytes = encode_shard_file(&sample_header(), &[sample_welford(&[1.0])]);
        let err = decode_shard_file(&MinMax::new(), &bytes).unwrap_err();
        assert_eq!(
            err,
            WireError::ReducerMismatch { expected: "minmax".into(), found: "welford".into() }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_shard_file(&sample_header(), &[sample_welford(&[1.0])]);
        bytes.extend_from_slice(b"junk");
        let err = decode_shard_file(&Welford::new(), &bytes).unwrap_err();
        assert_eq!(err, WireError::TrailingBytes { extra: 4 });
    }

    #[test]
    fn shard_sequence_validation_is_precise() {
        let mut headers: Vec<ShardHeader> = (0..3)
            .map(|s| ShardHeader {
                shard: s,
                trial_lo: u64::from(s) * 32,
                trial_hi: u64::from(s + 1) * 32,
                ..sample_header()
            })
            .collect();
        assert_eq!(validate_shard_sequence(&headers), Ok(()));

        let mut wrong_seed = headers.clone();
        wrong_seed[1].base_seed = 7;
        assert_eq!(
            validate_shard_sequence(&wrong_seed),
            Err(WireError::SeedMismatch { expected: 42, found: 7 })
        );

        let mut out_of_order = headers.clone();
        out_of_order.swap(0, 1);
        assert!(matches!(
            validate_shard_sequence(&out_of_order),
            Err(WireError::ShardSequence { .. })
        ));

        let mut gap = headers.clone();
        gap[1].trial_lo = 33;
        let err = validate_shard_sequence(&gap).unwrap_err();
        assert!(err.to_string().contains("previous shard ended at 32"), "{err}");

        assert!(matches!(
            validate_shard_sequence(&headers[..2]),
            Err(WireError::ShardSequence { .. })
        ));

        headers[2].config = "different".into();
        assert_eq!(validate_shard_sequence(&headers), Err(WireError::ConfigMismatch { shard: 2 }));
    }

    #[test]
    fn sketch_alpha_mismatch_is_a_reducer_mismatch() {
        let mut fine = QuantileSketch::new(0.05);
        fine.push(2.0);
        let mut buf = Vec::new();
        fine.encode_partial(&mut buf);
        let err = QuantileSketch::new(0.01).decode_partial(&mut WireCursor::new(&buf)).unwrap_err();
        assert!(matches!(err, WireError::ReducerMismatch { .. }), "{err}");
    }

    #[test]
    fn run_summary_items_round_trip() {
        use crate::stopping::StopReason;
        let items = vec![
            RunSummary { reason: StopReason::ImitationStable, rounds: 17, potential: 3.25 },
            RunSummary { reason: StopReason::MaxRounds, rounds: 1000, potential: -0.5 },
        ];
        let mut buf = Vec::new();
        items.encode_partial(&mut buf);
        let got: Vec<RunSummary> = Vec::new().decode_partial(&mut WireCursor::new(&buf)).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].reason, StopReason::ImitationStable);
        assert_eq!(got[1].rounds, 1000);
        assert_eq!(got[1].potential.to_bits(), (-0.5f64).to_bits());
    }
}
