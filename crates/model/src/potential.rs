//! Rosenthal's potential function.
//!
//! `Φ(x) = Σ_e Σ_{i=1..x_e} ℓ_e(i)` (Rosenthal 1973). States minimizing `Φ`
//! are exactly the Nash equilibria of the game; the IMITATION PROTOCOL
//! decreases `Φ` in expectation each round (Corollary 3), which is the engine
//! behind all convergence results in the paper.

use crate::game::CongestionGame;
use crate::state::State;

/// Rosenthal potential of `state`: `Σ_e Σ_{i=1..x_e} ℓ_e(i)`.
///
/// Runs in `O(Σ_e x_e)` latency evaluations — one batched
/// [`Latency::sum_range`](crate::Latency::sum_range) walk per resource
/// instead of one virtual call per load (`O(1)` for the closed-form
/// families); engines maintain the potential incrementally (see
/// [`potential_delta_for_load_change`]) and use this for verification and
/// initialization. Base loads from virtual agents shift the summation
/// window: the sum runs over `i ∈ x⁰_e+1 ..= x⁰_e+x_e` so that only
/// player-induced congestion contributes, matching the incremental updates.
pub fn potential(game: &CongestionGame, state: &State) -> f64 {
    let mut phi = 0.0;
    for (idx, r) in game.resources().iter().enumerate() {
        let rid = crate::resource::ResourceId::new(idx as u32);
        let base = state.effective_load(rid) - state.load(rid);
        let x = state.load(rid);
        phi += r.latency().sum_range(base, 1..x + 1);
    }
    phi
}

/// Rosenthal potential computed directly from a load vector (no base loads).
///
/// Useful when working with flows rather than states (e.g. comparing against
/// the optimal flow's potential `Φ*`).
///
/// # Panics
///
/// Panics if `loads.len()` differs from the game's resource count.
pub fn potential_of_loads(game: &CongestionGame, loads: &[u64]) -> f64 {
    assert_eq!(loads.len(), game.num_resources(), "load vector length mismatch");
    let mut phi = 0.0;
    for (r, &x) in game.resources().iter().zip(loads) {
        phi += r.latency().sum_range(0, 1..x + 1);
    }
    phi
}

/// Potential change contributed by resource `r` when its player-induced load
/// moves from `old` to `new` (base load `base` held fixed):
///
/// * `new > old`: `+ Σ_{u=old+1..new} ℓ(base+u)`
/// * `new < old`: `− Σ_{u=new+1..old} ℓ(base+u)`
///
/// Summing this over all changed resources gives the exact `ΔΦ` of a
/// migration batch, which is how the engines keep `Φ` current in `O(|Δx|)`
/// latency evaluations per round — the walk over the intermediate loads is
/// one batched [`Latency::sum_range`](crate::Latency::sum_range) call:
/// left-to-right summation (bit-identical to the scalar loop it replaced)
/// for the families on the default, and exact closed forms for
/// constant/affine resources, which may differ from that loop by ulps
/// (see the exactness notes in [`latency`](crate::latency)).
pub fn potential_delta_for_load_change(
    game: &CongestionGame,
    r: crate::resource::ResourceId,
    base: u64,
    old: u64,
    new: u64,
) -> f64 {
    let res = game.resource(r);
    if new > old {
        res.latency().sum_range(base, old + 1..new + 1)
    } else if old > new {
        -res.latency().sum_range(base, new + 1..old + 1)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{Affine, Monomial};
    use crate::resource::ResourceId;
    use crate::state::Migration;
    use crate::strategy::{Strategy, StrategyId};

    fn sid(i: u32) -> StrategyId {
        StrategyId::new(i)
    }

    #[test]
    fn potential_linear_closed_form() {
        // ℓ(x) = a x ⇒ Σ_{i≤k} a i = a k(k+1)/2.
        let game = CongestionGame::singleton(
            vec![Affine::linear(2.0).into(), Affine::linear(3.0).into()],
            7,
        )
        .unwrap();
        let s = State::from_counts(&game, vec![4, 3]).unwrap();
        let expect = 2.0 * (4.0 * 5.0 / 2.0) + 3.0 * (3.0 * 4.0 / 2.0);
        assert!((potential(&game, &s) - expect).abs() < 1e-9);
    }

    #[test]
    fn potential_of_loads_matches_state_potential() {
        let game = CongestionGame::singleton(
            vec![Monomial::new(1.0, 2).into(), Affine::new(1.0, 5.0).into()],
            6,
        )
        .unwrap();
        let s = State::from_counts(&game, vec![2, 4]).unwrap();
        assert!((potential(&game, &s) - potential_of_loads(&game, s.loads())).abs() < 1e-12);
    }

    #[test]
    fn delta_matches_recomputation_over_moves() {
        let mut b = CongestionGame::builder();
        let r0 = b.add_resource(Monomial::new(1.0, 2).into());
        let r1 = b.add_resource(Affine::new(0.5, 1.0).into());
        let r2 = b.add_resource(Affine::linear(2.0).into());
        b.add_class(
            "c",
            5,
            vec![
                Strategy::new(vec![r0, r1]).unwrap(),
                Strategy::new(vec![r1, r2]).unwrap(),
                Strategy::new(vec![r2]).unwrap(),
            ],
        )
        .unwrap();
        let game = b.build().unwrap();
        let mut s = State::from_counts(&game, vec![3, 1, 1]).unwrap();
        let mut phi = potential(&game, &s);

        let moves = [(0u32, 1u32), (1, 2), (0, 2), (2, 0)];
        for (f, t) in moves {
            let old_loads = s.loads().to_vec();
            s.apply_move(&game, sid(f), sid(t)).unwrap();
            let mut delta = 0.0;
            for (i, (&o, &n)) in old_loads.iter().zip(s.loads()).enumerate() {
                delta += potential_delta_for_load_change(&game, ResourceId::new(i as u32), 0, o, n);
            }
            phi += delta;
            assert!(
                (phi - potential(&game, &s)).abs() < 1e-9,
                "incremental potential drifted after move {f}->{t}"
            );
        }
    }

    #[test]
    fn single_move_delta_equals_latency_difference() {
        // The defining property of Rosenthal's potential: for a unilateral
        // move P→Q, ΔΦ = ℓ_Q(x + 1_Q − 1_P) − ℓ_P(x).
        let game = CongestionGame::singleton(
            vec![Monomial::new(2.0, 3).into(), Affine::new(1.0, 4.0).into()],
            9,
        )
        .unwrap();
        let mut s = State::from_counts(&game, vec![6, 3]).unwrap();
        let before = potential(&game, &s);
        let gain_target = s.latency_after_move(&game, sid(0), sid(1));
        let leave = s.strategy_latency(&game, sid(0));
        s.apply_move(&game, sid(0), sid(1)).unwrap();
        let after = potential(&game, &s);
        assert!((after - before - (gain_target - leave)).abs() < 1e-9);
    }

    #[test]
    fn batch_migration_delta_matches() {
        let game = CongestionGame::singleton(
            vec![
                Affine::linear(1.0).into(),
                Affine::linear(1.0).into(),
                Affine::linear(1.0).into(),
            ],
            9,
        )
        .unwrap();
        let mut s = State::from_counts(&game, vec![5, 2, 2]).unwrap();
        let before = potential(&game, &s);
        let old = s.loads().to_vec();
        s.apply_migrations(
            &game,
            &[Migration::new(sid(0), sid(1), 2), Migration::new(sid(0), sid(2), 1)],
        )
        .unwrap();
        let delta: f64 = old
            .iter()
            .zip(s.loads())
            .enumerate()
            .map(|(i, (&o, &n))| {
                potential_delta_for_load_change(&game, ResourceId::new(i as u32), 0, o, n)
            })
            .sum();
        assert!((potential(&game, &s) - before - delta).abs() < 1e-9);
    }

    #[test]
    fn potential_with_virtual_agents_uses_shifted_window() {
        let game = CongestionGame::singleton(vec![Affine::linear(1.0).into()], 3).unwrap();
        let s = State::from_counts(&game, vec![3]).unwrap().with_virtual_agents(&game);
        // base 1, players 3: Σ_{i=2..4} i = 9
        assert!((potential(&game, &s) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_load_contributes_zero() {
        let game = CongestionGame::singleton(
            vec![Affine::new(1.0, 10.0).into(), Affine::linear(1.0).into()],
            2,
        )
        .unwrap();
        let s = State::from_counts(&game, vec![0, 2]).unwrap();
        assert!((potential(&game, &s) - 3.0).abs() < 1e-12);
    }
}
