//! Congestion games: resources, strategies, and player classes.

use std::ops::Range;

use crate::error::GameError;
use crate::latency::LatencyFn;
use crate::resource::{Resource, ResourceId};
use crate::strategy::{Strategy, StrategyId};

/// A group of interchangeable players sharing one strategy set.
///
/// A *symmetric* congestion game has a single class. Asymmetric games (such
/// as the threshold games of Section 3.2) have one class per player or per
/// player type; imitation then samples only within one's own class, as the
/// paper notes after Corollary 5.
#[derive(Debug, Clone)]
pub struct PlayerClass {
    name: String,
    strategies: Range<u32>,
    players: u64,
}

impl PlayerClass {
    /// The class's (diagnostic) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The contiguous range of global strategy ids available to this class.
    pub fn strategy_range(&self) -> Range<u32> {
        self.strategies.clone()
    }

    /// Iterate over the strategy ids available to this class.
    pub fn strategy_ids(&self) -> impl Iterator<Item = StrategyId> {
        self.strategies.clone().map(StrategyId::new)
    }

    /// Number of strategies available to this class.
    pub fn num_strategies(&self) -> usize {
        self.strategies.len()
    }

    /// Number of players in this class.
    pub fn players(&self) -> u64 {
        self.players
    }
}

/// An atomic congestion game with player classes.
///
/// Construct games with [`CongestionGame::singleton`],
/// [`CongestionGame::symmetric`], or the incremental [`SymmetricBuilder`] /
/// [`CongestionGame::builder`] APIs.
///
/// # Example
///
/// ```
/// use congames_model::{CongestionGame, Monomial};
///
/// // Four parallel links with latency x², 100 players.
/// let game = CongestionGame::singleton(
///     (0..4).map(|_| Monomial::new(1.0, 2).into()).collect(),
///     100,
/// )?;
/// assert_eq!(game.num_resources(), 4);
/// assert_eq!(game.num_strategies(), 4);
/// assert_eq!(game.total_players(), 100);
/// # Ok::<(), congames_model::GameError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CongestionGame {
    resources: Vec<Resource>,
    strategies: Vec<Strategy>,
    /// Class index of every strategy (parallel to `strategies`).
    strategy_class: Vec<u32>,
    classes: Vec<PlayerClass>,
}

impl CongestionGame {
    /// Build a *singleton* (parallel-links) game: one strategy per resource,
    /// a single symmetric class of `players`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::NoResources`] if `latencies` is empty.
    pub fn singleton(latencies: Vec<LatencyFn>, players: u64) -> Result<Self, GameError> {
        if latencies.is_empty() {
            return Err(GameError::NoResources);
        }
        let resources: Vec<Resource> = latencies.into_iter().map(Resource::new).collect();
        let strategies: Vec<Strategy> =
            (0..resources.len()).map(|i| Strategy::singleton(ResourceId::new(i as u32))).collect();
        Self::from_parts(resources, vec![("players".to_string(), strategies, players)])
    }

    /// Build a symmetric game: all `players` share the given strategy set.
    ///
    /// # Errors
    ///
    /// Fails if `resources` or `strategies` is empty, or if a strategy
    /// references an out-of-range resource.
    pub fn symmetric(
        resources: Vec<Resource>,
        strategies: Vec<Strategy>,
        players: u64,
    ) -> Result<Self, GameError> {
        Self::from_parts(resources, vec![("players".to_string(), strategies, players)])
    }

    /// Start building a game with explicit resources and (possibly several)
    /// player classes.
    pub fn builder() -> SymmetricBuilder {
        SymmetricBuilder::new()
    }

    fn from_parts(
        resources: Vec<Resource>,
        classes: Vec<(String, Vec<Strategy>, u64)>,
    ) -> Result<Self, GameError> {
        if resources.is_empty() {
            return Err(GameError::NoResources);
        }
        if classes.is_empty() {
            return Err(GameError::NoClasses);
        }
        let mut strategies = Vec::new();
        let mut strategy_class = Vec::new();
        let mut class_list = Vec::new();
        for (ci, (name, strats, players)) in classes.into_iter().enumerate() {
            if strats.is_empty() {
                return Err(GameError::EmptyClass);
            }
            let start = strategies.len() as u32;
            for s in strats {
                for &r in s.resources() {
                    if r.index() >= resources.len() {
                        return Err(GameError::UnknownResource {
                            resource: r.raw(),
                            resources: resources.len(),
                        });
                    }
                }
                strategies.push(s);
                strategy_class.push(ci as u32);
            }
            let end = strategies.len() as u32;
            class_list.push(PlayerClass { name, strategies: start..end, players });
        }
        Ok(CongestionGame { resources, strategies, strategy_class, classes: class_list })
    }

    /// The game's resources.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Number of resources (`m`).
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// The global strategy list.
    pub fn strategies(&self) -> &[Strategy] {
        &self.strategies
    }

    /// Number of strategies across all classes (`|P|`).
    pub fn num_strategies(&self) -> usize {
        self.strategies.len()
    }

    /// The player classes.
    pub fn classes(&self) -> &[PlayerClass] {
        &self.classes
    }

    /// Total players over all classes (`n`).
    pub fn total_players(&self) -> u64 {
        self.classes.iter().map(|c| c.players).sum()
    }

    /// The resource with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn resource(&self, r: ResourceId) -> &Resource {
        &self.resources[r.index()]
    }

    /// The strategy with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn strategy(&self, s: StrategyId) -> &Strategy {
        &self.strategies[s.index()]
    }

    /// The class index owning strategy `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn class_of(&self, s: StrategyId) -> usize {
        self.strategy_class[s.index()] as usize
    }

    /// Validate that `s` is a known strategy id.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::UnknownStrategy`] otherwise.
    pub fn check_strategy(&self, s: StrategyId) -> Result<(), GameError> {
        if s.index() < self.strategies.len() {
            Ok(())
        } else {
            Err(GameError::UnknownStrategy { strategy: s.raw(), strategies: self.strategies.len() })
        }
    }

    /// Latency of resource `r` at congestion `load`.
    pub fn latency(&self, r: ResourceId, load: u64) -> f64 {
        self.resources[r.index()].latency_at(load)
    }

    /// Maximum number of resources in any strategy (`k = max_P |P|`).
    pub fn max_strategy_len(&self) -> usize {
        self.strategies.iter().map(Strategy::len).max().unwrap_or(0)
    }

    /// Compute the protocol parameters (`d`, `ν`, `β`, `ℓ_min`) of this game.
    ///
    /// This scans all resources and strategies once; cache the result.
    pub fn params(&self) -> GameParams {
        GameParams::of(self)
    }

    /// Replace the latency function of resource `r` (link re-provisioning;
    /// the `SetLatency` scenario event).
    ///
    /// A [`State`](crate::State) with a latency cache built against this
    /// game keeps serving the **old** function's values until
    /// [`State::invalidate_caches_for_game_change`](crate::State::invalidate_caches_for_game_change)
    /// runs; cached protocol parameters ([`CongestionGame::params`]) go
    /// stale the same way. Every game mutator carries this obligation.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::UnknownResource`] if `r` is out of range.
    pub fn set_latency(&mut self, r: ResourceId, latency: LatencyFn) -> Result<(), GameError> {
        let resources = self.resources.len();
        self.resources
            .get_mut(r.index())
            .ok_or(GameError::UnknownResource { resource: r.raw(), resources })?
            .set_latency(latency);
        Ok(())
    }

    /// Scale the latency function of resource `r` by `factor` (link
    /// degradation for `factor > 1`, capacity upgrades for `factor < 1`;
    /// the `ScaleLatency` scenario event). Wraps the current function in
    /// [`Scaled`](crate::latency::Scaled), so repeated scaling composes.
    ///
    /// The same cache-invalidation obligation as
    /// [`CongestionGame::set_latency`] applies.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] unless `factor` is finite
    /// and positive, and [`GameError::UnknownResource`] if `r` is out of
    /// range.
    pub fn scale_latency(&mut self, r: ResourceId, factor: f64) -> Result<(), GameError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "factor",
                message: "latency scale factor must be finite and positive",
            });
        }
        let resources = self.resources.len();
        let res = self
            .resources
            .get_mut(r.index())
            .ok_or(GameError::UnknownResource { resource: r.raw(), resources })?;
        let scaled = crate::latency::Scaled::new(res.latency().clone(), factor);
        res.set_latency(scaled.into());
        Ok(())
    }

    /// Set the player count of class `class` (arrivals/departures; the
    /// `AddPlayers`/`RemovePlayers`/`SetDemand` scenario events).
    ///
    /// This changes only the game's bookkeeping — any `State` must be
    /// adjusted to match (`State::add_players` / `State::remove_players`)
    /// or it will fail count validation, and population-dependent protocol
    /// parameters ([`CongestionGame::params`] uses `n`) must be recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] if `class` is out of range.
    pub fn set_class_players(&mut self, class: usize, players: u64) -> Result<(), GameError> {
        self.classes
            .get_mut(class)
            .ok_or(GameError::InvalidParameter {
                name: "class",
                message: "class index out of range",
            })?
            .players = players;
        Ok(())
    }
}

/// Protocol-relevant analytic parameters of a game (Section 2.2 and 6).
///
/// * `d` — upper bound on the elasticity of all latency functions,
/// * `nu` — `ν ≥ max_P ν_P` with `ν_P = Σ_{e∈P} ν_e` and
///   `ν_e = max_{x ∈ 1..⌈max(d,1)⌉} ℓ_e(x) − ℓ_e(x−1)`,
/// * `beta` — upper bound on the maximum slope of any latency over the full
///   load range (used by the EXPLORATION PROTOCOL),
/// * `ell_min` — `min_e ℓ_e(1)`, the minimum latency of an occupied resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameParams {
    /// Elasticity upper bound `d`.
    pub d: f64,
    /// Slope bound `ν` over almost-empty strategies.
    pub nu: f64,
    /// Maximum slope `β` of any latency function up to full load.
    pub beta: f64,
    /// Minimum latency `ℓ_min = min_e ℓ_e(1)` of a singly-occupied resource.
    pub ell_min: f64,
}

impl GameParams {
    /// Compute the parameters of `game` (see type docs).
    pub fn of(game: &CongestionGame) -> GameParams {
        let n = game.total_players().max(1);
        let mut d = 0.0_f64;
        for r in game.resources() {
            d = d.max(r.latency().elasticity_bound(n));
        }
        // ν_e uses the slope on loads 1..⌈d⌉ (at least 1).
        let d_ceil = (d.ceil() as u64).max(1);
        let nu_e: Vec<f64> =
            game.resources().iter().map(|r| r.latency().max_step(0, d_ceil)).collect();
        let mut nu = 0.0_f64;
        for s in game.strategies() {
            let nu_p: f64 = s.resources().iter().map(|r| nu_e[r.index()]).sum();
            nu = nu.max(nu_p);
        }
        let mut beta = 0.0_f64;
        let mut ell_min = f64::INFINITY;
        for r in game.resources() {
            beta = beta.max(r.latency().max_step(0, n));
            ell_min = ell_min.min(r.latency_at(1));
        }
        GameParams { d, nu, beta, ell_min }
    }

    /// The damping denominator used by the IMITATION PROTOCOL: `max(d, 1)`.
    ///
    /// The paper's probability `λ/d · gain/ℓ_P` is stated for `d ≥ 1`; for
    /// games whose latencies all have elasticity below one (e.g. constants)
    /// no damping is needed, so the protocol clamps the denominator at 1.
    pub fn damping(&self) -> f64 {
        self.d.max(1.0)
    }
}

/// Incremental builder for congestion games with explicit resources and one
/// or more player classes.
///
/// # Example
///
/// ```
/// use congames_model::{CongestionGame, Affine, Strategy, ResourceId};
///
/// let mut b = CongestionGame::builder();
/// let r0 = b.add_resource(Affine::linear(1.0).into());
/// let r1 = b.add_resource(Affine::linear(2.0).into());
/// let r2 = b.add_resource(Affine::new(1.0, 1.0).into());
/// b.add_class("commuters", 10, vec![
///     Strategy::new(vec![r0, r2])?,
///     Strategy::new(vec![r1])?,
/// ])?;
/// let game = b.build()?;
/// assert_eq!(game.num_strategies(), 2);
/// # Ok::<(), congames_model::GameError>(())
/// ```
#[derive(Debug, Default)]
pub struct SymmetricBuilder {
    resources: Vec<Resource>,
    classes: Vec<(String, Vec<Strategy>, u64)>,
}

impl SymmetricBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        SymmetricBuilder::default()
    }

    /// Add a resource; returns its id.
    pub fn add_resource(&mut self, latency: LatencyFn) -> ResourceId {
        self.resources.push(Resource::new(latency));
        ResourceId::new((self.resources.len() - 1) as u32)
    }

    /// Add a named resource; returns its id.
    pub fn add_named_resource(
        &mut self,
        name: impl Into<String>,
        latency: LatencyFn,
    ) -> ResourceId {
        self.resources.push(Resource::named(name, latency));
        ResourceId::new((self.resources.len() - 1) as u32)
    }

    /// Add a player class with its strategy set.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::EmptyClass`] if `strategies` is empty.
    pub fn add_class(
        &mut self,
        name: impl Into<String>,
        players: u64,
        strategies: Vec<Strategy>,
    ) -> Result<&mut Self, GameError> {
        if strategies.is_empty() {
            return Err(GameError::EmptyClass);
        }
        self.classes.push((name.into(), strategies, players));
        Ok(self)
    }

    /// Finish building the game.
    ///
    /// # Errors
    ///
    /// Fails if no resources / classes were added or if a strategy references
    /// an unknown resource.
    pub fn build(self) -> Result<CongestionGame, GameError> {
        CongestionGame::from_parts(self.resources, self.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{Affine, Monomial};

    #[test]
    fn singleton_game_shape() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(2.0).into()],
            5,
        )
        .unwrap();
        assert_eq!(game.num_resources(), 2);
        assert_eq!(game.num_strategies(), 2);
        assert_eq!(game.total_players(), 5);
        assert_eq!(game.classes().len(), 1);
        assert_eq!(game.classes()[0].players(), 5);
        assert_eq!(game.max_strategy_len(), 1);
        assert_eq!(game.class_of(StrategyId::new(1)), 0);
        assert_eq!(game.strategy(StrategyId::new(0)).resources(), &[ResourceId::new(0)]);
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(matches!(CongestionGame::singleton(vec![], 5), Err(GameError::NoResources)));
        let r: Vec<Resource> = vec![Resource::new(Affine::linear(1.0).into())];
        assert!(matches!(
            CongestionGame::symmetric(r, vec![], 5),
            Err(GameError::EmptyClass) | Err(GameError::NoClasses)
        ));
    }

    #[test]
    fn out_of_range_resource_is_rejected() {
        let r = vec![Resource::new(Affine::linear(1.0).into())];
        let s = vec![Strategy::new(vec![ResourceId::new(3)]).unwrap()];
        assert!(matches!(
            CongestionGame::symmetric(r, s, 2),
            Err(GameError::UnknownResource { resource: 3, resources: 1 })
        ));
    }

    #[test]
    fn builder_multi_class() {
        let mut b = CongestionGame::builder();
        let r0 = b.add_resource(Affine::linear(1.0).into());
        let r1 = b.add_named_resource("fast", Affine::linear(2.0).into());
        b.add_class("a", 3, vec![Strategy::singleton(r0)]).unwrap();
        b.add_class("b", 4, vec![Strategy::singleton(r0), Strategy::singleton(r1)]).unwrap();
        let game = b.build().unwrap();
        assert_eq!(game.classes().len(), 2);
        assert_eq!(game.total_players(), 7);
        assert_eq!(game.class_of(StrategyId::new(0)), 0);
        assert_eq!(game.class_of(StrategyId::new(1)), 1);
        assert_eq!(game.class_of(StrategyId::new(2)), 1);
        assert_eq!(game.classes()[1].num_strategies(), 2);
        assert_eq!(game.resource(r1).name(), Some("fast"));
        let ids: Vec<_> = game.classes()[1].strategy_ids().collect();
        assert_eq!(ids, vec![StrategyId::new(1), StrategyId::new(2)]);
    }

    #[test]
    fn check_strategy_bounds() {
        let game = CongestionGame::singleton(vec![Affine::linear(1.0).into()], 1).unwrap();
        assert!(game.check_strategy(StrategyId::new(0)).is_ok());
        assert!(matches!(
            game.check_strategy(StrategyId::new(9)),
            Err(GameError::UnknownStrategy { .. })
        ));
    }

    #[test]
    fn params_linear_game() {
        // Two linear links a=1, a=3: d = 1, ν = max slope on loads ≤ 1 = 3,
        // β = 3, ℓ_min = 1.
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(3.0).into()],
            10,
        )
        .unwrap();
        let p = game.params();
        assert!((p.d - 1.0).abs() < 1e-12);
        assert!((p.nu - 3.0).abs() < 1e-12);
        assert!((p.beta - 3.0).abs() < 1e-12);
        assert!((p.ell_min - 1.0).abs() < 1e-12);
        assert!((p.damping() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn params_polynomial_game() {
        // x³ on both links, 10 players: d = 3, ν_e over x ∈ 1..3 = 3³-2³ = 19,
        // β = 10³ - 9³ = 271.
        let game = CongestionGame::singleton(
            vec![Monomial::new(1.0, 3).into(), Monomial::new(1.0, 3).into()],
            10,
        )
        .unwrap();
        let p = game.params();
        assert!((p.d - 3.0).abs() < 1e-12);
        assert!((p.nu - 19.0).abs() < 1e-12);
        assert!((p.beta - 271.0).abs() < 1e-12);
        assert!((p.damping() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn params_nu_sums_over_path() {
        // A two-edge path with slopes 1 and 2 ⇒ ν_P = 3.
        let mut b = CongestionGame::builder();
        let r0 = b.add_resource(Affine::linear(1.0).into());
        let r1 = b.add_resource(Affine::linear(2.0).into());
        b.add_class("c", 2, vec![Strategy::new(vec![r0, r1]).unwrap()]).unwrap();
        let game = b.build().unwrap();
        assert!((game.params().nu - 3.0).abs() < 1e-12);
    }

    #[test]
    fn game_is_clone_and_send_sync() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<CongestionGame>();
    }
}
