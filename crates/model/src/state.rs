//! Game states: strategy counts and derived resource loads.
//!
//! # Caches & invariants
//!
//! A [`State`] carries two opt-in, incrementally co-maintained caches next
//! to its logical contents (`counts`, `loads`, `base_loads`). Both are
//! invisible to `PartialEq`/`Debug`, both stay invalid (and cost nothing)
//! until their `ensure_*` method runs, and both are then kept fresh by the
//! `apply_*` mutators in time proportional to what actually changed:
//!
//! * **Latency cache** ([`State::ensure_latency_cache`]): `ℓ_e(x_e)`,
//!   `ℓ_e(x_e+1)` per resource and `ℓ_P(x)` per strategy. Mutators
//!   re-evaluate only resources whose load changed and mark the
//!   per-strategy sums stale; `ensure_latency_cache` (typically once per
//!   simulated round) re-validates the sums.
//! * **Support index** ([`State::ensure_support_index`]): per player
//!   class, the sorted list of strategies with `x_P > 0`, plus a
//!   strategy→position map and a running total. Mutators insert/remove a
//!   strategy exactly when its count crosses zero (`O(support)` per
//!   changed strategy — a shift within the class's occupied list), so
//!   [`State::support_size`] and [`State::support_of_class`] are `O(1)`
//!   and [`State::occupied`] exposes the sorted occupancy for sparse
//!   kernels. Imitation dynamics never adopt a strategy outside the
//!   current support (the paper's support-invariance lemma), so near
//!   convergence this list is much shorter than the strategy range.
//!
//! Shared invariants: each cache is keyed to the *game that built it*
//! (same resource/strategy/class shape); a differently-shaped game falls
//! back to direct computation (reads) or invalidates the cache (writes).
//! The latency cache additionally depends on the latency *functions* —
//! call [`State::invalidate_latency_cache`] when moving a state between
//! same-shape games with different latencies. The support index depends
//! only on the counts, so it survives such swaps. Diagnostics:
//! [`State::loads_consistent`] and [`State::support_consistent`] compare
//! the incremental structures against a from-scratch recomputation.

use crate::error::GameError;
use crate::game::CongestionGame;
use crate::resource::ResourceId;
use crate::strategy::StrategyId;

/// A batch of players moving from one strategy to another.
///
/// Rounds of the concurrent protocols produce vectors of migrations that are
/// applied simultaneously via [`State::apply_migrations`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Origin strategy.
    pub from: StrategyId,
    /// Destination strategy (same player class as `from`).
    pub to: StrategyId,
    /// Number of players moving.
    pub count: u64,
}

impl Migration {
    /// Create a migration of `count` players from `from` to `to`.
    pub fn new(from: StrategyId, to: StrategyId, count: u64) -> Self {
        Migration { from, to, count }
    }
}

/// Memoized latencies of the current state, plus reusable scratch buffers.
///
/// The cache is *opt-in*: it stays invalid (and costs nothing) until
/// [`State::ensure_latency_cache`] is called. Once built, the latency
/// accessors read from it in `O(1)` per resource, and the `apply_*` mutators
/// keep the per-resource entries fresh incrementally (only resources whose
/// load changed are re-evaluated), marking the per-strategy sums stale until
/// the next `ensure_latency_cache` call. Simulation engines call `ensure`
/// once per round, so steady-state rounds never re-walk resource lists or
/// re-evaluate unchanged latency functions.
#[derive(Debug, Clone, Default)]
struct LatencyCache {
    /// Whether `res`/`res_plus` match the current loads.
    valid: bool,
    /// Whether `strat` needs rebuilding from `res`.
    strat_stale: bool,
    /// `ℓ_e(x_e + x⁰_e)` per resource.
    res: Vec<f64>,
    /// `ℓ_e(x_e + x⁰_e + 1)` per resource.
    res_plus: Vec<f64>,
    /// `ℓ_P(x)` per strategy.
    strat: Vec<f64>,
    /// Scratch: resources touched by the current migration batch.
    touched: Vec<u32>,
    /// Scratch: per-strategy outflow of the current migration batch.
    outflow: Vec<u64>,
}

/// Sentinel for "strategy is not in its class's occupied list".
const NO_POS: u32 = u32::MAX;

/// Incrementally-maintained per-class support index: for every player
/// class, the strategies with `x_P > 0`, **sorted by strategy id**.
///
/// Like the latency cache this is opt-in ([`State::ensure_support_index`])
/// and maintained by the `apply_*` mutators once built: a strategy is
/// inserted into / removed from its class's list exactly when its count
/// crosses zero. The sorted order is load-bearing — sparse kernels iterate
/// these lists in place of dense strategy ranges, and ascending-id order
/// keeps pair visitation (and hence RNG consumption and float summation
/// order) bit-identical to the dense scans they replace.
#[derive(Debug, Clone, Default)]
struct SupportIndex {
    /// Whether the lists mirror the current counts.
    valid: bool,
    /// Per class: sorted strategy ids with `x_P > 0`. Each list's capacity
    /// is reserved to the class's full strategy count at build time, so
    /// steady-state maintenance never allocates.
    occupied: Vec<Vec<StrategyId>>,
    /// Position of each strategy within its class's occupied list
    /// ([`NO_POS`] when unoccupied).
    pos: Vec<u32>,
    /// Start of each class's strategy range in the game that built the
    /// index. Together with `pos.len()` (the strategy count) this
    /// fingerprints the class partition, so a same-sized game that slices
    /// its strategies into classes differently is detected as a shape
    /// mismatch instead of being served the wrong per-class lists.
    class_starts: Vec<u32>,
    /// Total occupied strategies over all classes (`Σ_c support_c`).
    total: usize,
}

/// A state `x` of a congestion game: the number of players on every strategy
/// (`x_P`) plus the derived congestion of every resource (`x_e`).
///
/// The two views are kept consistent by construction; resource loads are
/// updated incrementally as migrations are applied. An optional latency
/// cache (see [`State::ensure_latency_cache`]) memoizes `ℓ_e(x_e)`,
/// `ℓ_e(x_e+1)`, and `ℓ_P(x)` for the hot simulation loops; equality and
/// the `Debug` output cover only the logical state, never the cache.
///
/// # Example
///
/// ```
/// use congames_model::{CongestionGame, Affine, State, StrategyId};
///
/// let game = CongestionGame::singleton(
///     vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
///     4,
/// )?;
/// let mut state = State::from_counts(&game, vec![4, 0])?;
/// state.apply_move(&game, StrategyId::new(0), StrategyId::new(1))?;
/// assert_eq!(state.count(StrategyId::new(0)), 3);
/// assert_eq!(state.count(StrategyId::new(1)), 1);
/// # Ok::<(), congames_model::GameError>(())
/// ```
#[derive(Clone)]
pub struct State {
    counts: Vec<u64>,
    loads: Vec<u64>,
    /// Optional base load per resource (virtual agents, Section 6). These are
    /// added to the player-induced congestion before evaluating latencies.
    base_loads: Option<Vec<u64>>,
    cache: LatencyCache,
    support: SupportIndex,
}

impl PartialEq for State {
    fn eq(&self, other: &State) -> bool {
        // The latency cache and scratch buffers are derived/ephemeral data;
        // two states are equal iff their logical contents agree.
        self.counts == other.counts
            && self.loads == other.loads
            && self.base_loads == other.base_loads
    }
}

impl Eq for State {}

impl std::fmt::Debug for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("State")
            .field("counts", &self.counts)
            .field("loads", &self.loads)
            .field("base_loads", &self.base_loads)
            .finish_non_exhaustive()
    }
}

impl State {
    /// Create a state from per-strategy player counts.
    ///
    /// # Errors
    ///
    /// Fails if the vector length does not match the number of strategies or
    /// a class's counts do not sum to its player count.
    pub fn from_counts(game: &CongestionGame, counts: Vec<u64>) -> Result<Self, GameError> {
        if counts.len() != game.num_strategies() {
            return Err(GameError::WrongLength {
                expected: game.num_strategies(),
                found: counts.len(),
            });
        }
        for (ci, class) in game.classes().iter().enumerate() {
            let sum: u64 = class.strategy_range().map(|s| counts[s as usize]).sum();
            if sum != class.players() {
                return Err(GameError::CountMismatch {
                    class: ci,
                    expected: class.players(),
                    found: sum,
                });
            }
        }
        let loads = loads_from_counts(game, &counts);
        Ok(State {
            counts,
            loads,
            base_loads: None,
            cache: LatencyCache::default(),
            support: SupportIndex::default(),
        })
    }

    /// Create the state in which every player of every class uses the class's
    /// first strategy (a worst-case-ish "everybody piles up" start).
    pub fn all_on_first(game: &CongestionGame) -> State {
        let mut counts = vec![0u64; game.num_strategies()];
        for class in game.classes() {
            let first = class.strategy_range().start as usize;
            counts[first] = class.players();
        }
        let loads = loads_from_counts(game, &counts);
        State {
            counts,
            loads,
            base_loads: None,
            cache: LatencyCache::default(),
            support: SupportIndex::default(),
        }
    }

    /// Attach base loads (one virtual agent per strategy, Section 6): each
    /// strategy contributes `+1` congestion on its resources, permanently.
    ///
    /// Returns the modified state. Latency evaluations then see
    /// `x_e + x⁰_e`.
    pub fn with_virtual_agents(mut self, game: &CongestionGame) -> State {
        let mut base = vec![0u64; game.num_resources()];
        for s in game.strategies() {
            for &r in s.resources() {
                base[r.index()] += 1;
            }
        }
        self.base_loads = Some(base);
        self.cache = LatencyCache::default();
        self
    }

    /// Per-strategy player counts (`x_P`).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Players on strategy `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn count(&self, s: StrategyId) -> u64 {
        self.counts[s.index()]
    }

    /// Player-induced congestion of resource `r` (excludes base loads).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn load(&self, r: ResourceId) -> u64 {
        self.loads[r.index()]
    }

    /// Effective congestion of resource `r` (player load plus base load).
    pub fn effective_load(&self, r: ResourceId) -> u64 {
        self.loads[r.index()] + self.base_loads.as_ref().map_or(0, |b| b[r.index()])
    }

    /// Player-induced loads of all resources.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Whether virtual-agent base loads are attached.
    pub fn has_virtual_agents(&self) -> bool {
        self.base_loads.is_some()
    }

    /// Number of strategies with at least one player (the *support*).
    ///
    /// `O(1)` off the support index once [`State::ensure_support_index`]
    /// has run (the index is cross-checked against a recount in debug
    /// builds); falls back to an `O(S)` filter-count otherwise.
    pub fn support_size(&self) -> usize {
        if self.support.valid {
            debug_assert_eq!(
                self.support.total,
                self.counts.iter().filter(|&&c| c > 0).count(),
                "support index total drifted from the recomputed support size"
            );
            return self.support.total;
        }
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Number of occupied strategies of class `class` (`O(1)` off the
    /// support index, recounted otherwise; debug builds cross-check).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range for `game`.
    pub fn support_of_class(&self, game: &CongestionGame, class: usize) -> usize {
        let recount = || {
            game.classes()[class].strategy_range().filter(|&s| self.counts[s as usize] > 0).count()
        };
        if self.support_usable(game) {
            let size = self.support.occupied[class].len();
            debug_assert_eq!(
                size,
                recount(),
                "support index of class {class} drifted from the recomputed support"
            );
            return size;
        }
        recount()
    }

    /// The sorted (ascending strategy id) occupied strategies of class
    /// `class` of `game`, or `None` while the support index is not built
    /// (or was built for an incompatible class partition) — callers with
    /// a `&mut State` can [`State::ensure_support_index`] first,
    /// read-only callers fall back to scanning the dense range.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range for `game`.
    pub fn occupied(&self, game: &CongestionGame, class: usize) -> Option<&[StrategyId]> {
        if self.support_usable_for(game, class) {
            Some(self.support.occupied[class].as_slice())
        } else {
            None
        }
    }

    /// Iterate the occupied strategies of class `class`, ascending by id:
    /// served from the support index when it is built for `game`
    /// (`O(support_c)`), recomputed from the counts otherwise
    /// (`O(S_c)`). The shared primitive behind the sparse deviation scans
    /// ([`best_deviation`](crate::best_deviation), sequential dynamics),
    /// so the fallback semantics live in one place.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range for `game`.
    pub fn occupied_or_scan<'a>(
        &'a self,
        game: &'a CongestionGame,
        class: usize,
    ) -> impl Iterator<Item = StrategyId> + 'a {
        let indexed = self.occupied(game, class);
        let dense = match indexed {
            Some(_) => None,
            None => Some(game.classes()[class].strategy_ids().filter(move |&s| self.count(s) > 0)),
        };
        indexed.into_iter().flatten().copied().chain(dense.into_iter().flatten())
    }

    /// Build (or re-validate) the support index for this state against
    /// `game`. Once built, the `apply_*` mutators maintain it in
    /// `O(support)` per strategy whose count crosses zero, so re-ensuring
    /// every round is `O(1)` and allocation-free.
    pub fn ensure_support_index(&mut self, game: &CongestionGame) {
        if self.support_usable(game) {
            return;
        }
        let idx = &mut self.support;
        idx.pos.clear();
        idx.pos.resize(game.num_strategies(), NO_POS);
        idx.occupied.iter_mut().for_each(Vec::clear);
        idx.occupied.resize_with(game.classes().len(), Vec::new);
        idx.class_starts.clear();
        idx.class_starts.extend(game.classes().iter().map(|c| c.strategy_range().start));
        idx.total = 0;
        for (ci, class) in game.classes().iter().enumerate() {
            let list = &mut idx.occupied[ci];
            // Full-class capacity up front: support maintenance must never
            // allocate, whatever occupancy pattern the dynamics produce.
            list.reserve(class.num_strategies());
            for raw in class.strategy_range() {
                if self.counts[raw as usize] > 0 {
                    idx.pos[raw as usize] = list.len() as u32;
                    list.push(StrategyId::new(raw));
                    idx.total += 1;
                }
            }
        }
        idx.valid = true;
    }

    /// Whether the support index currently mirrors the counts.
    pub fn support_index_valid(&self) -> bool {
        self.support.valid
    }

    /// Drop the support index; [`State::support_size`] recounts and
    /// [`State::occupied`] returns `None` until
    /// [`State::ensure_support_index`] runs again.
    pub fn invalidate_support_index(&mut self) {
        self.support.valid = false;
    }

    /// Whether the support index can serve queries against `game`: built,
    /// and for the same strategy/class shape — the strategy count, the
    /// class count, *and* the class partition (range starts) must match,
    /// so a same-sized game sliced into classes differently falls back
    /// (reads) or drops the index (writes) instead of serving another
    /// game's per-class lists.
    #[inline]
    fn support_usable(&self, game: &CongestionGame) -> bool {
        self.support.valid
            && self.support.pos.len() == game.num_strategies()
            && self.support.class_starts.len() == game.classes().len()
            && game
                .classes()
                .iter()
                .zip(&self.support.class_starts)
                .all(|(c, &start)| c.strategy_range().start == start)
    }

    /// Whether class `class`'s occupied list can serve reads against
    /// `game`: the `O(1)` per-class variant of [`State::support_usable`].
    /// Matching this class's range start *and* end (the next class's
    /// start, or the strategy count for the last class) pins its exact
    /// strategy range — ranges are contiguous and consecutive — so the
    /// list is correct for `game` whatever the other classes look like.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range for `game`.
    #[inline]
    fn support_usable_for(&self, game: &CongestionGame, class: usize) -> bool {
        let idx = &self.support;
        let range = game.classes()[class].strategy_range();
        idx.valid
            && idx.pos.len() == game.num_strategies()
            && idx.class_starts.len() == game.classes().len()
            && idx.class_starts[class] == range.start
            && idx.class_starts.get(class + 1).copied().unwrap_or(idx.pos.len() as u32) == range.end
    }

    /// Insert `s` (count just became positive) into its class's occupied
    /// list, keeping the list sorted and the position map consistent.
    fn support_insert(&mut self, game: &CongestionGame, s: StrategyId) {
        let list = &mut self.support.occupied[game.class_of(s)];
        let at = list.partition_point(|&x| x < s);
        list.insert(at, s);
        for &shifted in &list[at + 1..] {
            self.support.pos[shifted.index()] += 1;
        }
        self.support.pos[s.index()] = at as u32;
        self.support.total += 1;
    }

    /// Remove `s` (count just reached zero) from its class's occupied list.
    fn support_remove(&mut self, game: &CongestionGame, s: StrategyId) {
        let at = self.support.pos[s.index()] as usize;
        let list = &mut self.support.occupied[game.class_of(s)];
        debug_assert_eq!(list.get(at), Some(&s), "position map out of sync");
        list.remove(at);
        for &shifted in &list[at..] {
            self.support.pos[shifted.index()] -= 1;
        }
        self.support.pos[s.index()] = NO_POS;
        self.support.total -= 1;
    }

    /// Diagnostic (`debug_assert`-style check): whether the support index
    /// matches a from-scratch occupancy recomputation — membership,
    /// sortedness, the position map, and the running total.
    ///
    /// Returns `true` when the index is not built (nothing to disagree
    /// with).
    pub fn support_consistent(&self, game: &CongestionGame) -> bool {
        if !self.support.valid {
            return true;
        }
        if !self.support_usable(game) {
            return false;
        }
        let idx = &self.support;
        let mut total = 0usize;
        for (ci, class) in game.classes().iter().enumerate() {
            let list = &idx.occupied[ci];
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            let expected: Vec<StrategyId> = class
                .strategy_range()
                .filter(|&s| self.counts[s as usize] > 0)
                .map(StrategyId::new)
                .collect();
            if list != &expected {
                return false;
            }
            for (at, &s) in list.iter().enumerate() {
                if idx.pos[s.index()] != at as u32 {
                    return false;
                }
            }
            total += list.len();
        }
        if idx.total != total {
            return false;
        }
        // Unoccupied strategies must not claim a position.
        idx.pos.iter().enumerate().all(|(i, &p)| (p == NO_POS) == (self.counts[i] == 0))
    }

    /// Build (or refresh) the latency cache for this state against `game`.
    ///
    /// After this call, [`State::resource_latency`],
    /// [`State::strategy_latency`], [`State::strategy_latency_plus`], and
    /// [`State::latency_after_move`] serve from memoized per-resource and
    /// per-strategy tables instead of re-evaluating latency functions. The
    /// `apply_*` mutators keep the per-resource entries fresh (re-evaluating
    /// only resources whose load changed) and mark the per-strategy sums
    /// stale; call `ensure_latency_cache` again (typically once per
    /// simulated round) to rebuild them. The cache allocates only on first
    /// use and on game-size changes — steady-state refreshes are
    /// allocation-free.
    ///
    /// The cache is keyed to the *game that built it*: the accessors serve
    /// cached values whenever the queried game has the same resource count
    /// (a differently-sized game falls back to direct evaluation). Querying
    /// a same-shape game with *different latency functions* would silently
    /// return the cached game's values — call
    /// [`State::invalidate_latency_cache`] first when moving a state
    /// between such games (e.g. a coefficient-perturbation sweep).
    pub fn ensure_latency_cache(&mut self, game: &CongestionGame) {
        let cache = &mut self.cache;
        if !cache.valid || cache.res.len() != game.num_resources() {
            cache.res.clear();
            cache.res_plus.clear();
            cache.res.reserve(game.num_resources());
            cache.res_plus.reserve(game.num_resources());
            // One batched virtual call per resource fills both cache
            // entries (`ℓ_e(x_e)`, `ℓ_e(x_e+1)`) — bit-identical to the
            // pointwise evaluations, half the dispatch cost.
            let base_loads = self.base_loads.as_deref();
            let mut pair = [0.0_f64; 2];
            for (i, res) in game.resources().iter().enumerate() {
                let eff = self.loads[i] + base_loads.map_or(0, |b| b[i]);
                res.latency().eval_range_into(eff, 0..2, &mut pair);
                cache.res.push(pair[0]);
                cache.res_plus.push(pair[1]);
            }
            cache.valid = true;
            cache.strat_stale = true;
        }
        if cache.strat_stale || cache.strat.len() != game.num_strategies() {
            let (strat, res) = (&mut cache.strat, &cache.res);
            strat.clear();
            strat.reserve(game.num_strategies());
            for s in game.strategies() {
                strat.push(s.resources().iter().map(|&r| res[r.index()]).sum());
            }
            cache.strat_stale = false;
        }
    }

    /// Whether the latency cache currently mirrors the state (both the
    /// per-resource and the per-strategy tables).
    pub fn latency_cache_valid(&self) -> bool {
        self.cache.valid && !self.cache.strat_stale
    }

    /// Drop the latency cache; subsequent latency queries recompute from the
    /// latency functions until [`State::ensure_latency_cache`] runs again.
    pub fn invalidate_latency_cache(&mut self) {
        self.cache.valid = false;
        self.cache.strat_stale = true;
    }

    /// Whether the cache can answer latency queries against `game`: built,
    /// and sized for the same resource set.
    #[inline]
    fn cache_usable(&self, game: &CongestionGame) -> bool {
        self.cache.valid && self.cache.res.len() == game.num_resources()
    }

    /// Re-evaluate the cached latencies of every resource in
    /// `cache.touched` (sorted + deduped first), leaving `strat` stale.
    fn refresh_touched_resources(&mut self, game: &CongestionGame) {
        let cache = &mut self.cache;
        if !cache.valid {
            cache.touched.clear();
            return;
        }
        if cache.touched.is_empty() {
            return;
        }
        cache.touched.sort_unstable();
        cache.touched.dedup();
        let mut pair = [0.0_f64; 2];
        for &raw in &cache.touched {
            let i = raw as usize;
            let eff = self.loads[i] + self.base_loads.as_ref().map_or(0, |b| b[i]);
            let r = ResourceId::new(raw);
            game.resource(r).latency().eval_range_into(eff, 0..2, &mut pair);
            cache.res[i] = pair[0];
            cache.res_plus[i] = pair[1];
        }
        cache.touched.clear();
        cache.strat_stale = true;
    }

    /// Latency of resource `r` in this state.
    pub fn resource_latency(&self, game: &CongestionGame, r: ResourceId) -> f64 {
        if self.cache_usable(game) {
            return self.cache.res[r.index()];
        }
        game.latency(r, self.effective_load(r))
    }

    /// Latency `ℓ_P(x)` of strategy `s` in this state.
    pub fn strategy_latency(&self, game: &CongestionGame, s: StrategyId) -> f64 {
        if self.cache_usable(game) {
            if !self.cache.strat_stale && self.cache.strat.len() == game.num_strategies() {
                return self.cache.strat[s.index()];
            }
            return game.strategy(s).resources().iter().map(|&r| self.cache.res[r.index()]).sum();
        }
        game.strategy(s).resources().iter().map(|&r| game.latency(r, self.effective_load(r))).sum()
    }

    /// Latency `ℓ_P(x + 1_P)` of strategy `s` with one extra player on it
    /// (the *ex-post* latency a joining player would see at worst).
    pub fn strategy_latency_plus(&self, game: &CongestionGame, s: StrategyId) -> f64 {
        if self.cache_usable(game) {
            return game
                .strategy(s)
                .resources()
                .iter()
                .map(|&r| self.cache.res_plus[r.index()])
                .sum();
        }
        game.strategy(s)
            .resources()
            .iter()
            .map(|&r| game.latency(r, self.effective_load(r) + 1))
            .sum()
    }

    /// Latency `ℓ_Q(x + 1_Q − 1_P)` of strategy `to` as seen by a player
    /// moving from `from`: resources in `to ∩ from` keep their congestion,
    /// resources in `to \ from` gain one player.
    pub fn latency_after_move(
        &self,
        game: &CongestionGame,
        from: StrategyId,
        to: StrategyId,
    ) -> f64 {
        let from_s = game.strategy(from);
        let to_s = game.strategy(to);
        let from_r = from_s.resources();
        let mut total = 0.0;
        let mut i = 0usize;
        if self.cache_usable(game) {
            for &r in to_s.resources() {
                while i < from_r.len() && from_r[i] < r {
                    i += 1;
                }
                let shared = i < from_r.len() && from_r[i] == r;
                total +=
                    if shared { self.cache.res[r.index()] } else { self.cache.res_plus[r.index()] };
            }
            return total;
        }
        for &r in to_s.resources() {
            // advance the sorted origin pointer to check membership
            while i < from_r.len() && from_r[i] < r {
                i += 1;
            }
            let shared = i < from_r.len() && from_r[i] == r;
            let load = self.effective_load(r) + if shared { 0 } else { 1 };
            total += game.latency(r, load);
        }
        total
    }

    /// Move one player from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Fails if `from` has no players, ids are out of range, or the ids
    /// belong to different classes.
    pub fn apply_move(
        &mut self,
        game: &CongestionGame,
        from: StrategyId,
        to: StrategyId,
    ) -> Result<(), GameError> {
        self.apply_migration(game, Migration::new(from, to, 1))
    }

    /// Move `migration.count` players from `migration.from` to `migration.to`.
    ///
    /// # Errors
    ///
    /// Fails if fewer than `count` players use the origin, ids are out of
    /// range, or the ids belong to different classes.
    pub fn apply_migration(
        &mut self,
        game: &CongestionGame,
        migration: Migration,
    ) -> Result<(), GameError> {
        let Migration { from, to, count } = migration;
        game.check_strategy(from)?;
        game.check_strategy(to)?;
        let (fc, tc) = (game.class_of(from), game.class_of(to));
        if fc != tc {
            return Err(GameError::CrossClassMigration { from_class: fc, to_class: tc });
        }
        if count == 0 || from == to {
            return Ok(());
        }
        let available = self.counts[from.index()];
        if available < count {
            return Err(GameError::InsufficientPlayers {
                strategy: from.raw(),
                available,
                requested: count,
            });
        }
        if self.support.valid && !self.support_usable(game) {
            self.support.valid = false;
        }
        let to_was_empty = self.counts[to.index()] == 0;
        self.counts[from.index()] -= count;
        self.counts[to.index()] += count;
        if self.support.valid {
            if self.counts[from.index()] == 0 {
                self.support_remove(game, from);
            }
            if to_was_empty {
                self.support_insert(game, to);
            }
        }
        let from_s = game.strategy(from);
        let to_s = game.strategy(to);
        let loads = &mut self.loads;
        let touched = &mut self.cache.touched;
        let track = self.cache.valid;
        from_s.diff_signed(to_s, |r, sign| {
            if sign < 0 {
                loads[r.index()] -= count;
            } else {
                loads[r.index()] += count;
            }
            if track {
                touched.push(r.raw());
            }
        });
        self.refresh_touched_resources(game);
        Ok(())
    }

    /// Apply a batch of migrations simultaneously (one protocol round).
    ///
    /// All origins are debited before validation of the batch as a whole is
    /// complete, so the batch must be *jointly* feasible: the total outflow
    /// of each strategy must not exceed its count. This is checked up front.
    ///
    /// # Errors
    ///
    /// Fails (leaving the state unchanged) if the batch over-drains a
    /// strategy, crosses classes, or references unknown ids.
    pub fn apply_migrations(
        &mut self,
        game: &CongestionGame,
        migrations: &[Migration],
    ) -> Result<(), GameError> {
        // Validate jointly first. `outflow` is reusable scratch so steady
        // rounds of a simulation stay allocation-free.
        let mut outflow = std::mem::take(&mut self.cache.outflow);
        outflow.clear();
        outflow.resize(self.counts.len(), 0);
        let validated = self.validate_batch(game, migrations, &mut outflow);
        self.cache.outflow = outflow;
        validated?;
        if self.support.valid && !self.support_usable(game) {
            self.support.valid = false;
        }
        for m in migrations {
            if m.from == m.to || m.count == 0 {
                continue;
            }
            let to_was_empty = self.counts[m.to.index()] == 0;
            self.counts[m.from.index()] -= m.count;
            self.counts[m.to.index()] += m.count;
            if self.support.valid {
                if self.counts[m.from.index()] == 0 {
                    self.support_remove(game, m.from);
                }
                if to_was_empty {
                    self.support_insert(game, m.to);
                }
            }
            let from_s = game.strategy(m.from);
            let to_s = game.strategy(m.to);
            let loads = &mut self.loads;
            let touched = &mut self.cache.touched;
            let track = self.cache.valid;
            from_s.diff_signed(to_s, |r, sign| {
                if sign < 0 {
                    loads[r.index()] -= m.count;
                } else {
                    loads[r.index()] += m.count;
                }
                if track {
                    touched.push(r.raw());
                }
            });
        }
        self.refresh_touched_resources(game);
        Ok(())
    }

    /// Check a migration batch for unknown ids, cross-class moves, and joint
    /// over-draining (writing per-strategy outflows into `outflow`).
    fn validate_batch(
        &self,
        game: &CongestionGame,
        migrations: &[Migration],
        outflow: &mut [u64],
    ) -> Result<(), GameError> {
        for m in migrations {
            game.check_strategy(m.from)?;
            game.check_strategy(m.to)?;
            let (fc, tc) = (game.class_of(m.from), game.class_of(m.to));
            if fc != tc {
                return Err(GameError::CrossClassMigration { from_class: fc, to_class: tc });
            }
            if m.from != m.to {
                outflow[m.from.index()] += m.count;
            }
        }
        for (i, &out) in outflow.iter().enumerate() {
            if out > self.counts[i] {
                return Err(GameError::InsufficientPlayers {
                    strategy: i as u32,
                    available: self.counts[i],
                    requested: out,
                });
            }
        }
        Ok(())
    }

    /// Recompute loads from counts (diagnostic; `debug_assert`-style check).
    ///
    /// Returns `true` if the incremental loads match a from-scratch
    /// recomputation.
    pub fn loads_consistent(&self, game: &CongestionGame) -> bool {
        self.loads == loads_from_counts(game, &self.counts)
    }

    /// Invalidate **every** derived cache after the game changed under this
    /// state: the latency cache *and* the support index.
    ///
    /// This is the single entry point game mutators
    /// (`CongestionGame::set_latency`, `scale_latency`,
    /// `set_class_players`, scenario event appliers) must route through.
    /// The piecemeal invalidators are not interchangeable with it:
    /// [`State::invalidate_support_index`] alone leaves the latency cache
    /// serving the old game's `ℓ_e` values after a latency swap, and
    /// [`State::invalidate_latency_cache`] alone leaves per-class occupied
    /// lists stale after a partition change. Population mutations
    /// ([`State::add_players`] / [`State::remove_players`]) call it
    /// internally.
    pub fn invalidate_caches_for_game_change(&mut self) {
        self.invalidate_latency_cache();
        self.invalidate_support_index();
    }

    /// Overwrite this state's counts and loads from one lane of
    /// replica-major SoA columns (element `k` of lane `lane` lives at
    /// `column[k * width + lane]`), invalidating both derived caches.
    ///
    /// This is the *gather* half of the replica-lane kernel: a lane block
    /// evolves `width` replicas through strategy-major count columns and
    /// resource-major load columns, and materializes a single lane into a
    /// scratch `State` (typically a clone of the start state, so
    /// `base_loads` carries over) only when a record or an expensive stop
    /// check needs one. Allocation-free: the destination vectors are
    /// already sized by the state this scratch was cloned from.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= width` or either column's length is not
    /// `width ×` the corresponding vector length of this state.
    pub fn assign_lane_column(
        &mut self,
        lane_counts: &[u64],
        lane_loads: &[u64],
        width: usize,
        lane: usize,
    ) {
        assert!(lane < width, "lane {lane} out of range for width {width}");
        assert_eq!(lane_counts.len(), self.counts.len() * width, "counts column shape");
        assert_eq!(lane_loads.len(), self.loads.len() * width, "loads column shape");
        for (k, c) in self.counts.iter_mut().enumerate() {
            *c = lane_counts[k * width + lane];
        }
        for (k, l) in self.loads.iter_mut().enumerate() {
            *l = lane_loads[k * width + lane];
        }
        self.invalidate_caches_for_game_change();
    }

    /// Add `count` players to strategy `s` (a scenario *arrival*): bumps
    /// the strategy's count and the loads of its resources, then routes
    /// through [`State::invalidate_caches_for_game_change`] — arrivals can
    /// break support invariance (a previously-empty strategy becomes
    /// occupied) and change every cached latency on the touched resources.
    ///
    /// The owning class's player count in the game must be grown to match
    /// (see `CongestionGame::set_class_players`) before the state is
    /// validated against the game again.
    ///
    /// # Errors
    ///
    /// Fails if `s` is out of range for `game`.
    pub fn add_players(
        &mut self,
        game: &CongestionGame,
        s: StrategyId,
        count: u64,
    ) -> Result<(), GameError> {
        game.check_strategy(s)?;
        if count == 0 {
            return Ok(());
        }
        self.counts[s.index()] += count;
        for &r in game.strategy(s).resources() {
            self.loads[r.index()] += count;
        }
        self.invalidate_caches_for_game_change();
        Ok(())
    }

    /// Remove `count` players from strategy `s` (a scenario *departure*);
    /// the cache-coherence mirror of [`State::add_players`].
    ///
    /// # Errors
    ///
    /// Fails (leaving the state unchanged) if `s` is out of range or has
    /// fewer than `count` players.
    pub fn remove_players(
        &mut self,
        game: &CongestionGame,
        s: StrategyId,
        count: u64,
    ) -> Result<(), GameError> {
        game.check_strategy(s)?;
        if count == 0 {
            return Ok(());
        }
        let available = self.counts[s.index()];
        if available < count {
            return Err(GameError::InsufficientPlayers {
                strategy: s.raw(),
                available,
                requested: count,
            });
        }
        self.counts[s.index()] -= count;
        for &r in game.strategy(s).resources() {
            self.loads[r.index()] -= count;
        }
        self.invalidate_caches_for_game_change();
        Ok(())
    }
}

fn loads_from_counts(game: &CongestionGame, counts: &[u64]) -> Vec<u64> {
    let mut loads = vec![0u64; game.num_resources()];
    for (i, s) in game.strategies().iter().enumerate() {
        let c = counts[i];
        if c > 0 {
            for &r in s.resources() {
                loads[r.index()] += c;
            }
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::Affine;
    use crate::strategy::Strategy;

    fn sid(i: u32) -> StrategyId {
        StrategyId::new(i)
    }
    fn rid(i: u32) -> ResourceId {
        ResourceId::new(i)
    }

    fn two_link_game(n: u64) -> CongestionGame {
        CongestionGame::singleton(vec![Affine::linear(1.0).into(), Affine::linear(2.0).into()], n)
            .unwrap()
    }

    /// A little 3-resource network-like game: strategies {0,1}, {1,2}, {2}.
    fn overlap_game(n: u64) -> CongestionGame {
        let mut b = CongestionGame::builder();
        let r0 = b.add_resource(Affine::linear(1.0).into());
        let r1 = b.add_resource(Affine::linear(1.0).into());
        let r2 = b.add_resource(Affine::linear(1.0).into());
        b.add_class(
            "c",
            n,
            vec![
                Strategy::new(vec![r0, r1]).unwrap(),
                Strategy::new(vec![r1, r2]).unwrap(),
                Strategy::new(vec![r2]).unwrap(),
            ],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn from_counts_checks_lengths_and_sums() {
        let game = two_link_game(4);
        assert!(matches!(
            State::from_counts(&game, vec![4]),
            Err(GameError::WrongLength { expected: 2, found: 1 })
        ));
        assert!(matches!(
            State::from_counts(&game, vec![1, 1]),
            Err(GameError::CountMismatch { expected: 4, found: 2, .. })
        ));
        let s = State::from_counts(&game, vec![3, 1]).unwrap();
        assert_eq!(s.load(rid(0)), 3);
        assert_eq!(s.load(rid(1)), 1);
        assert_eq!(s.support_size(), 2);
    }

    #[test]
    fn all_on_first_piles_up() {
        let game = two_link_game(7);
        let s = State::all_on_first(&game);
        assert_eq!(s.count(sid(0)), 7);
        assert_eq!(s.count(sid(1)), 0);
        assert_eq!(s.support_size(), 1);
    }

    #[test]
    fn loads_track_overlapping_strategies() {
        let game = overlap_game(6);
        let s = State::from_counts(&game, vec![2, 3, 1]).unwrap();
        assert_eq!(s.load(rid(0)), 2);
        assert_eq!(s.load(rid(1)), 5);
        assert_eq!(s.load(rid(2)), 4);
        assert!(s.loads_consistent(&game));
    }

    #[test]
    fn strategy_latency_and_plus() {
        let game = overlap_game(6);
        let s = State::from_counts(&game, vec![2, 3, 1]).unwrap();
        // ℓ_{s0} = ℓ(2) + ℓ(5) = 7; plus = ℓ(3) + ℓ(6) = 9
        assert_eq!(s.strategy_latency(&game, sid(0)), 7.0);
        assert_eq!(s.strategy_latency_plus(&game, sid(0)), 9.0);
    }

    #[test]
    fn latency_after_move_keeps_shared_resources() {
        let game = overlap_game(6);
        let s = State::from_counts(&game, vec![2, 3, 1]).unwrap();
        // Moving s0 → s1: r1 is shared (load stays 5), r2 gains one (4+1).
        let l = s.latency_after_move(&game, sid(0), sid(1));
        assert_eq!(l, 5.0 + 5.0);
        // Moving s2 → s1: r2 is shared (load stays 4), r1 gains one (5+1).
        let l2 = s.latency_after_move(&game, sid(2), sid(1));
        assert_eq!(l2, 6.0 + 4.0);
    }

    #[test]
    fn latency_after_move_to_self_is_current() {
        let game = overlap_game(4);
        let s = State::from_counts(&game, vec![2, 1, 1]).unwrap();
        assert_eq!(s.latency_after_move(&game, sid(0), sid(0)), s.strategy_latency(&game, sid(0)));
    }

    #[test]
    fn apply_move_updates_counts_and_loads() {
        let game = overlap_game(6);
        let mut s = State::from_counts(&game, vec![2, 3, 1]).unwrap();
        s.apply_move(&game, sid(0), sid(2)).unwrap();
        assert_eq!(s.count(sid(0)), 1);
        assert_eq!(s.count(sid(2)), 2);
        assert_eq!(s.load(rid(0)), 1);
        assert_eq!(s.load(rid(1)), 4);
        assert_eq!(s.load(rid(2)), 5);
        assert!(s.loads_consistent(&game));
    }

    #[test]
    fn over_drain_is_rejected_atomically() {
        let game = two_link_game(4);
        let mut s = State::from_counts(&game, vec![3, 1]).unwrap();
        let before = s.clone();
        let err = s.apply_migrations(
            &game,
            &[Migration::new(sid(0), sid(1), 2), Migration::new(sid(0), sid(1), 2)],
        );
        assert!(matches!(err, Err(GameError::InsufficientPlayers { .. })));
        assert_eq!(s, before, "failed batch must leave the state unchanged");
    }

    #[test]
    fn simultaneous_swap_is_feasible() {
        let game = two_link_game(4);
        let mut s = State::from_counts(&game, vec![2, 2]).unwrap();
        // 2 players swap in both directions simultaneously.
        s.apply_migrations(
            &game,
            &[Migration::new(sid(0), sid(1), 2), Migration::new(sid(1), sid(0), 2)],
        )
        .unwrap();
        assert_eq!(s.count(sid(0)), 2);
        assert_eq!(s.count(sid(1)), 2);
        assert!(s.loads_consistent(&game));
    }

    #[test]
    fn self_migration_is_noop() {
        let game = two_link_game(3);
        let mut s = State::from_counts(&game, vec![3, 0]).unwrap();
        s.apply_migration(&game, Migration::new(sid(0), sid(0), 2)).unwrap();
        assert_eq!(s.count(sid(0)), 3);
    }

    #[test]
    fn cross_class_migration_rejected() {
        let mut b = CongestionGame::builder();
        let r0 = b.add_resource(Affine::linear(1.0).into());
        b.add_class("a", 1, vec![Strategy::singleton(r0)]).unwrap();
        b.add_class("b", 1, vec![Strategy::singleton(r0)]).unwrap();
        let game = b.build().unwrap();
        let mut s = State::from_counts(&game, vec![1, 1]).unwrap();
        assert!(matches!(
            s.apply_move(&game, sid(0), sid(1)),
            Err(GameError::CrossClassMigration { .. })
        ));
    }

    /// Every latency accessor must agree between the cached and the
    /// uncached path, including after incremental updates.
    #[test]
    fn latency_cache_matches_direct_evaluation() {
        let game = overlap_game(6);
        let mut cached = State::from_counts(&game, vec![2, 3, 1]).unwrap();
        cached.ensure_latency_cache(&game);
        assert!(cached.latency_cache_valid());
        let check = |cached: &State, plain: &State| {
            for i in 0..game.num_resources() {
                let r = rid(i as u32);
                assert_eq!(cached.resource_latency(&game, r), plain.resource_latency(&game, r));
            }
            for i in 0..game.num_strategies() {
                let s = sid(i as u32);
                assert_eq!(cached.strategy_latency(&game, s), plain.strategy_latency(&game, s));
                assert_eq!(
                    cached.strategy_latency_plus(&game, s),
                    plain.strategy_latency_plus(&game, s)
                );
                for j in 0..game.num_strategies() {
                    assert_eq!(
                        cached.latency_after_move(&game, s, sid(j as u32)),
                        plain.latency_after_move(&game, s, sid(j as u32))
                    );
                }
            }
        };
        check(&cached, &State::from_counts(&game, vec![2, 3, 1]).unwrap());
        // Incremental maintenance across a batch of migrations.
        let batch = [Migration::new(sid(0), sid(2), 2), Migration::new(sid(1), sid(0), 1)];
        cached.apply_migrations(&game, &batch).unwrap();
        cached.ensure_latency_cache(&game);
        let mut plain = State::from_counts(&game, vec![2, 3, 1]).unwrap();
        plain.apply_migrations(&game, &batch).unwrap();
        check(&cached, &plain);
        // Single moves keep the per-resource entries fresh too.
        cached.apply_move(&game, sid(2), sid(1)).unwrap();
        cached.ensure_latency_cache(&game);
        plain.apply_move(&game, sid(2), sid(1)).unwrap();
        check(&cached, &plain);
    }

    #[test]
    fn latency_cache_with_virtual_agents() {
        let game = overlap_game(3);
        let mut s = State::from_counts(&game, vec![3, 0, 0]).unwrap().with_virtual_agents(&game);
        s.ensure_latency_cache(&game);
        // Cached path must see effective (base-augmented) loads: r1 carries
        // base 2 + player load 3.
        assert_eq!(s.resource_latency(&game, rid(1)), 5.0);
        // s0 = {r0, r1} with effective loads 3+1 and 3+2.
        assert_eq!(s.strategy_latency(&game, sid(0)), 4.0 + 5.0);
    }

    /// Moving a state between same-shape games with different latency
    /// functions (a coefficient sweep) requires
    /// [`State::invalidate_latency_cache`] per the documented contract;
    /// after invalidation the new game's values are served.
    #[test]
    fn invalidation_handles_same_shape_game_swap() {
        let game_a = two_link_game(4); // slopes 1, 2
        let game_b = CongestionGame::singleton(
            vec![Affine::linear(3.0).into(), Affine::linear(5.0).into()],
            4,
        )
        .unwrap();
        let mut s = State::from_counts(&game_a, vec![3, 1]).unwrap();
        s.ensure_latency_cache(&game_a);
        assert_eq!(s.strategy_latency(&game_a, sid(0)), 3.0);
        s.invalidate_latency_cache();
        assert_eq!(s.strategy_latency(&game_b, sid(0)), 9.0);
        s.ensure_latency_cache(&game_b);
        assert_eq!(s.strategy_latency(&game_b, sid(0)), 9.0);
        assert_eq!(s.resource_latency(&game_b, rid(1)), 5.0);
    }

    #[test]
    fn cache_is_invisible_to_equality_and_invalidation_works() {
        let game = two_link_game(4);
        let mut a = State::from_counts(&game, vec![3, 1]).unwrap();
        let b = State::from_counts(&game, vec![3, 1]).unwrap();
        a.ensure_latency_cache(&game);
        assert_eq!(a, b, "cache state must not affect equality");
        a.invalidate_latency_cache();
        assert!(!a.latency_cache_valid());
        assert_eq!(a.strategy_latency(&game, sid(0)), 3.0);
    }

    #[test]
    fn support_index_builds_and_serves_o1_metrics() {
        let game = overlap_game(6);
        let mut s = State::from_counts(&game, vec![2, 0, 4]).unwrap();
        assert!(!s.support_index_valid());
        assert!(s.occupied(&game, 0).is_none());
        assert_eq!(s.support_size(), 2); // fallback recount
        s.ensure_support_index(&game);
        assert!(s.support_index_valid());
        assert_eq!(s.occupied(&game, 0).unwrap(), &[sid(0), sid(2)]);
        assert_eq!(s.support_size(), 2);
        assert_eq!(s.support_of_class(&game, 0), 2);
        assert!(s.support_consistent(&game));
    }

    #[test]
    fn support_index_tracks_moves_across_zero() {
        let game = overlap_game(6);
        let mut s = State::from_counts(&game, vec![2, 3, 1]).unwrap();
        s.ensure_support_index(&game);
        // Drain strategy 2, then refill it through a batch.
        s.apply_move(&game, sid(2), sid(0)).unwrap();
        assert_eq!(s.occupied(&game, 0).unwrap(), &[sid(0), sid(1)]);
        assert!(s.support_consistent(&game));
        s.apply_migrations(
            &game,
            &[Migration::new(sid(0), sid(2), 3), Migration::new(sid(1), sid(2), 3)],
        )
        .unwrap();
        // Both origins drained to zero, everything on strategy 2.
        assert_eq!(s.occupied(&game, 0).unwrap(), &[sid(2)]);
        assert_eq!(s.support_size(), 1);
        assert!(s.support_consistent(&game));
        // A batch that spreads back out (strategy 2 stays occupied).
        s.apply_migrations(
            &game,
            &[Migration::new(sid(2), sid(0), 2), Migration::new(sid(2), sid(1), 3)],
        )
        .unwrap();
        assert_eq!(s.occupied(&game, 0).unwrap(), &[sid(0), sid(1), sid(2)]);
        assert_eq!(s.support_size(), 3);
        assert!(s.support_consistent(&game));
    }

    #[test]
    fn support_index_multi_class() {
        let mut b = CongestionGame::builder();
        let r0 = b.add_resource(Affine::linear(1.0).into());
        let r1 = b.add_resource(Affine::linear(1.0).into());
        b.add_class("a", 3, vec![Strategy::singleton(r0), Strategy::singleton(r1)]).unwrap();
        b.add_class("b", 2, vec![Strategy::singleton(r0), Strategy::singleton(r1)]).unwrap();
        let game = b.build().unwrap();
        let mut s = State::from_counts(&game, vec![3, 0, 0, 2]).unwrap();
        s.ensure_support_index(&game);
        assert_eq!(s.occupied(&game, 0).unwrap(), &[sid(0)]);
        assert_eq!(s.occupied(&game, 1).unwrap(), &[sid(3)]);
        assert_eq!(s.support_of_class(&game, 0), 1);
        assert_eq!(s.support_of_class(&game, 1), 1);
        s.apply_move(&game, sid(3), sid(2)).unwrap();
        s.apply_move(&game, sid(0), sid(1)).unwrap();
        assert_eq!(s.occupied(&game, 0).unwrap(), &[sid(0), sid(1)]);
        assert_eq!(s.occupied(&game, 1).unwrap(), &[sid(2), sid(3)]);
        assert_eq!(s.support_size(), 4);
        assert!(s.support_consistent(&game));
    }

    #[test]
    fn support_index_invalidation_and_same_shape_swap() {
        let game = two_link_game(4);
        let mut s = State::from_counts(&game, vec![3, 1]).unwrap();
        s.ensure_support_index(&game);
        s.invalidate_support_index();
        assert!(!s.support_index_valid());
        assert_eq!(s.support_size(), 2);
        // Unlike the latency cache, the index depends only on counts, so a
        // same-shape game swap (coefficient sweep) needs no invalidation.
        s.ensure_support_index(&game);
        let game_b = CongestionGame::singleton(
            vec![Affine::linear(3.0).into(), Affine::linear(5.0).into()],
            4,
        )
        .unwrap();
        s.apply_move(&game_b, sid(0), sid(1)).unwrap();
        assert!(s.support_index_valid());
        assert!(s.support_consistent(&game_b));
    }

    /// Two games with equal strategy *and* class counts but a different
    /// class partition must not be served each other's per-class lists:
    /// reads fall back to recounting, writes drop the index.
    #[test]
    fn support_index_rejects_same_size_different_partition() {
        let partition = |first: usize| {
            let mut b = CongestionGame::builder();
            let r: Vec<_> = (0..3).map(|_| b.add_resource(Affine::linear(1.0).into())).collect();
            let (head, tail) = r.split_at(first);
            b.add_class("a", 2, head.iter().map(|&r| Strategy::singleton(r)).collect()).unwrap();
            b.add_class("b", 2, tail.iter().map(|&r| Strategy::singleton(r)).collect()).unwrap();
            b.build().unwrap()
        };
        let game_a = partition(2); // classes {s0, s1} / {s2}
        let game_b = partition(1); // classes {s0} / {s1, s2}
        let mut s = State::from_counts(&game_a, vec![2, 0, 2]).unwrap();
        s.ensure_support_index(&game_a);
        // Reads through the differently-partitioned game must recount
        // against *its* class ranges instead of serving game A's lists.
        assert_eq!(s.support_of_class(&game_b, 0), 1);
        assert_eq!(s.support_of_class(&game_b, 1), 1);
        // Writes through the mismatched game drop the index rather than
        // corrupting it.
        s.apply_move(&game_b, sid(2), sid(1)).unwrap();
        assert!(!s.support_index_valid());
        // Re-ensuring against B rebuilds for B's partition.
        s.ensure_support_index(&game_b);
        assert!(s.support_consistent(&game_b));
        assert_eq!(s.occupied(&game_b, 1).unwrap(), &[sid(1), sid(2)]);
    }

    #[test]
    fn support_index_is_invisible_to_equality() {
        let game = two_link_game(4);
        let mut a = State::from_counts(&game, vec![3, 1]).unwrap();
        let b = State::from_counts(&game, vec![3, 1]).unwrap();
        a.ensure_support_index(&game);
        assert_eq!(a, b);
    }

    #[test]
    fn failed_batch_leaves_support_index_unchanged() {
        let game = two_link_game(4);
        let mut s = State::from_counts(&game, vec![3, 1]).unwrap();
        s.ensure_support_index(&game);
        let err = s.apply_migrations(
            &game,
            &[Migration::new(sid(0), sid(1), 2), Migration::new(sid(0), sid(1), 2)],
        );
        assert!(err.is_err());
        assert_eq!(s.occupied(&game, 0).unwrap(), &[sid(0), sid(1)]);
        assert!(s.support_consistent(&game));
    }

    /// Regression guard for the scenario/event layer: after a latency swap
    /// on the game, `invalidate_support_index` alone is NOT enough — the
    /// latency cache would keep serving the old function's `ℓ_e`. The
    /// single entry point `invalidate_caches_for_game_change` must clear
    /// both.
    #[test]
    fn latency_swap_without_full_invalidation_would_serve_stale_values() {
        let mut game = two_link_game(4);
        let mut s = State::from_counts(&game, vec![3, 1]).unwrap();
        s.ensure_latency_cache(&game);
        s.ensure_support_index(&game);
        assert_eq!(s.resource_latency(&game, rid(0)), 3.0);
        // The game mutates under the state: link 0's slope becomes 10.
        game.set_latency(rid(0), Affine::linear(10.0).into()).unwrap();
        // Partial invalidation (the pre-existing support-only path) leaves
        // the latency cache valid — and stale: it still answers with the
        // old slope. This is the bug `invalidate_caches_for_game_change`
        // exists to prevent.
        s.invalidate_support_index();
        assert_eq!(
            s.resource_latency(&game, rid(0)),
            3.0,
            "support-only invalidation must leave the stale cache observable \
             (otherwise this regression test guards nothing)"
        );
        // The full invalidation serves the new function.
        s.invalidate_caches_for_game_change();
        assert!(!s.latency_cache_valid());
        assert!(!s.support_index_valid());
        assert_eq!(s.resource_latency(&game, rid(0)), 30.0);
        s.ensure_latency_cache(&game);
        s.ensure_support_index(&game);
        assert_eq!(s.resource_latency(&game, rid(0)), 30.0);
        assert!(s.support_consistent(&game));
    }

    #[test]
    fn add_and_remove_players_keep_loads_and_invalidate_caches() {
        let game = overlap_game(6);
        let mut s = State::from_counts(&game, vec![2, 3, 1]).unwrap();
        s.ensure_latency_cache(&game);
        s.ensure_support_index(&game);
        // Arrival on strategy 0 = {r0, r1}.
        s.add_players(&game, sid(0), 4).unwrap();
        assert_eq!(s.count(sid(0)), 6);
        assert_eq!(s.load(rid(0)), 6);
        assert_eq!(s.load(rid(1)), 9);
        assert!(!s.latency_cache_valid());
        assert!(!s.support_index_valid());
        assert!(s.loads_consistent(&game));
        // Departure drains it back; the latency accessors recompute fresh.
        s.remove_players(&game, sid(0), 6).unwrap();
        assert_eq!(s.count(sid(0)), 0);
        assert!(s.loads_consistent(&game));
        assert_eq!(s.support_size(), 2);
        // Over-draining is rejected without mutating anything.
        let before = s.clone();
        assert!(matches!(
            s.remove_players(&game, sid(0), 1),
            Err(GameError::InsufficientPlayers { available: 0, requested: 1, .. })
        ));
        assert_eq!(s, before);
        // Zero-count events are no-ops.
        s.add_players(&game, sid(1), 0).unwrap();
        assert_eq!(s, before);
    }

    #[test]
    fn virtual_agents_add_base_load() {
        let game = overlap_game(3);
        let s = State::from_counts(&game, vec![3, 0, 0]).unwrap().with_virtual_agents(&game);
        assert!(s.has_virtual_agents());
        // r1 is on strategies s0 and s1 ⇒ base 2; player load 3.
        assert_eq!(s.effective_load(rid(1)), 5);
        assert_eq!(s.load(rid(1)), 3);
        // Latencies see the effective load.
        assert_eq!(s.resource_latency(&game, rid(1)), 5.0);
    }

    #[test]
    fn assign_lane_column_gathers_one_replica_and_invalidates_caches() {
        let game = overlap_game(6);
        let mut s = State::from_counts(&game, vec![6, 0, 0]).unwrap();
        s.ensure_latency_cache(&game);
        s.ensure_support_index(&game);
        // Two lanes interleaved strategy-major / resource-major; gather
        // lane 1 (counts [1, 2, 3]).
        let counts = vec![6, 1, 0, 2, 0, 3];
        let want = State::from_counts(&game, vec![1, 2, 3]).unwrap();
        let mut loads = vec![0u64; want.loads().len() * 2];
        for (k, &l) in s.loads().iter().enumerate() {
            loads[k * 2] = l;
        }
        for (k, &l) in want.loads().iter().enumerate() {
            loads[k * 2 + 1] = l;
        }
        s.assign_lane_column(&counts, &loads, 2, 1);
        assert_eq!(s, want);
        assert!(!s.latency_cache_valid() && !s.support_index_valid());
        assert!(s.loads_consistent(&game));
        // The gathered state serves fresh (uncached) latencies and
        // supports rebuilding both caches.
        s.ensure_latency_cache(&game);
        s.ensure_support_index(&game);
        assert_eq!(s.support_size(), 3);
    }
}
