//! Average latencies and per-class aggregates.
//!
//! The paper's approximate-equilibrium notion (Definition 1) compares player
//! latencies against the averages
//!
//! * `L_av(x) = Σ_P (x_P/n) · ℓ_P(x)` and
//! * `L+_av(x) = Σ_P (x_P/n) · ℓ_P(x + 1_P)`
//!
//! where the latter accounts for the latency increase a migrating player
//! inflicts on its destination.

use crate::game::CongestionGame;
use crate::state::State;
use crate::strategy::StrategyId;

/// Aggregate latency statistics of one player class in a state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMetrics {
    /// Players in the class.
    pub players: u64,
    /// Average latency `L_av` over the class's players.
    pub l_av: f64,
    /// Average ex-post latency `L+_av` over the class's players.
    pub l_av_plus: f64,
    /// Maximum latency among used strategies.
    pub max_latency: f64,
    /// Minimum latency among used strategies.
    pub min_latency: f64,
}

impl ClassMetrics {
    /// Compute the metrics of class `class` of `game` in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range. Classes with zero players report
    /// zero averages and an empty min/max (`max_latency = 0`,
    /// `min_latency = +∞` is avoided by reporting 0 for both).
    pub fn of(game: &CongestionGame, state: &State, class: usize) -> ClassMetrics {
        let cl = &game.classes()[class];
        let n = cl.players();
        if n == 0 {
            return ClassMetrics {
                players: 0,
                l_av: 0.0,
                l_av_plus: 0.0,
                max_latency: 0.0,
                min_latency: 0.0,
            };
        }
        let mut sum = 0.0;
        let mut sum_plus = 0.0;
        let mut max_l = f64::NEG_INFINITY;
        let mut min_l = f64::INFINITY;
        for sid in cl.strategy_ids() {
            let c = state.count(sid);
            if c == 0 {
                continue;
            }
            let l = state.strategy_latency(game, sid);
            let lp = state.strategy_latency_plus(game, sid);
            let w = c as f64;
            sum += w * l;
            sum_plus += w * lp;
            max_l = max_l.max(l);
            min_l = min_l.min(l);
        }
        let nf = n as f64;
        ClassMetrics {
            players: n,
            l_av: sum / nf,
            l_av_plus: sum_plus / nf,
            max_latency: max_l,
            min_latency: min_l,
        }
    }
}

/// Average latency `L_av(x)` over *all* players of the game.
pub fn average_latency(game: &CongestionGame, state: &State) -> f64 {
    weighted_average(game, state, |s| state.strategy_latency(game, s))
}

/// Average ex-post latency `L+_av(x)` over all players of the game.
pub fn average_latency_plus(game: &CongestionGame, state: &State) -> f64 {
    weighted_average(game, state, |s| state.strategy_latency_plus(game, s))
}

/// Maximum latency sustained by any player (the *makespan*).
///
/// Returns 0 for games without players.
pub fn makespan(game: &CongestionGame, state: &State) -> f64 {
    let mut max_l = 0.0_f64;
    for (i, &c) in state.counts().iter().enumerate() {
        if c > 0 {
            max_l = max_l.max(state.strategy_latency(game, StrategyId::new(i as u32)));
        }
    }
    max_l
}

fn weighted_average(game: &CongestionGame, state: &State, f: impl Fn(StrategyId) -> f64) -> f64 {
    let n = game.total_players();
    if n == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for (i, &c) in state.counts().iter().enumerate() {
        if c > 0 {
            sum += c as f64 * f(StrategyId::new(i as u32));
        }
    }
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::Affine;

    #[test]
    fn averages_on_two_links() {
        // ℓ1 = x, ℓ2 = 2x; counts (3, 1):
        // latencies 3 and 2 ⇒ L_av = (3·3 + 1·2)/4 = 11/4.
        // L+ = (3·4 + 1·4)/4 = 4.
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(2.0).into()],
            4,
        )
        .unwrap();
        let s = State::from_counts(&game, vec![3, 1]).unwrap();
        assert!((average_latency(&game, &s) - 2.75).abs() < 1e-12);
        assert!((average_latency_plus(&game, &s) - 4.0).abs() < 1e-12);
        assert!((makespan(&game, &s) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn class_metrics_match_global_for_single_class() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(2.0).into()],
            4,
        )
        .unwrap();
        let s = State::from_counts(&game, vec![3, 1]).unwrap();
        let m = ClassMetrics::of(&game, &s, 0);
        assert!((m.l_av - average_latency(&game, &s)).abs() < 1e-12);
        assert!((m.l_av_plus - average_latency_plus(&game, &s)).abs() < 1e-12);
        assert!((m.max_latency - 3.0).abs() < 1e-12);
        assert!((m.min_latency - 2.0).abs() < 1e-12);
        assert_eq!(m.players, 4);
    }

    #[test]
    fn unused_strategies_do_not_contribute() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::new(0.0, 1000.0).into()],
            2,
        )
        .unwrap();
        let s = State::from_counts(&game, vec![2, 0]).unwrap();
        assert!((average_latency(&game, &s) - 2.0).abs() < 1e-12);
        assert!((makespan(&game, &s) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_is_all_zero() {
        let game = CongestionGame::singleton(vec![Affine::linear(1.0).into()], 0).unwrap();
        let s = State::from_counts(&game, vec![0]).unwrap();
        let m = ClassMetrics::of(&game, &s, 0);
        assert_eq!(m.players, 0);
        assert_eq!(m.l_av, 0.0);
        assert_eq!(average_latency(&game, &s), 0.0);
        assert_eq!(makespan(&game, &s), 0.0);
    }
}
