//! Social cost measures and the fractional optimum of linear singleton games
//! (Section 5.1, "The Price of Imitation").

use crate::error::GameError;
use crate::game::CongestionGame;
use crate::latency::Affine;
use crate::metrics::average_latency;
use crate::state::State;

/// The paper's social cost `SC(x) = Σ_e (x_e/n)·ℓ_e(x_e)`, i.e. the average
/// latency over players. Identical to [`average_latency`] and re-exported
/// under the social-cost name used in Section 5.1.
pub fn average_social_cost(game: &CongestionGame, state: &State) -> f64 {
    average_latency(game, state)
}

/// Total latency `Σ_P x_P·ℓ_P(x)` (the un-normalized social cost).
pub fn total_latency(game: &CongestionGame, state: &State) -> f64 {
    average_latency(game, state) * game.total_players() as f64
}

/// Analysis of a linear singleton game `ℓ_e(x) = a_e·x`, following
/// Section 5.1.
///
/// For such games the optimal *fractional* assignment puts
/// `x̃_e = n/(A_Γ·a_e)` players on link `e`, where `A_Γ = Σ_e 1/a_e`; every
/// link then has latency `n/A_Γ`, which is the optimal average social cost
/// and a lower bound for integral assignments. A resource is *useless* if
/// `x̃_e < 1`.
///
/// # Example
///
/// ```
/// use congames_model::{CongestionGame, Affine, LinearSingleton};
/// let game = CongestionGame::singleton(
///     vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
///     10,
/// )?;
/// let ls = LinearSingleton::analyze(&game)?;
/// assert_eq!(ls.fractional_optimum_cost(), 5.0);
/// assert!(!ls.has_useless_resources());
/// # Ok::<(), congames_model::GameError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinearSingleton {
    coefficients: Vec<f64>,
    players: u64,
    a_gamma: f64,
}

impl LinearSingleton {
    /// Analyze `game`, verifying it is a singleton game with linear
    /// (offset-free, positive-slope) latencies.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] if the game is not a linear
    /// singleton game.
    pub fn analyze(game: &CongestionGame) -> Result<Self, GameError> {
        if game.classes().len() != 1 {
            return Err(GameError::InvalidParameter {
                name: "game",
                message: "linear-singleton analysis requires a single player class",
            });
        }
        let mut coefficients = Vec::with_capacity(game.num_resources());
        for (i, s) in game.strategies().iter().enumerate() {
            if s.len() != 1 || s.resources()[0].index() != i {
                return Err(GameError::InvalidParameter {
                    name: "game",
                    message: "strategies must be the singletons {e} in resource order",
                });
            }
        }
        if game.num_strategies() != game.num_resources() {
            return Err(GameError::InvalidParameter {
                name: "game",
                message: "singleton games need exactly one strategy per resource",
            });
        }
        for r in game.resources() {
            // Verify linearity by sampling: ℓ(0)=0 and ℓ(2)=2ℓ(1).
            let l0 = r.latency_at(0);
            let l1 = r.latency_at(1);
            let l2 = r.latency_at(2);
            if l0 != 0.0 || (l2 - 2.0 * l1).abs() > 1e-9 * l1.max(1.0) || l1 <= 0.0 {
                return Err(GameError::InvalidParameter {
                    name: "game",
                    message: "latencies must be of the form a·x with a > 0",
                });
            }
            coefficients.push(l1);
        }
        let a_gamma = coefficients.iter().map(|a| 1.0 / a).sum();
        Ok(LinearSingleton { coefficients, players: game.total_players(), a_gamma })
    }

    /// The coefficients `a_e`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// `A_Γ = Σ_e 1/a_e`.
    pub fn a_gamma(&self) -> f64 {
        self.a_gamma
    }

    /// The optimal fractional load `x̃_e = n/(A_Γ·a_e)` of resource `e`.
    pub fn fractional_load(&self, resource: usize) -> f64 {
        self.players as f64 / (self.a_gamma * self.coefficients[resource])
    }

    /// The fractional-optimum average social cost `n/A_Γ` (Lemma 11's lower
    /// bound).
    pub fn fractional_optimum_cost(&self) -> f64 {
        self.players as f64 / self.a_gamma
    }

    /// Whether resource `e` is *useless* (`x̃_e < 1`).
    pub fn is_useless(&self, resource: usize) -> bool {
        self.fractional_load(resource) < 1.0
    }

    /// Whether any resource is useless.
    pub fn has_useless_resources(&self) -> bool {
        (0..self.coefficients.len()).any(|e| self.is_useless(e))
    }

    /// The *Price of Imitation* ratio of a state: `SC(x) / (n/A_Γ)`.
    ///
    /// Theorem 10 bounds the expectation of this ratio over the protocol's
    /// randomness by `3 + o(1)` when `x̃_e = Ω(log n)`.
    pub fn price_ratio(&self, game: &CongestionGame, state: &State) -> f64 {
        average_social_cost(game, state) / self.fractional_optimum_cost()
    }

    /// Build a linear singleton game from coefficients (helper mirror of
    /// [`CongestionGame::singleton`]).
    ///
    /// # Errors
    ///
    /// Fails if `coefficients` is empty.
    pub fn build_game(coefficients: &[f64], players: u64) -> Result<CongestionGame, GameError> {
        CongestionGame::singleton(
            coefficients.iter().map(|&a| Affine::linear(a).into()).collect(),
            players,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{Constant, Monomial};

    #[test]
    fn fractional_optimum_equalizes_latencies() {
        let game = LinearSingleton::build_game(&[1.0, 2.0, 4.0], 14).unwrap();
        let ls = LinearSingleton::analyze(&game).unwrap();
        // A_Γ = 1 + 0.5 + 0.25 = 1.75; opt cost = 14/1.75 = 8.
        assert!((ls.a_gamma() - 1.75).abs() < 1e-12);
        assert!((ls.fractional_optimum_cost() - 8.0).abs() < 1e-12);
        // Each link's fractional latency a_e·x̃_e equals the optimum cost.
        for e in 0..3 {
            let lat = ls.coefficients()[e] * ls.fractional_load(e);
            assert!((lat - 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn useless_resource_detection() {
        // a = (1, 1000) with few players: the slow link gets x̃ < 1.
        let game = LinearSingleton::build_game(&[1.0, 1000.0], 2).unwrap();
        let ls = LinearSingleton::analyze(&game).unwrap();
        assert!(ls.is_useless(1));
        assert!(!ls.is_useless(0));
        assert!(ls.has_useless_resources());
    }

    #[test]
    fn price_ratio_of_optimal_integral_state() {
        let game = LinearSingleton::build_game(&[1.0, 1.0], 10).unwrap();
        let ls = LinearSingleton::analyze(&game).unwrap();
        let s = State::from_counts(&game, vec![5, 5]).unwrap();
        assert!((ls.price_ratio(&game, &s) - 1.0).abs() < 1e-12);
        let bad = State::from_counts(&game, vec![10, 0]).unwrap();
        assert!((ls.price_ratio(&game, &bad) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn analyze_rejects_nonlinear_or_nonsingleton() {
        let game = CongestionGame::singleton(
            vec![Monomial::new(1.0, 2).into(), Affine::linear(1.0).into()],
            4,
        )
        .unwrap();
        assert!(LinearSingleton::analyze(&game).is_err());
        let game2 = CongestionGame::singleton(vec![Constant::new(1.0).into()], 4).unwrap();
        assert!(LinearSingleton::analyze(&game2).is_err());
    }

    #[test]
    fn social_cost_names_agree() {
        let game = LinearSingleton::build_game(&[1.0, 3.0], 4).unwrap();
        let s = State::from_counts(&game, vec![3, 1]).unwrap();
        assert_eq!(average_social_cost(&game, &s), average_latency(&game, &s));
        assert!((total_latency(&game, &s) - 4.0 * average_latency(&game, &s)).abs() < 1e-12);
    }
}
