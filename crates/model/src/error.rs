use std::error::Error;
use std::fmt;

/// Error type for constructing and manipulating congestion games.
///
/// Every fallible public function in this crate returns `Result<_, GameError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GameError {
    /// A strategy referenced a resource index outside the game's resources.
    UnknownResource {
        /// The offending resource index.
        resource: u32,
        /// Number of resources in the game.
        resources: usize,
    },
    /// A strategy id was out of range.
    UnknownStrategy {
        /// The offending strategy index.
        strategy: u32,
        /// Number of strategies in the game.
        strategies: usize,
    },
    /// A strategy contained no resources.
    EmptyStrategy,
    /// A player class contained no strategies.
    EmptyClass,
    /// The game contains no resources.
    NoResources,
    /// The game contains no player classes.
    NoClasses,
    /// A state's per-strategy counts do not sum to the class sizes.
    CountMismatch {
        /// Class whose counts are inconsistent.
        class: usize,
        /// Expected number of players in this class.
        expected: u64,
        /// Sum of the provided strategy counts.
        found: u64,
    },
    /// A count vector had the wrong length.
    WrongLength {
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
    /// A migration would move more players than currently use the origin.
    InsufficientPlayers {
        /// Origin strategy.
        strategy: u32,
        /// Players available on the origin.
        available: u64,
        /// Players requested to move.
        requested: u64,
    },
    /// A migration crossed player classes.
    CrossClassMigration {
        /// Class of the origin strategy.
        from_class: usize,
        /// Class of the destination strategy.
        to_class: usize,
    },
    /// A numeric parameter was invalid (negative, NaN, out of range, ...).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint.
        message: &'static str,
    },
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::UnknownResource { resource, resources } => write!(
                f,
                "strategy references resource {resource} but the game has only {resources} resources"
            ),
            GameError::UnknownStrategy { strategy, strategies } => write!(
                f,
                "strategy id {strategy} out of range for a game with {strategies} strategies"
            ),
            GameError::EmptyStrategy => write!(f, "strategies must contain at least one resource"),
            GameError::EmptyClass => write!(f, "player classes must offer at least one strategy"),
            GameError::NoResources => write!(f, "congestion games need at least one resource"),
            GameError::NoClasses => write!(f, "congestion games need at least one player class"),
            GameError::CountMismatch { class, expected, found } => write!(
                f,
                "strategy counts of class {class} sum to {found} but the class has {expected} players"
            ),
            GameError::WrongLength { expected, found } => {
                write!(f, "expected a vector of length {expected}, got {found}")
            }
            GameError::InsufficientPlayers { strategy, available, requested } => write!(
                f,
                "cannot move {requested} players away from strategy {strategy}: only {available} present"
            ),
            GameError::CrossClassMigration { from_class, to_class } => write!(
                f,
                "players cannot migrate across classes (from class {from_class} to class {to_class})"
            ),
            GameError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl Error for GameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            GameError::UnknownResource { resource: 3, resources: 2 },
            GameError::EmptyStrategy,
            GameError::NoResources,
            GameError::CountMismatch { class: 0, expected: 4, found: 5 },
            GameError::WrongLength { expected: 2, found: 3 },
            GameError::InsufficientPlayers { strategy: 1, available: 0, requested: 2 },
            GameError::CrossClassMigration { from_class: 0, to_class: 1 },
            GameError::InvalidParameter { name: "lambda", message: "must be in (0, 1]" },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(first.is_lowercase(), "error message should start lowercase: {s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GameError>();
    }
}
