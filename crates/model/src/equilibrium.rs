//! Solution concepts: Nash equilibria, imitation-stable states, and the
//! (δ,ε,ν)-equilibria of Definition 1.

use crate::game::CongestionGame;
use crate::metrics::ClassMetrics;
use crate::state::State;
use crate::strategy::StrategyId;

/// The most profitable unilateral deviation found in a state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestDeviation {
    /// Origin strategy (has at least one player).
    pub from: StrategyId,
    /// Destination strategy.
    pub to: StrategyId,
    /// Latency gain `ℓ_P(x) − ℓ_Q(x + 1_Q − 1_P)` (positive = improvement).
    pub gain: f64,
}

/// Find the best unilateral deviation, optionally restricted to the support.
///
/// With `support_only = true` the destination must currently be used by
/// another player (i.e. reachable by imitation); with `false` all strategies
/// of the player's class are candidates (the best-response view).
///
/// Origins — and, with `support_only`, destinations — iterate the state's
/// [`State::occupied_or_scan`] view: the support index when it is built,
/// in the same ascending-id order as the dense scan it replaces, with a
/// count-testing dense fallback for index-less states.
///
/// Returns `None` if no player exists or no strictly improving deviation
/// exists.
pub fn best_deviation(
    game: &CongestionGame,
    state: &State,
    support_only: bool,
) -> Option<BestDeviation> {
    let mut best: Option<BestDeviation> = None;
    for (ci, class) in game.classes().iter().enumerate() {
        for from in state.occupied_or_scan(game, ci) {
            let l_from = state.strategy_latency(game, from);
            let mut consider = |to: StrategyId| {
                if to == from {
                    return;
                }
                let l_to = state.latency_after_move(game, from, to);
                let gain = l_from - l_to;
                if gain > 0.0 && best.map_or(true, |b| gain > b.gain) {
                    best = Some(BestDeviation { from, to, gain });
                }
            };
            if support_only {
                // Imitation requires someone to sample on the target.
                state.occupied_or_scan(game, ci).for_each(&mut consider);
            } else {
                class.strategy_ids().for_each(&mut consider);
            }
        }
    }
    best
}

/// Whether `state` is a Nash equilibrium up to additive tolerance `tol`
/// (i.e. an `ε`-Nash with `ε = tol`): no player can unilaterally improve its
/// latency by more than `tol`.
///
/// `tol = 0` gives exact Nash. The check is exact over the explicit strategy
/// sets (cost `O(S² · k)` where `k` is the maximum strategy length).
pub fn is_nash_equilibrium(game: &CongestionGame, state: &State, tol: f64) -> bool {
    match best_deviation(game, state, false) {
        Some(b) => b.gain <= tol,
        None => true,
    }
}

/// Whether `state` is *imitation-stable*: starting from it, the IMITATION
/// PROTOCOL makes no further move with probability 1.
///
/// Per Section 2.3, a state is imitation-stable iff it is `ε`-Nash with
/// `ε = ν` *with respect to the support*: no player can gain more than `nu`
/// by adopting the strategy of another (existing) player.
pub fn is_imitation_stable(game: &CongestionGame, state: &State, nu: f64) -> bool {
    match best_deviation(game, state, true) {
        Some(b) => b.gain <= nu,
        None => true,
    }
}

/// Classification of a state against Definition 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxStatus {
    /// Players on *expensive* strategies (`ℓ_P > (1+ε)·L+_av + ν`).
    pub expensive_players: u64,
    /// Players on *cheap* strategies (`ℓ_P < (1−ε)·L_av − ν`).
    pub cheap_players: u64,
    /// Total players considered.
    pub players: u64,
}

impl ApproxStatus {
    /// Players outside the `[±ε]` band: `expensive + cheap`.
    pub fn unsatisfied(&self) -> u64 {
        self.expensive_players + self.cheap_players
    }

    /// Fraction of unsatisfied players (0 for empty games).
    pub fn unsatisfied_fraction(&self) -> f64 {
        if self.players == 0 {
            0.0
        } else {
            self.unsatisfied() as f64 / self.players as f64
        }
    }
}

/// The (δ,ε,ν)-equilibrium test of Definition 1.
///
/// A state is at a (δ,ε,ν)-equilibrium iff at most a `δ`-fraction of players
/// use strategies whose latency deviates from the average by more than an
/// `ε`-fraction (plus the additive slack `ν`):
///
/// * expensive: `ℓ_P(x) > (1+ε)·L+_av + ν`
/// * cheap: `ℓ_P(x) < (1−ε)·L_av − ν`
///
/// For multi-class games the test is applied per class (each class has its
/// own averages) and the unsatisfied players are summed.
///
/// # Example
///
/// ```
/// use congames_model::{ApproxEquilibrium, CongestionGame, Affine, State};
/// let game = CongestionGame::singleton(
///     vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
///     10,
/// )?;
/// let balanced = State::from_counts(&game, vec![5, 5])?;
/// let eq = ApproxEquilibrium::new(0.1, 0.1, 0.0)?;
/// assert!(eq.is_satisfied(&game, &balanced));
/// # Ok::<(), congames_model::GameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxEquilibrium {
    delta: f64,
    eps: f64,
    nu: f64,
}

impl ApproxEquilibrium {
    /// Create a (δ,ε,ν)-equilibrium test.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GameError::InvalidParameter`] unless
    /// `δ ∈ [0,1]`, `ε ≥ 0`, `ν ≥ 0` (all finite).
    pub fn new(delta: f64, eps: f64, nu: f64) -> Result<Self, crate::GameError> {
        if !(0.0..=1.0).contains(&delta) || !delta.is_finite() {
            return Err(crate::GameError::InvalidParameter {
                name: "delta",
                message: "must be a finite value in [0, 1]",
            });
        }
        if eps < 0.0 || !eps.is_finite() {
            return Err(crate::GameError::InvalidParameter {
                name: "eps",
                message: "must be finite and non-negative",
            });
        }
        if nu < 0.0 || !nu.is_finite() {
            return Err(crate::GameError::InvalidParameter {
                name: "nu",
                message: "must be finite and non-negative",
            });
        }
        Ok(ApproxEquilibrium { delta, eps, nu })
    }

    /// The allowed unsatisfied fraction δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The relative latency band ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The additive slack ν.
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Count expensive/cheap players in `state`.
    pub fn status(&self, game: &CongestionGame, state: &State) -> ApproxStatus {
        let mut expensive = 0u64;
        let mut cheap = 0u64;
        let mut players = 0u64;
        for (ci, class) in game.classes().iter().enumerate() {
            players += class.players();
            if class.players() == 0 {
                continue;
            }
            let m = ClassMetrics::of(game, state, ci);
            let hi = (1.0 + self.eps) * m.l_av_plus + self.nu;
            let lo = (1.0 - self.eps) * m.l_av - self.nu;
            for sid in class.strategy_ids() {
                let c = state.count(sid);
                if c == 0 {
                    continue;
                }
                let l = state.strategy_latency(game, sid);
                if l > hi {
                    expensive += c;
                } else if l < lo {
                    cheap += c;
                }
            }
        }
        ApproxStatus { expensive_players: expensive, cheap_players: cheap, players }
    }

    /// Whether `state` satisfies the (δ,ε,ν)-equilibrium condition.
    pub fn is_satisfied(&self, game: &CongestionGame, state: &State) -> bool {
        let st = self.status(game, state);
        st.unsatisfied() as f64 <= self.delta * st.players as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{Affine, Constant};
    use crate::strategy::Strategy;
    use crate::GameError;

    fn sid(i: u32) -> StrategyId {
        StrategyId::new(i)
    }

    fn two_links(a1: f64, a2: f64, n: u64) -> CongestionGame {
        CongestionGame::singleton(vec![Affine::linear(a1).into(), Affine::linear(a2).into()], n)
            .unwrap()
    }

    #[test]
    fn balanced_identical_links_are_nash() {
        let game = two_links(1.0, 1.0, 10);
        let s = State::from_counts(&game, vec![5, 5]).unwrap();
        assert!(is_nash_equilibrium(&game, &s, 0.0));
        assert!(is_imitation_stable(&game, &s, 0.0));
        assert!(best_deviation(&game, &s, false).is_none());
    }

    #[test]
    fn unbalanced_state_has_deviation() {
        let game = two_links(1.0, 1.0, 10);
        let s = State::from_counts(&game, vec![8, 2]).unwrap();
        let b = best_deviation(&game, &s, false).unwrap();
        assert_eq!(b.from, sid(0));
        assert_eq!(b.to, sid(1));
        // gain = 8 − 3 = 5
        assert!((b.gain - 5.0).abs() < 1e-12);
        assert!(!is_nash_equilibrium(&game, &s, 0.0));
        assert!(is_nash_equilibrium(&game, &s, 5.0));
    }

    #[test]
    fn imitation_stability_ignores_unused_strategies() {
        // All players on an expensive constant link; the cheap link is
        // unused, so imitation cannot discover it: imitation-stable but not
        // Nash. This is the "lost strategy" drawback of Section 6.
        let game = CongestionGame::singleton(
            vec![Constant::new(100.0).into(), Constant::new(1.0).into()],
            5,
        )
        .unwrap();
        let s = State::from_counts(&game, vec![5, 0]).unwrap();
        assert!(is_imitation_stable(&game, &s, 0.0));
        assert!(!is_nash_equilibrium(&game, &s, 0.0));
    }

    #[test]
    fn imitation_stability_respects_nu() {
        let game = two_links(1.0, 1.0, 7);
        // counts (4,3): gain of moving 4→3 side is 4 − 4 = 0 ⇒ stable even
        // with ν = 0.
        let s = State::from_counts(&game, vec![4, 3]).unwrap();
        assert!(is_imitation_stable(&game, &s, 0.0));
        // counts (5,2): gain = 5 − 3 = 2 > ν for ν < 2.
        let s2 = State::from_counts(&game, vec![5, 2]).unwrap();
        assert!(!is_imitation_stable(&game, &s2, 1.9));
        assert!(is_imitation_stable(&game, &s2, 2.0));
    }

    #[test]
    fn approx_eq_parameter_validation() {
        assert!(matches!(
            ApproxEquilibrium::new(1.5, 0.1, 0.0),
            Err(GameError::InvalidParameter { name: "delta", .. })
        ));
        assert!(matches!(
            ApproxEquilibrium::new(0.5, -0.1, 0.0),
            Err(GameError::InvalidParameter { name: "eps", .. })
        ));
        assert!(matches!(
            ApproxEquilibrium::new(0.5, 0.1, f64::NAN),
            Err(GameError::InvalidParameter { name: "nu", .. })
        ));
        let eq = ApproxEquilibrium::new(0.25, 0.5, 1.0).unwrap();
        assert_eq!((eq.delta(), eq.eps(), eq.nu()), (0.25, 0.5, 1.0));
    }

    #[test]
    fn approx_status_counts_expensive_and_cheap() {
        // Three links x, x, 10x with counts (4,4,2) over n=10:
        // latencies 4, 4, 20; L_av = (4·4+4·4+2·20)/10 = 7.2
        // L+_av = (4·5+4·5+2·30)/10 = 10.
        let game = CongestionGame::singleton(
            vec![
                Affine::linear(1.0).into(),
                Affine::linear(1.0).into(),
                Affine::linear(10.0).into(),
            ],
            10,
        )
        .unwrap();
        let s = State::from_counts(&game, vec![4, 4, 2]).unwrap();
        // ε = 0.5, ν = 0: expensive above 1.5·10 = 15 ⇒ link 3 (2 players);
        // cheap below 0.5·7.2 = 3.6 ⇒ none.
        let eq = ApproxEquilibrium::new(0.0, 0.5, 0.0).unwrap();
        let st = eq.status(&game, &s);
        assert_eq!(st.expensive_players, 2);
        assert_eq!(st.cheap_players, 0);
        assert_eq!(st.players, 10);
        assert!((st.unsatisfied_fraction() - 0.2).abs() < 1e-12);
        assert!(!eq.is_satisfied(&game, &s));
        // Allowing δ = 0.2 accepts the state.
        let eq2 = ApproxEquilibrium::new(0.2, 0.5, 0.0).unwrap();
        assert!(eq2.is_satisfied(&game, &s));
    }

    #[test]
    fn cheap_players_are_flagged() {
        // Links x and 100 + 0·x (constant): counts (1, 9) over n=10.
        // latencies: 1 and 100. L_av = (1 + 900)/10 = 90.1; the lone player
        // at latency 1 is "cheap" for any reasonable band.
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Constant::new(100.0).into()],
            10,
        )
        .unwrap();
        let s = State::from_counts(&game, vec![1, 9]).unwrap();
        let eq = ApproxEquilibrium::new(0.0, 0.1, 0.0).unwrap();
        let st = eq.status(&game, &s);
        assert_eq!(st.cheap_players, 1);
    }

    #[test]
    fn multi_class_uses_per_class_averages() {
        // Class a on resource 0 only; class b picks between 1 and 2.
        let mut b = CongestionGame::builder();
        let r0 = b.add_resource(Constant::new(10.0).into());
        let r1 = b.add_resource(Affine::linear(1.0).into());
        let r2 = b.add_resource(Affine::linear(1.0).into());
        b.add_class("a", 4, vec![Strategy::singleton(r0)]).unwrap();
        b.add_class("b", 4, vec![Strategy::singleton(r1), Strategy::singleton(r2)]).unwrap();
        let game = b.build().unwrap();
        let s = State::from_counts(&game, vec![4, 2, 2]).unwrap();
        // Both classes are internally balanced ⇒ satisfied even with δ=0.
        let eq = ApproxEquilibrium::new(0.0, 0.01, 0.0).unwrap();
        assert!(eq.is_satisfied(&game, &s));
    }
}
