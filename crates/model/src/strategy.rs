use std::fmt;

use crate::error::GameError;
use crate::resource::ResourceId;

/// Identifier of a strategy within a [`CongestionGame`].
///
/// Strategy ids index the game's global strategy list; each strategy belongs
/// to exactly one player class.
///
/// [`CongestionGame`]: crate::CongestionGame
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StrategyId(u32);

impl StrategyId {
    /// Create a strategy id from a raw index.
    pub fn new(index: u32) -> Self {
        StrategyId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as `u32`.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for StrategyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for StrategyId {
    fn from(index: u32) -> Self {
        StrategyId(index)
    }
}

/// A strategy: a non-empty set of resources, stored sorted and deduplicated.
///
/// In network congestion games a strategy is an s–t path; in singleton games
/// it is a single link. The sorted representation lets hypothetical-move
/// latency computations walk two strategies with a linear merge.
///
/// # Example
///
/// ```
/// use congames_model::{ResourceId, Strategy};
/// let s = Strategy::new(vec![ResourceId::new(2), ResourceId::new(0)])?;
/// assert_eq!(s.resources().len(), 2);
/// assert!(s.contains(ResourceId::new(0)));
/// # Ok::<(), congames_model::GameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Strategy {
    /// Sorted, deduplicated resource ids.
    resources: Vec<ResourceId>,
}

impl Strategy {
    /// Create a strategy from resource ids (sorted and deduplicated).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::EmptyStrategy`] if no resources are given.
    pub fn new(mut resources: Vec<ResourceId>) -> Result<Self, GameError> {
        if resources.is_empty() {
            return Err(GameError::EmptyStrategy);
        }
        resources.sort_unstable();
        resources.dedup();
        Ok(Strategy { resources })
    }

    /// Create the singleton strategy `{r}`.
    pub fn singleton(r: ResourceId) -> Self {
        Strategy { resources: vec![r] }
    }

    /// The sorted resource ids of this strategy.
    pub fn resources(&self) -> &[ResourceId] {
        &self.resources
    }

    /// Number of resources in the strategy (`|P|`).
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Strategies are never empty, but the method is provided for symmetry
    /// with collection APIs. Always returns `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the strategy uses resource `r` (binary search).
    pub fn contains(&self, r: ResourceId) -> bool {
        self.resources.binary_search(&r).is_ok()
    }

    /// Visit the symmetric difference of `self` (origin) and `to`
    /// (destination) with a single callback: `f(e, -1)` for `e ∈ self \ to`
    /// and `f(e, +1)` for `e ∈ to \ self`.
    ///
    /// This is the primitive behind applying a migration to resource loads:
    /// resources in the intersection keep their congestion.
    pub fn diff_signed(&self, to: &Strategy, mut f: impl FnMut(ResourceId, i64)) {
        let (a, b) = (&self.resources, &to.resources);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    f(a[i], -1);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    f(b[j], 1);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < a.len() {
            f(a[i], -1);
            i += 1;
        }
        while j < b.len() {
            f(b[j], 1);
            j += 1;
        }
    }

    /// Visit the symmetric difference of `self` (origin) and `to`
    /// (destination): calls `on_leave(e)` for `e ∈ self \ to` and
    /// `on_enter(e)` for `e ∈ to \ self`.
    pub fn diff_with(
        &self,
        to: &Strategy,
        mut on_leave: impl FnMut(ResourceId),
        mut on_enter: impl FnMut(ResourceId),
    ) {
        self.diff_signed(to, |r, sign| if sign < 0 { on_leave(r) } else { on_enter(r) });
    }
}

impl FromIterator<ResourceId> for Strategy {
    /// Collect resource ids into a strategy.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty; use [`Strategy::new`] for fallible
    /// construction.
    fn from_iter<I: IntoIterator<Item = ResourceId>>(iter: I) -> Self {
        Strategy::new(iter.into_iter().collect()).expect("strategy must be non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> ResourceId {
        ResourceId::new(i)
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = Strategy::new(vec![rid(3), rid(1), rid(3), rid(2)]).unwrap();
        assert_eq!(s.resources(), &[rid(1), rid(2), rid(3)]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_is_rejected() {
        assert_eq!(Strategy::new(vec![]), Err(GameError::EmptyStrategy));
    }

    #[test]
    fn contains_uses_membership() {
        let s = Strategy::new(vec![rid(0), rid(5)]).unwrap();
        assert!(s.contains(rid(0)));
        assert!(s.contains(rid(5)));
        assert!(!s.contains(rid(3)));
    }

    #[test]
    fn diff_with_partitions_symmetric_difference() {
        let a = Strategy::new(vec![rid(0), rid(1), rid(2)]).unwrap();
        let b = Strategy::new(vec![rid(1), rid(3)]).unwrap();
        let mut left = vec![];
        let mut entered = vec![];
        a.diff_with(&b, |e| left.push(e), |e| entered.push(e));
        assert_eq!(left, vec![rid(0), rid(2)]);
        assert_eq!(entered, vec![rid(3)]);
    }

    #[test]
    fn diff_with_identical_strategies_is_empty() {
        let a = Strategy::new(vec![rid(1), rid(4)]).unwrap();
        let mut n = 0;
        a.diff_signed(&a.clone(), |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn diff_with_disjoint_strategies_is_total() {
        let a = Strategy::new(vec![rid(0), rid(1)]).unwrap();
        let b = Strategy::new(vec![rid(2), rid(3)]).unwrap();
        let mut left = vec![];
        let mut entered = vec![];
        a.diff_with(&b, |e| left.push(e), |e| entered.push(e));
        assert_eq!(left.len() + entered.len(), 4);
    }

    #[test]
    fn from_iterator_collects() {
        let s: Strategy = [rid(2), rid(0)].into_iter().collect();
        assert_eq!(s.resources(), &[rid(0), rid(2)]);
    }

    #[test]
    fn strategy_id_display() {
        assert_eq!(StrategyId::new(4).to_string(), "s4");
        assert_eq!(StrategyId::from(4u32).index(), 4);
    }
}
