use std::fmt;

use crate::latency::LatencyFn;

/// Identifier of a resource (edge/link) within a [`CongestionGame`].
///
/// Resource ids index the game's resource list and are assigned densely from
/// zero in construction order.
///
/// [`CongestionGame`]: crate::CongestionGame
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(u32);

impl ResourceId {
    /// Create a resource id from a raw index.
    pub fn new(index: u32) -> Self {
        ResourceId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as `u32`.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for ResourceId {
    fn from(index: u32) -> Self {
        ResourceId(index)
    }
}

/// A resource of a congestion game: a name and a latency function.
#[derive(Debug, Clone)]
pub struct Resource {
    name: Option<String>,
    latency: LatencyFn,
}

impl Resource {
    /// Create an anonymous resource with the given latency.
    pub fn new(latency: LatencyFn) -> Self {
        Resource { name: None, latency }
    }

    /// Create a named resource (names show up in diagnostics only).
    pub fn named(name: impl Into<String>, latency: LatencyFn) -> Self {
        Resource { name: Some(name.into()), latency }
    }

    /// The resource's latency function.
    pub fn latency(&self) -> &LatencyFn {
        &self.latency
    }

    /// Latency at congestion `load` (convenience for `latency().value(load)`).
    pub fn latency_at(&self, load: u64) -> f64 {
        self.latency.value(load)
    }

    /// The resource's name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Replace the latency function, keeping the name.
    ///
    /// Any [`State`](crate::State) carrying a latency cache built against
    /// the owning game keeps serving the *old* function's values until
    /// [`State::invalidate_caches_for_game_change`](crate::State::invalidate_caches_for_game_change)
    /// runs — game mutators (see `CongestionGame::set_latency`) document
    /// the same obligation.
    pub fn set_latency(&mut self, latency: LatencyFn) {
        self.latency = latency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::Affine;

    #[test]
    fn id_roundtrip() {
        let id = ResourceId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.raw(), 7);
        assert_eq!(ResourceId::from(7u32), id);
        assert_eq!(id.to_string(), "r7");
    }

    #[test]
    fn resource_accessors() {
        let r = Resource::named("uplink", Affine::new(1.0, 2.0).into());
        assert_eq!(r.name(), Some("uplink"));
        assert_eq!(r.latency_at(3), 5.0);
        let anon = Resource::new(Affine::linear(1.0).into());
        assert_eq!(anon.name(), None);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ResourceId::new(1) < ResourceId::new(2));
    }
}
