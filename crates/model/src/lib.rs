//! # congames-model
//!
//! The congestion-game substrate for the `congames` project: a faithful
//! implementation of the model of *"Concurrent Imitation Dynamics in
//! Congestion Games"* (Ackermann, Berenbrink, Fischer, Hoefer; PODC 2009).
//!
//! A congestion game consists of a set of [`Resource`]s, each equipped with a
//! non-decreasing [`Latency`] function, and a set of [`Strategy`]s (subsets of
//! resources). Players are anonymous and grouped into [`PlayerClass`]es; a
//! *symmetric* game has a single class whose strategy set is shared by all
//! players. A [`State`] records how many players use each strategy and,
//! derived from that, the *congestion* (load) of every resource.
//!
//! The crate provides:
//!
//! * latency families with analytic *elasticity* and *slope* bounds
//!   ([`latency`]),
//! * Rosenthal's potential function, both from scratch and incrementally
//!   ([`potential()`]),
//! * the average latencies `L_av` and `L+_av` and the social-cost measures
//!   used throughout the paper ([`metrics`], [`social`]),
//! * the solution concepts: Nash equilibria, imitation-stable states, and
//!   (δ,ε,ν)-equilibria of Definition 1 ([`equilibrium`]).
//!
//! # Example
//!
//! ```
//! use congames_model::{CongestionGame, Affine, State};
//!
//! // Two parallel links with latencies x and 2x, shared by 12 players.
//! let game = CongestionGame::singleton(
//!     vec![Affine::new(1.0, 0.0).into(), Affine::new(2.0, 0.0).into()],
//!     12,
//! )?;
//! // All players start on the slow link.
//! let state = State::from_counts(&game, vec![0, 12])?;
//! assert_eq!(state.load(congames_model::ResourceId::new(1)), 12);
//! let phi = congames_model::potential(&game, &state);
//! assert!(phi > 0.0);
//! # Ok::<(), congames_model::GameError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod equilibrium;
mod error;
pub mod game;
pub mod latency;
pub mod metrics;
pub mod potential;
mod resource;
pub mod social;
mod state;
mod strategy;

pub use equilibrium::{
    best_deviation, is_imitation_stable, is_nash_equilibrium, ApproxEquilibrium, ApproxStatus,
    BestDeviation,
};
pub use error::GameError;
pub use game::{CongestionGame, GameParams, PlayerClass, SymmetricBuilder};
pub use latency::{
    estimate_elasticity_batched, sum_range_via_eval, Affine, Bpr, Constant, FnLatency, Latency,
    LatencyFn, Monomial, Polynomial, Scaled,
};
pub use metrics::{average_latency, average_latency_plus, makespan, ClassMetrics};
pub use potential::{potential, potential_delta_for_load_change, potential_of_loads};
pub use resource::{Resource, ResourceId};
pub use social::{average_social_cost, total_latency, LinearSingleton};
pub use state::{Migration, State};
pub use strategy::{Strategy, StrategyId};
