//! Latency functions and their analytic bounds.
//!
//! The paper works with non-decreasing, differentiable latency functions
//! `ℓ_e : R≥0 → R≥0` with `ℓ_e(x) > 0` for `x > 0`. Three derived quantities
//! drive the protocols:
//!
//! * the **elasticity** `d ≥ sup_x ℓ'(x)·x / ℓ(x)` (Section 2.2), which damps
//!   the imitation migration probability (`μ = λ/d · gain/ℓ_P`),
//! * the **slope on almost-empty resources**
//!   `ν_e = max_{x ∈ 1..⌈d⌉} ℓ(x) − ℓ(x−1)`, which bounds probabilistic
//!   effects on lightly loaded resources and defines the `ν` threshold of the
//!   IMITATION PROTOCOL,
//! * the **maximum slope** `β ≥ max_x ℓ(x) − ℓ(x−1)`, used by the
//!   EXPLORATION PROTOCOL (Section 6).
//!
//! Each standard family implements these analytically ([`Constant`],
//! [`Affine`], [`Monomial`], [`Polynomial`], the traffic-engineering
//! [`Bpr`] function); [`FnLatency`] wraps a closure and estimates them
//! numerically.

use std::fmt;
use std::sync::Arc;

/// A non-decreasing latency function evaluated at integer congestion values.
///
/// Implementations must be non-decreasing and non-negative; the protocols in
/// `congames-dynamics` additionally assume `value(x) > 0` for `x > 0`
/// (as the paper does). All implementations in this module satisfy both when
/// constructed with non-negative parameters.
///
/// # Example
///
/// ```
/// use congames_model::{Latency, Monomial};
/// let l = Monomial::new(2.0, 3); // 2·x³
/// assert_eq!(l.value(2), 16.0);
/// assert_eq!(l.elasticity_bound(100), 3.0);
/// ```
pub trait Latency: fmt::Debug + Send + Sync {
    /// Latency at integer congestion `load`.
    fn value(&self, load: u64) -> f64;

    /// An upper bound on the elasticity `ℓ'(x)·x / ℓ(x)` over `(0, max_load]`.
    ///
    /// The default implementation estimates the bound numerically from the
    /// integer samples `value(0..=max_load)` using forward differences; exact
    /// families override it.
    fn elasticity_bound(&self, max_load: u64) -> f64 {
        estimate_elasticity(&|x| self.value(x), max_load)
    }

    /// The maximum increment `value(x) − value(x−1)` over `x ∈ lo+1 ..= hi`.
    ///
    /// Used for the `ν_e` bound (with `hi = ⌈d⌉`) and the `β` bound (with
    /// `hi = n`). The default implementation scans the range; convex families
    /// override with the closed form `value(hi) − value(hi−1)`.
    fn max_step(&self, lo: u64, hi: u64) -> f64 {
        let mut best = 0.0_f64;
        let mut prev = self.value(lo);
        for x in lo + 1..=hi {
            let v = self.value(x);
            best = best.max(v - prev);
            prev = v;
        }
        best
    }

    /// Latency at a *fractional* congestion (non-atomic / Wardrop model).
    ///
    /// The default linearly interpolates between the neighbouring integer
    /// values; analytic families override with the exact formula.
    fn value_at(&self, load: f64) -> f64 {
        debug_assert!(load >= 0.0 && load.is_finite(), "fractional load must be ≥ 0");
        let lo = load.floor();
        let frac = load - lo;
        let v_lo = self.value(lo as u64);
        if frac == 0.0 {
            return v_lo;
        }
        let v_hi = self.value(lo as u64 + 1);
        v_lo + frac * (v_hi - v_lo)
    }

    /// The primitive `∫_0^load ℓ(u) du` (the Beckmann / continuous Rosenthal
    /// potential contribution of one resource).
    ///
    /// The default integrates the interpolated [`Latency::value_at`] by the
    /// trapezoid rule over unit intervals (exact for the default
    /// interpolation); analytic families override with closed forms.
    fn integral_to(&self, load: f64) -> f64 {
        debug_assert!(load >= 0.0 && load.is_finite(), "fractional load must be ≥ 0");
        let whole = load.floor() as u64;
        let mut acc = 0.0;
        let mut prev = self.value(0);
        for x in 1..=whole {
            let v = self.value(x);
            acc += 0.5 * (prev + v);
            prev = v;
        }
        let frac = load - whole as f64;
        if frac > 0.0 {
            acc += 0.5 * frac * (prev + self.value_at(load));
        }
        acc
    }
}

/// Numerically estimate an elasticity upper bound from integer samples.
///
/// For a differentiable non-decreasing `ℓ`, the elasticity at `x` is
/// `ℓ'(x)·x/ℓ(x)`; we bound `ℓ'` on `[x, x+1]` by the forward difference and
/// evaluate at the right end, adding a small safety margin. This is a *bound
/// estimate*, not an exact supremum; standard families use closed forms.
pub fn estimate_elasticity(f: &dyn Fn(u64) -> f64, max_load: u64) -> f64 {
    let mut best = 0.0_f64;
    let mut prev = f(0);
    for x in 1..=max_load.max(1) {
        let v = f(x);
        if v > 0.0 {
            // slope on [x-1, x] by forward difference, evaluated at (x, f(x)).
            let slope = v - prev;
            best = best.max(slope * x as f64 / v);
        }
        prev = v;
    }
    best
}

/// A shared, type-erased latency function.
///
/// `CongestionGame` stores latencies as `LatencyFn` so games are cheap to
/// clone and can mix families.
pub type LatencyFn = Arc<dyn Latency>;

/// A constant latency `ℓ(x) = c`.
///
/// Elasticity 0, slope 0. Useful for modeling fixed-delay links (e.g. the
/// constant link of the overshooting instance in Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    c: f64,
}

impl Constant {
    /// Create the constant latency `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or not finite.
    pub fn new(c: f64) -> Self {
        assert!(c.is_finite() && c >= 0.0, "constant latency must be finite and non-negative");
        Constant { c }
    }

    /// The constant value.
    pub fn value_const(&self) -> f64 {
        self.c
    }
}

impl Latency for Constant {
    fn value(&self, _load: u64) -> f64 {
        self.c
    }

    fn elasticity_bound(&self, _max_load: u64) -> f64 {
        0.0
    }

    fn max_step(&self, _lo: u64, _hi: u64) -> f64 {
        0.0
    }

    fn value_at(&self, _load: f64) -> f64 {
        self.c
    }

    fn integral_to(&self, load: f64) -> f64 {
        self.c * load
    }
}

impl From<Constant> for LatencyFn {
    fn from(l: Constant) -> LatencyFn {
        Arc::new(l)
    }
}

/// An affine latency `ℓ(x) = a·x + b` with `a, b ≥ 0`.
///
/// Elasticity `a·x/(a·x+b) ≤ 1`; slope `a` everywhere. The linear case
/// (`b = 0`) is the setting of the Price-of-Imitation analysis (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    a: f64,
    b: f64,
}

impl Affine {
    /// Create `ℓ(x) = a·x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is negative or not finite.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(a.is_finite() && a >= 0.0, "affine coefficient must be finite and non-negative");
        assert!(b.is_finite() && b >= 0.0, "affine offset must be finite and non-negative");
        Affine { a, b }
    }

    /// Create the linear latency `ℓ(x) = a·x` (no offset).
    pub fn linear(a: f64) -> Self {
        Affine::new(a, 0.0)
    }

    /// The slope `a`.
    pub fn slope(&self) -> f64 {
        self.a
    }

    /// The offset `b`.
    pub fn offset(&self) -> f64 {
        self.b
    }

    /// The player-normalized version `ℓ(x/n) = (a/n)·x + b` used by
    /// Theorem 9 (players of weight `1/n`).
    pub fn scaled_by_players(&self, n: u64) -> Affine {
        assert!(n > 0, "scaling requires at least one player");
        Affine::new(self.a / n as f64, self.b)
    }
}

impl Latency for Affine {
    fn value(&self, load: u64) -> f64 {
        self.a * load as f64 + self.b
    }

    fn elasticity_bound(&self, max_load: u64) -> f64 {
        if self.a == 0.0 {
            return 0.0;
        }
        if self.b == 0.0 {
            return 1.0;
        }
        let x = max_load.max(1) as f64;
        self.a * x / (self.a * x + self.b)
    }

    fn max_step(&self, lo: u64, hi: u64) -> f64 {
        if hi > lo {
            self.a
        } else {
            0.0
        }
    }

    fn value_at(&self, load: f64) -> f64 {
        self.a * load + self.b
    }

    fn integral_to(&self, load: f64) -> f64 {
        0.5 * self.a * load * load + self.b * load
    }
}

impl From<Affine> for LatencyFn {
    fn from(l: Affine) -> LatencyFn {
        Arc::new(l)
    }
}

/// A monomial latency `ℓ(x) = a·x^k` with `a ≥ 0`, integer degree `k ≥ 1`.
///
/// Elasticity exactly `k` — the canonical example from Section 2.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Monomial {
    a: f64,
    k: u32,
}

impl Monomial {
    /// Create `ℓ(x) = a·x^k`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is negative or not finite, or if `k == 0` (use
    /// [`Constant`] for degree zero).
    pub fn new(a: f64, k: u32) -> Self {
        assert!(a.is_finite() && a >= 0.0, "monomial coefficient must be finite and non-negative");
        assert!(k >= 1, "monomial degree must be at least 1; use Constant for degree 0");
        Monomial { a, k }
    }

    /// The coefficient `a`.
    pub fn coefficient(&self) -> f64 {
        self.a
    }

    /// The degree `k`.
    pub fn degree(&self) -> u32 {
        self.k
    }

    /// The player-normalized version `ℓ(x/n) = (a/n^k)·x^k` (Theorem 9).
    pub fn scaled_by_players(&self, n: u64) -> Monomial {
        assert!(n > 0, "scaling requires at least one player");
        Monomial::new(self.a / (n as f64).powi(self.k as i32), self.k)
    }
}

impl Latency for Monomial {
    fn value(&self, load: u64) -> f64 {
        self.a * (load as f64).powi(self.k as i32)
    }

    fn elasticity_bound(&self, _max_load: u64) -> f64 {
        if self.a == 0.0 {
            0.0
        } else {
            self.k as f64
        }
    }

    fn max_step(&self, lo: u64, hi: u64) -> f64 {
        // x^k is convex for k ≥ 1, so the largest step is the last one.
        if hi > lo {
            self.value(hi) - self.value(hi - 1)
        } else {
            0.0
        }
    }

    fn value_at(&self, load: f64) -> f64 {
        self.a * load.powi(self.k as i32)
    }

    fn integral_to(&self, load: f64) -> f64 {
        self.a * load.powi(self.k as i32 + 1) / (self.k as f64 + 1.0)
    }
}

impl From<Monomial> for LatencyFn {
    fn from(l: Monomial) -> LatencyFn {
        Arc::new(l)
    }
}

/// A polynomial latency `ℓ(x) = Σ_k a_k·x^k` with non-negative coefficients.
///
/// With non-negative coefficients the elasticity is bounded by the maximum
/// degree with a non-zero coefficient, and the function is convex, so both
/// bounds have closed forms.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    /// `coeffs[k]` is the coefficient of `x^k`.
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Create a polynomial from coefficients (`coeffs[k]` multiplies `x^k`).
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or not finite, or if all
    /// coefficients are zero.
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(
            coeffs.iter().all(|c| c.is_finite() && *c >= 0.0),
            "polynomial coefficients must be finite and non-negative"
        );
        assert!(coeffs.iter().any(|c| *c > 0.0), "polynomial must have a positive coefficient");
        Polynomial { coeffs }
    }

    /// Coefficients (`[k]` multiplies `x^k`).
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Highest degree with a non-zero coefficient.
    pub fn degree(&self) -> u32 {
        self.coeffs.iter().rposition(|c| *c > 0.0).unwrap_or(0) as u32
    }

    /// The player-normalized version `ℓ(x/n)` (coefficient of `x^k` divided
    /// by `n^k`), as used by Theorem 9.
    pub fn scaled_by_players(&self, n: u64) -> Polynomial {
        assert!(n > 0, "scaling requires at least one player");
        let coeffs =
            self.coeffs.iter().enumerate().map(|(k, a)| a / (n as f64).powi(k as i32)).collect();
        Polynomial::new(coeffs)
    }
}

impl Latency for Polynomial {
    fn value(&self, load: u64) -> f64 {
        let x = load as f64;
        // Horner's rule.
        self.coeffs.iter().rev().fold(0.0, |acc, c| acc * x + c)
    }

    fn elasticity_bound(&self, _max_load: u64) -> f64 {
        // For Σ a_k x^k with a_k ≥ 0: ℓ'(x)·x = Σ k·a_k·x^k ≤ d·ℓ(x).
        self.degree() as f64
    }

    fn max_step(&self, lo: u64, hi: u64) -> f64 {
        // Convex (non-negative coefficients) ⇒ the last step is the largest.
        if hi > lo {
            self.value(hi) - self.value(hi - 1)
        } else {
            0.0
        }
    }

    fn value_at(&self, load: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, c| acc * load + c)
    }

    fn integral_to(&self, load: f64) -> f64 {
        self.coeffs
            .iter()
            .enumerate()
            .map(|(k, a)| a * load.powi(k as i32 + 1) / (k as f64 + 1.0))
            .sum()
    }
}

impl From<Polynomial> for LatencyFn {
    fn from(l: Polynomial) -> LatencyFn {
        Arc::new(l)
    }
}

/// The Bureau of Public Roads (BPR) travel-time function
/// `ℓ(x) = t0·(1 + α·(x/c)^k)`: free-flow time `t0`, practical capacity
/// `c`, and the classic parameters `α = 0.15`, `k = 4`.
///
/// The standard of traffic-assignment practice; a polynomial with positive
/// offset, so its elasticity is strictly below `k` and the protocols damp
/// less than for pure monomials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bpr {
    t0: f64,
    alpha: f64,
    capacity: f64,
    k: u32,
}

impl Bpr {
    /// Create a BPR latency with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `t0 > 0`, `α ≥ 0`, `capacity > 0`, `k ≥ 1` (all
    /// finite).
    pub fn new(t0: f64, alpha: f64, capacity: f64, k: u32) -> Self {
        assert!(t0.is_finite() && t0 > 0.0, "free-flow time must be positive");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be non-negative");
        assert!(capacity.is_finite() && capacity > 0.0, "capacity must be positive");
        assert!(k >= 1, "BPR exponent must be at least 1");
        Bpr { t0, alpha, capacity, k }
    }

    /// The standard parametrization `α = 0.15`, `k = 4`.
    pub fn standard(t0: f64, capacity: f64) -> Self {
        Bpr::new(t0, 0.15, capacity, 4)
    }

    /// Free-flow travel time `t0`.
    pub fn free_flow(&self) -> f64 {
        self.t0
    }

    /// Practical capacity `c`.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

impl Latency for Bpr {
    fn value(&self, load: u64) -> f64 {
        self.value_at(load as f64)
    }

    fn value_at(&self, load: f64) -> f64 {
        self.t0 * (1.0 + self.alpha * (load / self.capacity).powi(self.k as i32))
    }

    fn elasticity_bound(&self, _max_load: u64) -> f64 {
        // ℓ'(x)·x/ℓ(x) = k·α·r^k/(1 + α·r^k) < k with r = x/c.
        self.k as f64
    }

    fn max_step(&self, lo: u64, hi: u64) -> f64 {
        // Convex for k ≥ 1 ⇒ last step is largest.
        if hi > lo {
            self.value(hi) - self.value(hi - 1)
        } else {
            0.0
        }
    }

    fn integral_to(&self, load: f64) -> f64 {
        let r = load / self.capacity;
        self.t0
            * (load
                + self.alpha * self.capacity * r.powi(self.k as i32 + 1) / (self.k as f64 + 1.0))
    }
}

impl From<Bpr> for LatencyFn {
    fn from(l: Bpr) -> LatencyFn {
        Arc::new(l)
    }
}

/// A latency defined by an arbitrary closure, with user-supplied or
/// numerically estimated bounds.
///
/// Prefer the analytic families when possible; this type exists for custom
/// experiments (e.g. piecewise or capped latencies).
#[derive(Clone)]
pub struct FnLatency {
    f: Arc<dyn Fn(u64) -> f64 + Send + Sync>,
    elasticity: Option<f64>,
    label: &'static str,
}

impl FnLatency {
    /// Wrap a closure, estimating the elasticity numerically on demand.
    ///
    /// The closure must be non-decreasing and non-negative; this is the
    /// caller's responsibility (checked only in debug builds, lazily).
    pub fn new(label: &'static str, f: impl Fn(u64) -> f64 + Send + Sync + 'static) -> Self {
        FnLatency { f: Arc::new(f), elasticity: None, label }
    }

    /// Wrap a closure with a known elasticity upper bound.
    pub fn with_elasticity(
        label: &'static str,
        elasticity: f64,
        f: impl Fn(u64) -> f64 + Send + Sync + 'static,
    ) -> Self {
        assert!(elasticity.is_finite() && elasticity >= 0.0, "elasticity bound must be ≥ 0");
        FnLatency { f: Arc::new(f), elasticity: Some(elasticity), label }
    }
}

impl fmt::Debug for FnLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnLatency")
            .field("label", &self.label)
            .field("elasticity", &self.elasticity)
            .finish()
    }
}

impl Latency for FnLatency {
    fn value(&self, load: u64) -> f64 {
        (self.f)(load)
    }

    fn elasticity_bound(&self, max_load: u64) -> f64 {
        match self.elasticity {
            Some(d) => d,
            None => estimate_elasticity(&|x| (self.f)(x), max_load),
        }
    }
}

impl From<FnLatency> for LatencyFn {
    fn from(l: FnLatency) -> LatencyFn {
        Arc::new(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn constant_basics() {
        let c = Constant::new(4.5);
        assert_close(c.value(0), 4.5);
        assert_close(c.value(100), 4.5);
        assert_close(c.elasticity_bound(100), 0.0);
        assert_close(c.max_step(0, 10), 0.0);
        assert_close(c.value_const(), 4.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn constant_rejects_negative() {
        let _ = Constant::new(-1.0);
    }

    #[test]
    fn affine_values_and_bounds() {
        let l = Affine::new(2.0, 3.0);
        assert_close(l.value(0), 3.0);
        assert_close(l.value(5), 13.0);
        assert_close(l.max_step(0, 7), 2.0);
        assert!(l.elasticity_bound(10) < 1.0);
        let lin = Affine::linear(2.0);
        assert_close(lin.elasticity_bound(10), 1.0);
        assert_close(lin.value(4), 8.0);
    }

    #[test]
    fn affine_elasticity_monotone_in_load() {
        let l = Affine::new(1.0, 10.0);
        assert!(l.elasticity_bound(2) < l.elasticity_bound(100));
        assert!(l.elasticity_bound(100) < 1.0);
    }

    #[test]
    fn affine_scaling_divides_slope() {
        let l = Affine::new(3.0, 1.0).scaled_by_players(3);
        assert_close(l.value(3), 4.0); // 1·3 + 1
        assert_close(l.offset(), 1.0);
        assert_close(l.slope(), 1.0);
    }

    #[test]
    fn monomial_elasticity_is_degree() {
        for k in 1..6 {
            let l = Monomial::new(1.5, k);
            assert_close(l.elasticity_bound(1000), k as f64);
        }
    }

    #[test]
    fn monomial_max_step_is_last_step() {
        let l = Monomial::new(1.0, 3);
        // steps: 1, 7, 19, 37 for x = 1..4
        assert_close(l.max_step(0, 4), 37.0);
        assert_close(l.max_step(0, 1), 1.0);
        assert_close(l.max_step(2, 2), 0.0);
    }

    #[test]
    fn monomial_scaled_matches_continuous_form() {
        // ℓ(x) = 2 x², n = 4 ⇒ ℓⁿ(x) = 2 (x/4)² = x²/8
        let l = Monomial::new(2.0, 2).scaled_by_players(4);
        assert_close(l.value(4), 2.0);
        assert_close(l.value(8), 8.0);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn monomial_rejects_degree_zero() {
        let _ = Monomial::new(1.0, 0);
    }

    #[test]
    fn polynomial_horner_matches_naive() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 4.0]);
        for x in 0..10u64 {
            let xf = x as f64;
            let naive = 1.0 + 2.0 * xf + 4.0 * xf.powi(3);
            assert_close(p.value(x), naive);
        }
    }

    #[test]
    fn polynomial_degree_ignores_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_close(p.elasticity_bound(100), 1.0);
    }

    #[test]
    fn polynomial_elasticity_bound_dominates_numeric_estimate() {
        let p = Polynomial::new(vec![0.5, 1.0, 2.0, 3.0]);
        let analytic = p.elasticity_bound(50);
        let numeric = estimate_elasticity(&|x| p.value(x), 50);
        // The analytic degree bound must dominate the numeric estimate
        // (forward differences over-estimate slope slightly on convex
        // functions, so allow a small margin).
        assert!(numeric <= analytic + 0.51, "numeric {numeric} vs analytic {analytic}");
    }

    #[test]
    fn polynomial_scaling() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]).scaled_by_players(2);
        // 1 + 2(x/2) + 3(x/2)^2 = 1 + x + 0.75 x²
        assert_close(p.value(2), 1.0 + 2.0 + 3.0);
    }

    #[test]
    fn fn_latency_numeric_elasticity_close_to_true() {
        // ℓ(x) = x² has elasticity 2.
        let l = FnLatency::new("square", |x| (x as f64).powi(2));
        let e = l.elasticity_bound(200);
        assert!((1.9..=2.6).contains(&e), "estimated elasticity {e}");
    }

    #[test]
    fn fn_latency_with_declared_elasticity() {
        let l = FnLatency::with_elasticity("cube", 3.0, |x| (x as f64).powi(3));
        assert_close(l.elasticity_bound(10), 3.0);
        assert!(format!("{l:?}").contains("cube"));
    }

    #[test]
    fn max_step_default_scans_range() {
        // A concave-ish step function: steps 5, 1, 1, ...
        let l = FnLatency::new("steps", |x| if x == 0 { 0.0 } else { 4.0 + x as f64 });
        assert_close(l.max_step(0, 5), 5.0);
        assert_close(l.max_step(1, 5), 1.0);
    }

    #[test]
    fn fractional_values_match_analytic_forms() {
        let a = Affine::new(2.0, 1.0);
        assert_close(a.value_at(2.5), 6.0);
        assert_close(a.integral_to(2.0), 6.0); // x² + x at 2
        let m = Monomial::new(3.0, 2);
        assert_close(m.value_at(0.5), 0.75);
        assert_close(m.integral_to(2.0), 8.0); // x³ at 2
        let p = Polynomial::new(vec![1.0, 0.0, 3.0]);
        assert_close(p.value_at(1.5), 1.0 + 3.0 * 2.25);
        assert_close(p.integral_to(1.0), 1.0 + 1.0); // x + x³ at 1
        let c = Constant::new(4.0);
        assert_close(c.value_at(3.7), 4.0);
        assert_close(c.integral_to(2.5), 10.0);
    }

    #[test]
    fn default_interpolation_and_integral_are_consistent() {
        // FnLatency uses the trait defaults: interpolation is piecewise
        // linear, and the trapezoid integral is exact for it.
        let l = FnLatency::new("square", |x| (x as f64).powi(2));
        assert_close(l.value_at(2.0), 4.0);
        assert_close(l.value_at(2.5), 6.5); // midpoint of 4 and 9
                                            // ∫ of the interpolant over [0,3]: 0.5(0+1) + 0.5(1+4) + 0.5(4+9)
        assert_close(l.integral_to(3.0), 9.5);
        // Partial interval: ∫_0^2.5 = 0.5(0+1) + 0.5(1+4) + 0.5·0.5·(4+6.5)
        assert_close(l.integral_to(2.5), 3.0 + 2.625);
    }

    #[test]
    fn integral_is_monotone_and_superadditive_for_convex() {
        let m = Monomial::new(1.0, 3);
        let mut prev = 0.0;
        for i in 1..10 {
            let x = i as f64 * 0.7;
            let v = m.integral_to(x);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn bpr_values_and_bounds() {
        let l = Bpr::standard(10.0, 100.0);
        assert_close(l.value(0), 10.0);
        // At capacity: t0·(1 + 0.15) = 11.5.
        assert_close(l.value(100), 11.5);
        assert_close(l.elasticity_bound(1000), 4.0);
        assert!(l.max_step(0, 200) > l.max_step(0, 100));
        assert_close(l.free_flow(), 10.0);
        assert_close(l.capacity(), 100.0);
    }

    #[test]
    fn bpr_integral_matches_closed_form() {
        let l = Bpr::new(2.0, 0.5, 10.0, 2);
        // ∫ 2(1 + 0.5(x/10)²) = 2x + x³/300
        let x = 20.0;
        assert_close(l.integral_to(x), 2.0 * x + x.powi(3) / 300.0);
    }

    #[test]
    fn bpr_elasticity_below_exponent_numerically() {
        let l = Bpr::standard(5.0, 50.0);
        let est = estimate_elasticity(&|x| l.value(x), 500);
        assert!(est < 4.0, "numeric elasticity {est} should be below k = 4");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn bpr_rejects_zero_capacity() {
        let _ = Bpr::standard(1.0, 0.0);
    }

    #[test]
    fn latency_fn_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LatencyFn>();
    }
}
