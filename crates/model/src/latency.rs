//! Latency functions and their analytic bounds.
//!
//! The paper works with non-decreasing, differentiable latency functions
//! `ℓ_e : R≥0 → R≥0` with `ℓ_e(x) > 0` for `x > 0`. Three derived quantities
//! drive the protocols:
//!
//! * the **elasticity** `d ≥ sup_x ℓ'(x)·x / ℓ(x)` (Section 2.2), which damps
//!   the imitation migration probability (`μ = λ/d · gain/ℓ_P`),
//! * the **slope on almost-empty resources**
//!   `ν_e = max_{x ∈ 1..⌈d⌉} ℓ(x) − ℓ(x−1)`, which bounds probabilistic
//!   effects on lightly loaded resources and defines the `ν` threshold of the
//!   IMITATION PROTOCOL,
//! * the **maximum slope** `β ≥ max_x ℓ(x) − ℓ(x−1)`, used by the
//!   EXPLORATION PROTOCOL (Section 6).
//!
//! Each standard family implements these analytically ([`Constant`],
//! [`Affine`], [`Monomial`], [`Polynomial`], the traffic-engineering
//! [`Bpr`] function); [`FnLatency`] wraps a closure and estimates them
//! numerically.
//!
//! # Batched evaluation & exactness
//!
//! Every hot path that walks consecutive loads — Rosenthal-potential
//! windows, `ΔΦ` walks over the intermediate loads of a big migration, the
//! per-round latency-cache rebuild — goes through the batched layer:
//!
//! * [`Latency::eval_range_into`] evaluates `value(base + i)` for a whole
//!   range of `i` behind **one** virtual call. Each family overrides it
//!   with a tight, branch-free inner loop that the compiler can
//!   auto-vectorize; the results are **bit-identical** to pointwise
//!   [`Latency::value`] calls for every family (pinned by
//!   `tests/prop_latency_batch.rs`). Batching never changes a result bit,
//!   only the cost of producing it.
//! * [`Latency::sum_range`] is the latency sum over a load window. Its
//!   default is *defined* as left-to-right summation of the
//!   `eval_range_into` output ([`sum_range_via_eval`]), which makes it
//!   bit-identical to the scalar accumulation loops it replaced — fixing
//!   the summation order is what lets the engine-equivalence RNG and
//!   potential pins survive the batched rewiring unchanged.
//! * [`Constant`] and [`Affine`] override `sum_range` with **closed
//!   forms** (`|range|·c`; the triangular-number identity). These are
//!   mathematically exact: the integer count/index sums are computed in
//!   integer arithmetic and convert to `f64` without rounding while they
//!   are below 2⁵³, leaving at most three correctly rounded float
//!   operations. They can therefore differ from the default's `|range|−1`
//!   sequential roundings by a few ulps (property-tested at 1e-12
//!   relative); [`Monomial`], [`Polynomial`], [`Bpr`], and [`FnLatency`]
//!   keep the bit-identical default.
//!
//! The batched defaults of [`Latency::max_step`],
//! [`Latency::elasticity_bound`] (via [`estimate_elasticity_batched`]),
//! and [`Latency::integral_to`] chunk their scans through a fixed stack
//! buffer, so they allocate nothing and preserve the exact operation
//! order of the scalar loops they replaced.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Chunk length (`f64` slots) of the stack buffers behind the batched
/// default implementations ([`sum_range_via_eval`], [`Latency::max_step`],
/// [`Latency::integral_to`], [`estimate_elasticity_batched`]): 64 slots =
/// 512 bytes of stack, wide enough for full-width SIMD while keeping the
/// defaults heap-allocation-free (pinned by `tests/zero_alloc.rs`).
const BATCH_CHUNK: usize = 64;

/// Panic unless `out` has exactly one slot per range element.
#[inline]
fn check_range_len(range: &Range<u64>, out: &[f64]) {
    let len = range.end.saturating_sub(range.start);
    assert_eq!(
        out.len() as u64,
        len,
        "eval_range_into: output buffer length must equal the range length"
    );
}

/// Drive `f` over the values `l.value(x)` for `x ∈ lo ..= hi` in order,
/// batched through one fixed stack chunk per [`Latency::eval_range_into`]
/// call; `f` receives each chunk's starting load and its values.
///
/// The shared scan behind every batched default (`sum_range_via_eval`,
/// `max_step`, `integral_to`, `estimate_elasticity_batched`). The chunk
/// start is passed as the `base` of `eval_range_into` with a `0..n` index
/// range, so no half-open end `hi + 1` is ever formed — unlike a naive
/// `lo..hi + 1` conversion, the scan is overflow-safe up to and including
/// `hi == u64::MAX`, matching the inclusive-range scalar loops it
/// replaced. (`base + i` is the same exact integer either way, so the
/// produced values stay bit-identical.)
fn scan_values_inclusive<L: Latency + ?Sized>(
    l: &L,
    lo: u64,
    hi: u64,
    mut f: impl FnMut(u64, &[f64]),
) {
    debug_assert!(lo <= hi, "inclusive scan requires lo <= hi");
    let mut buf = [0.0_f64; BATCH_CHUNK];
    let mut start = lo;
    loop {
        // `hi - start + 1` may overflow exactly when the remaining span
        // covers all of u64, so bound the chunk without forming it.
        let span = hi - start;
        let n = span.min(BATCH_CHUNK as u64 - 1) as usize + 1;
        l.eval_range_into(start, 0..n as u64, &mut buf[..n]);
        f(start, &buf[..n]);
        if span < BATCH_CHUNK as u64 {
            return; // this chunk reached hi
        }
        start += n as u64;
    }
}

/// A non-decreasing latency function evaluated at integer congestion values.
///
/// Implementations must be non-decreasing and non-negative; the protocols in
/// `congames-dynamics` additionally assume `value(x) > 0` for `x > 0`
/// (as the paper does). All implementations in this module satisfy both when
/// constructed with non-negative parameters.
///
/// # Example
///
/// ```
/// use congames_model::{Latency, Monomial};
/// let l = Monomial::new(2.0, 3); // 2·x³
/// assert_eq!(l.value(2), 16.0);
/// assert_eq!(l.elasticity_bound(100), 3.0);
/// ```
pub trait Latency: fmt::Debug + Send + Sync {
    /// Latency at integer congestion `load`.
    fn value(&self, load: u64) -> f64;

    /// Evaluate `value(base + i)` for every `i ∈ range` into `out`
    /// (`out[j] = value(base + range.start + j)`).
    ///
    /// This is the batched evaluation layer: **one** virtual call per load
    /// range instead of one per load, so each family can run a tight,
    /// auto-vectorizable inner loop. Implementations (including the
    /// default, which loops over [`Latency::value`]) must be bit-identical
    /// to pointwise evaluation; `tests/prop_latency_batch.rs` pins this
    /// for every family in the crate.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the range length.
    fn eval_range_into(&self, base: u64, range: Range<u64>, out: &mut [f64]) {
        check_range_len(&range, out);
        for (slot, i) in out.iter_mut().zip(range) {
            *slot = self.value(base + i);
        }
    }

    /// The latency sum `Σ_{i ∈ range} value(base + i)`; empty ranges
    /// (`range.end <= range.start`) sum to `0.0`.
    ///
    /// The default is *defined* as left-to-right summation of the
    /// [`Latency::eval_range_into`] output (see [`sum_range_via_eval`]),
    /// which makes it bit-identical to the scalar accumulation loops it
    /// replaced — Rosenthal-potential windows and `ΔΦ` walks keep their
    /// exact historical values. [`Constant`] and [`Affine`] override it
    /// with mathematically exact closed forms (see the module docs for
    /// the exactness guarantees); the other families keep the default.
    ///
    /// # Example
    ///
    /// ```
    /// use congames_model::{Affine, Latency};
    /// let l = Affine::linear(2.0);
    /// // Σ_{i ∈ 3..6} 2·i = 2·(3 + 4 + 5)
    /// assert_eq!(l.sum_range(0, 3..6), 24.0);
    /// let mut out = [0.0; 3];
    /// l.eval_range_into(10, 0..3, &mut out);
    /// assert_eq!(out, [20.0, 22.0, 24.0]);
    /// ```
    fn sum_range(&self, base: u64, range: Range<u64>) -> f64 {
        sum_range_via_eval(self, base, range)
    }

    /// An upper bound on the elasticity `ℓ'(x)·x / ℓ(x)` over `(0, max_load]`.
    ///
    /// The default implementation estimates the bound numerically from the
    /// integer samples `value(0..=max_load)` using forward differences
    /// (batched through [`estimate_elasticity_batched`]); exact families
    /// override it.
    fn elasticity_bound(&self, max_load: u64) -> f64 {
        estimate_elasticity_batched(self, max_load)
    }

    /// The maximum increment `value(x) − value(x−1)` over `x ∈ lo+1 ..= hi`.
    ///
    /// Used for the `ν_e` bound (with `hi = ⌈d⌉`) and the `β` bound (with
    /// `hi = n`). The default implementation scans the range in chunks via
    /// [`Latency::eval_range_into`]; convex families override with the
    /// closed form `value(hi) − value(hi−1)`.
    ///
    /// **Empty-scan contract:** `lo >= hi` leaves nothing to scan (the
    /// increments run over `lo+1 ..= hi`) and returns `0.0` — both the
    /// default and every override honor this explicitly.
    fn max_step(&self, lo: u64, hi: u64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let mut best = 0.0_f64;
        let mut prev = self.value(lo);
        scan_values_inclusive(self, lo + 1, hi, |_, chunk| {
            for &v in chunk {
                best = best.max(v - prev);
                prev = v;
            }
        });
        best
    }

    /// Latency at a *fractional* congestion (non-atomic / Wardrop model).
    ///
    /// The default linearly interpolates between the neighbouring integer
    /// values; analytic families override with the exact formula.
    fn value_at(&self, load: f64) -> f64 {
        debug_assert!(load >= 0.0 && load.is_finite(), "fractional load must be ≥ 0");
        let lo = load.floor();
        let frac = load - lo;
        let v_lo = self.value(lo as u64);
        if frac == 0.0 {
            return v_lo;
        }
        let v_hi = self.value(lo as u64 + 1);
        v_lo + frac * (v_hi - v_lo)
    }

    /// The primitive `∫_0^load ℓ(u) du` (the Beckmann / continuous Rosenthal
    /// potential contribution of one resource).
    ///
    /// The default integrates the interpolated [`Latency::value_at`] by the
    /// trapezoid rule over unit intervals (exact for the default
    /// interpolation), evaluating the integer samples in chunks via
    /// [`Latency::eval_range_into`]; analytic families override with
    /// closed forms.
    fn integral_to(&self, load: f64) -> f64 {
        debug_assert!(load >= 0.0 && load.is_finite(), "fractional load must be ≥ 0");
        let whole = load.floor() as u64;
        let mut acc = 0.0;
        let mut prev = self.value(0);
        if whole > 0 {
            scan_values_inclusive(self, 1, whole, |_, chunk| {
                for &v in chunk {
                    acc += 0.5 * (prev + v);
                    prev = v;
                }
            });
        }
        let frac = load - whole as f64;
        if frac > 0.0 {
            acc += 0.5 * frac * (prev + self.value_at(load));
        }
        acc
    }
}

/// Numerically estimate an elasticity upper bound from integer samples.
///
/// For a differentiable non-decreasing `ℓ`, the elasticity at `x` is
/// `ℓ'(x)·x/ℓ(x)`; we bound `ℓ'` on `[x, x+1]` by the forward difference and
/// evaluate at the right end, adding a small safety margin. This is a *bound
/// estimate*, not an exact supremum; standard families use closed forms.
pub fn estimate_elasticity(f: &dyn Fn(u64) -> f64, max_load: u64) -> f64 {
    let mut best = 0.0_f64;
    let mut prev = f(0);
    for x in 1..=max_load.max(1) {
        let v = f(x);
        if v > 0.0 {
            // slope on [x-1, x] by forward difference, evaluated at (x, f(x)).
            let slope = v - prev;
            best = best.max(slope * x as f64 / v);
        }
        prev = v;
    }
    best
}

/// Left-to-right summation of the [`Latency::eval_range_into`] output,
/// chunked through a fixed stack buffer (no heap allocation).
///
/// This *is* the default body of [`Latency::sum_range`], exposed as a free
/// function so the closed-form overrides can be property-tested against
/// the definitional summation order. The result is bit-identical to the
/// scalar accumulation loop `let mut s = 0.0; for i in range { s +=
/// l.value(base + i); }` (and, for non-empty ranges, to
/// `range.map(…).sum::<f64>()`, whose *empty* sum is `-0.0`).
pub fn sum_range_via_eval<L: Latency + ?Sized>(l: &L, base: u64, range: Range<u64>) -> f64 {
    if range.end <= range.start {
        return 0.0;
    }
    // Scan the absolute loads `base + range.start ..= base + range.end - 1`
    // (formed without computing `base + range.end`, which could overflow).
    let lo = base + range.start;
    let hi = lo + (range.end - range.start - 1);
    let mut acc = 0.0;
    scan_values_inclusive(l, lo, hi, |_, chunk| {
        for &v in chunk {
            acc += v;
        }
    });
    acc
}

/// Batched sibling of [`estimate_elasticity`]: the same forward-difference
/// scan in the same order (bit-identical result), but sampling through
/// [`Latency::eval_range_into`] so one virtual call covers a whole chunk.
/// The trait's default [`Latency::elasticity_bound`] uses this.
pub fn estimate_elasticity_batched<L: Latency + ?Sized>(l: &L, max_load: u64) -> f64 {
    let mut best = 0.0_f64;
    let mut prev = l.value(0);
    scan_values_inclusive(l, 1, max_load.max(1), |start, chunk| {
        for (j, &v) in chunk.iter().enumerate() {
            if v > 0.0 {
                // slope on [x-1, x] by forward difference, at (x, f(x)).
                let slope = v - prev;
                best = best.max(slope * (start + j as u64) as f64 / v);
            }
            prev = v;
        }
    });
    best
}

/// A shared, type-erased latency function.
///
/// `CongestionGame` stores latencies as `LatencyFn` so games are cheap to
/// clone and can mix families.
pub type LatencyFn = Arc<dyn Latency>;

/// A latency function scaled by a positive factor: `ℓ(x) = factor·inner(x)`.
///
/// The family-agnostic form of link degradation/re-provisioning (the
/// `ScaleLatency` scenario event): it wraps whatever function a resource
/// already carries without knowing its family. Batched evaluation delegates
/// to the inner function and then applies exactly one `factor·v` rounding
/// per value — the same single rounding pointwise [`Scaled::value`] calls
/// perform — so the batch==pointwise bit-identity every family guarantees
/// is preserved through the wrapper. The elasticity bound is inherited
/// unchanged: `(c·ℓ)'·x / (c·ℓ) = ℓ'·x / ℓ` for `c > 0`.
#[derive(Debug, Clone)]
pub struct Scaled {
    inner: LatencyFn,
    factor: f64,
}

impl Scaled {
    /// Scale `inner` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive (a non-positive factor
    /// would break the non-decreasing/positive latency contract). Callers
    /// needing a fallible path validate first — see
    /// `CongestionGame::scale_latency`.
    pub fn new(inner: LatencyFn, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "latency scale factor must be finite and positive"
        );
        Scaled { inner, factor }
    }

    /// The scale factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The wrapped latency function.
    pub fn inner(&self) -> &LatencyFn {
        &self.inner
    }
}

impl Latency for Scaled {
    fn value(&self, load: u64) -> f64 {
        self.factor * self.inner.value(load)
    }

    fn eval_range_into(&self, base: u64, range: Range<u64>, out: &mut [f64]) {
        self.inner.eval_range_into(base, range, out);
        for v in out {
            *v *= self.factor;
        }
    }

    fn elasticity_bound(&self, max_load: u64) -> f64 {
        // Scale-invariant for positive factors; inherit the inner (possibly
        // closed-form) bound instead of re-estimating numerically.
        self.inner.elasticity_bound(max_load)
    }

    fn value_at(&self, load: f64) -> f64 {
        self.factor * self.inner.value_at(load)
    }

    fn integral_to(&self, load: f64) -> f64 {
        self.factor * self.inner.integral_to(load)
    }
}

impl From<Scaled> for LatencyFn {
    fn from(l: Scaled) -> LatencyFn {
        Arc::new(l)
    }
}

/// A constant latency `ℓ(x) = c`.
///
/// Elasticity 0, slope 0. Useful for modeling fixed-delay links (e.g. the
/// constant link of the overshooting instance in Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    c: f64,
}

impl Constant {
    /// Create the constant latency `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or not finite.
    pub fn new(c: f64) -> Self {
        assert!(c.is_finite() && c >= 0.0, "constant latency must be finite and non-negative");
        Constant { c }
    }

    /// The constant value.
    pub fn value_const(&self) -> f64 {
        self.c
    }
}

impl Latency for Constant {
    fn value(&self, _load: u64) -> f64 {
        self.c
    }

    fn eval_range_into(&self, _base: u64, range: Range<u64>, out: &mut [f64]) {
        check_range_len(&range, out);
        out.fill(self.c);
    }

    /// Closed form `|range| · c`.
    ///
    /// Exactness: the count converts to `f64` without rounding below 2⁵³,
    /// so the result is the correctly rounded true sum — one rounding
    /// total, versus `|range| − 1` sequential roundings in the default.
    fn sum_range(&self, _base: u64, range: Range<u64>) -> f64 {
        if range.end <= range.start {
            return 0.0;
        }
        (range.end - range.start) as f64 * self.c
    }

    fn elasticity_bound(&self, _max_load: u64) -> f64 {
        0.0
    }

    fn max_step(&self, _lo: u64, _hi: u64) -> f64 {
        0.0
    }

    fn value_at(&self, _load: f64) -> f64 {
        self.c
    }

    fn integral_to(&self, load: f64) -> f64 {
        self.c * load
    }
}

impl From<Constant> for LatencyFn {
    fn from(l: Constant) -> LatencyFn {
        Arc::new(l)
    }
}

/// An affine latency `ℓ(x) = a·x + b` with `a, b ≥ 0`.
///
/// Elasticity `a·x/(a·x+b) ≤ 1`; slope `a` everywhere. The linear case
/// (`b = 0`) is the setting of the Price-of-Imitation analysis (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    a: f64,
    b: f64,
}

impl Affine {
    /// Create `ℓ(x) = a·x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is negative or not finite.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(a.is_finite() && a >= 0.0, "affine coefficient must be finite and non-negative");
        assert!(b.is_finite() && b >= 0.0, "affine offset must be finite and non-negative");
        Affine { a, b }
    }

    /// Create the linear latency `ℓ(x) = a·x` (no offset).
    pub fn linear(a: f64) -> Self {
        Affine::new(a, 0.0)
    }

    /// The slope `a`.
    pub fn slope(&self) -> f64 {
        self.a
    }

    /// The offset `b`.
    pub fn offset(&self) -> f64 {
        self.b
    }

    /// The player-normalized version `ℓ(x/n) = (a/n)·x + b` used by
    /// Theorem 9 (players of weight `1/n`).
    pub fn scaled_by_players(&self, n: u64) -> Affine {
        assert!(n > 0, "scaling requires at least one player");
        Affine::new(self.a / n as f64, self.b)
    }
}

impl Latency for Affine {
    fn value(&self, load: u64) -> f64 {
        self.a * load as f64 + self.b
    }

    fn eval_range_into(&self, base: u64, range: Range<u64>, out: &mut [f64]) {
        check_range_len(&range, out);
        // Tiny windows (the converged lane kernel's two-entry case) skip
        // the dispatch machinery; the loop is the vector arms' own scalar
        // tail, so the bits are unchanged.
        if out.len() < 8 {
            let start = base + range.start;
            for (j, slot) in out.iter_mut().enumerate() {
                *slot = self.a * (start + j as u64) as f64 + self.b;
            }
            return;
        }
        // Across-window vector arm (AVX2 when available, bit-identical
        // scalar fallback otherwise): each element is the same
        // `a·x + b` sequence as `value`, with the exact `u64 → f64`
        // index conversion.
        congames_simd::affine_fill(
            congames_simd::Dispatch::global(),
            self.a,
            self.b,
            base + range.start,
            out,
        );
    }

    /// Closed form `a·Σ_{i ∈ range}(base + i) + b·|range|`, the index sum
    /// by the triangular-number identity in `u128`.
    ///
    /// Exactness: the integer index sum and the count convert to `f64`
    /// without rounding while below 2⁵³, leaving three correctly rounded
    /// float operations — versus `2·|range|` multiply-adds and
    /// `|range| − 1` sequential additions in the default, so the two agree
    /// to a few ulps (property-tested at 1e-12 relative). Astronomical
    /// windows whose index sum exceeds `u128` (≥ 2¹²⁸ ≈ 3.4e38) fall back
    /// to evaluating the same identity in `f64` — far beyond the 2⁵³
    /// threshold where conversion rounding dominates either way.
    fn sum_range(&self, base: u64, range: Range<u64>) -> f64 {
        let (lo, hi) = (range.start, range.end);
        if hi <= lo {
            return 0.0;
        }
        let count = hi - lo;
        let tri = |m: u128| m * (m + 1) / 2;
        let tri_sum = tri(hi as u128 - 1) - if lo == 0 { 0 } else { tri(lo as u128 - 1) };
        let idx_sum =
            (count as u128).checked_mul(base as u128).and_then(|s| s.checked_add(tri_sum));
        let idx_sum = match idx_sum {
            Some(s) => s as f64,
            None => {
                let tri_f = |m: u64| m as f64 * (m as f64 + 1.0) * 0.5;
                count as f64 * base as f64 + tri_f(hi - 1)
                    - if lo == 0 { 0.0 } else { tri_f(lo - 1) }
            }
        };
        self.a * idx_sum + self.b * count as f64
    }

    fn elasticity_bound(&self, max_load: u64) -> f64 {
        if self.a == 0.0 {
            return 0.0;
        }
        if self.b == 0.0 {
            return 1.0;
        }
        let x = max_load.max(1) as f64;
        self.a * x / (self.a * x + self.b)
    }

    fn max_step(&self, lo: u64, hi: u64) -> f64 {
        if hi > lo {
            self.a
        } else {
            0.0
        }
    }

    fn value_at(&self, load: f64) -> f64 {
        self.a * load + self.b
    }

    fn integral_to(&self, load: f64) -> f64 {
        0.5 * self.a * load * load + self.b * load
    }
}

impl From<Affine> for LatencyFn {
    fn from(l: Affine) -> LatencyFn {
        Arc::new(l)
    }
}

/// A monomial latency `ℓ(x) = a·x^k` with `a ≥ 0`, integer degree `k ≥ 1`.
///
/// Elasticity exactly `k` — the canonical example from Section 2.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Monomial {
    a: f64,
    k: u32,
}

impl Monomial {
    /// Create `ℓ(x) = a·x^k`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is negative or not finite, or if `k == 0` (use
    /// [`Constant`] for degree zero).
    pub fn new(a: f64, k: u32) -> Self {
        assert!(a.is_finite() && a >= 0.0, "monomial coefficient must be finite and non-negative");
        assert!(k >= 1, "monomial degree must be at least 1; use Constant for degree 0");
        Monomial { a, k }
    }

    /// The coefficient `a`.
    pub fn coefficient(&self) -> f64 {
        self.a
    }

    /// The degree `k`.
    pub fn degree(&self) -> u32 {
        self.k
    }

    /// The player-normalized version `ℓ(x/n) = (a/n^k)·x^k` (Theorem 9).
    pub fn scaled_by_players(&self, n: u64) -> Monomial {
        assert!(n > 0, "scaling requires at least one player");
        Monomial::new(self.a / (n as f64).powi(self.k as i32), self.k)
    }
}

impl Latency for Monomial {
    fn value(&self, load: u64) -> f64 {
        self.a * (load as f64).powi(self.k as i32)
    }

    fn eval_range_into(&self, base: u64, range: Range<u64>, out: &mut [f64]) {
        check_range_len(&range, out);
        let a = self.a;
        // Degrees ≤ 4 run the across-window vector arm with the exact
        // multiply chains that `powi` with a *runtime* exponent produces
        // (square-and-multiply), staying bit-identical to `value`; higher
        // degrees — and tiny windows, where the dispatch machinery would
        // dominate — keep the per-element `powi`.
        match self.k {
            k @ 1..=4 if out.len() >= 8 => congames_simd::monomial_fill(
                congames_simd::Dispatch::global(),
                a,
                k,
                base + range.start,
                out,
            ),
            k => {
                for (slot, i) in out.iter_mut().zip(range) {
                    *slot = a * ((base + i) as f64).powi(k as i32);
                }
            }
        }
    }

    fn elasticity_bound(&self, _max_load: u64) -> f64 {
        if self.a == 0.0 {
            0.0
        } else {
            self.k as f64
        }
    }

    fn max_step(&self, lo: u64, hi: u64) -> f64 {
        // x^k is convex for k ≥ 1, so the largest step is the last one.
        if hi > lo {
            self.value(hi) - self.value(hi - 1)
        } else {
            0.0
        }
    }

    fn value_at(&self, load: f64) -> f64 {
        self.a * load.powi(self.k as i32)
    }

    fn integral_to(&self, load: f64) -> f64 {
        self.a * load.powi(self.k as i32 + 1) / (self.k as f64 + 1.0)
    }
}

impl From<Monomial> for LatencyFn {
    fn from(l: Monomial) -> LatencyFn {
        Arc::new(l)
    }
}

/// A polynomial latency `ℓ(x) = Σ_k a_k·x^k` with non-negative coefficients.
///
/// With non-negative coefficients the elasticity is bounded by the maximum
/// degree with a non-zero coefficient, and the function is convex, so both
/// bounds have closed forms.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    /// `coeffs[k]` is the coefficient of `x^k`.
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Create a polynomial from coefficients (`coeffs[k]` multiplies `x^k`).
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or not finite, or if all
    /// coefficients are zero.
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(
            coeffs.iter().all(|c| c.is_finite() && *c >= 0.0),
            "polynomial coefficients must be finite and non-negative"
        );
        assert!(coeffs.iter().any(|c| *c > 0.0), "polynomial must have a positive coefficient");
        Polynomial { coeffs }
    }

    /// Coefficients (`[k]` multiplies `x^k`).
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Highest degree with a non-zero coefficient.
    pub fn degree(&self) -> u32 {
        self.coeffs.iter().rposition(|c| *c > 0.0).unwrap_or(0) as u32
    }

    /// The player-normalized version `ℓ(x/n)` (coefficient of `x^k` divided
    /// by `n^k`), as used by Theorem 9.
    pub fn scaled_by_players(&self, n: u64) -> Polynomial {
        assert!(n > 0, "scaling requires at least one player");
        let coeffs =
            self.coeffs.iter().enumerate().map(|(k, a)| a / (n as f64).powi(k as i32)).collect();
        Polynomial::new(coeffs)
    }
}

impl Latency for Polynomial {
    fn value(&self, load: u64) -> f64 {
        let x = load as f64;
        // Horner's rule.
        self.coeffs.iter().rev().fold(0.0, |acc, c| acc * x + c)
    }

    fn eval_range_into(&self, base: u64, range: Range<u64>, out: &mut [f64]) {
        check_range_len(&range, out);
        // Horner with the coefficient loop outside and the element loop
        // inside: each element sees exactly the `value` fold's operation
        // sequence (bit-identical), but the inner loop auto-vectorizes.
        out.fill(0.0);
        let start = range.start;
        for &c in self.coeffs.iter().rev() {
            for (j, slot) in out.iter_mut().enumerate() {
                let x = (base + start + j as u64) as f64;
                *slot = *slot * x + c;
            }
        }
    }

    fn elasticity_bound(&self, _max_load: u64) -> f64 {
        // For Σ a_k x^k with a_k ≥ 0: ℓ'(x)·x = Σ k·a_k·x^k ≤ d·ℓ(x).
        self.degree() as f64
    }

    fn max_step(&self, lo: u64, hi: u64) -> f64 {
        // Convex (non-negative coefficients) ⇒ the last step is the largest.
        if hi > lo {
            self.value(hi) - self.value(hi - 1)
        } else {
            0.0
        }
    }

    fn value_at(&self, load: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, c| acc * load + c)
    }

    fn integral_to(&self, load: f64) -> f64 {
        self.coeffs
            .iter()
            .enumerate()
            .map(|(k, a)| a * load.powi(k as i32 + 1) / (k as f64 + 1.0))
            .sum()
    }
}

impl From<Polynomial> for LatencyFn {
    fn from(l: Polynomial) -> LatencyFn {
        Arc::new(l)
    }
}

/// The Bureau of Public Roads (BPR) travel-time function
/// `ℓ(x) = t0·(1 + α·(x/c)^k)`: free-flow time `t0`, practical capacity
/// `c`, and the classic parameters `α = 0.15`, `k = 4`.
///
/// The standard of traffic-assignment practice; a polynomial with positive
/// offset, so its elasticity is strictly below `k` and the protocols damp
/// less than for pure monomials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bpr {
    t0: f64,
    alpha: f64,
    capacity: f64,
    k: u32,
}

impl Bpr {
    /// Create a BPR latency with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `t0 > 0`, `α ≥ 0`, `capacity > 0`, `k ≥ 1` (all
    /// finite).
    pub fn new(t0: f64, alpha: f64, capacity: f64, k: u32) -> Self {
        assert!(t0.is_finite() && t0 > 0.0, "free-flow time must be positive");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be non-negative");
        assert!(capacity.is_finite() && capacity > 0.0, "capacity must be positive");
        assert!(k >= 1, "BPR exponent must be at least 1");
        Bpr { t0, alpha, capacity, k }
    }

    /// The standard parametrization `α = 0.15`, `k = 4`.
    pub fn standard(t0: f64, capacity: f64) -> Self {
        Bpr::new(t0, 0.15, capacity, 4)
    }

    /// Free-flow travel time `t0`.
    pub fn free_flow(&self) -> f64 {
        self.t0
    }

    /// Practical capacity `c`.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

impl Latency for Bpr {
    fn value(&self, load: u64) -> f64 {
        self.value_at(load as f64)
    }

    fn eval_range_into(&self, base: u64, range: Range<u64>, out: &mut [f64]) {
        check_range_len(&range, out);
        let (t0, alpha, cap) = (self.t0, self.alpha, self.capacity);
        // Same runtime-`powi` multiply chains as `Monomial` (k ≤ 4 covers
        // the classic k = 4 parametrization); bit-identical to `value`.
        match self.k {
            1 => {
                for (slot, i) in out.iter_mut().zip(range) {
                    let r = (base + i) as f64 / cap;
                    *slot = t0 * (1.0 + alpha * r);
                }
            }
            2 => {
                for (slot, i) in out.iter_mut().zip(range) {
                    let r = (base + i) as f64 / cap;
                    *slot = t0 * (1.0 + alpha * (r * r));
                }
            }
            3 => {
                for (slot, i) in out.iter_mut().zip(range) {
                    let r = (base + i) as f64 / cap;
                    let r2 = r * r;
                    *slot = t0 * (1.0 + alpha * (r * r2));
                }
            }
            4 => {
                for (slot, i) in out.iter_mut().zip(range) {
                    let r = (base + i) as f64 / cap;
                    let r2 = r * r;
                    *slot = t0 * (1.0 + alpha * (r2 * r2));
                }
            }
            k => {
                for (slot, i) in out.iter_mut().zip(range) {
                    let r = (base + i) as f64 / cap;
                    *slot = t0 * (1.0 + alpha * r.powi(k as i32));
                }
            }
        }
    }

    fn value_at(&self, load: f64) -> f64 {
        self.t0 * (1.0 + self.alpha * (load / self.capacity).powi(self.k as i32))
    }

    fn elasticity_bound(&self, _max_load: u64) -> f64 {
        // ℓ'(x)·x/ℓ(x) = k·α·r^k/(1 + α·r^k) < k with r = x/c.
        self.k as f64
    }

    fn max_step(&self, lo: u64, hi: u64) -> f64 {
        // Convex for k ≥ 1 ⇒ last step is largest.
        if hi > lo {
            self.value(hi) - self.value(hi - 1)
        } else {
            0.0
        }
    }

    fn integral_to(&self, load: f64) -> f64 {
        let r = load / self.capacity;
        self.t0
            * (load
                + self.alpha * self.capacity * r.powi(self.k as i32 + 1) / (self.k as f64 + 1.0))
    }
}

impl From<Bpr> for LatencyFn {
    fn from(l: Bpr) -> LatencyFn {
        Arc::new(l)
    }
}

/// A latency defined by an arbitrary closure, with user-supplied or
/// numerically estimated bounds.
///
/// Prefer the analytic families when possible; this type exists for custom
/// experiments (e.g. piecewise or capped latencies).
#[derive(Clone)]
pub struct FnLatency {
    f: Arc<dyn Fn(u64) -> f64 + Send + Sync>,
    elasticity: Option<f64>,
    label: &'static str,
}

impl FnLatency {
    /// Wrap a closure, estimating the elasticity numerically on demand.
    ///
    /// The closure must be non-decreasing and non-negative; this is the
    /// caller's responsibility (checked only in debug builds, lazily).
    pub fn new(label: &'static str, f: impl Fn(u64) -> f64 + Send + Sync + 'static) -> Self {
        FnLatency { f: Arc::new(f), elasticity: None, label }
    }

    /// Wrap a closure with a known elasticity upper bound.
    pub fn with_elasticity(
        label: &'static str,
        elasticity: f64,
        f: impl Fn(u64) -> f64 + Send + Sync + 'static,
    ) -> Self {
        assert!(elasticity.is_finite() && elasticity >= 0.0, "elasticity bound must be ≥ 0");
        FnLatency { f: Arc::new(f), elasticity: Some(elasticity), label }
    }
}

impl fmt::Debug for FnLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnLatency")
            .field("label", &self.label)
            .field("elasticity", &self.elasticity)
            .finish()
    }
}

impl Latency for FnLatency {
    fn value(&self, load: u64) -> f64 {
        (self.f)(load)
    }

    fn elasticity_bound(&self, max_load: u64) -> f64 {
        match self.elasticity {
            Some(d) => d,
            None => estimate_elasticity_batched(self, max_load),
        }
    }
}

impl From<FnLatency> for LatencyFn {
    fn from(l: FnLatency) -> LatencyFn {
        Arc::new(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn constant_basics() {
        let c = Constant::new(4.5);
        assert_close(c.value(0), 4.5);
        assert_close(c.value(100), 4.5);
        assert_close(c.elasticity_bound(100), 0.0);
        assert_close(c.max_step(0, 10), 0.0);
        assert_close(c.value_const(), 4.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn constant_rejects_negative() {
        let _ = Constant::new(-1.0);
    }

    #[test]
    fn affine_values_and_bounds() {
        let l = Affine::new(2.0, 3.0);
        assert_close(l.value(0), 3.0);
        assert_close(l.value(5), 13.0);
        assert_close(l.max_step(0, 7), 2.0);
        assert!(l.elasticity_bound(10) < 1.0);
        let lin = Affine::linear(2.0);
        assert_close(lin.elasticity_bound(10), 1.0);
        assert_close(lin.value(4), 8.0);
    }

    #[test]
    fn affine_elasticity_monotone_in_load() {
        let l = Affine::new(1.0, 10.0);
        assert!(l.elasticity_bound(2) < l.elasticity_bound(100));
        assert!(l.elasticity_bound(100) < 1.0);
    }

    #[test]
    fn affine_scaling_divides_slope() {
        let l = Affine::new(3.0, 1.0).scaled_by_players(3);
        assert_close(l.value(3), 4.0); // 1·3 + 1
        assert_close(l.offset(), 1.0);
        assert_close(l.slope(), 1.0);
    }

    #[test]
    fn monomial_elasticity_is_degree() {
        for k in 1..6 {
            let l = Monomial::new(1.5, k);
            assert_close(l.elasticity_bound(1000), k as f64);
        }
    }

    #[test]
    fn monomial_max_step_is_last_step() {
        let l = Monomial::new(1.0, 3);
        // steps: 1, 7, 19, 37 for x = 1..4
        assert_close(l.max_step(0, 4), 37.0);
        assert_close(l.max_step(0, 1), 1.0);
        assert_close(l.max_step(2, 2), 0.0);
    }

    #[test]
    fn monomial_scaled_matches_continuous_form() {
        // ℓ(x) = 2 x², n = 4 ⇒ ℓⁿ(x) = 2 (x/4)² = x²/8
        let l = Monomial::new(2.0, 2).scaled_by_players(4);
        assert_close(l.value(4), 2.0);
        assert_close(l.value(8), 8.0);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn monomial_rejects_degree_zero() {
        let _ = Monomial::new(1.0, 0);
    }

    #[test]
    fn polynomial_horner_matches_naive() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 4.0]);
        for x in 0..10u64 {
            let xf = x as f64;
            let naive = 1.0 + 2.0 * xf + 4.0 * xf.powi(3);
            assert_close(p.value(x), naive);
        }
    }

    #[test]
    fn polynomial_degree_ignores_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_close(p.elasticity_bound(100), 1.0);
    }

    #[test]
    fn polynomial_elasticity_bound_dominates_numeric_estimate() {
        let p = Polynomial::new(vec![0.5, 1.0, 2.0, 3.0]);
        let analytic = p.elasticity_bound(50);
        let numeric = estimate_elasticity(&|x| p.value(x), 50);
        // The analytic degree bound must dominate the numeric estimate
        // (forward differences over-estimate slope slightly on convex
        // functions, so allow a small margin).
        assert!(numeric <= analytic + 0.51, "numeric {numeric} vs analytic {analytic}");
    }

    #[test]
    fn polynomial_scaling() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]).scaled_by_players(2);
        // 1 + 2(x/2) + 3(x/2)^2 = 1 + x + 0.75 x²
        assert_close(p.value(2), 1.0 + 2.0 + 3.0);
    }

    #[test]
    fn fn_latency_numeric_elasticity_close_to_true() {
        // ℓ(x) = x² has elasticity 2.
        let l = FnLatency::new("square", |x| (x as f64).powi(2));
        let e = l.elasticity_bound(200);
        assert!((1.9..=2.6).contains(&e), "estimated elasticity {e}");
    }

    #[test]
    fn fn_latency_with_declared_elasticity() {
        let l = FnLatency::with_elasticity("cube", 3.0, |x| (x as f64).powi(3));
        assert_close(l.elasticity_bound(10), 3.0);
        assert!(format!("{l:?}").contains("cube"));
    }

    #[test]
    fn max_step_default_scans_range() {
        // A concave-ish step function: steps 5, 1, 1, ...
        let l = FnLatency::new("steps", |x| if x == 0 { 0.0 } else { 4.0 + x as f64 });
        assert_close(l.max_step(0, 5), 5.0);
        assert_close(l.max_step(1, 5), 1.0);
    }

    #[test]
    fn fractional_values_match_analytic_forms() {
        let a = Affine::new(2.0, 1.0);
        assert_close(a.value_at(2.5), 6.0);
        assert_close(a.integral_to(2.0), 6.0); // x² + x at 2
        let m = Monomial::new(3.0, 2);
        assert_close(m.value_at(0.5), 0.75);
        assert_close(m.integral_to(2.0), 8.0); // x³ at 2
        let p = Polynomial::new(vec![1.0, 0.0, 3.0]);
        assert_close(p.value_at(1.5), 1.0 + 3.0 * 2.25);
        assert_close(p.integral_to(1.0), 1.0 + 1.0); // x + x³ at 1
        let c = Constant::new(4.0);
        assert_close(c.value_at(3.7), 4.0);
        assert_close(c.integral_to(2.5), 10.0);
    }

    #[test]
    fn default_interpolation_and_integral_are_consistent() {
        // FnLatency uses the trait defaults: interpolation is piecewise
        // linear, and the trapezoid integral is exact for it.
        let l = FnLatency::new("square", |x| (x as f64).powi(2));
        assert_close(l.value_at(2.0), 4.0);
        assert_close(l.value_at(2.5), 6.5); // midpoint of 4 and 9
                                            // ∫ of the interpolant over [0,3]: 0.5(0+1) + 0.5(1+4) + 0.5(4+9)
        assert_close(l.integral_to(3.0), 9.5);
        // Partial interval: ∫_0^2.5 = 0.5(0+1) + 0.5(1+4) + 0.5·0.5·(4+6.5)
        assert_close(l.integral_to(2.5), 3.0 + 2.625);
    }

    #[test]
    fn integral_is_monotone_and_superadditive_for_convex() {
        let m = Monomial::new(1.0, 3);
        let mut prev = 0.0;
        for i in 1..10 {
            let x = i as f64 * 0.7;
            let v = m.integral_to(x);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn bpr_values_and_bounds() {
        let l = Bpr::standard(10.0, 100.0);
        assert_close(l.value(0), 10.0);
        // At capacity: t0·(1 + 0.15) = 11.5.
        assert_close(l.value(100), 11.5);
        assert_close(l.elasticity_bound(1000), 4.0);
        assert!(l.max_step(0, 200) > l.max_step(0, 100));
        assert_close(l.free_flow(), 10.0);
        assert_close(l.capacity(), 100.0);
    }

    #[test]
    fn bpr_integral_matches_closed_form() {
        let l = Bpr::new(2.0, 0.5, 10.0, 2);
        // ∫ 2(1 + 0.5(x/10)²) = 2x + x³/300
        let x = 20.0;
        assert_close(l.integral_to(x), 2.0 * x + x.powi(3) / 300.0);
    }

    #[test]
    fn bpr_elasticity_below_exponent_numerically() {
        let l = Bpr::standard(5.0, 50.0);
        let est = estimate_elasticity(&|x| l.value(x), 500);
        assert!(est < 4.0, "numeric elasticity {est} should be below k = 4");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn bpr_rejects_zero_capacity() {
        let _ = Bpr::standard(1.0, 0.0);
    }

    #[test]
    fn latency_fn_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LatencyFn>();
    }

    fn all_families() -> Vec<LatencyFn> {
        vec![
            Constant::new(3.25).into(),
            Affine::new(2.0, 1.5).into(),
            Monomial::new(1.5, 1).into(),
            Monomial::new(0.5, 2).into(),
            Monomial::new(1.25, 3).into(),
            Monomial::new(2.0, 4).into(),
            Monomial::new(1.0, 6).into(),
            Polynomial::new(vec![1.0, 0.5, 2.0]).into(),
            Bpr::standard(10.0, 100.0).into(),
            FnLatency::new("sq", |x| (x as f64).powi(2)).into(),
        ]
    }

    /// Documented contract: `max_step(lo, hi)` with `lo >= hi` scans the
    /// empty increment range `lo+1 ..= hi` and returns exactly `0.0`, for
    /// the batched default and every closed-form override alike.
    #[test]
    fn max_step_empty_range_returns_zero() {
        for l in &all_families() {
            for (lo, hi) in [(0u64, 0u64), (5, 5), (7, 3), (u64::MAX, 0)] {
                assert_eq!(l.max_step(lo, hi), 0.0, "{l:?} max_step({lo}, {hi})");
            }
        }
    }

    /// Batched evaluation is bit-identical to pointwise `value`, across
    /// chunk boundaries (the range is longer than one stack chunk).
    #[test]
    fn eval_range_matches_pointwise_values_bitwise() {
        let mut out = vec![0.0; 200];
        for l in &all_families() {
            for base in [0u64, 17, 100_000] {
                l.eval_range_into(base, 3..203, &mut out);
                for (j, v) in out.iter().enumerate() {
                    let expect = l.value(base + 3 + j as u64);
                    assert_eq!(v.to_bits(), expect.to_bits(), "{l:?} at {}", base + 3 + j as u64);
                }
            }
        }
    }

    /// The default `sum_range` (via `sum_range_via_eval`) reproduces the
    /// scalar left-to-right loop bit-for-bit; closed forms agree to 1e-12
    /// relative; empty ranges sum to zero everywhere.
    #[test]
    #[allow(clippy::reversed_empty_ranges)] // the reversed range *is* the case under test
    fn sum_range_default_is_scalar_loop_and_closed_forms_agree() {
        for l in &all_families() {
            for (base, lo, hi) in [(0u64, 1u64, 130u64), (40, 0, 97), (1_000, 5, 5), (9, 8, 3)] {
                // Definitional reference: scalar left-to-right accumulation
                // from +0.0 (unlike `Iterator::sum`, whose empty sum is
                // `-0.0`).
                let mut scalar = 0.0_f64;
                for i in lo..hi.max(lo) {
                    scalar += l.value(base + i);
                }
                let default = sum_range_via_eval(&**l, base, lo..hi);
                assert_eq!(default.to_bits(), scalar.to_bits(), "{l:?} default sum");
                let fast = l.sum_range(base, lo..hi);
                let tol = 1e-12 * scalar.abs().max(1.0);
                assert!((fast - scalar).abs() <= tol, "{l:?}: {fast} vs {scalar}");
            }
            assert_eq!(l.sum_range(3, 10..10), 0.0);
            assert_eq!(l.sum_range(3, 10..2), 0.0);
        }
    }

    /// The affine closed form is exact for integer-parameter games: with
    /// integer slope/offset and windows whose index sums stay below 2⁵³,
    /// it equals the scalar loop bit-for-bit (integer f64 arithmetic).
    #[test]
    fn affine_closed_form_is_exact_on_integer_parameters() {
        let l = Affine::new(3.0, 7.0);
        for (base, lo, hi) in [(0u64, 1u64, 5_001u64), (123, 0, 4_000), (10, 2, 3)] {
            let scalar: f64 = (lo..hi).map(|i| l.value(base + i)).sum();
            assert_eq!(l.sum_range(base, lo..hi).to_bits(), scalar.to_bits());
        }
    }

    /// The chunked default scans are overflow-safe at the top of the u64
    /// domain (the pre-batching inclusive-range loops were), and the
    /// affine closed form degrades to the f64 identity instead of
    /// wrapping when the integer index sum exceeds `u128`.
    #[test]
    fn batched_scans_survive_extreme_ranges() {
        let l = FnLatency::new("const", |_| 1.5);
        // max_step default scan up to and including u64::MAX.
        assert_eq!(l.max_step(u64::MAX - 200, u64::MAX), 0.0);
        // sum_range default over a window whose last load is u64::MAX.
        assert_eq!(l.sum_range(u64::MAX - 199, 0..200), 1.5 * 200.0);
        // Affine closed form on an astronomical window: count·base
        // overflows u128, so the f64 fallback must carry the identity.
        let a = Affine::linear(1.0);
        let s = a.sum_range(u64::MAX, 0..u64::MAX);
        let m = u64::MAX as f64;
        let expect = m * m + (m - 1.0) * m * 0.5;
        assert!(
            s.is_finite() && (s - expect).abs() <= 1e-9 * expect,
            "astronomical affine sum {s} vs {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "range length")]
    fn eval_range_rejects_wrong_buffer_length() {
        let mut out = [0.0; 2];
        Constant::new(1.0).eval_range_into(0, 0..3, &mut out);
    }

    /// The batched elasticity estimator is bit-identical to the original
    /// closure-based scan.
    #[test]
    fn batched_elasticity_matches_closure_estimator() {
        for l in &all_families() {
            let batched = estimate_elasticity_batched(&**l, 150);
            let scalar = estimate_elasticity(&|x| l.value(x), 150);
            assert_eq!(batched.to_bits(), scalar.to_bits(), "{l:?}");
        }
    }
}
