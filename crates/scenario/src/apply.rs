//! Applying scheduled events to a running game, cache-coherently.
//!
//! Every mutation routes through the model's mutators and then through
//! `State::invalidate_caches_for_game_change`, because a latency swap or a
//! population change silently invalidates both opt-in state caches (the
//! per-resource latency cache and the per-class support index) — arrivals
//! and departures even break the *support invariance* the sparse kernels
//! lean on. The engine additionally rebuilds its own derived structures
//! (protocol parameters, class offsets, player array, potential) after any
//! hook firing, so a scenario run stays exactly as consistent as a
//! stationary one.

use std::sync::Arc;

use congames_dynamics::{DynamicsError, RoundHook};
use congames_model::{CongestionGame, ResourceId, State, StrategyId};

use crate::error::ScenarioError;
use crate::event::{Schedule, ScheduledEvent};

/// Apply one event to `game`/`state`, leaving both mutually consistent
/// and every state cache invalidated.
///
/// Demand changes ([`ScheduledEvent::SetDemand`]) place the difference
/// deterministically: an increase lands on the class's lowest-id occupied
/// strategy (or its first strategy when the class is empty); a decrease
/// drains strategies in ascending id order, first-fit.
///
/// # Errors
///
/// Unknown resource/strategy/class ids, and departures exceeding the
/// players actually present, are rejected with the game and state left
/// unchanged.
pub fn apply_event(
    game: &mut CongestionGame,
    state: &mut State,
    event: &ScheduledEvent,
) -> Result<(), ScenarioError> {
    match *event {
        ScheduledEvent::SetLatency { resource, ref latency } => {
            game.set_latency(ResourceId::new(resource), latency.build())?;
            state.invalidate_caches_for_game_change();
        }
        ScheduledEvent::ScaleLatency { resource, factor } => {
            game.scale_latency(ResourceId::new(resource), factor)?;
            state.invalidate_caches_for_game_change();
        }
        ScheduledEvent::AddPlayers { strategy, count } => {
            let sid = StrategyId::new(strategy);
            game.check_strategy(sid)?;
            let class = game.class_of(sid);
            let players = game.classes()[class].players();
            game.set_class_players(class, players + count)?;
            // `add_players` maintains counts/loads and invalidates caches.
            state.add_players(game, sid, count)?;
        }
        ScheduledEvent::RemovePlayers { strategy, count } => {
            let sid = StrategyId::new(strategy);
            game.check_strategy(sid)?;
            let class = game.class_of(sid);
            // State first: it validates availability and leaves everything
            // unchanged on failure, so the game is never left half-mutated.
            state.remove_players(game, sid, count)?;
            let players = game.classes()[class].players();
            game.set_class_players(class, players - count)?;
        }
        ScheduledEvent::SetDemand { class, players } => {
            let Some(c) = game.classes().get(class) else {
                return Err(ScenarioError::Apply {
                    round: 0,
                    message: format!(
                        "class {class} out of range ({} classes)",
                        game.classes().len()
                    ),
                });
            };
            let current = c.players();
            let range = c.strategy_range();
            if players > current {
                // Arrivals: the lowest-id occupied strategy, or the
                // class's first strategy when nobody is there yet.
                let target = range
                    .clone()
                    .map(StrategyId::new)
                    .find(|s| state.counts()[s.index()] > 0)
                    .unwrap_or(StrategyId::new(range.start));
                game.set_class_players(class, players)?;
                state.add_players(game, target, players - current)?;
            } else if players < current {
                // Departures: drain ascending strategy ids, first-fit.
                let mut remaining = current - players;
                for s in range.map(StrategyId::new) {
                    if remaining == 0 {
                        break;
                    }
                    let take = state.counts()[s.index()].min(remaining);
                    if take > 0 {
                        state.remove_players(game, s, take)?;
                        remaining -= take;
                    }
                }
                debug_assert_eq!(remaining, 0, "class counts summed to the class demand");
                game.set_class_players(class, players)?;
            }
        }
    }
    Ok(())
}

/// A [`Schedule`] adapted to the engine's [`RoundHook`] seam: a cursor
/// over the events, applying everything due at (or before — a resumed run
/// catches up) the fire round.
///
/// Cursors are cheap to construct from a shared `Arc<Schedule>`, which is
/// exactly what `Ensemble::with_round_hook` wants: one fresh cursor per
/// replica, all replaying the same schedule.
///
/// # Example
///
/// ```
/// use congames_scenario::{generate, ScheduleCursor};
/// use congames_dynamics::{Ensemble, FinalSummary, ImitationProtocol, StopSpec, Welford, MapItem};
/// use congames_model::{Affine, CongestionGame, State};
/// use std::sync::Arc;
///
/// let game = CongestionGame::singleton(
///     vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
///     64,
/// )?;
/// let start = State::from_counts(&game, vec![32, 32])?;
/// let schedule = Arc::new(generate::step_shock(10, 0, 3.0)?);
/// let stats = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start)?
///     .trials(8)
///     .with_round_hook(move || Box::new(ScheduleCursor::new(Arc::clone(&schedule))))
///     .run_reduced(
///         &StopSpec::max_rounds(30),
///         |_trial| FinalSummary,
///         MapItem::new(|s: congames_dynamics::RunSummary| s.potential, Welford::new()),
///     )?;
/// assert_eq!(stats.into_inner().count(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScheduleCursor {
    schedule: Arc<Schedule>,
    next: usize,
}

impl ScheduleCursor {
    /// A cursor at the start of `schedule`.
    pub fn new(schedule: Arc<Schedule>) -> Self {
        ScheduleCursor { schedule, next: 0 }
    }

    /// Events not yet fired.
    pub fn remaining(&self) -> usize {
        self.schedule.len() - self.next
    }
}

impl RoundHook for ScheduleCursor {
    fn next_fire(&self) -> Option<u64> {
        self.schedule.events().get(self.next).map(|(round, _)| *round)
    }

    fn fire(
        &mut self,
        round: u64,
        game: &mut CongestionGame,
        state: &mut State,
    ) -> Result<bool, DynamicsError> {
        let mut changed = false;
        while let Some((fire_round, event)) = self.schedule.events().get(self.next) {
            if *fire_round > round {
                break;
            }
            apply_event(game, state, event).map_err(|e| DynamicsError::Hook {
                message: format!("scheduled event at round {fire_round}: {e}"),
            })?;
            self.next += 1;
            changed = true;
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LatencySpec;
    use congames_model::{potential, Affine, GameError};

    fn two_links(n: u64, counts: Vec<u64>) -> (CongestionGame, State) {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(2.0).into()],
            n,
        )
        .unwrap();
        let state = State::from_counts(&game, counts).unwrap();
        (game, state)
    }

    #[test]
    fn set_and_scale_latency_take_effect_and_invalidate_caches() {
        let (mut game, mut state) = two_links(10, vec![6, 4]);
        state.ensure_latency_cache(&game);
        apply_event(
            &mut game,
            &mut state,
            &ScheduledEvent::SetLatency {
                resource: 0,
                latency: LatencySpec::Constant { value: 7.5 },
            },
        )
        .unwrap();
        state.ensure_latency_cache(&game);
        assert_eq!(state.strategy_latency(&game, StrategyId::new(0)), 7.5);
        apply_event(
            &mut game,
            &mut state,
            &ScheduledEvent::ScaleLatency { resource: 1, factor: 0.5 },
        )
        .unwrap();
        state.ensure_latency_cache(&game);
        assert_eq!(state.strategy_latency(&game, StrategyId::new(1)), 4.0);
        assert!((potential(&game, &state) - (6.0 * 7.5 + (1.0 + 2.0 + 3.0 + 4.0))).abs() < 1e-12);
    }

    #[test]
    fn population_events_keep_game_and_state_consistent() {
        let (mut game, mut state) = two_links(10, vec![6, 4]);
        apply_event(&mut game, &mut state, &ScheduledEvent::AddPlayers { strategy: 1, count: 5 })
            .unwrap();
        assert_eq!(game.total_players(), 15);
        assert_eq!(state.counts(), &[6, 9]);
        apply_event(
            &mut game,
            &mut state,
            &ScheduledEvent::RemovePlayers { strategy: 0, count: 6 },
        )
        .unwrap();
        assert_eq!(game.total_players(), 9);
        assert_eq!(state.counts(), &[0, 9]);
        // Over-draining fails and leaves both untouched.
        let err = apply_event(
            &mut game,
            &mut state,
            &ScheduledEvent::RemovePlayers { strategy: 0, count: 1 },
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Game(GameError::InsufficientPlayers { .. })));
        assert_eq!(game.total_players(), 9);
        assert_eq!(state.counts(), &[0, 9]);
    }

    #[test]
    fn set_demand_places_and_drains_deterministically() {
        let (mut game, mut state) = two_links(10, vec![0, 10]);
        // Increase lands on the lowest-id *occupied* strategy (1 here).
        apply_event(&mut game, &mut state, &ScheduledEvent::SetDemand { class: 0, players: 14 })
            .unwrap();
        assert_eq!(state.counts(), &[0, 14]);
        // Decrease drains ascending ids first-fit: strategy 0 has nothing,
        // strategy 1 loses 9.
        apply_event(&mut game, &mut state, &ScheduledEvent::SetDemand { class: 0, players: 5 })
            .unwrap();
        assert_eq!(state.counts(), &[0, 5]);
        assert_eq!(game.classes()[0].players(), 5);
        // Equal demand is a no-op.
        apply_event(&mut game, &mut state, &ScheduledEvent::SetDemand { class: 0, players: 5 })
            .unwrap();
        assert_eq!(state.counts(), &[0, 5]);
        // Empty class: the increase lands on the class's first strategy.
        apply_event(&mut game, &mut state, &ScheduledEvent::SetDemand { class: 0, players: 0 })
            .unwrap();
        apply_event(&mut game, &mut state, &ScheduledEvent::SetDemand { class: 0, players: 3 })
            .unwrap();
        assert_eq!(state.counts(), &[3, 0]);
        // Unknown class is rejected.
        assert!(matches!(
            apply_event(&mut game, &mut state, &ScheduledEvent::SetDemand { class: 7, players: 1 }),
            Err(ScenarioError::Apply { .. })
        ));
    }

    #[test]
    fn cursor_fires_due_events_in_order_and_catches_up() {
        let (mut game, mut state) = two_links(10, vec![6, 4]);
        let schedule = Arc::new(
            Schedule::new(vec![
                (3, ScheduledEvent::ScaleLatency { resource: 0, factor: 2.0 }),
                (3, ScheduledEvent::ScaleLatency { resource: 0, factor: 3.0 }),
                (8, ScheduledEvent::AddPlayers { strategy: 0, count: 1 }),
            ])
            .unwrap(),
        );
        let mut cursor = ScheduleCursor::new(Arc::clone(&schedule));
        assert_eq!(cursor.next_fire(), Some(3));
        assert_eq!(cursor.remaining(), 3);
        // Fire at round 5: both round-3 events catch up, the round-8 one
        // stays pending.
        assert!(cursor.fire(5, &mut game, &mut state).unwrap());
        assert_eq!(cursor.next_fire(), Some(8));
        state.ensure_latency_cache(&game);
        // ×2 then ×3 — both applied.
        assert_eq!(state.strategy_latency(&game, StrategyId::new(0)), 36.0);
        assert!(cursor.fire(8, &mut game, &mut state).unwrap());
        assert_eq!(cursor.next_fire(), None);
        assert_eq!(game.total_players(), 11);
    }
}
