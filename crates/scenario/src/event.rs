//! The scheduled-event model: what can change, and when.

use congames_model::latency::{Affine, Constant, LatencyFn, Monomial};

use crate::error::ScenarioError;
use crate::trace;

/// A textual, serializable latency function — the subset of the model's
/// latency families a trace file can carry.
///
/// The spec exists so [`ScheduledEvent::SetLatency`] round-trips through
/// the line-oriented trace format; [`LatencySpec::build`] materializes the
/// actual [`LatencyFn`] at apply time.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencySpec {
    /// `ℓ(x) = c`.
    Constant {
        /// The constant latency `c`.
        value: f64,
    },
    /// `ℓ(x) = a·x + b`.
    Affine {
        /// Slope `a`.
        slope: f64,
        /// Intercept `b`.
        intercept: f64,
    },
    /// `ℓ(x) = c·x^d`.
    Monomial {
        /// Coefficient `c`.
        coefficient: f64,
        /// Degree `d` (≥ 1).
        degree: u32,
    },
}

impl LatencySpec {
    /// Materialize the spec into a model latency function.
    pub fn build(&self) -> LatencyFn {
        match *self {
            LatencySpec::Constant { value } => Constant::new(value).into(),
            LatencySpec::Affine { slope, intercept } => Affine::new(slope, intercept).into(),
            LatencySpec::Monomial { coefficient, degree } => {
                Monomial::new(coefficient, degree).into()
            }
        }
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        let ok = match *self {
            LatencySpec::Constant { value } => value.is_finite() && value >= 0.0,
            LatencySpec::Affine { slope, intercept } => {
                slope.is_finite() && intercept.is_finite() && slope >= 0.0 && intercept >= 0.0
            }
            LatencySpec::Monomial { coefficient, degree } => {
                coefficient.is_finite() && coefficient >= 0.0 && degree >= 1
            }
        };
        if ok {
            Ok(())
        } else {
            Err(ScenarioError::Invalid {
                message: format!("latency spec {self:?} must have finite, non-negative parameters"),
            })
        }
    }
}

/// One scheduled mutation of a running game.
///
/// Population events ([`AddPlayers`](ScheduledEvent::AddPlayers) /
/// [`RemovePlayers`](ScheduledEvent::RemovePlayers)) name an explicit
/// strategy so replay is exactly reproducible;
/// [`SetDemand`](ScheduledEvent::SetDemand) names only a class and places
/// the difference deterministically (see
/// [`apply_event`](crate::apply_event)).
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduledEvent {
    /// Replace resource `resource`'s latency function.
    SetLatency {
        /// Raw resource id.
        resource: u32,
        /// The new latency.
        latency: LatencySpec,
    },
    /// Multiply resource `resource`'s latency by `factor` (composes with
    /// earlier scalings — a ramp of `k` factor-`f` events scales by `f^k`).
    ScaleLatency {
        /// Raw resource id.
        resource: u32,
        /// Multiplicative factor (finite, positive).
        factor: f64,
    },
    /// `count` players arrive on strategy `strategy` (the strategy's class
    /// grows by `count`).
    AddPlayers {
        /// Raw strategy id the arrivals start on.
        strategy: u32,
        /// Number of arrivals (> 0).
        count: u64,
    },
    /// `count` players on strategy `strategy` depart (fails at apply time
    /// if fewer are there).
    RemovePlayers {
        /// Raw strategy id the departures leave from.
        strategy: u32,
        /// Number of departures (> 0).
        count: u64,
    },
    /// Set class `class`'s total demand to `players`, adding to the
    /// class's lowest-id occupied strategy or draining strategies in
    /// ascending id order.
    SetDemand {
        /// Class index.
        class: usize,
        /// New total player count of the class.
        players: u64,
    },
}

impl ScheduledEvent {
    pub(crate) fn validate(&self) -> Result<(), ScenarioError> {
        match self {
            ScheduledEvent::SetLatency { latency, .. } => latency.validate(),
            ScheduledEvent::ScaleLatency { factor, .. } => {
                if factor.is_finite() && *factor > 0.0 {
                    Ok(())
                } else {
                    Err(ScenarioError::Invalid {
                        message: format!("scale factor {factor} must be finite and positive"),
                    })
                }
            }
            ScheduledEvent::AddPlayers { count, .. }
            | ScheduledEvent::RemovePlayers { count, .. } => {
                if *count > 0 {
                    Ok(())
                } else {
                    Err(ScenarioError::Invalid {
                        message: "population events must move at least one player".into(),
                    })
                }
            }
            ScheduledEvent::SetDemand { .. } => Ok(()),
        }
    }
}

/// A validated event schedule: `(fire round, event)` pairs sorted by fire
/// round, with the insertion order preserved among events of one round
/// (the deterministic tie order — a trace file's same-round lines apply
/// top to bottom).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    events: Vec<(u64, ScheduledEvent)>,
}

impl Schedule {
    /// Build a schedule from `(round, event)` pairs in any order; events
    /// are stably sorted by round, so same-round events keep their given
    /// order.
    ///
    /// # Errors
    ///
    /// Rejects events with invalid parameters (non-positive scale factor,
    /// zero-count population events, non-finite latency parameters).
    pub fn new(mut events: Vec<(u64, ScheduledEvent)>) -> Result<Self, ScenarioError> {
        for (_, event) in &events {
            event.validate()?;
        }
        events.sort_by_key(|(round, _)| *round);
        Ok(Schedule { events })
    }

    /// The events, sorted by fire round.
    pub fn events(&self) -> &[(u64, ScheduledEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last fire round, if any event is scheduled.
    pub fn last_round(&self) -> Option<u64> {
        self.events.last().map(|(round, _)| *round)
    }

    /// A 16-hex-digit digest of the schedule's canonical trace text
    /// (FNV-1a 64 — the same hash the shard wire format uses for
    /// payloads). Two schedules digest equal iff their canonical traces
    /// are byte-equal, so embedding the digest in a run-configuration
    /// string makes differently-shocked shard sets refuse to merge.
    pub fn digest(&self) -> String {
        format!("{:016x}", congames_dynamics::wire::fnv1a64(trace::write_trace(self).as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_stably_by_round() {
        let a = ScheduledEvent::ScaleLatency { resource: 0, factor: 2.0 };
        let b = ScheduledEvent::ScaleLatency { resource: 1, factor: 3.0 };
        let c = ScheduledEvent::AddPlayers { strategy: 0, count: 5 };
        let s = Schedule::new(vec![(9, a.clone()), (3, b.clone()), (9, c.clone())]).unwrap();
        let rounds: Vec<u64> = s.events().iter().map(|(r, _)| *r).collect();
        assert_eq!(rounds, vec![3, 9, 9]);
        // Tie order = insertion order: `a` (inserted first) before `c`.
        assert_eq!(s.events()[1].1, a);
        assert_eq!(s.events()[2].1, c);
        assert_eq!(s.last_round(), Some(9));
        assert_eq!(s.len(), 3);
        let _ = b;
    }

    #[test]
    fn invalid_events_are_rejected() {
        let bad =
            Schedule::new(vec![(0, ScheduledEvent::ScaleLatency { resource: 0, factor: 0.0 })]);
        assert!(matches!(bad, Err(ScenarioError::Invalid { .. })));
        let bad = Schedule::new(vec![(0, ScheduledEvent::AddPlayers { strategy: 0, count: 0 })]);
        assert!(matches!(bad, Err(ScenarioError::Invalid { .. })));
        let bad = Schedule::new(vec![(
            0,
            ScheduledEvent::SetLatency {
                resource: 0,
                latency: LatencySpec::Affine { slope: f64::NAN, intercept: 0.0 },
            },
        )]);
        assert!(matches!(bad, Err(ScenarioError::Invalid { .. })));
    }

    #[test]
    fn digests_separate_schedules() {
        let s1 =
            Schedule::new(vec![(5, ScheduledEvent::ScaleLatency { resource: 0, factor: 2.0 })])
                .unwrap();
        let s2 =
            Schedule::new(vec![(5, ScheduledEvent::ScaleLatency { resource: 0, factor: 2.5 })])
                .unwrap();
        assert_eq!(s1.digest().len(), 16);
        assert_ne!(s1.digest(), s2.digest());
        assert_eq!(s1.digest(), s1.clone().digest());
    }
}
