//! # congames-scenario
//!
//! Nonstationary, trace-driven scenarios for the congestion-game
//! simulator: scheduled mutations of a running game — latency shocks,
//! drift, arrivals/departures, demand changes — with deterministic
//! replay, so the re-convergence behaviour the PODC 2009 potential
//! arguments predict can be measured instead of assumed. (The paper's
//! convergence times are stated for a fixed game; shocking the game and
//! timing the recovery is the natural out-of-model experiment.)
//!
//! The crate has four layers:
//!
//! * [`ScheduledEvent`] / [`Schedule`] — the validated event model: which
//!   mutation fires at which round, sorted by fire round with a
//!   deterministic (insertion-order) tie order.
//! * [`trace`] — a versioned, line-oriented text format for schedules,
//!   with a canonical writer (the basis of the [`Schedule::digest`] every
//!   shard header embeds) and a loader that rejects malformed or
//!   out-of-order lines with line-numbered errors.
//! * [`apply`] — the mutation layer: [`apply_event`] routes every event
//!   through the model's cache-coherent mutators, and [`ScheduleCursor`]
//!   adapts a schedule to the engine's
//!   [`RoundHook`](congames_dynamics::RoundHook) seam.
//! * [`generate`] — synthetic schedule families (step shock, ramp drift,
//!   square-wave demand) for experiments.
//!
//! # Determinism
//!
//! Schedules are RNG-free: a scenario run draws exactly the random
//! variates the stationary run would, so every bit-identity guarantee of
//! the simulator (thread counts 1/2/8, shard/merge, xoshiro vs. counter
//! streams) holds for shocked runs too. The [`Schedule::digest`] — a hash
//! of the canonical trace text — travels in run-configuration digests so
//! that shards of differently-shocked sweeps refuse to merge.
//!
//! # Example
//!
//! ```
//! use congames_scenario::{generate, ScheduleCursor};
//! use congames_dynamics::{ImitationProtocol, RecordConfig, Simulation, StopSpec};
//! use congames_model::{Affine, CongestionGame, State};
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let game = CongestionGame::singleton(
//!     vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
//!     100,
//! )?;
//! let start = State::from_counts(&game, vec![50, 50])?;
//! // At round 50, link 0 becomes 4× slower.
//! let schedule = Arc::new(generate::step_shock(50, 0, 4.0)?);
//! let mut sim = Simulation::new(&game, ImitationProtocol::paper_default().into(), start)?
//!     .with_recording(RecordConfig::every_round())
//!     .with_hook(Box::new(ScheduleCursor::new(schedule)));
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
//! let out = sim.run(&StopSpec::max_rounds(200), &mut rng)?;
//! assert!(out.trajectory.records().iter().any(|r| r.shock && r.round == 50));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apply;
mod error;
mod event;
pub mod generate;
pub mod trace;

pub use apply::{apply_event, ScheduleCursor};
pub use error::ScenarioError;
pub use event::{LatencySpec, Schedule, ScheduledEvent};
