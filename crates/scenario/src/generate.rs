//! Synthetic schedule families for re-convergence experiments.
//!
//! Three canonical nonstationarities, each a one-call [`Schedule`]:
//!
//! * [`step_shock`] — one abrupt latency scaling at a single round; the
//!   cleanest probe of time-to-recover.
//! * [`ramp_drift`] — the same total scaling spread over many small
//!   multiplicative steps; probes tracking of a slowly drifting optimum.
//! * [`square_wave_demand`] — a class's demand toggling between two
//!   levels with a fixed period; probes repeated re-convergence under
//!   population churn.

use crate::error::ScenarioError;
use crate::event::{Schedule, ScheduledEvent};

/// One abrupt shock: at `round`, resource `resource`'s latency is scaled
/// by `factor`.
///
/// # Errors
///
/// Rejects a non-finite or non-positive `factor`.
pub fn step_shock(round: u64, resource: u32, factor: f64) -> Result<Schedule, ScenarioError> {
    Schedule::new(vec![(round, ScheduledEvent::ScaleLatency { resource, factor })])
}

/// A gradual drift: starting at `start_round`, resource `resource` is
/// scaled by `step_factor` every `every` rounds, `steps` times, for a
/// total scaling of `step_factor^steps`.
///
/// # Errors
///
/// Rejects `every == 0`, `steps == 0`, and invalid factors.
pub fn ramp_drift(
    start_round: u64,
    every: u64,
    steps: u32,
    resource: u32,
    step_factor: f64,
) -> Result<Schedule, ScenarioError> {
    if every == 0 || steps == 0 {
        return Err(ScenarioError::Invalid {
            message: "ramp_drift needs every ≥ 1 and steps ≥ 1".into(),
        });
    }
    let events = (0..steps)
        .map(|i| {
            (
                start_round + u64::from(i) * every,
                ScheduledEvent::ScaleLatency { resource, factor: step_factor },
            )
        })
        .collect();
    Schedule::new(events)
}

/// A demand square wave: starting at `start_round`, class `class`'s
/// demand is set to `high`, then back to `low`, alternating every
/// `half_period` rounds for `cycles` full cycles (so `2·cycles` events).
///
/// The wave assumes the class starts at demand `low`; the first event
/// raises it to `high`.
///
/// # Errors
///
/// Rejects `half_period == 0`, `cycles == 0`, and `low == high`.
pub fn square_wave_demand(
    class: usize,
    low: u64,
    high: u64,
    half_period: u64,
    cycles: u32,
    start_round: u64,
) -> Result<Schedule, ScenarioError> {
    if half_period == 0 || cycles == 0 {
        return Err(ScenarioError::Invalid {
            message: "square_wave_demand needs half_period ≥ 1 and cycles ≥ 1".into(),
        });
    }
    if low == high {
        return Err(ScenarioError::Invalid {
            message: "square_wave_demand needs two distinct demand levels".into(),
        });
    }
    let mut events = Vec::with_capacity(2 * cycles as usize);
    for i in 0..u64::from(cycles) * 2 {
        let players = if i % 2 == 0 { high } else { low };
        events.push((start_round + i * half_period, ScheduledEvent::SetDemand { class, players }));
    }
    Schedule::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_shock_is_one_event() {
        let s = step_shock(50, 2, 4.0).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.last_round(), Some(50));
        assert!(step_shock(50, 2, -4.0).is_err());
    }

    #[test]
    fn ramp_drift_spaces_its_steps() {
        let s = ramp_drift(100, 10, 5, 0, 1.1).unwrap();
        let rounds: Vec<u64> = s.events().iter().map(|(r, _)| *r).collect();
        assert_eq!(rounds, vec![100, 110, 120, 130, 140]);
        assert!(ramp_drift(100, 0, 5, 0, 1.1).is_err());
        assert!(ramp_drift(100, 10, 0, 0, 1.1).is_err());
    }

    #[test]
    fn square_wave_alternates_levels() {
        let s = square_wave_demand(0, 100, 160, 50, 2, 30).unwrap();
        let got: Vec<(u64, u64)> = s
            .events()
            .iter()
            .map(|(r, e)| match e {
                ScheduledEvent::SetDemand { players, .. } => (*r, *players),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(got, vec![(30, 160), (80, 100), (130, 160), (180, 100)]);
        assert!(square_wave_demand(0, 100, 100, 50, 2, 30).is_err());
        assert!(square_wave_demand(0, 100, 160, 0, 2, 30).is_err());
    }
}
