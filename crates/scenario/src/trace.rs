//! The versioned, line-oriented trace format.
//!
//! A trace file is the on-disk form of a [`Schedule`]:
//!
//! ```text
//! # congames-trace v1
//! 50,scale_latency,0,4
//! 120,add_players,1,200
//! 200,set_demand,0,1500
//! ```
//!
//! * The **first line** must be exactly the version header
//!   [`TRACE_HEADER`]; readers reject anything else (including future
//!   versions) outright.
//! * Every other non-blank, non-`#` line is one event:
//!   `round,event,args…`, comma-separated, with the event-specific
//!   argument layouts shown by [`write_trace`].
//! * Event lines must be **non-decreasing in round** — the file order *is*
//!   the deterministic tie order for same-round events, so an out-of-order
//!   file is ambiguous and rejected with a line-numbered error rather than
//!   silently re-sorted.
//!
//! [`write_trace`] emits the canonical form (header + one line per event,
//! no comments); [`Schedule::digest`] hashes exactly those bytes, so two
//! schedules share a digest iff their canonical traces are identical.
//! Floats are written in Rust's shortest-round-trip format, so
//! `parse_trace(write_trace(s)) == s` exactly.

use std::fmt::Write as _;

use crate::error::ScenarioError;
use crate::event::{LatencySpec, Schedule, ScheduledEvent};

/// The exact first line of every version-1 trace file.
pub const TRACE_HEADER: &str = "# congames-trace v1";

/// Render `schedule` in canonical trace form (ends with a newline).
pub fn write_trace(schedule: &Schedule) -> String {
    let mut out = String::new();
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for (round, event) in schedule.events() {
        match event {
            ScheduledEvent::SetLatency { resource, latency } => {
                let _ = writeln!(out, "{round},set_latency,{resource},{}", spec_text(latency));
            }
            ScheduledEvent::ScaleLatency { resource, factor } => {
                let _ = writeln!(out, "{round},scale_latency,{resource},{factor}");
            }
            ScheduledEvent::AddPlayers { strategy, count } => {
                let _ = writeln!(out, "{round},add_players,{strategy},{count}");
            }
            ScheduledEvent::RemovePlayers { strategy, count } => {
                let _ = writeln!(out, "{round},remove_players,{strategy},{count}");
            }
            ScheduledEvent::SetDemand { class, players } => {
                let _ = writeln!(out, "{round},set_demand,{class},{players}");
            }
        }
    }
    out
}

fn spec_text(spec: &LatencySpec) -> String {
    match *spec {
        LatencySpec::Constant { value } => format!("constant:{value}"),
        LatencySpec::Affine { slope, intercept } => format!("affine:{slope}:{intercept}"),
        LatencySpec::Monomial { coefficient, degree } => {
            format!("monomial:{coefficient}:{degree}")
        }
    }
}

/// Parse a trace file's text into a validated [`Schedule`].
///
/// # Errors
///
/// Every rejection is a [`ScenarioError::Parse`] carrying the 1-based
/// line number: missing/wrong version header, unknown event names, wrong
/// argument counts, unparsable numbers, invalid event parameters, and
/// out-of-order rounds.
pub fn parse_trace(text: &str) -> Result<Schedule, ScenarioError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim_end() == TRACE_HEADER => {}
        Some((_, first)) => {
            return Err(ScenarioError::Parse {
                line: 1,
                message: format!("expected header `{TRACE_HEADER}`, found `{}`", first.trim_end()),
            });
        }
        None => {
            return Err(ScenarioError::Parse {
                line: 1,
                message: format!("empty trace (expected header `{TRACE_HEADER}`)"),
            });
        }
    }
    let mut events = Vec::new();
    let mut last_round: Option<u64> = None;
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (round, event) = parse_event_line(line_no, line)?;
        if let Some(prev) = last_round {
            if round < prev {
                return Err(ScenarioError::Parse {
                    line: line_no,
                    message: format!(
                        "events out of order: round {round} after round {prev} \
                         (trace lines must be non-decreasing in round)"
                    ),
                });
            }
        }
        event
            .validate()
            .map_err(|e| ScenarioError::Parse { line: line_no, message: e.to_string() })?;
        last_round = Some(round);
        events.push((round, event));
    }
    // Already sorted and validated; `new` re-checks cheaply.
    Schedule::new(events)
}

fn parse_event_line(line_no: usize, line: &str) -> Result<(u64, ScheduledEvent), ScenarioError> {
    let fields: Vec<&str> = line.split(',').collect();
    let err = |message: String| ScenarioError::Parse { line: line_no, message };
    if fields.len() < 2 {
        return Err(err("expected `round,event,args…`".into()));
    }
    let round: u64 = parse_num(line_no, fields[0], "round")?;
    let args = &fields[2..];
    let want = |n: usize| {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(format!("event `{}` takes {n} argument(s), found {}", fields[1], args.len())))
        }
    };
    let event = match fields[1] {
        "set_latency" => {
            want(2)?;
            ScheduledEvent::SetLatency {
                resource: parse_num(line_no, args[0], "resource")?,
                latency: parse_spec(line_no, args[1])?,
            }
        }
        "scale_latency" => {
            want(2)?;
            ScheduledEvent::ScaleLatency {
                resource: parse_num(line_no, args[0], "resource")?,
                factor: parse_num(line_no, args[1], "factor")?,
            }
        }
        "add_players" => {
            want(2)?;
            ScheduledEvent::AddPlayers {
                strategy: parse_num(line_no, args[0], "strategy")?,
                count: parse_num(line_no, args[1], "count")?,
            }
        }
        "remove_players" => {
            want(2)?;
            ScheduledEvent::RemovePlayers {
                strategy: parse_num(line_no, args[0], "strategy")?,
                count: parse_num(line_no, args[1], "count")?,
            }
        }
        "set_demand" => {
            want(2)?;
            ScheduledEvent::SetDemand {
                class: parse_num(line_no, args[0], "class")?,
                players: parse_num(line_no, args[1], "players")?,
            }
        }
        other => {
            return Err(err(format!(
                "unknown event `{other}` (expected set_latency, scale_latency, \
                 add_players, remove_players, or set_demand)"
            )));
        }
    };
    Ok((round, event))
}

fn parse_spec(line_no: usize, text: &str) -> Result<LatencySpec, ScenarioError> {
    let parts: Vec<&str> = text.split(':').collect();
    let err = |message: String| ScenarioError::Parse { line: line_no, message };
    match parts.as_slice() {
        ["constant", v] => Ok(LatencySpec::Constant { value: parse_num(line_no, v, "constant")? }),
        ["affine", a, b] => Ok(LatencySpec::Affine {
            slope: parse_num(line_no, a, "slope")?,
            intercept: parse_num(line_no, b, "intercept")?,
        }),
        ["monomial", c, d] => Ok(LatencySpec::Monomial {
            coefficient: parse_num(line_no, c, "coefficient")?,
            degree: parse_num(line_no, d, "degree")?,
        }),
        _ => Err(err(format!(
            "unknown latency spec `{text}` (expected constant:<c>, \
             affine:<slope>:<intercept>, or monomial:<coef>:<degree>)"
        ))),
    }
}

fn parse_num<T: std::str::FromStr>(
    line_no: usize,
    text: &str,
    field: &str,
) -> Result<T, ScenarioError> {
    text.parse().map_err(|_| ScenarioError::Parse {
        line: line_no,
        message: format!("field `{field}`: cannot parse `{text}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::new(vec![
            (50, ScheduledEvent::ScaleLatency { resource: 0, factor: 4.0 }),
            (
                50,
                ScheduledEvent::SetLatency {
                    resource: 1,
                    latency: LatencySpec::Affine { slope: 2.5, intercept: 0.125 },
                },
            ),
            (120, ScheduledEvent::AddPlayers { strategy: 1, count: 200 }),
            (150, ScheduledEvent::RemovePlayers { strategy: 0, count: 30 }),
            (200, ScheduledEvent::SetDemand { class: 0, players: 1500 }),
        ])
        .unwrap()
    }

    #[test]
    fn writer_then_loader_is_the_identity() {
        let s = sample();
        let text = write_trace(&s);
        assert!(text.starts_with(TRACE_HEADER));
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, s);
        // Canonical text is a fixed point.
        assert_eq!(write_trace(&back), text);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = format!("{TRACE_HEADER}\n\n# a comment\n50,scale_latency,0,4\n\n# trailing\n");
        let s = parse_trace(&text).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn missing_or_wrong_header_is_line_1() {
        for text in ["", "50,scale_latency,0,4\n", "# congames-trace v9\n"] {
            match parse_trace(text) {
                Err(ScenarioError::Parse { line: 1, .. }) => {}
                other => panic!("expected line-1 parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn out_of_order_lines_carry_their_line_number() {
        let text = format!("{TRACE_HEADER}\n9,scale_latency,0,2\n3,scale_latency,0,2\n");
        match parse_trace(&text) {
            Err(ScenarioError::Parse { line: 3, message }) => {
                assert!(message.contains("out of order"), "{message}");
            }
            other => panic!("expected line-3 out-of-order error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_carry_their_line_number() {
        let cases = [
            ("5,warp_latency,0,2", "unknown event"),
            ("5,scale_latency,0", "takes 2 argument"),
            ("5,scale_latency,zero,2", "cannot parse `zero`"),
            ("5,scale_latency,0,-1", "finite and positive"),
            ("5,set_latency,0,spline:1:2:3", "unknown latency spec"),
            ("banana", "expected `round,event"),
        ];
        for (bad, needle) in cases {
            let text = format!("{TRACE_HEADER}\n{bad}\n");
            match parse_trace(&text) {
                Err(ScenarioError::Parse { line: 2, message }) => {
                    assert!(message.contains(needle), "`{bad}` gave `{message}`");
                }
                other => panic!("`{bad}` should fail on line 2, got {other:?}"),
            }
        }
    }
}
