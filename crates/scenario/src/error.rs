use std::error::Error;
use std::fmt;

use congames_model::GameError;

/// Error type for building, parsing, and applying scenarios.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// A trace line failed to parse (1-based line number).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A schedule parameter was invalid (bad factor, empty schedule where
    /// one is required, …).
    Invalid {
        /// Constraint description.
        message: String,
    },
    /// An event could not be applied to the game/state it fired on.
    Apply {
        /// The round the event was scheduled for.
        round: u64,
        /// What went wrong.
        message: String,
    },
    /// An underlying game/state operation failed.
    Game(GameError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
            ScenarioError::Invalid { message } => write!(f, "invalid schedule: {message}"),
            ScenarioError::Apply { round, message } => {
                write!(f, "event at round {round} failed to apply: {message}")
            }
            ScenarioError::Game(e) => write!(f, "game error: {e}"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Game(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GameError> for ScenarioError {
    fn from(e: GameError) -> Self {
        ScenarioError::Game(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = ScenarioError::Parse { line: 3, message: "unknown event `foo`".into() };
        assert_eq!(e.to_string(), "trace line 3: unknown event `foo`");
        assert!(e.source().is_none());
        let g: ScenarioError = GameError::EmptyStrategy.into();
        assert!(g.source().is_some());
        let a = ScenarioError::Apply { round: 7, message: "x".into() };
        assert!(a.to_string().contains("round 7"));
    }
}
