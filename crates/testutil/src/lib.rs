//! # congames-testutil
//!
//! Shared fixtures for the workspace's test suites:
//!
//! * [`rng`] — deterministic per-test RNG derivation, so every suite pins
//!   its seeds the same way,
//! * [`games`] — canonical small games (linear/affine/monomial singleton,
//!   an overlapping-strategy general game, the Braess network) and start
//!   states,
//! * [`stats`] — statistical-tolerance assertions: z-tests on means,
//!   χ² goodness-of-fit, two-sample Kolmogorov–Smirnov distance,
//! * [`sim`] — multi-trial simulation helpers used by the cross-engine
//!   equivalence suite.
//!
//! This crate is a **dev-dependency only**; production crates must never
//! depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod games;
pub mod rng;
pub mod sim;
pub mod stats;
