//! Deterministic per-test RNG derivation.
//!
//! Every suite in this workspace derives its seeds the same way, so a
//! failing test names the exact `(label, trial)` pair needed to replay it.

use congames_sampling::{DrawStream, RngMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The workspace-wide seed universe. Changing this constant re-rolls every
/// fixture RNG at once; don't, unless you mean to invalidate all recorded
/// statistical baselines.
pub const TEST_UNIVERSE: u64 = 0x2009_0808_2081_0001; // PODC 2009 / arXiv:0808.2081

/// FNV-1a hash of a test label.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The seed for `(label, trial)`: stable across runs and platforms.
pub fn fixture_seed(label: &str, trial: u64) -> u64 {
    let mut z = TEST_UNIVERSE ^ fnv1a(label) ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fresh RNG for `(label, trial)`.
pub fn fixture_rng(label: &str, trial: u64) -> SmallRng {
    SmallRng::seed_from_u64(fixture_seed(label, trial))
}

/// A fresh [`DrawStream`] for `(label, trial)` under `mode`.
///
/// Xoshiro wraps exactly [`fixture_rng`]`(label, trial)` — the consumed
/// stream (and therefore every historical pin) is unchanged. Counter keys
/// the Philox stream by `fixture_seed(label, 0)` and addresses the trial
/// through the counter block, mirroring how `Ensemble` derives per-trial
/// streams from a base seed.
pub fn fixture_stream(label: &str, mode: RngMode, trial: u64) -> DrawStream {
    match mode {
        RngMode::Xoshiro => DrawStream::from_small_rng(fixture_rng(label, trial)),
        RngMode::Counter => DrawStream::for_trial(mode, fixture_seed(label, 0), trial),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(fixture_seed("a", 0), fixture_seed("a", 0));
        assert_ne!(fixture_seed("a", 0), fixture_seed("a", 1));
        assert_ne!(fixture_seed("a", 0), fixture_seed("b", 0));
    }

    #[test]
    fn rngs_replay() {
        let mut x = fixture_rng("replay", 3);
        let mut y = fixture_rng("replay", 3);
        for _ in 0..8 {
            assert_eq!(x.gen::<u64>(), y.gen::<u64>());
        }
    }
}
