//! Statistical-tolerance assertions for randomized tests.
//!
//! Concurrent dynamics are stochastic; suites compare *distributions*, not
//! streams. The helpers here make those comparisons explicit about their
//! tolerance (a z-score), so flakiness is a measured trade-off: at `z =
//! 4.5` a correct test fails about 7 times in a million runs.

/// Sample mean and (unbiased) variance.
pub fn mean_var(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty(), "mean_var of empty sample");
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// Assert `|x - y| ≤ tol`, with a readable failure message.
///
/// # Panics
///
/// Panics when the bound is violated or either value is non-finite.
pub fn assert_close(x: f64, y: f64, tol: f64, what: &str) {
    assert!(
        x.is_finite() && y.is_finite() && (x - y).abs() <= tol,
        "{what}: |{x} - {y}| = {} > {tol}",
        (x - y).abs()
    );
}

/// Two-sample z-test on means (Welch standard error). Passes when the
/// difference of sample means is within `z` combined standard errors, plus
/// an absolute `floor` for the degenerate zero-variance case.
///
/// # Panics
///
/// Panics when the means differ significantly.
pub fn assert_means_equal(a: &[f64], b: &[f64], z: f64, floor: f64, what: &str) {
    let (ma, va) = mean_var(a);
    let (mb, vb) = mean_var(b);
    let se = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
    let bound = z * se + floor;
    assert!(
        (ma - mb).abs() <= bound,
        "{what}: means differ: {ma} vs {mb} (|Δ| = {}, allowed {bound}, se = {se}, \
         n = {}/{})",
        (ma - mb).abs(),
        a.len(),
        b.len()
    );
}

/// Pearson's χ² statistic for observed counts against expected counts.
/// Cells with `expected < 1e-12` must be empty (else panics) and are
/// skipped.
pub fn chi_square_stat(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "chi_square_stat: length mismatch");
    let mut stat = 0.0;
    for (i, (&o, &e)) in observed.iter().zip(expected).enumerate() {
        if e < 1e-12 {
            assert_eq!(o, 0, "chi_square_stat: observed mass in zero-probability cell {i}");
            continue;
        }
        let d = o as f64 - e;
        stat += d * d / e;
    }
    stat
}

/// Approximate upper critical value of the χ² distribution with `df`
/// degrees of freedom at the one-sided z-score `z`, via the
/// Wilson–Hilferty cube transform (accurate to a few percent for
/// `df ≥ 3`, conservative enough for test tolerances).
pub fn chi_square_critical(df: usize, z: f64) -> f64 {
    assert!(df > 0, "chi_square_critical: zero degrees of freedom");
    let k = df as f64;
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// χ² goodness-of-fit assertion: `observed` (counts summing to `n`)
/// against the cell probabilities `probs`, at z-score `z`.
///
/// Cells with expected count below 5 are pooled into their left neighbor
/// first, the textbook validity fix for the χ² approximation.
///
/// # Panics
///
/// Panics when the fit is rejected, or on malformed inputs.
pub fn assert_chi_square_fits(observed: &[u64], probs: &[f64], z: f64, what: &str) {
    assert_eq!(observed.len(), probs.len(), "{what}: length mismatch");
    let n: u64 = observed.iter().sum();
    assert!(n > 0, "{what}: empty sample");
    let psum: f64 = probs.iter().sum();
    assert!((psum - 1.0).abs() < 1e-9, "{what}: probabilities sum to {psum}");

    // Pool sparse cells left-to-right so every expected count is ≥ 5.
    let mut pooled: Vec<(u64, f64)> = Vec::with_capacity(observed.len());
    let mut acc_o = 0u64;
    let mut acc_e = 0.0f64;
    for (&o, &p) in observed.iter().zip(probs) {
        acc_o += o;
        acc_e += p * n as f64;
        if acc_e >= 5.0 {
            pooled.push((acc_o, acc_e));
            acc_o = 0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 || acc_o > 0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_o;
            last.1 += acc_e;
        } else {
            pooled.push((acc_o, acc_e));
        }
    }
    assert!(pooled.len() >= 2, "{what}: too few cells after pooling (n too small?)");

    let obs: Vec<u64> = pooled.iter().map(|c| c.0).collect();
    let exp: Vec<f64> = pooled.iter().map(|c| c.1).collect();
    let stat = chi_square_stat(&obs, &exp);
    let crit = chi_square_critical(pooled.len() - 1, z);
    assert!(
        stat <= crit,
        "{what}: χ² = {stat:.3} > critical {crit:.3} (df = {}, n = {n})",
        pooled.len() - 1
    );
}

/// Two-sample Kolmogorov–Smirnov distance between empirical distributions
/// given as per-value histograms over the same support.
pub fn ks_distance(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len(), "ks_distance: support mismatch");
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0, "ks_distance: empty sample");
    let (mut ca, mut cb, mut d) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        ca += x as f64 / na as f64;
        cb += y as f64 / nb as f64;
        d = d.max((ca - cb).abs());
    }
    d
}

/// The KS rejection threshold `c(α)·sqrt((na+nb)/(na·nb))` with
/// `c(α) = sqrt(-ln(α/2)/2)`.
pub fn ks_threshold(na: usize, nb: usize, alpha: f64) -> f64 {
    assert!(na > 0 && nb > 0 && alpha > 0.0 && alpha < 1.0);
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * ((na + nb) as f64 / (na as f64 * nb as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mean_var_basics() {
        let (m, v) = mean_var(&[1.0, 2.0, 3.0]);
        assert_close(m, 2.0, 1e-12, "mean");
        assert_close(v, 1.0, 1e-12, "variance");
    }

    #[test]
    fn chi_square_accepts_uniform_draws() {
        let mut rng = SmallRng::seed_from_u64(41);
        let mut counts = [0u64; 10];
        for _ in 0..20_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        let probs = [0.1; 10];
        assert_chi_square_fits(&counts, &probs, 4.5, "uniform draws");
    }

    #[test]
    #[should_panic(expected = "rigged")]
    fn chi_square_rejects_biased_draws() {
        // 30% of the mass moved from cell 0 to cell 1: unmistakably biased.
        let counts = [3_500u64, 6_500, 5_000, 5_000];
        let probs = [0.25; 4];
        assert_chi_square_fits(&counts, &probs, 4.5, "rigged");
    }

    #[test]
    fn critical_values_are_sane() {
        // χ²(df=9) at z≈3.09 (α≈0.001) is 27.88; Wilson–Hilferty lands close.
        let c = chi_square_critical(9, 3.09);
        assert!((c - 27.88).abs() < 1.0, "critical {c}");
    }

    #[test]
    fn ks_identical_is_zero() {
        let h = [5u64, 10, 20, 5];
        assert_close(ks_distance(&h, &h), 0.0, 1e-12, "ks self-distance");
    }

    #[test]
    #[should_panic(expected = "means differ")]
    fn mean_test_rejects_shifted_samples() {
        let a: Vec<f64> = (0..200).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| (i % 7) as f64 + 10.0).collect();
        assert_means_equal(&a, &b, 4.5, 0.0, "shifted");
    }
}
