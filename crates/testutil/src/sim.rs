//! Multi-trial simulation helpers for comparing round engines.

use congames_dynamics::{EngineKind, Protocol, Simulation};
use congames_model::{CongestionGame, State};
use congames_sampling::RngMode;

use crate::rng::fixture_stream;

/// A per-trial scalar summary of a finished (short) run.
pub type StateStat = fn(&CongestionGame, &State) -> f64;

/// Run `trials` independent simulations of `protocol` on `game` from
/// `start`, each for exactly `rounds` rounds with the given `engine`, and
/// return `stat(game, final_state)` per trial.
///
/// Trial `i` uses the RNG `fixture_rng(label, i)`, so both engines can be
/// handed the *same* seed streams — any systematic difference between the
/// returned samples is then attributable to the engines, not the seeds.
///
/// # Panics
///
/// Panics if the simulation cannot be constructed or a round fails.
#[allow(clippy::too_many_arguments)]
pub fn trial_stats(
    label: &str,
    game: &CongestionGame,
    protocol: Protocol,
    start: &State,
    engine: EngineKind,
    rounds: u64,
    trials: u64,
    stat: StateStat,
) -> Vec<f64> {
    trial_stats_mode(label, RngMode::Xoshiro, game, protocol, start, engine, rounds, trials, stat)
}

/// [`trial_stats`] with an explicit RNG backend: trial `i` draws from
/// `fixture_stream(label, mode, i)`. Xoshiro mode is bit-identical to
/// [`trial_stats`]; counter mode is the cross-backend comparison arm.
#[allow(clippy::too_many_arguments)]
pub fn trial_stats_mode(
    label: &str,
    mode: RngMode,
    game: &CongestionGame,
    protocol: Protocol,
    start: &State,
    engine: EngineKind,
    rounds: u64,
    trials: u64,
    stat: StateStat,
) -> Vec<f64> {
    (0..trials)
        .map(|trial| {
            let mut sim = Simulation::new(game, protocol, start.clone())
                .expect("valid equivalence-trial simulation")
                .with_engine(engine);
            let mut rng = fixture_stream(label, mode, trial);
            for _ in 0..rounds {
                sim.step(&mut rng).expect("equivalence-trial round");
            }
            stat(game, sim.state())
        })
        .collect()
}

/// Histogram of `state.counts()[strategy]` over `trials` short runs:
/// the per-strategy occupancy distribution realized by `engine`.
///
/// The histogram has `game.total_players() + 1` cells (occupancy `0..=n`).
#[allow(clippy::too_many_arguments)]
pub fn occupancy_histogram(
    label: &str,
    game: &CongestionGame,
    protocol: Protocol,
    start: &State,
    engine: EngineKind,
    rounds: u64,
    trials: u64,
    strategy: usize,
) -> Vec<u64> {
    occupancy_histogram_mode(
        label,
        RngMode::Xoshiro,
        game,
        protocol,
        start,
        engine,
        rounds,
        trials,
        strategy,
    )
}

/// [`occupancy_histogram`] with an explicit RNG backend (see
/// [`trial_stats_mode`] for the stream derivation).
#[allow(clippy::too_many_arguments)]
pub fn occupancy_histogram_mode(
    label: &str,
    mode: RngMode,
    game: &CongestionGame,
    protocol: Protocol,
    start: &State,
    engine: EngineKind,
    rounds: u64,
    trials: u64,
    strategy: usize,
) -> Vec<u64> {
    let mut hist = vec![0u64; game.total_players() as usize + 1];
    for trial in 0..trials {
        let mut sim = Simulation::new(game, protocol, start.clone())
            .expect("valid occupancy-trial simulation")
            .with_engine(engine);
        let mut rng = fixture_stream(label, mode, trial);
        for _ in 0..rounds {
            sim.step(&mut rng).expect("occupancy-trial round");
        }
        hist[sim.state().counts()[strategy] as usize] += 1;
    }
    hist
}
