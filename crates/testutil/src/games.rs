//! Canonical small games used across the test suites.
//!
//! Each constructor is tiny, deterministic, and documented with the shape
//! of its equilibria, so suites can assert against known structure instead
//! of re-deriving it.

use congames_model::{Affine, CongestionGame, Monomial, ResourceId, State, Strategy};
use congames_network::{builders, NetworkGame};

/// `m` parallel links with latencies `x, 2x, …, m·x`, shared by `n`
/// players. The potential minimum spreads players roughly inversely to the
/// slopes.
pub fn linear_singleton(m: usize, n: u64) -> CongestionGame {
    CongestionGame::singleton((0..m).map(|i| Affine::linear((i + 1) as f64).into()).collect(), n)
        .expect("valid linear singleton fixture")
}

/// Four parallel links with mixed affine latencies `x+4, 2x+2, 3x+1, 4x`,
/// shared by `n` players — offsets make the cheapest link load-dependent.
pub fn affine_singleton(n: u64) -> CongestionGame {
    CongestionGame::singleton(
        vec![
            Affine::new(1.0, 4.0).into(),
            Affine::new(2.0, 2.0).into(),
            Affine::new(3.0, 1.0).into(),
            Affine::new(4.0, 0.0).into(),
        ],
        n,
    )
    .expect("valid affine singleton fixture")
}

/// Three parallel links with superlinear latencies `x², 2x², x³`, shared by
/// `n` players — exercises the elasticity damping (`d = 3`).
pub fn monomial_singleton(n: u64) -> CongestionGame {
    CongestionGame::singleton(
        vec![
            Monomial::new(1.0, 2).into(),
            Monomial::new(2.0, 2).into(),
            Monomial::new(1.0, 3).into(),
        ],
        n,
    )
    .expect("valid monomial singleton fixture")
}

/// A symmetric game on 4 resources whose 4 strategies each use **two**
/// resources (a 4-cycle: `{0,1}, {1,2}, {2,3}, {3,0}`), shared by `n`
/// players. Strategies overlap, so strategy latencies are sums and moves
/// change two loads at once.
pub fn overlapping_pairs(n: u64) -> CongestionGame {
    let mut b = CongestionGame::builder();
    for i in 0..4u32 {
        b.add_resource(Affine::linear(1.0 + i as f64 * 0.5).into());
    }
    let strategies: Vec<Strategy> = (0..4u32)
        .map(|i| {
            Strategy::new(vec![ResourceId::new(i), ResourceId::new((i + 1) % 4)])
                .expect("non-empty strategy")
        })
        .collect();
    b.add_class("players", n, strategies).expect("non-empty class");
    b.build().expect("valid overlapping fixture")
}

/// An asymmetric two-class game on 3 shared resources: class "a" (`n_a`
/// players) chooses between `{0,1}` and `{1,2}`, class "b" (`n_b` players)
/// between `{2}` and `{0}`. The classes interact through every resource,
/// so cross-class congestion matters, but imitation samples only within a
/// class — the multi-class case the engines must agree on.
pub fn two_class_overlap(n_a: u64, n_b: u64) -> CongestionGame {
    let mut b = CongestionGame::builder();
    let r0 = b.add_resource(Affine::linear(1.0).into());
    let r1 = b.add_resource(Affine::new(0.5, 1.0).into());
    let r2 = b.add_resource(Affine::linear(2.0).into());
    b.add_class(
        "a",
        n_a,
        vec![
            Strategy::new(vec![r0, r1]).expect("non-empty strategy"),
            Strategy::new(vec![r1, r2]).expect("non-empty strategy"),
        ],
    )
    .expect("non-empty class");
    b.add_class("b", n_b, vec![Strategy::singleton(r2), Strategy::singleton(r0)])
        .expect("non-empty class");
    b.build().expect("valid two-class fixture")
}

/// The Braess network with `n` players: source→sink via two two-edge routes
/// plus the zero-latency shortcut, the canonical network game.
pub fn braess_network(n: u64) -> NetworkGame {
    let (g, s, t) = builders::braess([
        Affine::linear(1.0 / n.max(1) as f64).into(), // s→v: x/n
        Affine::new(0.0, 1.0).into(),                 // s→w: 1
        Affine::new(0.0, 0.0).into(),                 // v→w: 0 (shortcut)
        Affine::new(0.0, 1.0).into(),                 // v→t: 1
        Affine::linear(1.0 / n.max(1) as f64).into(), // w→t: x/n
    ]);
    NetworkGame::build(g, s, t, n, 16).expect("valid Braess fixture")
}

/// A deterministic unbalanced start: everything piled on the first
/// strategy of each class.
pub fn piled_state(game: &CongestionGame) -> State {
    State::all_on_first(game)
}

/// A deterministic skewed-but-supported start: players spread over the
/// strategies of each class with geometrically decaying weights
/// `2^-(i+1)` (the last of `s` strategies gets `n >> s` players, so every
/// strategy is non-empty when `n ≥ 2^s`; the remainder goes to the first).
pub fn geometric_state(game: &CongestionGame) -> State {
    let mut counts = vec![0u64; game.num_strategies()];
    for class in game.classes() {
        let ids: Vec<u32> = class.strategy_range().collect();
        let n = class.players();
        let mut assigned = 0u64;
        for (i, &s) in ids.iter().enumerate() {
            let share = n >> (i as u32 + 1).min(63);
            counts[s as usize] = share;
            assigned += share;
        }
        counts[ids[0] as usize] += n - assigned;
    }
    State::from_counts(game, counts).expect("geometric fixture state is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_well_formed() {
        let g = linear_singleton(4, 100);
        assert_eq!(g.num_strategies(), 4);
        assert_eq!(g.total_players(), 100);
        let g = affine_singleton(50);
        assert_eq!(g.num_resources(), 4);
        let g = monomial_singleton(30);
        assert_eq!(g.num_strategies(), 3);
        let g = overlapping_pairs(40);
        assert_eq!(g.num_resources(), 4);
        assert_eq!(g.strategies().iter().map(|s| s.resources().len()).max(), Some(2));
        let net = braess_network(64);
        assert!(net.game().num_strategies() >= 3);
    }

    #[test]
    fn geometric_state_is_supported_and_conserving() {
        for game in [linear_singleton(5, 100), overlapping_pairs(64)] {
            let st = geometric_state(&game);
            assert_eq!(st.counts().iter().sum::<u64>(), game.total_players());
            assert!(st.loads_consistent(&game));
            assert!(st.counts().iter().all(|&c| c > 0), "{:?}", st.counts());
        }
    }
}
