//! End-to-end convergence runs (small configurations, wall-clock view of
//! the C4 measurement pipeline).

use congames_bench::games::{braess_network, geometric_spread};
use congames_dynamics::{ImitationProtocol, Simulation, StopCondition, StopSpec};
use congames_model::ApproxEquilibrium;
use congames_sampling::seeded_rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence");
    group.sample_size(20);
    for &n in &[256u64, 4096] {
        let net = braess_network(n);
        let start = geometric_spread(net.game());
        let nu = net.game().params().nu;
        let eq = ApproxEquilibrium::new(0.05, 0.1, nu).expect("valid parameters");
        let stop = StopSpec::new(vec![
            StopCondition::ApproxEquilibrium(eq),
            StopCondition::MaxRounds(200_000),
        ]);
        group.bench_with_input(BenchmarkId::new("braess_to_approx_eq", n), &n, |b, _| {
            let mut stream = 0u64;
            b.iter(|| {
                let mut sim = Simulation::new(
                    net.game(),
                    ImitationProtocol::paper_default().into(),
                    start.clone(),
                )
                .expect("valid simulation");
                stream += 1;
                let mut rng = seeded_rng(9, stream);
                sim.run(&stop, &mut rng).expect("run succeeds").rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
