//! Throughput of one concurrent round: aggregate vs player-level engines,
//! across population and strategy-space sizes, plus the [`Ensemble`]
//! batch runner. The aggregate engine's cost must be independent of `n`;
//! the player-level engine's linear in `n`; ensemble wall-clock must drop
//! with the thread count while producing identical results.
//!
//! CI runs this bench in quick mode (`BENCH_QUICK=1`) and archives the
//! numbers as `BENCH_throughput.json` (`BENCH_JSON=…`), so the repo's
//! perf trajectory is tracked commit over commit.

use congames_bench::games::{poly_links, skewed_two_hot, sparse_support};
use congames_dynamics::{
    EngineKind, Ensemble, ImitationProtocol, LaneKernel, NuRule, Simulation, StopSpec,
};
use congames_model::{potential_delta_for_load_change, ResourceId};
use congames_sampling::{counter_blocks, seeded_rng, CounterRng, Dispatch, DrawStream, RngMode};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::RngCore;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    for &(n, m) in &[(1_000u64, 8usize), (100_000, 8), (1_000_000, 8), (10_000, 64)] {
        let game = poly_links(m, 2, n);
        let start = skewed_two_hot(&game);
        group.bench_with_input(BenchmarkId::new("aggregate", format!("n{n}_m{m}")), &n, |b, _| {
            let mut sim = Simulation::new(
                &game,
                ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
                start.clone(),
            )
            .expect("valid simulation");
            let mut rng = seeded_rng(1, 0);
            b.iter(|| sim.step(&mut rng).expect("step succeeds"));
        });
    }
    for &n in &[1_000u64, 10_000] {
        let game = poly_links(8, 2, n);
        let start = skewed_two_hot(&game);
        group.bench_with_input(BenchmarkId::new("player_level", n), &n, |b, _| {
            let mut sim = Simulation::new(
                &game,
                ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
                start.clone(),
            )
            .expect("valid simulation")
            .with_engine(EngineKind::PlayerLevel);
            let mut rng = seeded_rng(2, 0);
            b.iter(|| sim.step(&mut rng).expect("step succeeds"));
        });
    }
    group.finish();
}

/// Near-converged sparse-support rounds: S = 1024 strategies but only 8
/// occupied. Support invariance pins pure imitation inside those 8
/// strategies forever, so this is the steady-state shape of *every*
/// convergence experiment on a large strategy space — and the case the
/// per-class support index turns from `O(S²)` into `O(support²)` per
/// round. Both ids are pinned in `tools/bench_diff`.
///
/// Measured on the 1-CPU build container (quick mode) when the support
/// index landed: aggregate 14839 → 1425 ns/round (**10.4×** — the dense
/// scan walked 8×1023 destination slots, the sparse walk visits 8×7),
/// and the support-index origin iteration also cut the dense
/// `round/aggregate/n10000_m64` two-hot case 369 → 140 ns/round (2.6×).
/// The player-level twin stays `O(n)` (≈ 21–22 µs for n = 4096; its μ
/// memo is dense at S = 1024 — the LRU row tier only engages above
/// `2·S² > 2²¹`).
fn bench_sparse_rounds(c: &mut Criterion) {
    let s = 1024usize;
    let k = 8usize;
    let game = poly_links(s, 2, 4096);
    let start = sparse_support(&game, k);
    let param = format!("S{s}_support{k}");

    let mut group = c.benchmark_group("aggregate");
    group.bench_with_input(BenchmarkId::new("near_converged", &param), &s, |b, _| {
        let mut sim = Simulation::new(
            &game,
            ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
            start.clone(),
        )
        .expect("valid simulation");
        let mut rng = seeded_rng(3, 0);
        b.iter(|| sim.step(&mut rng).expect("step succeeds"));
    });
    group.finish();

    let mut group = c.benchmark_group("player_level");
    group.bench_with_input(BenchmarkId::new("near_converged", &param), &s, |b, _| {
        let mut sim = Simulation::new(
            &game,
            ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
            start.clone(),
        )
        .expect("valid simulation")
        .with_engine(EngineKind::PlayerLevel);
        let mut rng = seeded_rng(4, 0);
        b.iter(|| sim.step(&mut rng).expect("step succeeds"));
    });
    group.finish();
}

/// One iteration = a full 16-replica ensemble of 32-round runs; the
/// thread sweep shows the parallel speedup (results are identical across
/// the sweep by construction).
fn bench_ensemble(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble");
    let n = 10_000u64;
    let game = poly_links(8, 2, n);
    let start = skewed_two_hot(&game);
    let stop = StopSpec::max_rounds(32);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("trials16_rounds32", format!("t{threads}")),
            &threads,
            |b, &threads| {
                let ensemble = Ensemble::new(
                    &game,
                    ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
                    start.clone(),
                )
                .expect("valid ensemble")
                .trials(16)
                .base_seed(7)
                .threads(threads);
                b.iter(|| ensemble.run_with(&stop, |_, out| out.rounds).expect("ensemble run"));
            },
        );
    }
    group.finish();
}

/// The batched latency-evaluation hot paths (`Latency::eval_range_into` /
/// `sum_range`): a big-flow `ΔΦ` walk — 4096 intermediate loads behind a
/// single virtual call, the cost Θ(Δx) charged per migrated flow unit —
/// and the full per-round latency-cache rebuild at small and large
/// resource counts. Both ids are pinned in `tools/bench_diff`.
fn bench_batched_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("potential");
    let n = 100_000u64;
    let game = poly_links(8, 2, n);
    let state = skewed_two_hot(&game);
    let load = state.load(ResourceId::new(0));
    group.bench_with_input(BenchmarkId::new("delta_walk", "x4096"), &n, |b, _| {
        b.iter(|| potential_delta_for_load_change(&game, ResourceId::new(0), 0, load - 4096, load));
    });
    group.finish();

    let mut group = c.benchmark_group("cache_rebuild");
    for &m in &[64usize, 1024] {
        let game = poly_links(m, 2, 10_000);
        let mut state = skewed_two_hot(&game);
        group.bench_with_input(BenchmarkId::new("rebuild", format!("m{m}")), &m, |b, _| {
            b.iter(|| {
                state.invalidate_latency_cache();
                state.ensure_latency_cache(&game);
            });
        });
    }
    group.finish();
}

/// Raw and kernel-level cost of the two RNG backends. `rng/raw/*` is the
/// per-`u64` draw cost (the counter backend pays one Philox 4×64-10 block
/// per four draws plus the positioning bookkeeping); `rng/round/*` is one
/// aggregate round of the n=10⁴, m=64 fixture drawn through a
/// [`DrawStream`] in each mode — the end-to-end overhead counter mode
/// charges a round kernel. All four ids are pinned in `tools/bench_diff`,
/// so a counter-mode overhead regression fails CI.
fn bench_rng_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function(BenchmarkId::new("raw", "xoshiro"), |b| {
        let mut rng = seeded_rng(1, 0);
        b.iter(|| black_box(rng.next_u64()));
    });
    group.bench_function(BenchmarkId::new("raw", "counter"), |b| {
        let mut rng = CounterRng::for_trial(1, 0);
        let mut i = 0u64;
        b.iter(|| {
            // Walk sites the way the player kernel does — reposition, then
            // draw — so the positioning cost is part of the measurement.
            rng.begin_site(i);
            i = i.wrapping_add(1);
            black_box(rng.next_u64())
        });
    });
    // Batched across-lane keystream: one iteration produces 32 lanes' first
    // blocks (128 words) for a shared `(round, site)` address — the lane
    // kernel's per-site draw pattern. Compare ns/iter ÷ 128 against
    // `raw/counter`'s ns/word (which pays a full Philox block per word
    // measured); the id is pinned in `tools/bench_diff`.
    group.bench_function(BenchmarkId::new("raw", "counter_batched"), |b| {
        let trials: Vec<u64> = (0..32).collect();
        let mut out = vec![[0u64; 4]; 32];
        let mut site = 0u64;
        b.iter(|| {
            site = site.wrapping_add(1);
            counter_blocks(Dispatch::global(), 1, 0, site, 0, &trials, &mut out);
            black_box(out[31][3])
        });
    });
    let game = poly_links(64, 2, 10_000);
    let start = skewed_two_hot(&game);
    for mode in [RngMode::Xoshiro, RngMode::Counter] {
        group.bench_with_input(BenchmarkId::new("round", mode.name()), &mode, |b, &mode| {
            let mut sim = Simulation::new(
                &game,
                ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
                start.clone(),
            )
            .expect("valid simulation");
            let mut rng = DrawStream::for_trial(mode, 1, 0);
            b.iter(|| sim.step(&mut rng).expect("step succeeds"));
        });
    }
    group.finish();
}

/// Replica-major lane kernel vs scalar counter-mode rounds. One
/// `lanes/aggregate/wW` iteration = one lockstep round across `W`
/// replicas (so `W` trial-rounds); the `lanes/scalar/wW` comparator steps
/// `W` independent counter-mode simulations one round each — identical
/// work, identical bits, but every latency evaluation and CSR pair walk
/// repeated per replica instead of amortized across the lane block. The
/// two `aggregate` ids are pinned in `tools/bench_diff`; compare against
/// the scalar twin in the archived JSON for the amortization factor.
fn bench_lanes(c: &mut Criterion) {
    let mut group = c.benchmark_group("lanes");
    let n = 10_000u64;
    let game = poly_links(8, 2, n);
    let start = skewed_two_hot(&game);
    let protocol: congames_dynamics::Protocol =
        ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into();
    for &w in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::new("aggregate", format!("w{w}")), &w, |b, &w| {
            let mut kernel =
                LaneKernel::new(&game, protocol, &start, 1, 0, w).expect("valid lane kernel");
            b.iter(|| kernel.step());
        });
        group.bench_with_input(BenchmarkId::new("scalar", format!("w{w}")), &w, |b, &w| {
            let mut sims: Vec<Simulation> = (0..w)
                .map(|_| Simulation::new(&game, protocol, start.clone()).expect("valid simulation"))
                .collect();
            let mut rngs: Vec<DrawStream> =
                (0..w).map(|t| DrawStream::for_trial(RngMode::Counter, 1, t as u64)).collect();
            b.iter(|| {
                for (sim, rng) in sims.iter_mut().zip(rngs.iter_mut()) {
                    sim.step(rng).expect("step succeeds");
                }
            });
        });
    }
    group.finish();
}

/// Scenario-layer overhead on the round loop. One iteration = a full
/// 32-round run of the n=10⁴, m=8 fixture: with no hook (`none`), with an
/// armed schedule whose only event lies beyond the budget (`armed_idle` —
/// the per-round cost of polling `next_fire`, which every shocked sweep
/// pays on every non-shock round), and with a mid-run latency shock
/// (`shocked` — one full cache rebuild + revalidation amortized over the
/// run). `none` and `armed_idle` are pinned in `tools/bench_diff`: the
/// armed-but-idle schedule must stay in the noise of the hook-free loop.
fn bench_scenario(c: &mut Criterion) {
    use congames_scenario::{generate::step_shock, ScheduleCursor};
    use std::sync::Arc;
    let mut group = c.benchmark_group("scenario");
    let n = 10_000u64;
    let game = poly_links(8, 2, n);
    let start = skewed_two_hot(&game);
    let stop = StopSpec::max_rounds(32);
    // Armed-but-idle: first fire at round 1000, far past the 32-round
    // budget. Shocked: a ×4 shock at round 16, mid-run.
    let idle = Arc::new(step_shock(1000, 0, 4.0).expect("valid schedule"));
    let shocked = Arc::new(step_shock(16, 0, 4.0).expect("valid schedule"));
    let variants: [(&str, Option<Arc<congames_scenario::Schedule>>); 3] =
        [("none", None), ("armed_idle", Some(idle)), ("shocked", Some(shocked))];
    for (label, schedule) in variants {
        group.bench_function(BenchmarkId::new("shock_reconverge", label), |b| {
            let mut rng = seeded_rng(5, 0);
            b.iter(|| {
                let mut sim = Simulation::new(
                    &game,
                    ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
                    start.clone(),
                )
                .expect("valid simulation");
                if let Some(s) = &schedule {
                    sim = sim.with_hook(Box::new(ScheduleCursor::new(Arc::clone(s))));
                }
                sim.run(&stop, &mut rng).expect("run succeeds").rounds
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rounds,
    bench_sparse_rounds,
    bench_ensemble,
    bench_batched_latency,
    bench_rng_throughput,
    bench_lanes,
    bench_scenario
);
criterion_main!(benches);
